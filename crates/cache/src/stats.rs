//! Hit/miss accounting shared by both cache layers.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free cache counters.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    expirations: AtomicU64,
    /// Loads avoided because a concurrent identical load was in flight.
    coalesced: AtomicU64,
    /// Renders served from stale data while a revalidation ran.
    stale_serves: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub expirations: u64,
    pub coalesced: u64,
    pub stale_serves: u64,
}

impl CacheStatsSnapshot {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl CacheStats {
    pub fn new() -> CacheStats {
        CacheStats::default()
    }

    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    pub fn insert(&self) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    pub fn expiration(&self) {
        self.expirations.fetch_add(1, Ordering::Relaxed);
    }

    pub fn coalesce(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    pub fn stale_serve(&self) {
        self.stale_serves.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    ///
    /// Each counter is read atomically, but the six reads are not one
    /// transaction: under concurrent updates a snapshot may pair a hit
    /// count taken before an in-flight update with a miss count taken
    /// after it. Every individual increment is still observed by exactly
    /// one later snapshot, which is the contract dashboards need.
    pub fn snapshot(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            expirations: self.expirations.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            stale_serves: self.stale_serves.load(Ordering::Relaxed),
        }
    }

    /// Atomically take-and-zero every counter, returning what was drained.
    ///
    /// Unlike the old `snapshot()`-then-`store(0)` reset, each counter is
    /// zeroed with a single `swap`, so an increment racing the drain lands
    /// either in the returned snapshot or in the post-drain counter —
    /// never in both and never nowhere.
    pub fn drain(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.hits.swap(0, Ordering::Relaxed),
            misses: self.misses.swap(0, Ordering::Relaxed),
            inserts: self.inserts.swap(0, Ordering::Relaxed),
            expirations: self.expirations.swap(0, Ordering::Relaxed),
            coalesced: self.coalesced.swap(0, Ordering::Relaxed),
            stale_serves: self.stale_serves.swap(0, Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        let _ = self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_hit_rate() {
        let s = CacheStats::new();
        s.hit();
        s.hit();
        s.hit();
        s.miss();
        s.insert();
        s.coalesce();
        s.stale_serve();
        s.expiration();
        let snap = s.snapshot();
        assert_eq!(snap.hits, 3);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.inserts, 1);
        assert_eq!(snap.coalesced, 1);
        assert_eq!(snap.stale_serves, 1);
        assert_eq!(snap.expirations, 1);
        assert!((snap.hit_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_hit_rate_is_zero() {
        assert_eq!(CacheStats::new().snapshot().hit_rate(), 0.0);
    }

    #[test]
    fn reset_zeroes() {
        let s = CacheStats::new();
        s.hit();
        s.reset();
        assert_eq!(s.snapshot().hits, 0);
    }

    #[test]
    fn drain_returns_taken_counts() {
        let s = CacheStats::new();
        s.hit();
        s.hit();
        s.miss();
        let drained = s.drain();
        assert_eq!(drained.hits, 2);
        assert_eq!(drained.misses, 1);
        let after = s.snapshot();
        assert_eq!(after.hits, 0);
        assert_eq!(after.misses, 0);
    }

    #[test]
    fn concurrent_drains_never_lose_or_duplicate_increments() {
        // Regression test for the old reset(): a `store(0)` racing with
        // updaters silently discarded increments that landed between the
        // snapshot read and the zeroing write. With swap-based draining,
        // total increments == sum over drains + final snapshot, exactly.
        const WRITERS: usize = 8;
        const PER_WRITER: u64 = 20_000;
        let stats = std::sync::Arc::new(CacheStats::new());
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));

        let mut writers = Vec::new();
        for _ in 0..WRITERS {
            let stats = stats.clone();
            writers.push(std::thread::spawn(move || {
                for _ in 0..PER_WRITER {
                    stats.hit();
                    stats.miss();
                }
            }));
        }
        let drainer = {
            let stats = stats.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut hits = 0u64;
                let mut misses = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let d = stats.drain();
                    hits += d.hits;
                    misses += d.misses;
                    std::thread::yield_now();
                }
                (hits, misses)
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let (drained_hits, drained_misses) = drainer.join().unwrap();
        let tail = stats.drain();
        let expected = WRITERS as u64 * PER_WRITER;
        assert_eq!(drained_hits + tail.hits, expected, "hits conserved");
        assert_eq!(drained_misses + tail.misses, expected, "misses conserved");
    }
}
