//! Deterministic fault injection for the simulator's daemons.
//!
//! Real clusters fail in mundane ways: `slurmctld` times out under a
//! scheduling storm, `slurmdbd` lags hours behind, `sacct` prints half a
//! table and exits. The dashboard's whole caching architecture exists to
//! survive that (paper §2.2.2), so the simulator must be able to *produce*
//! it — reproducibly, or chaos tests cannot assert anything.
//!
//! The model: a [`FaultPlan`] is a seed plus a list of [`FaultRule`]s. Each
//! rule names a daemon and an RPC (either may be `"*"`), a [`FaultKind`],
//! a probability, and optionally a sim-time activity window and/or a flap
//! cycle. Daemons own a [`FaultHost`]; every RPC calls
//! [`FaultHost::check`], which returns a [`FaultCheck`] describing what to
//! inflict on this call. Whether a given call fires is a pure function of
//! `(seed, daemon, rpc, per-rpc call index, rule index)` plus the sim
//! clock, so the same seed always yields the same fault schedule.
//!
//! When no plan is installed the check is a single `Relaxed` atomic load —
//! `bench_resilience` asserts this costs nothing measurable.

use hpcdash_simtime::{SharedClock, Timestamp};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a matching rule does to the call.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The call fails outright with this message (e.g. connection refused).
    Error(String),
    /// The call takes `micros` extra microseconds of service time (burned
    /// on the daemon's thread, like [`RpcCostModel`]'s spin-wait, so it
    /// shows up in real latency measurements and can overrun deadlines).
    Latency { micros: u64 },
    /// Command output is deterministically corrupted at the CLI boundary:
    /// truncated mid-table, mangled header, or digits smashed. Parsers must
    /// turn this into `Err`, never a panic.
    Garble,
    /// `slurmdbd` stops applying `sync_active` mirror updates: accounting
    /// queries keep answering, but from an increasingly stale mirror.
    Lag,
    /// The daemon dies outright. Every RPC hard-fails with "connection
    /// refused" while it is down; `down_secs` of sim time later the host
    /// hands out a restart token ([`FaultHost::take_restart`]) and the
    /// daemon's next tick runs crash recovery. Unlike the soft kinds, a
    /// crash is *stateful*: once triggered, refusal persists until the
    /// restart is consumed, and per-RPC call counters freeze so the seeded
    /// schedule of every other rule is unaffected by the outage.
    Crash { down_secs: u64 },
}

/// A flap cycle: within each `period_secs` window the target is down for
/// the first `down_secs` seconds, then up for the remainder.
///
/// Boundary semantics (pinned by tests): the rule is active iff
/// `now % period_secs < down_secs`. So at exactly `t = down_secs` the
/// phase has left the down range — that second is the first *up* second —
/// and at exactly `t = period_secs` the phase wraps to 0, which is *down*
/// again. Down intervals are `[k*period, k*period + down)`, half-open like
/// windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flap {
    pub period_secs: u64,
    pub down_secs: u64,
}

/// One scripted fault: where it applies, what it does, when, how often.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Daemon name (`"slurmctld"`, `"slurmdbd"`, `"slurmcli"`) or `"*"`.
    pub daemon: String,
    /// RPC / command name (`"squeue"`, `"sacct"`, ...) or `"*"`.
    pub rpc: String,
    pub kind: FaultKind,
    /// Chance each matching call fires, in `[0, 1]`. Decided by a seeded
    /// hash of the per-RPC call index, so it is deterministic per seed.
    pub probability: f64,
    /// Active only inside `[start, end)` of sim time, if set.
    pub window: Option<(Timestamp, Timestamp)>,
    /// Active only during the down phase of this cycle, if set. The phase
    /// is anchored at sim-time zero so ticks land identically across runs.
    pub flap: Option<Flap>,
}

impl FaultRule {
    /// A hard failure of `rpc` on `daemon`, firing on every matching call.
    pub fn error(daemon: &str, rpc: &str, message: &str) -> FaultRule {
        FaultRule {
            daemon: daemon.to_string(),
            rpc: rpc.to_string(),
            kind: FaultKind::Error(message.to_string()),
            probability: 1.0,
            window: None,
            flap: None,
        }
    }

    /// Added service time on every matching call.
    pub fn latency(daemon: &str, rpc: &str, micros: u64) -> FaultRule {
        FaultRule {
            daemon: daemon.to_string(),
            rpc: rpc.to_string(),
            kind: FaultKind::Latency { micros },
            probability: 1.0,
            window: None,
            flap: None,
        }
    }

    /// Deterministically corrupted command output.
    pub fn garble(daemon: &str, rpc: &str) -> FaultRule {
        FaultRule {
            daemon: daemon.to_string(),
            rpc: rpc.to_string(),
            kind: FaultKind::Garble,
            probability: 1.0,
            window: None,
            flap: None,
        }
    }

    /// Kill `daemon` outright: while crashed, *every* RPC (the rule's own
    /// target is `"*"`) is refused with "connection refused"; the daemon
    /// restarts `down_secs` of sim time later, at its next tick. Combine
    /// with [`FaultRule::during`] to script when the crash fires — a rule
    /// without a window re-crashes the daemon on the first RPC after every
    /// recovery.
    pub fn crash(daemon: &str, down_secs: u64) -> FaultRule {
        FaultRule {
            daemon: daemon.to_string(),
            rpc: "*".to_string(),
            kind: FaultKind::Crash { down_secs },
            probability: 1.0,
            window: None,
            flap: None,
        }
    }

    /// `slurmdbd` mirror-sync lag.
    pub fn dbd_lag() -> FaultRule {
        FaultRule {
            daemon: "slurmdbd".to_string(),
            rpc: "sync_active".to_string(),
            kind: FaultKind::Lag,
            probability: 1.0,
            window: None,
            flap: None,
        }
    }

    /// Restrict the rule to a sim-time window `[start, end)`.
    pub fn during(mut self, start: Timestamp, end: Timestamp) -> FaultRule {
        self.window = Some((start, end));
        self
    }

    /// Make the rule flap: down for `down_secs` out of every `period_secs`.
    pub fn flapping(mut self, period_secs: u64, down_secs: u64) -> FaultRule {
        self.flap = Some(Flap {
            period_secs: period_secs.max(1),
            down_secs,
        });
        self
    }

    /// Fire on roughly `p` of matching calls instead of all of them.
    pub fn with_probability(mut self, p: f64) -> FaultRule {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    fn matches_target(&self, daemon: &str, rpc: &str) -> bool {
        (self.daemon == "*" || self.daemon == daemon) && (self.rpc == "*" || self.rpc == rpc)
    }

    fn active_at(&self, now: Timestamp) -> bool {
        if let Some((start, end)) = self.window {
            if now.0 < start.0 || now.0 >= end.0 {
                return false;
            }
        }
        if let Some(flap) = self.flap {
            let phase = now.0 % flap.period_secs;
            if phase >= flap.down_secs {
                return false;
            }
        }
        true
    }
}

/// A seeded, scriptable schedule of faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    pub fn rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Check every rule for nonsense that would otherwise silently
    /// misbehave: a probability outside `[0, 1]` (or NaN) never fires or
    /// always fires without saying so, and a window with `start >= end`
    /// matches nothing. [`FaultHost::install`] runs this and panics on the
    /// descriptive error; [`FaultHost::try_install`] surfaces it.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        for (idx, rule) in self.rules.iter().enumerate() {
            if !rule.probability.is_finite() || !(0.0..=1.0).contains(&rule.probability) {
                return Err(FaultPlanError::Probability {
                    rule: idx,
                    daemon: rule.daemon.clone(),
                    rpc: rule.rpc.clone(),
                    value: rule.probability,
                });
            }
            if let Some((start, end)) = rule.window {
                if start.0 >= end.0 {
                    return Err(FaultPlanError::EmptyWindow {
                        rule: idx,
                        daemon: rule.daemon.clone(),
                        rpc: rule.rpc.clone(),
                        start,
                        end,
                    });
                }
            }
        }
        Ok(())
    }

    /// Decide what happens to call number `call_idx` of `rpc` on `daemon`
    /// at sim time `now`. Pure: same inputs, same answer. All matching
    /// latency rules accumulate; the first matching failure-kind rule (in
    /// plan order) wins.
    pub fn decide(&self, daemon: &str, rpc: &str, call_idx: u64, now: Timestamp) -> FaultCheck {
        let mut check = FaultCheck::none();
        for (rule_idx, rule) in self.rules.iter().enumerate() {
            if !rule.matches_target(daemon, rpc) || !rule.active_at(now) {
                continue;
            }
            if rule.probability < 1.0 {
                let h = mix(
                    self.seed,
                    &[
                        fnv(daemon.as_bytes()),
                        fnv(rpc.as_bytes()),
                        call_idx,
                        rule_idx as u64,
                    ],
                );
                // Top 53 bits -> uniform fraction in [0, 1).
                let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
                if frac >= rule.probability {
                    continue;
                }
            }
            match &rule.kind {
                FaultKind::Latency { micros } => check.latency_micros += micros,
                FaultKind::Error(msg) => {
                    if check.failure.is_none() {
                        check.failure = Some(FaultFailure::Error(msg.clone()));
                    }
                }
                FaultKind::Garble => {
                    if check.failure.is_none() {
                        let gs = mix(self.seed, &[fnv(rpc.as_bytes()), call_idx, 0x6a72_626c]);
                        check.failure = Some(FaultFailure::Garble(gs));
                    }
                }
                FaultKind::Lag => {
                    if check.failure.is_none() {
                        check.failure = Some(FaultFailure::Lag);
                    }
                }
                FaultKind::Crash { down_secs } => {
                    // A crash overrides softer failures regardless of plan
                    // order — the daemon is *gone*, not merely erroring.
                    // Among crash rules the first still wins.
                    if !matches!(check.failure, Some(FaultFailure::Crash { .. })) {
                        check.failure = Some(FaultFailure::Crash {
                            down_secs: *down_secs,
                        });
                    }
                }
            }
        }
        check
    }
}

/// Why a [`FaultPlan`] was rejected at install time.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// `probability` is NaN, infinite, or outside `[0, 1]`.
    Probability {
        rule: usize,
        daemon: String,
        rpc: String,
        value: f64,
    },
    /// `window` has `start >= end`: the half-open `[start, end)` interval
    /// is empty, so the rule could never fire.
    EmptyWindow {
        rule: usize,
        daemon: String,
        rpc: String,
        start: Timestamp,
        end: Timestamp,
    },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::Probability {
                rule,
                daemon,
                rpc,
                value,
            } => write!(
                f,
                "fault rule #{rule} ({daemon}/{rpc}): probability {value} is outside [0, 1]"
            ),
            FaultPlanError::EmptyWindow {
                rule,
                daemon,
                rpc,
                start,
                end,
            } => write!(
                f,
                "fault rule #{rule} ({daemon}/{rpc}): window [{}, {}) is empty (start >= end)",
                start.0, end.0
            ),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// The failure half of a [`FaultCheck`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultFailure {
    /// Fail the call with this message.
    Error(String),
    /// Corrupt the call's text output with this garble seed.
    Garble(u64),
    /// Skip the dbd mirror sync.
    Lag,
    /// Kill the daemon: this call and every later one are refused until
    /// the restart `down_secs` later. [`FaultHost`] converts this into a
    /// "connection refused" [`FaultFailure::Error`] and tracks the down
    /// state; callers of the pure [`FaultPlan::decide`] see it raw.
    Crash { down_secs: u64 },
}

/// What to inflict on one call: extra service time, then maybe a failure.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCheck {
    pub latency_micros: u64,
    pub failure: Option<FaultFailure>,
}

impl FaultCheck {
    #[inline]
    pub fn none() -> FaultCheck {
        FaultCheck {
            latency_micros: 0,
            failure: None,
        }
    }

    #[inline]
    pub fn is_none(&self) -> bool {
        self.latency_micros == 0 && self.failure.is_none()
    }

    /// Burn the injected latency on the calling thread (same spin-wait
    /// technique as the RPC cost model, so it is visible to wall-clock
    /// latency measurements and deadline checks).
    #[inline]
    pub fn burn(&self) {
        burn_micros(self.latency_micros);
    }

    /// If this check says the call fails hard, the error message.
    pub fn error(&self) -> Option<&str> {
        match &self.failure {
            Some(FaultFailure::Error(msg)) => Some(msg),
            _ => None,
        }
    }

    /// Apply this check to a rendered command output: burn latency, then
    /// fail or garble the text as scripted. This is the one-liner daemons'
    /// CLI boundary uses.
    pub fn apply_to_output(&self, text: String) -> Result<String, String> {
        self.burn();
        match &self.failure {
            None | Some(FaultFailure::Lag) => Ok(text),
            Some(FaultFailure::Error(msg)) => Err(msg.clone()),
            Some(FaultFailure::Garble(seed)) => Ok(garble_text(&text, *seed)),
            Some(FaultFailure::Crash { .. }) => Err(refused_message("daemon")),
        }
    }
}

/// Spin-burn `micros` microseconds of service time.
pub fn burn_micros(micros: u64) {
    if micros == 0 {
        return;
    }
    let deadline = Instant::now() + Duration::from_micros(micros);
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

/// Deterministically corrupt rendered command output. Three modes, chosen
/// by the seed: truncate mid-table, mangle the header row, or smash digits.
/// Never returns an empty string — `parse_squeue("")` is a legal empty
/// queue, and a garble must be *noticed*.
pub fn garble_text(text: &str, seed: u64) -> String {
    const MARKER: &str = "slurm_load error: partial record";
    if text.is_empty() {
        return MARKER.to_string();
    }
    match seed % 3 {
        // Truncate somewhere in the middle (cuts a row or the header in
        // half). Keep at least one byte so the output is non-empty.
        0 => {
            let cut = 1 + (seed / 3) as usize % text.len().max(1);
            let mut at = cut.min(text.len());
            while !text.is_char_boundary(at) {
                at -= 1;
            }
            let mut out = text[..at.max(1)].to_string();
            out.push('\n');
            out.push_str(MARKER);
            out
        }
        // Mangle the header row: separators become semicolons, so strict
        // header validation fails.
        1 => {
            let mut lines: Vec<String> = text.lines().map(|l| l.to_string()).collect();
            if let Some(first) = lines.first_mut() {
                let mangled = first.replace('|', ";").replace(' ', "_");
                if mangled == *first {
                    first.insert_str(0, "??");
                } else {
                    *first = mangled;
                }
            }
            lines.join("\n")
        }
        // Smash digits in the body to '?', so numeric fields fail to parse
        // (and a digit-free output still gets a poisoned prefix).
        _ => {
            let smashed: String = text
                .chars()
                .map(|c| if c.is_ascii_digit() { '?' } else { c })
                .collect();
            if smashed == text {
                format!("??{smashed}")
            } else {
                smashed
            }
        }
    }
}

/// Counters the host keeps about what it inflicted (read by tests/metrics).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    pub checks: u64,
    pub errors: u64,
    pub garbles: u64,
    pub lags: u64,
    pub latency_micros: u64,
    /// Crash transitions (up -> down), not refused calls.
    pub crashes: u64,
    /// RPCs refused with "connection refused" while the daemon was down.
    pub refused: u64,
}

#[derive(Default)]
struct StatCells {
    checks: AtomicU64,
    errors: AtomicU64,
    garbles: AtomicU64,
    lags: AtomicU64,
    latency_micros: AtomicU64,
    crashes: AtomicU64,
    refused: AtomicU64,
}

struct Armed {
    plan: Arc<FaultPlan>,
    clock: SharedClock,
    /// Per-RPC call counters, so each RPC stream gets its own deterministic
    /// schedule regardless of interleaving with other RPCs.
    calls: Mutex<HashMap<String, u64>>,
}

/// The daemon-is-dead record a [`FaultHost`] keeps between the crash and
/// the consumed restart. Owns a clock handle so the down window can be
/// evaluated even if the plan is cleared mid-outage.
struct CrashState {
    crashed_at: Timestamp,
    down_until: Timestamp,
    clock: SharedClock,
}

/// Handed to the daemon's tick exactly once per outage, when the scripted
/// down window has elapsed: "you died at `crashed_at`; run recovery now."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartToken {
    pub crashed_at: Timestamp,
    pub down_until: Timestamp,
}

/// The message every refused RPC carries, shaped like real Slurm's
/// "Unable to contact slurm controller (connect failure)".
fn refused_message(daemon: &str) -> String {
    format!("connection refused: {daemon} is not responding")
}

/// A daemon's hook into the fault plan. Owned by `Slurmctld`/`Slurmdbd`
/// (and the CLI boundary via the daemons); disarmed it is a single relaxed
/// atomic load per call.
pub struct FaultHost {
    daemon: &'static str,
    armed: AtomicBool,
    inner: RwLock<Option<Armed>>,
    /// Raised while a [`CrashState`] is held; checked before `armed` so a
    /// dead daemon refuses RPCs even through plan churn.
    down_flag: AtomicBool,
    down: Mutex<Option<CrashState>>,
    stats: StatCells,
}

impl FaultHost {
    pub fn new(daemon: &'static str) -> FaultHost {
        FaultHost {
            daemon,
            armed: AtomicBool::new(false),
            inner: RwLock::new(None),
            down_flag: AtomicBool::new(false),
            down: Mutex::new(None),
            stats: StatCells::default(),
        }
    }

    pub fn daemon(&self) -> &'static str {
        self.daemon
    }

    /// Install a plan. The clock rides along because not every daemon owns
    /// one (`Slurmdbd` is clockless); windows and flaps are evaluated
    /// against it.
    ///
    /// Panics if the plan fails [`FaultPlan::validate`] — a scripted
    /// scenario with an impossible rule is a bug in the script, and the
    /// panic message names the offending rule. Use
    /// [`FaultHost::try_install`] to handle the error instead.
    pub fn install(&self, plan: Arc<FaultPlan>, clock: SharedClock) {
        if let Err(e) = self.try_install(plan, clock) {
            panic!("invalid fault plan: {e}");
        }
    }

    /// Like [`FaultHost::install`], but an invalid plan is returned as an
    /// error (and nothing is installed) instead of panicking.
    pub fn try_install(
        &self,
        plan: Arc<FaultPlan>,
        clock: SharedClock,
    ) -> Result<(), FaultPlanError> {
        plan.validate()?;
        let mut slot = self.inner.write();
        *slot = Some(Armed {
            plan,
            clock,
            calls: Mutex::new(HashMap::new()),
        });
        self.armed.store(true, Ordering::Release);
        Ok(())
    }

    /// Remove any installed plan, restoring the zero-overhead path. Also
    /// revives a crashed daemon without recovery — tests only; the real
    /// restart path is [`FaultHost::take_restart`].
    pub fn clear(&self) {
        self.armed.store(false, Ordering::Release);
        *self.inner.write() = None;
        *self.down.lock() = None;
        self.down_flag.store(false, Ordering::Release);
    }

    #[inline]
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// True while the daemon is crashed (refusing all RPCs). Stays true
    /// after the down window elapses until the daemon's tick consumes the
    /// restart token — a dead process doesn't answer between its scheduled
    /// restart and the moment init actually respawns it.
    #[inline]
    pub fn is_down(&self) -> bool {
        self.down_flag.load(Ordering::Relaxed)
    }

    /// If the daemon is crashed and its down window has elapsed, consume
    /// the crash state and return the restart token. The daemon's tick
    /// calls this first thing; `Some` means "run crash recovery now".
    pub fn take_restart(&self) -> Option<RestartToken> {
        if !self.down_flag.load(Ordering::Relaxed) {
            return None;
        }
        let mut down = self.down.lock();
        let state = down.as_ref()?;
        if state.clock.now().0 < state.down_until.0 {
            return None;
        }
        let state = down.take().expect("checked above");
        self.down_flag.store(false, Ordering::Release);
        Some(RestartToken {
            crashed_at: state.crashed_at,
            down_until: state.down_until,
        })
    }

    /// Consult the plan for one call of `rpc`. The disarmed fast path is a
    /// single relaxed load and a constant return.
    #[inline]
    pub fn check(&self, rpc: &str) -> FaultCheck {
        if self.down_flag.load(Ordering::Relaxed) {
            return self.refuse();
        }
        if !self.armed.load(Ordering::Relaxed) {
            return FaultCheck::none();
        }
        self.check_armed(rpc)
    }

    /// Every RPC against a dead daemon: "connection refused", no latency,
    /// and — deliberately — no per-RPC counter increment, so the seeded
    /// schedules of all other rules are frozen across the outage.
    #[cold]
    fn refuse(&self) -> FaultCheck {
        self.stats.refused.fetch_add(1, Ordering::Relaxed);
        FaultCheck {
            latency_micros: 0,
            failure: Some(FaultFailure::Error(refused_message(self.daemon))),
        }
    }

    #[cold]
    fn check_armed(&self, rpc: &str) -> FaultCheck {
        let (check, clock) = {
            let guard = self.inner.read();
            let Some(armed) = guard.as_ref() else {
                return FaultCheck::none();
            };
            let idx = {
                let mut calls = armed.calls.lock();
                let slot = calls.entry(rpc.to_string()).or_insert(0);
                let idx = *slot;
                *slot += 1;
                idx
            };
            let check = armed.plan.decide(self.daemon, rpc, idx, armed.clock.now());
            if matches!(check.failure, Some(FaultFailure::Crash { .. })) {
                // The dying call consumes no schedule index: roll the
                // counter back so every rule's seeded stream resumes after
                // recovery exactly where it left off (refused calls while
                // down never touch the counters either).
                if let Some(slot) = armed.calls.lock().get_mut(rpc) {
                    *slot = slot.saturating_sub(1);
                }
            }
            (check, armed.clock.clone())
        };
        self.stats.checks.fetch_add(1, Ordering::Relaxed);
        self.stats
            .latency_micros
            .fetch_add(check.latency_micros, Ordering::Relaxed);
        match &check.failure {
            Some(FaultFailure::Error(_)) => {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            Some(FaultFailure::Garble(_)) => {
                self.stats.garbles.fetch_add(1, Ordering::Relaxed);
            }
            Some(FaultFailure::Lag) => {
                self.stats.lags.fetch_add(1, Ordering::Relaxed);
            }
            Some(FaultFailure::Crash { down_secs }) => {
                return self.crash_now(*down_secs, clock);
            }
            None => {}
        }
        check
    }

    /// Transition up -> down: record when the daemon died and when the
    /// scripted restart lands, then refuse this call like any other.
    fn crash_now(&self, down_secs: u64, clock: SharedClock) -> FaultCheck {
        let now = clock.now();
        let mut down = self.down.lock();
        if down.is_none() {
            *down = Some(CrashState {
                crashed_at: now,
                down_until: Timestamp(now.0 + down_secs),
                clock,
            });
            self.down_flag.store(true, Ordering::Release);
            self.stats.crashes.fetch_add(1, Ordering::Relaxed);
        }
        drop(down);
        self.refuse()
    }

    pub fn stats(&self) -> FaultStats {
        FaultStats {
            checks: self.stats.checks.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
            garbles: self.stats.garbles.load(Ordering::Relaxed),
            lags: self.stats.lags.load(Ordering::Relaxed),
            latency_micros: self.stats.latency_micros.load(Ordering::Relaxed),
            crashes: self.stats.crashes.load(Ordering::Relaxed),
            refused: self.stats.refused.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for FaultHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultHost")
            .field("daemon", &self.daemon)
            .field("armed", &self.is_armed())
            .finish()
    }
}

/// FNV-1a over bytes: stable, cheap, good enough to key the mix below.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64-style mixing of the seed with a word stream. Deterministic
/// and well-distributed; this is the entire source of fault randomness.
fn mix(seed: u64, words: &[u64]) -> u64 {
    let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
    for &w in words {
        h ^= w;
        h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
    }
    h
}

/// Seeded-jitter exponential backoff delay for attempt `attempt` (0-based):
/// `min(cap, base * 2^attempt)` scaled by a deterministic jitter factor in
/// `[0.5, 1.5)` keyed on `(seed, key, attempt)`. Full-jitter style spreads
/// a fleet of retriers; the determinism keeps chaos tests reproducible.
pub fn backoff_delay_ms(base_ms: u64, cap_ms: u64, attempt: u32, seed: u64, key: &str) -> u64 {
    let exp = base_ms.saturating_mul(1u64 << attempt.min(20)).min(cap_ms);
    let h = mix(seed, &[fnv(key.as_bytes()), attempt as u64]);
    let jitter = 0.5 + (h >> 11) as f64 / (1u64 << 53) as f64; // [0.5, 1.5)
    ((exp as f64) * jitter) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcdash_simtime::SimClock;

    fn clock_at(t: u64) -> (SimClock, SharedClock) {
        let c = SimClock::new(Timestamp(t));
        let shared = c.shared();
        (c, shared)
    }

    #[test]
    fn disarmed_check_is_none_and_counts_nothing() {
        let host = FaultHost::new("slurmctld");
        for _ in 0..100 {
            assert!(host.check("squeue").is_none());
        }
        assert_eq!(host.stats(), FaultStats::default());
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = |seed| {
            Arc::new(
                FaultPlan::new(seed)
                    .rule(FaultRule::error("slurmctld", "squeue", "down").with_probability(0.3)),
            )
        };
        let run = |seed| {
            let host = FaultHost::new("slurmctld");
            let (_c, shared) = clock_at(1_000);
            host.install(plan(seed), shared);
            (0..200)
                .map(|_| host.check("squeue").failure.is_some())
                .collect::<Vec<_>>()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        let fired = a.iter().filter(|f| **f).count();
        assert!(
            (30..=90).contains(&fired),
            "p=0.3 over 200 calls fired {fired} times"
        );
    }

    #[test]
    fn wildcards_windows_and_flaps() {
        let plan = Arc::new(
            FaultPlan::new(1)
                .rule(FaultRule::error("*", "*", "outage").during(Timestamp(100), Timestamp(200))),
        );
        let (clk, shared) = clock_at(50);
        let host = FaultHost::new("slurmdbd");
        host.install(plan, shared);
        assert!(host.check("sacct").failure.is_none(), "before window");
        clk.advance(50); // t=100
        assert!(host.check("sacct").failure.is_some(), "inside window");
        clk.advance(100); // t=200 (exclusive end)
        assert!(host.check("sacct").failure.is_none(), "after window");

        let plan = Arc::new(
            FaultPlan::new(1)
                .rule(FaultRule::error("slurmctld", "squeue", "flap").flapping(60, 20)),
        );
        let (clk, shared) = clock_at(0);
        let host = FaultHost::new("slurmctld");
        host.install(plan, shared);
        assert!(host.check("squeue").failure.is_some(), "phase 0 is down");
        clk.advance(20); // phase 20: up
        assert!(host.check("squeue").failure.is_none(), "phase 20 is up");
        clk.advance(40); // phase 0 of next period
        assert!(host.check("squeue").failure.is_some(), "next period down");
    }

    #[test]
    fn latency_accumulates_and_first_failure_wins() {
        let plan = Arc::new(
            FaultPlan::new(3)
                .rule(FaultRule::latency("slurmctld", "*", 5))
                .rule(FaultRule::latency("*", "squeue", 7))
                .rule(FaultRule::error("slurmctld", "squeue", "first"))
                .rule(FaultRule::error("*", "*", "second")),
        );
        let check = plan.decide("slurmctld", "squeue", 0, Timestamp(0));
        assert_eq!(check.latency_micros, 12);
        assert_eq!(check.error(), Some("first"));
    }

    #[test]
    fn garble_is_deterministic_never_empty_and_detectable() {
        let rendered = "JOBID|USER|STATE\n101|alice|RUNNING\n102|bob|PENDING\n";
        for seed in 0..64u64 {
            let g1 = garble_text(rendered, seed);
            let g2 = garble_text(rendered, seed);
            assert_eq!(g1, g2, "same seed, same garble");
            assert!(!g1.is_empty());
            assert_ne!(g1, rendered, "garble must change the text");
        }
        assert!(!garble_text("", 5).is_empty(), "empty input still poisoned");
    }

    #[test]
    fn apply_to_output_routes_by_failure() {
        let ok = FaultCheck::none().apply_to_output("x".into());
        assert_eq!(ok, Ok("x".to_string()));
        let err = FaultCheck {
            latency_micros: 0,
            failure: Some(FaultFailure::Error("boom".into())),
        }
        .apply_to_output("x".into());
        assert_eq!(err, Err("boom".to_string()));
        let garbled = FaultCheck {
            latency_micros: 0,
            failure: Some(FaultFailure::Garble(9)),
        }
        .apply_to_output("A|B\n1|2\n".into())
        .unwrap();
        assert_ne!(garbled, "A|B\n1|2\n");
    }

    #[test]
    fn per_rpc_counters_are_independent() {
        // A p<1 rule must see call index 0,1,2... per RPC, not a shared
        // stream, so adding an unrelated RPC doesn't shift the schedule.
        let plan = Arc::new(
            FaultPlan::new(11)
                .rule(FaultRule::error("slurmctld", "squeue", "x").with_probability(0.5)),
        );
        let solo: Vec<bool> = {
            let host = FaultHost::new("slurmctld");
            let (_c, s) = clock_at(0);
            host.install(plan.clone(), s);
            (0..50)
                .map(|_| host.check("squeue").failure.is_some())
                .collect()
        };
        let interleaved: Vec<bool> = {
            let host = FaultHost::new("slurmctld");
            let (_c, s) = clock_at(0);
            host.install(plan, s);
            (0..50)
                .map(|_| {
                    host.check("sinfo");
                    host.check("squeue").failure.is_some()
                })
                .collect()
        };
        assert_eq!(solo, interleaved);
    }

    #[test]
    fn backoff_delays_are_bounded_and_jittered() {
        let mut delays = Vec::new();
        for key in 0..100 {
            let d = backoff_delay_ms(10, 1_000, 2, 42, &format!("tab-{key}"));
            // base 10ms * 2^2 = 40ms, jitter in [0.5, 1.5) -> [20, 60).
            assert!((20..60).contains(&d), "delay {d} out of jitter range");
            delays.push(d);
        }
        delays.sort_unstable();
        delays.dedup();
        assert!(delays.len() > 10, "jitter must spread a fleet of keys");
        // Cap binds: attempt 30 would otherwise overflow the budget.
        let capped = backoff_delay_ms(10, 100, 30, 42, "k");
        assert!(capped < 150);
        // Deterministic per (seed, key, attempt).
        assert_eq!(
            backoff_delay_ms(10, 1_000, 3, 7, "k"),
            backoff_delay_ms(10, 1_000, 3, 7, "k")
        );
    }

    #[test]
    fn validate_rejects_probability_outside_unit_interval() {
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let mut rule = FaultRule::error("slurmctld", "squeue", "x");
            rule.probability = bad;
            let plan = FaultPlan::new(1).rule(rule);
            let err = plan.validate().expect_err("must reject");
            match &err {
                FaultPlanError::Probability {
                    rule, daemon, rpc, ..
                } => {
                    assert_eq!(*rule, 0);
                    assert_eq!(daemon, "slurmctld");
                    assert_eq!(rpc, "squeue");
                }
                other => panic!("wrong error: {other:?}"),
            }
            assert!(
                err.to_string().contains("outside [0, 1]"),
                "descriptive message, got: {err}"
            );
            // try_install surfaces it and installs nothing.
            let host = FaultHost::new("slurmctld");
            let (_c, s) = clock_at(0);
            assert!(host.try_install(Arc::new(plan), s).is_err());
            assert!(!host.is_armed());
        }
    }

    #[test]
    fn validate_rejects_empty_window() {
        for (start, end) in [(200, 100), (100, 100)] {
            let plan = FaultPlan::new(1)
                .rule(FaultRule::error("*", "*", "x").during(Timestamp(start), Timestamp(end)));
            let err = plan.validate().expect_err("must reject start >= end");
            assert!(matches!(err, FaultPlanError::EmptyWindow { .. }));
            assert!(
                err.to_string().contains("start >= end"),
                "descriptive message, got: {err}"
            );
        }
        // A legal window still passes.
        let plan = FaultPlan::new(1)
            .rule(FaultRule::error("*", "*", "x").during(Timestamp(100), Timestamp(101)));
        assert!(plan.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn install_panics_on_invalid_plan() {
        let mut rule = FaultRule::error("slurmctld", "squeue", "x");
        rule.probability = 2.0;
        let host = FaultHost::new("slurmctld");
        let (_c, s) = clock_at(0);
        host.install(Arc::new(FaultPlan::new(1).rule(rule)), s);
    }

    #[test]
    fn flap_phase_boundaries_are_pinned() {
        // Down intervals are [k*period, k*period + down): t = down_secs is
        // the first UP second, t = period_secs wraps to phase 0 and is
        // DOWN again. These are the exact-boundary cases the doc promises.
        let rule = FaultRule::error("slurmctld", "squeue", "flap").flapping(60, 20);
        assert!(rule.active_at(Timestamp(0)), "phase 0 is down");
        assert!(rule.active_at(Timestamp(19)), "last down second");
        assert!(
            !rule.active_at(Timestamp(20)),
            "t = down_secs is the first up second (half-open)"
        );
        assert!(!rule.active_at(Timestamp(59)), "last up second");
        assert!(
            rule.active_at(Timestamp(60)),
            "t = period_secs wraps to phase 0: down again"
        );
        assert!(rule.active_at(Timestamp(79)));
        assert!(!rule.active_at(Timestamp(80)));
    }

    #[test]
    fn crash_refuses_until_restart_token_is_consumed() {
        let plan = Arc::new(
            FaultPlan::new(9)
                .rule(FaultRule::crash("slurmctld", 30).during(Timestamp(100), Timestamp(101))),
        );
        let (clk, shared) = clock_at(50);
        let host = FaultHost::new("slurmctld");
        host.install(plan, shared);
        assert!(
            host.check("squeue").failure.is_none(),
            "alive before window"
        );
        assert!(!host.is_down());

        clk.advance(50); // t=100: the crash rule fires on the next RPC
        let check = host.check("squeue");
        let msg = check.error().expect("refused");
        assert!(msg.contains("connection refused"), "got: {msg}");
        assert!(host.is_down());
        assert_eq!(host.stats().crashes, 1);

        // Every RPC while down is refused, and the restart is not due yet.
        clk.advance(10); // t=110
        assert!(host.check("sinfo").error().is_some());
        assert!(host.take_restart().is_none(), "down window not elapsed");
        assert!(host.is_down());

        // Past down_until the daemon STAYS dead until a tick consumes the
        // token (a dead process doesn't answer before init respawns it).
        clk.advance(25); // t=135 >= 130
        assert!(host.check("squeue").error().is_some(), "still refusing");
        let token = host.take_restart().expect("restart due");
        assert_eq!(token.crashed_at, Timestamp(100));
        assert_eq!(token.down_until, Timestamp(130));
        assert!(!host.is_down());
        assert!(host.take_restart().is_none(), "token consumed once");

        // Back up: the window has passed, so no re-crash.
        assert!(host.check("squeue").failure.is_none());
        let stats = host.stats();
        assert_eq!(stats.crashes, 1);
        assert!(stats.refused >= 3);
    }

    #[test]
    fn crash_freezes_per_rpc_counters_for_other_rules() {
        // A probabilistic error rule's schedule must be identical whether
        // or not an outage happened in the middle: refused calls bypass
        // the per-RPC counters entirely.
        let base = FaultRule::error("slurmctld", "squeue", "x").with_probability(0.5);
        let solo: Vec<bool> = {
            let plan = Arc::new(FaultPlan::new(11).rule(base.clone()));
            let host = FaultHost::new("slurmctld");
            let (_c, s) = clock_at(0);
            host.install(plan, s);
            (0..50)
                .map(|_| host.check("squeue").failure.is_some())
                .collect()
        };
        let with_outage: Vec<bool> = {
            let plan = Arc::new(
                FaultPlan::new(11)
                    .rule(base)
                    .rule(FaultRule::crash("slurmctld", 5).during(Timestamp(100), Timestamp(101))),
            );
            let host = FaultHost::new("slurmctld");
            let (clk, s) = clock_at(0);
            host.install(plan, s);
            let mut seen = Vec::new();
            for _ in 0..25 {
                seen.push(host.check("squeue").failure.is_some());
            }
            clk.advance(100); // t=100: crash on next call
            assert!(host.check("squeue").error().is_some());
            for _ in 0..20 {
                host.check("squeue"); // all refused, counters frozen
            }
            clk.advance(10); // t=110: restart due
            host.take_restart().expect("restart");
            for _ in 0..25 {
                seen.push(host.check("squeue").failure.is_some());
            }
            seen
        };
        assert_eq!(
            solo, with_outage,
            "outage must not shift the seeded schedule"
        );
    }

    #[test]
    fn clear_restores_fast_path() {
        let host = FaultHost::new("slurmctld");
        let (_c, s) = clock_at(0);
        host.install(
            Arc::new(FaultPlan::new(1).rule(FaultRule::error("*", "*", "down"))),
            s,
        );
        assert!(host.check("squeue").failure.is_some());
        host.clear();
        assert!(!host.is_armed());
        assert!(host.check("squeue").is_none());
    }
}
