//! Multi-site scenario assembly: N heterogeneous clusters sharing one
//! simulated timeline, registered into a federation registry.
//!
//! Each site keeps its own `SimClock` instance (so `Scenario::build` stays
//! untouched), but the config normalizes every site's start to the first
//! site's, and [`FederationDriver`] advances all sites in lockstep, so the
//! clocks agree tick for tick. The registry borrows the first site's clock
//! for fan-out timestamps.

use crate::scenario::{Scenario, ScenarioConfig};
use crate::SimDriver;
use hpcdash_faults::FaultPlan;
use hpcdash_federation::ClusterRegistry;
use std::sync::Arc;

/// A federation of site scenarios. Site order is significant: the first
/// site's clock drives the registry, and per-site seeds should differ so
/// traffic is heterogeneous.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    pub sites: Vec<ScenarioConfig>,
}

impl FederationConfig {
    /// Federate explicit site configs, normalizing every start instant to
    /// the first site's so the lockstep clocks agree.
    pub fn new(mut sites: Vec<ScenarioConfig>) -> FederationConfig {
        assert!(!sites.is_empty(), "a federation needs at least one site");
        let start = sites[0].start;
        for site in &mut sites[1..] {
            site.start = start;
        }
        FederationConfig { sites }
    }

    /// The stock 4-site heterogeneous federation used by the chaos tests
    /// and `bench_federation`: different sizes, partitions (one site has no
    /// GPU partition), populations, arrival rates, and seeds.
    pub fn quad(seed: u64) -> FederationConfig {
        FederationConfig::new(vec![
            ScenarioConfig::named("alpha")
                .cpu(16, 64, 128_000)
                .gpu(2, 64, 256_000, 4)
                .accounts(4, 2, 4)
                .arrivals_per_hour(40.0)
                .seed(seed),
            ScenarioConfig::named("beta")
                .cpu(8, 128, 257_000)
                .gpu(0, 0, 0, 0)
                .accounts(3, 2, 3)
                .arrivals_per_hour(30.0)
                .seed(seed + 1),
            ScenarioConfig::named("gamma")
                .cpu(24, 32, 96_000)
                .gpu(4, 48, 384_000, 4)
                .accounts(5, 2, 5)
                .diurnal()
                .seed(seed + 2),
            ScenarioConfig::named("delta")
                .cpu(4, 16, 64_000)
                .gpu(1, 32, 256_000, 4)
                .accounts(2, 1, 2)
                .arrivals_per_hour(20.0)
                .seed(seed + 3),
        ])
    }

    /// Arm a fault script on the named site (panics if absent) — the
    /// blackout hook for federated chaos runs.
    pub fn fault_site(mut self, cluster: &str, plan: FaultPlan) -> FederationConfig {
        let site = self
            .sites
            .iter_mut()
            .find(|s| s.cluster_name == cluster)
            .unwrap_or_else(|| panic!("no site named {cluster:?} in federation"));
        site.faults = Some(plan);
        self
    }

    /// Build every site and register them all.
    pub fn build(self) -> FederatedScenario {
        let sites: Vec<Scenario> = self.sites.into_iter().map(Scenario::build).collect();
        let mut registry = ClusterRegistry::new(sites[0].clock.shared());
        for site in &sites {
            registry.register(site.ctld.clone());
        }
        FederatedScenario {
            sites,
            registry: Arc::new(registry),
        }
    }
}

/// N fully assembled sites plus the registry that federates them.
pub struct FederatedScenario {
    pub sites: Vec<Scenario>,
    pub registry: Arc<ClusterRegistry>,
}

impl FederatedScenario {
    pub fn site(&self, cluster: &str) -> Option<&Scenario> {
        self.sites.iter().find(|s| s.config.cluster_name == cluster)
    }

    /// A lockstep driver preloaded with `window_secs` of traffic per site.
    pub fn driver(&self, window_secs: u64) -> FederationDriver {
        FederationDriver {
            drivers: self.sites.iter().map(|s| s.driver(window_secs)).collect(),
        }
    }
}

/// Advances every site's driver in lockstep so the per-site clocks stay in
/// agreement (they were normalized to one start instant at config time).
pub struct FederationDriver {
    drivers: Vec<SimDriver>,
}

impl FederationDriver {
    /// Advance every site by `secs` of simulated time.
    pub fn advance(&mut self, secs: u64) {
        for driver in &mut self.drivers {
            driver.advance(secs);
        }
    }

    /// Total jobs submitted across all sites so far.
    pub fn submitted(&self) -> usize {
        self.drivers.iter().map(|d| d.submitted().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcdash_cache::breaker::{BreakerBoard, BreakerConfig};
    use hpcdash_simtime::Clock;

    #[test]
    fn quad_builds_heterogeneous_sites_on_one_timeline() {
        let fed = FederationConfig::quad(7).build();
        assert_eq!(fed.registry.len(), 4);
        assert_eq!(fed.registry.names(), ["alpha", "beta", "gamma", "delta"]);
        // Heterogeneous: beta is CPU-only, the others have a gpu partition.
        assert_eq!(fed.site("beta").unwrap().ctld.query_partitions().len(), 1);
        assert_eq!(fed.site("alpha").unwrap().ctld.query_partitions().len(), 2);
        // One timeline: every site clock reads the same instant.
        let t0 = fed.sites[0].clock.now();
        assert!(fed.sites.iter().all(|s| s.clock.now() == t0));
    }

    #[test]
    fn lockstep_driver_keeps_clocks_agreeing_and_populates_sites() {
        let fed = FederationConfig::quad(11).build();
        let mut driver = fed.driver(3_600);
        driver.advance(1_800);
        let t = fed.sites[0].clock.now();
        assert!(fed.sites.iter().all(|s| s.clock.now() == t));
        assert!(driver.submitted() > 0);
        // The merged view sees jobs from more than one cluster.
        let breakers = BreakerBoard::new(fed.sites[0].clock.shared(), BreakerConfig::default());
        let snap = fed.registry.snapshot(&breakers);
        assert_eq!(snap.live_sites(), 4);
        let clusters: std::collections::HashSet<String> = snap
            .jobs()
            .map(|(site, _)| site.cluster.to_string())
            .collect();
        assert!(
            clusters.len() >= 2,
            "expected jobs on multiple sites, got {clusters:?}"
        );
    }

    #[test]
    fn fault_site_arms_only_the_named_site() {
        use hpcdash_faults::FaultRule;
        let plan = FaultPlan::new(3).rule(FaultRule::error("slurmctld", "*", "dark"));
        let fed = FederationConfig::quad(5).fault_site("gamma", plan).build();
        assert!(fed.site("gamma").unwrap().ctld.faults().is_armed());
        assert!(!fed.site("alpha").unwrap().ctld.faults().is_armed());
    }
}
