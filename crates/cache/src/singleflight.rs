//! Request coalescing: when many dashboard users miss the cache for the same
//! key at once (e.g. the squeue entry just expired and 50 browsers refresh),
//! only one backend query runs; the rest wait for its result. This is the
//! mechanism that protects the Slurm daemons "from repeated queries in close
//! succession" (paper §2.4).

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;

struct Flight<T> {
    result: Mutex<Option<T>>,
    done: Condvar,
}

/// Coalesces concurrent computations keyed by string.
pub struct SingleFlight<T> {
    inflight: Mutex<HashMap<String, Arc<Flight<T>>>>,
}

impl<T: Clone> SingleFlight<T> {
    pub fn new() -> SingleFlight<T> {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Run `load` for `key`, unless an identical load is already running, in
    /// which case wait for its result. Returns `(value, was_leader)`.
    pub fn work(&self, key: &str, load: impl FnOnce() -> T) -> (T, bool) {
        let (flight, leader) = {
            let mut inflight = self.inflight.lock();
            match inflight.get(key) {
                Some(f) => (f.clone(), false),
                None => {
                    let f = Arc::new(Flight {
                        result: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    inflight.insert(key.to_string(), f.clone());
                    (f, true)
                }
            }
        };

        if leader {
            let value = load();
            {
                let mut slot = flight.result.lock();
                *slot = Some(value.clone());
            }
            flight.done.notify_all();
            self.inflight.lock().remove(key);
            (value, true)
        } else {
            let mut slot = flight.result.lock();
            while slot.is_none() {
                flight.done.wait(&mut slot);
            }
            (slot.clone().expect("leader stored a value"), false)
        }
    }

    /// How many distinct keys are currently being computed.
    pub fn inflight_count(&self) -> usize {
        self.inflight.lock().len()
    }
}

impl<T: Clone> Default for SingleFlight<T> {
    fn default() -> SingleFlight<T> {
        SingleFlight::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    #[test]
    fn single_caller_is_leader() {
        let sf = SingleFlight::<u32>::new();
        let (v, leader) = sf.work("k", || 42);
        assert_eq!(v, 42);
        assert!(leader);
        assert_eq!(sf.inflight_count(), 0);
    }

    #[test]
    fn concurrent_callers_coalesce() {
        let sf = Arc::new(SingleFlight::<u64>::new());
        let loads = Arc::new(AtomicU64::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let sf = sf.clone();
            let loads = loads.clone();
            let barrier = barrier.clone();
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                let (v, leader) = sf.work("slow", || {
                    loads.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(50));
                    7
                });
                (v, leader)
            }));
        }
        let results: Vec<(u64, bool)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.iter().all(|(v, _)| *v == 7));
        let leaders = results.iter().filter(|(_, l)| *l).count();
        assert_eq!(leaders, 1, "exactly one leader");
        assert_eq!(loads.load(Ordering::SeqCst), 1, "the load ran once");
    }

    #[test]
    fn different_keys_run_independently() {
        let sf = Arc::new(SingleFlight::<String>::new());
        let mut handles = Vec::new();
        for i in 0..4 {
            let sf = sf.clone();
            handles.push(std::thread::spawn(move || {
                sf.work(&format!("k{i}"), move || format!("v{i}")).0
            }));
        }
        let mut got: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec!["v0", "v1", "v2", "v3"]);
    }

    #[test]
    fn sequential_calls_each_lead() {
        let sf = SingleFlight::<u32>::new();
        let (_, l1) = sf.work("k", || 1);
        let (_, l2) = sf.work("k", || 2);
        assert!(l1 && l2, "no coalescing without concurrency");
    }
}
