//! Paper §8 (migration): the identical dashboard code mounted on a
//! differently-configured site must work with *only* configuration changes.

use hpcdash::SimSite;
use hpcdash_core::DashboardConfig;
use hpcdash_http::HttpClient;
use hpcdash_workload::{PopulationConfig, ScenarioConfig};

fn second_site() -> SimSite {
    let mut scenario = ScenarioConfig::small();
    scenario.cluster_name = "bell-sim".to_string();
    scenario.cpu_nodes = 2;
    scenario.cpu_cores = 48;
    scenario.gpu_nodes = 0; // CPU-only center
    scenario.population = PopulationConfig {
        accounts: 2,
        seed: 1234,
        ..PopulationConfig::default()
    };
    let mut dash = DashboardConfig::generic("Bell");
    dash.cache.announcements = 3_600;
    dash.features.gpu_efficiency = false;
    SimSite::build_with(scenario, dash)
}

#[test]
fn cpu_only_site_works_end_to_end() {
    let site = second_site();
    site.warm_up(1_800);
    let server = site.serve().unwrap();
    let client = HttpClient::new();
    let user = site.scenario.population.users[0].clone();
    let get = |path: &str| {
        client
            .get(
                &format!("{}{path}", server.base_url()),
                &[("X-Remote-User", &user)],
            )
            .unwrap()
    };

    // Branding followed the config.
    let shell = get("/");
    assert!(shell.body_string().contains("Bell Dashboard"));

    // One partition, no GPU columns anywhere.
    let status = get("/api/system_status").json().unwrap();
    let parts = status["partitions"].as_array().unwrap().to_vec();
    assert_eq!(parts.len(), 1);
    assert!(parts[0]["gpus"].is_null());

    // My Jobs works and the GPU-efficiency extension stays off.
    let myjobs = get("/api/myjobs?range=all").json().unwrap();
    for job in myjobs["jobs"].as_array().unwrap() {
        assert!(
            job["efficiency"]["gpu"].is_null(),
            "gpu efficiency flag is off"
        );
    }

    // The site-specific cache policy applies: announcements TTL was raised
    // to 1 h, so a reload 30 min later is still a cache hit.
    let before = site.ctx().cache.stats();
    get("/api/announcements");
    site.scenario.clock.advance(1_800);
    get("/api/announcements");
    let after = site.ctx().cache.stats();
    assert_eq!(after.inserts - before.inserts, 1, "one cold load");
    assert!(
        after.hits > before.hits,
        "second read served from cache after 30 min"
    );
}

#[test]
fn same_routes_exist_on_both_sites() {
    let a = SimSite::build(ScenarioConfig::small());
    let b = second_site();
    let routes_a: Vec<_> = a.dashboard.router().route_patterns();
    let routes_b: Vec<_> = b.dashboard.router().route_patterns();
    assert_eq!(
        routes_a, routes_b,
        "migration changes config, never the route table"
    );
}
