//! Experiment P5 as a demo: break data sources one at a time and watch the
//! dashboard degrade per-component instead of failing whole (paper §2.4's
//! modularity claim).
//!
//! ```sh
//! cargo run --example widget_failure
//! ```

use hpcdash::SimSite;
use hpcdash_core::pages::homepage;
use hpcdash_http::HttpClient;
use hpcdash_workload::ScenarioConfig;

fn survey(base: &str, user: &str) -> Vec<(&'static str, u16)> {
    let client = HttpClient::new();
    homepage::WIDGETS
        .iter()
        .map(|(w, path)| {
            let status = client
                .get(&format!("{base}{path}"), &[("X-Remote-User", user)])
                .map(|r| r.status)
                .unwrap_or(0);
            (*w, status)
        })
        .collect()
}

fn print_survey(label: &str, statuses: &[(&str, u16)]) {
    let healthy = statuses.iter().filter(|(_, s)| *s == 200).count();
    println!("{label}: {healthy}/5 widgets healthy");
    for (w, s) in statuses {
        println!(
            "  {:<14} {}",
            w,
            if *s == 200 {
                "OK".to_string()
            } else {
                format!("DEGRADED (HTTP {s})")
            }
        );
    }
    println!();
}

fn main() {
    let site = SimSite::build(ScenarioConfig::small());
    site.warm_up(600);
    let server = site.serve().expect("serve");
    let base = server.base_url();
    let user = site.scenario.population.users[0].clone();

    print_survey("baseline", &survey(&base, &user));

    // 1. News API outage: only Announcements degrades.
    site.scenario.news.set_available(false);
    site.ctx().cache.clear();
    print_survey("news API down", &survey(&base, &user));

    // 2. Storage quota DB outage on top: two widgets degrade.
    site.scenario.storage.set_available(false);
    site.ctx().cache.clear();
    print_survey("news + storage down", &survey(&base, &user));

    // 3. Recovery is immediate — errors are never cached.
    site.scenario.news.set_available(true);
    site.scenario.storage.set_available(true);
    print_survey("after recovery", &survey(&base, &user));

    // 4. Even a panicking component is contained by the router.
    println!("(panicking handlers are isolated by catch_unwind; see hpcdash-http router tests)");
}
