//! Dashboard assembly: the route table (API + pages + assets) and server.

use crate::api;
use crate::auth::CurrentUser;
use crate::ctx::DashboardContext;
use crate::pages;
use hpcdash_http::{Request, Response, Router, Server};
use hpcdash_obs::Sample;
use hpcdash_slurm::loadmodel::RpcSnapshot;
use std::sync::Arc;

/// The assembled dashboard application.
pub struct Dashboard {
    ctx: DashboardContext,
    router: Arc<Router>,
}

impl Dashboard {
    pub fn new(ctx: DashboardContext) -> Dashboard {
        let mut router = Router::new();
        router.set_registry(ctx.obs.clone());
        register_collectors(&ctx);
        api::register_all(&mut router, &ctx);
        register_pages(&mut router, &ctx);
        register_assets(&mut router);
        router.get("/healthz", |_| {
            Response::json(&serde_json::json!({"status": "ok"}))
        });
        Dashboard {
            ctx,
            router: Arc::new(router),
        }
    }

    pub fn ctx(&self) -> &DashboardContext {
        &self.ctx
    }

    pub fn router(&self) -> Arc<Router> {
        self.router.clone()
    }

    /// In-process dispatch (no sockets) — used by tests and render benches.
    pub fn handle(&self, req: &Request) -> Response {
        self.router.handle(req)
    }

    /// Serve over TCP. Binds immediately; returns the running server.
    pub fn serve(&self, addr: &str, workers: usize) -> std::io::Result<Server> {
        Server::bind(addr, self.router.clone(), workers)
    }
}

/// Pull-time collectors: every `/api/metrics` scrape reads the daemons' and
/// the server cache's own statistics, so those crates export metrics without
/// depending on the registry. Call once per context — collectors stack.
fn register_collectors(ctx: &DashboardContext) {
    let ctld = ctx.ctld.clone();
    ctx.obs.register_collector(move |out| {
        let snap = ctld.stats().snapshot();
        daemon_samples(out, "hpcdash_slurmctld", &snap);
        // The scheduler runs inside slurmctld: its tick count/cost and the
        // pending-job backlog are the paper's "queries delay scheduling"
        // observables.
        if let Some(tick) = snap.per_kind.get("sched_tick") {
            out.push(Sample::counter(
                "hpcdash_sched_ticks_total",
                &[],
                tick.count,
            ));
            out.push(Sample::counter(
                "hpcdash_sched_tick_busy_ns_total",
                &[],
                tick.total_ns,
            ));
        }
        out.push(Sample::gauge(
            "hpcdash_sched_queue_depth",
            &[],
            snap.sched_queue_depth as i64,
        ));
        // Epoch-published snapshot health: publication rate, staleness of the
        // current epoch, and how far behind readers observe the tip.
        let ss = ctld.snapshot_stats();
        out.push(Sample::counter(
            "hpcdash_ctld_snapshot_publishes_total",
            &[],
            ss.publishes(),
        ));
        out.push(Sample::gauge(
            "hpcdash_ctld_snapshot_seq",
            &[],
            ss.latest_seq().min(i64::MAX as u64) as i64,
        ));
        out.push(Sample::gauge(
            "hpcdash_ctld_snapshot_age_ns",
            &[],
            ss.age().as_nanos().min(i64::MAX as u128) as i64,
        ));
        for (label, v) in hpcdash_slurm::snapshot::LAG_BUCKET_LABELS
            .iter()
            .zip(ss.lag_buckets())
        {
            out.push(Sample::counter(
                "hpcdash_ctld_snapshot_reader_lag_total",
                &[("lag", label)],
                v,
            ));
        }
    });
    let dbd = ctx.dbd.clone();
    ctx.obs.register_collector(move |out| {
        let snap = dbd.stats().snapshot();
        daemon_samples(out, "hpcdash_slurmdbd", &snap);
    });
    let telemetry = ctx.telemetry.clone();
    ctx.obs.register_collector(move |out| {
        daemon_samples(out, "hpcdash_telemetryd", &telemetry.stats().snapshot());
        let s = telemetry.store().stats();
        for (name, v) in [
            ("hpcdash_telemetry_series", s.series),
            (
                "hpcdash_telemetry_samples_ingested_total",
                s.samples_ingested,
            ),
            (
                "hpcdash_telemetry_samples_rejected_total",
                s.samples_rejected,
            ),
            ("hpcdash_telemetry_chunks_sealed_total", s.chunks_sealed),
            ("hpcdash_telemetry_compressed_bytes", s.compressed_bytes),
            ("hpcdash_telemetry_expired_points_total", s.expired_points),
            ("hpcdash_telemetry_queries_total", s.queries),
            ("hpcdash_telemetry_points_returned_total", s.points_returned),
        ] {
            out.push(Sample::counter(name, &[], v));
        }
        for tier in hpcdash_telemetry::Tier::ALL {
            out.push(Sample::counter(
                "hpcdash_telemetry_points_scanned_total",
                &[("tier", tier.label())],
                s.scanned[tier.index()],
            ));
        }
    });
    // Trace pipeline health: span-sink ring pressure and the tail sampler's
    // retention accounting, by cause.
    ctx.obs.register_collector(move |out| {
        let sink = hpcdash_obs::trace::sink();
        out.push(Sample::counter(
            "hpcdash_trace_spans_dropped_total",
            &[],
            sink.dropped(),
        ));
        out.push(Sample::gauge(
            "hpcdash_trace_sink_depth",
            &[],
            sink.len() as i64,
        ));
        out.push(Sample::gauge(
            "hpcdash_trace_sink_capacity",
            &[],
            sink.capacity() as i64,
        ));
        let stats = hpcdash_obs::tracestore::store().stats();
        for cause in hpcdash_obs::RetainCause::ALL {
            out.push(Sample::counter(
                "hpcdash_trace_retained_total",
                &[("cause", cause.label())],
                stats.retained_by_cause[cause.index()],
            ));
        }
        out.push(Sample::counter(
            "hpcdash_trace_discarded_total",
            &[],
            stats.discarded,
        ));
        out.push(Sample::counter(
            "hpcdash_trace_evicted_total",
            &[],
            stats.evicted,
        ));
        out.push(Sample::gauge(
            "hpcdash_trace_store_size",
            &[],
            stats.retained_current as i64,
        ));
    });
    // Tick-phase wall-time accounting for each simulated daemon.
    let ctld = ctx.ctld.clone();
    let dbd = ctx.dbd.clone();
    let telemetry = ctx.telemetry.clone();
    ctx.obs.register_collector(move |out| {
        let daemons: [(&str, &hpcdash_obs::PhaseProfiler); 3] = [
            ("slurmctld", ctld.phase_profile()),
            ("slurmdbd", dbd.phase_profile()),
            ("telemetryd", telemetry.phase_profile()),
        ];
        for (daemon, profile) in daemons {
            for (phase, agg) in profile.snapshot() {
                let labels = [("daemon", daemon), ("phase", phase)];
                out.push(Sample::counter(
                    "hpcdash_tick_phase_runs_total",
                    &labels,
                    agg.count,
                ));
                out.push(Sample::counter(
                    "hpcdash_tick_phase_ns_total",
                    &labels,
                    agg.total_ns,
                ));
            }
        }
    });
    // Federation fan-out accounting per site. Reads the sites' own atomic
    // counters — no breaker probes, no fault checks: a metrics scrape must
    // never consume a half-open breaker's probe budget.
    let federation = ctx.federation.clone();
    ctx.obs.register_collector(move |out| {
        out.push(Sample::gauge(
            "hpcdash_federation_sites",
            &[],
            federation.len() as i64,
        ));
        for site in federation.sites() {
            let labels = [("cluster", site.name().as_ref())];
            out.push(Sample::counter(
                "hpcdash_federation_polls_total",
                &labels,
                site.polls(),
            ));
            out.push(Sample::counter(
                "hpcdash_federation_stale_serves_total",
                &labels,
                site.stale_serves(),
            ));
            out.push(Sample::counter(
                "hpcdash_federation_dark_serves_total",
                &labels,
                site.dark_serves(),
            ));
        }
    });
    let cache = ctx.cache.clone();
    ctx.obs.register_collector(move |out| {
        let s = cache.stats();
        for (name, v) in [
            ("hpcdash_cache_store_hits_total", s.hits),
            ("hpcdash_cache_store_misses_total", s.misses),
            ("hpcdash_cache_store_inserts_total", s.inserts),
            ("hpcdash_cache_store_expirations_total", s.expirations),
            ("hpcdash_cache_store_coalesced_total", s.coalesced),
            ("hpcdash_cache_store_stale_serves_total", s.stale_serves),
        ] {
            out.push(Sample::counter(name, &[], v));
        }
    });
}

fn daemon_samples(out: &mut Vec<Sample>, prefix: &str, snap: &RpcSnapshot) {
    for (kind, k) in &snap.per_kind {
        out.push(Sample::counter(
            format!("{prefix}_rpc_total"),
            &[("kind", kind)],
            k.count,
        ));
    }
    out.push(Sample::counter(
        format!("{prefix}_rpc_busy_ns_total"),
        &[],
        snap.total_busy.as_nanos().min(u128::from(u64::MAX)) as u64,
    ));
    out.push(Sample::counter(
        format!("{prefix}_lock_wait_ns_total"),
        &[],
        snap.total_lock_wait.as_nanos().min(u128::from(u64::MAX)) as u64,
    ));
    for (q, v) in [("0.5", snap.p50), ("0.95", snap.p95), ("0.99", snap.p99)] {
        if let Some(d) = v {
            out.push(Sample::gauge(
                format!("{prefix}_rpc_latency_ns"),
                &[("quantile", q)],
                d.as_nanos().min(i64::MAX as u128) as i64,
            ));
        }
    }
}

fn register_pages(router: &mut Router, ctx: &DashboardContext) {
    let cluster = ctx.cfg.cluster_label.clone();

    let c = cluster.clone();
    let cx = ctx.clone();
    router.get("/", move |req| {
        with_user(&cx, req, |user| {
            Response::html(pages::homepage::render_shell(&c, user))
        })
    });

    let c = cluster.clone();
    let cx = ctx.clone();
    router.get("/myjobs", move |req| {
        with_user(&cx, req, |user| {
            Response::html(pages::myjobs::render_shell(&c, user))
        })
    });

    let c = cluster.clone();
    let cx = ctx.clone();
    router.get("/jobperf", move |req| {
        with_user(&cx, req, |user| {
            Response::html(pages::jobperf::render_shell(&c, user))
        })
    });

    let c = cluster.clone();
    let cx = ctx.clone();
    router.get("/clusterstatus", move |req| {
        with_user(&cx, req, |user| {
            Response::html(pages::clusterstatus::render_shell(&c, user))
        })
    });

    let c = cluster.clone();
    let cx = ctx.clone();
    router.get("/jobs/:id", move |req| {
        let id = req.param("id").unwrap_or("?").to_string();
        with_user(&cx, req, |user| {
            Response::html(pages::joboverview::render_shell(&c, user, &id))
        })
    });

    let c = cluster.clone();
    let cx = ctx.clone();
    router.get("/federation", move |req| {
        with_user(&cx, req, |user| {
            Response::html(pages::federation::render_shell(&c, user))
        })
    });

    let c = cluster.clone();
    let cx = ctx.clone();
    router.get("/news", move |req| {
        with_user(&cx, req, |user| {
            Response::html(pages::newsall::render_shell(&c, user))
        })
    });

    let c = cluster.clone();
    let cx = ctx.clone();
    router.get("/nodes/:name", move |req| {
        let name = req.param("name").unwrap_or("?").to_string();
        with_user(&cx, req, |user| {
            Response::html(pages::nodeoverview::render_shell(&c, user, &name))
        })
    });

    // Admin-only: the observability page. Gated like its API routes — the
    // shell itself leaks nothing, but serving it to non-admins would
    // advertise a surface they can never load.
    let c = cluster;
    let cx = ctx.clone();
    router.get("/observatory", move |req| {
        match CurrentUser::from_request(&cx, req) {
            Ok(user) if user.is_admin => {
                Response::html(pages::observatory::render_shell(&c, &user.username))
            }
            Ok(_) => Response::forbidden("administrator access required"),
            Err(resp) => resp,
        }
    });
}

fn with_user(
    ctx: &DashboardContext,
    req: &Request,
    render: impl FnOnce(&str) -> Response,
) -> Response {
    match CurrentUser::from_request(ctx, req) {
        Ok(user) => render(&user.username),
        Err(resp) => resp,
    }
}

/// Static assets. The JS implements the client half of the design (fetch
/// each widget's API route, render, and keep an IndexedDB cache) for real
/// browsers; the headless `hpcdash-client` crate implements the same logic
/// natively for the experiments.
fn register_assets(router: &mut Router) {
    router.get("/assets/dashboard.css", |_| {
        Response::new(200)
            .with_header("Content-Type", "text/css")
            .with_body(DASHBOARD_CSS.as_bytes().to_vec())
    });
    router.get("/assets/cachedb.js", |_| {
        Response::new(200)
            .with_header("Content-Type", "application/javascript")
            .with_body(CACHEDB_JS.as_bytes().to_vec())
    });
    router.get("/assets/widgets.js", |_| {
        Response::new(200)
            .with_header("Content-Type", "application/javascript")
            .with_body(WIDGETS_JS.as_bytes().to_vec())
    });
}

const DASHBOARD_CSS: &str = r#"
:root { --green:#2e7d32; --yellow:#f9a825; --red:#c62828; --gray:#757575; }
.widget-grid { display:grid; grid-template-columns:repeat(auto-fit,minmax(320px,1fr)); gap:1rem; }
.progress { background:#eee; border-radius:4px; height:1.2rem; }
.progress-bar.bg-green { background:var(--green); }
.progress-bar.bg-yellow { background:var(--yellow); }
.progress-bar.bg-red { background:var(--red); }
.node-grid { display:grid; grid-template-columns:repeat(auto-fill,minmax(64px,1fr)); gap:4px; }
.node-cell.node-green { background:var(--green); color:white; }
.node-cell.node-faded-green { background:#a5d6a7; }
.node-cell.node-yellow { background:var(--yellow); }
.node-cell.node-orange { background:#ef6c00; color:white; }
.node-cell.node-red { background:var(--red); color:white; }
.announcement-past { opacity:0.5; }
.widget-error { border:1px solid var(--red); }
.sparkline { width:120px; height:32px; background:#fafafa; }
.sparkline polyline { fill:none; stroke:var(--green); stroke-width:1.5; }
.spark-mem polyline { stroke:var(--yellow); }
.spark-gpu polyline { stroke:#6a1b9a; }
.telemetry-row { display:inline-flex; gap:0.4rem; align-items:center; margin-right:0.8rem; }
.telemetry-label { font-size:0.8rem; color:var(--gray); }
.telemetry-pending { color:var(--gray); font-style:italic; }
"#;

const CACHEDB_JS: &str = r#"
// IndexedDB-backed response cache: render instantly from cache, then
// revalidate (the client half of the paper's dual caching design).
const DB = 'hpcdash'; const STORE = 'api-cache';
async function cacheGet(key) { /* idb get */ }
async function cachePut(key, value) { /* idb put with fetched_at */ }
async function cachedFetch(url, freshSecs) {
  const hit = await cacheGet(url);
  if (hit) { renderNow(url, hit.value); }
  if (!hit || (Date.now()/1000 - hit.fetched_at) > freshSecs) {
    const resp = await fetch(url, {headers: {'Accept': 'application/json'}});
    const value = await resp.json();
    await cachePut(url, value);
    renderNow(url, value);
  }
}
"#;

const WIDGETS_JS: &str = r#"
// Fill each widget slot from its API route (one component, one route).
document.querySelectorAll('.widget-slot[data-api]').forEach(slot => {
  cachedFetch(slot.dataset.api, 30);
});
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::tests::test_ctx;
    use hpcdash_http::Method;

    fn dash() -> Dashboard {
        Dashboard::new(test_ctx())
    }

    fn get(dash: &Dashboard, path: &str, user: Option<&str>) -> Response {
        let mut req = Request::new(Method::Get, path);
        if let Some(u) = user {
            req = req.with_header("X-Remote-User", u);
        }
        dash.handle(&req)
    }

    #[test]
    fn all_page_shells_serve() {
        let d = dash();
        for path in [
            "/",
            "/myjobs",
            "/jobperf",
            "/clusterstatus",
            "/federation",
            "/jobs/123",
            "/nodes/a001",
        ] {
            let resp = get(&d, path, Some("alice"));
            assert_eq!(resp.status, 200, "{path}");
            assert!(resp.header("content-type").unwrap().contains("text/html"));
            assert!(resp.body_string().contains("Logged in as alice"));
        }
    }

    #[test]
    fn pages_require_auth() {
        let d = dash();
        assert_eq!(get(&d, "/", None).status, 401);
        assert_eq!(get(&d, "/myjobs", None).status, 401);
    }

    #[test]
    fn api_routes_registered() {
        let d = dash();
        for path in [
            "/api/announcements",
            "/api/recent_jobs",
            "/api/system_status",
            "/api/accounts",
            "/api/storage",
            "/api/myjobs",
            "/api/jobmetrics",
            "/api/clusterstatus",
            "/api/federation/status",
        ] {
            let resp = get(&d, path, Some("alice"));
            assert_eq!(resp.status, 200, "{path}: {}", resp.body_string());
            assert!(resp.header("content-type").unwrap().contains("json"));
        }
    }

    #[test]
    fn assets_and_health() {
        let d = dash();
        assert_eq!(get(&d, "/healthz", None).status, 200);
        let css = get(&d, "/assets/dashboard.css", None);
        assert_eq!(css.status, 200);
        assert!(css.body_string().contains(".widget-grid"));
        let js = get(&d, "/assets/cachedb.js", None);
        assert!(js.body_string().contains("cachedFetch"));
    }

    #[test]
    fn serves_over_tcp() {
        let d = dash();
        let server = d.serve("127.0.0.1:0", 2).unwrap();
        let client = hpcdash_http::HttpClient::new();
        let resp = client
            .get(
                &format!("{}/api/system_status", server.base_url()),
                &[("X-Remote-User", "alice")],
            )
            .unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.json().unwrap()["partitions"].is_array());
    }

    #[test]
    fn route_count_matches_feature_table() {
        let d = dash();
        let patterns = d.router().route_patterns();
        // 10 features -> 13 API routes (incl. accounts export, job
        // logs/array) + baseline Active Jobs + live updates feed (poll +
        // push stream) + 3 admin actions + 2 telemetry routes (live strip +
        // per-job series) + 6 observability routes (/api/metrics,
        // /api/health, /api/observatory, /api/traces, /api/traces/:id,
        // /api/obs/series) + 13 `/slurm/v0` routes (6 reads + mint + list +
        // revoke + clusters inventory + 3 cluster-scoped reads) + 4
        // federation widget routes + 9 pages (incl. /observatory and
        // /federation) + 3 assets + healthz.
        assert_eq!(
            patterns.len(),
            13 + 3 + 3 + 2 + 6 + 13 + 4 + 9 + 3 + 1,
            "{patterns:?}"
        );
    }

    #[test]
    fn observatory_page_is_admin_gated() {
        // The generic test config has no admins: everyone is refused.
        let d = dash();
        assert_eq!(get(&d, "/observatory", Some("alice")).status, 403);
        // An admin-enabled site serves the shell to its operators only.
        let d = Dashboard::new(crate::ctx::tests::test_ctx_with(
            crate::config::DashboardConfig::purdue_like(),
        ));
        assert_eq!(get(&d, "/observatory", Some("alice")).status, 403);
        let resp = get(&d, "/observatory", Some("root"));
        assert_eq!(resp.status, 200);
        assert!(resp.body_string().contains("data-api=\"/api/observatory\""));
        // Tick phases show up after a scheduling pass.
        d.ctx().ctld.tick();
        let resp = get(&d, "/api/metrics", Some("root"));
        assert!(
            resp.body_string()
                .contains("hpcdash_tick_phase_ns_total{daemon=\"slurmctld\",phase=\"sched_pass\"}"),
            "{}",
            resp.body_string()
        );
    }

    #[test]
    fn metrics_route_reports_daemon_traffic() {
        let d = dash();
        get(&d, "/api/system_status", Some("alice"));
        let resp = get(&d, "/api/metrics", None);
        assert_eq!(resp.status, 200);
        let text = resp.body_string();
        assert!(
            text.contains("hpcdash_slurmctld_rpc_total{kind=\"sinfo\"} 1"),
            "collector exports ctld traffic:\n{text}"
        );
        assert!(text.contains("hpcdash_http_requests_total{route=\"/api/system_status\"} 1"));
        assert!(text.contains("hpcdash_cache_misses_total{source=\"system_status\"} 1"));
        assert!(text.contains("hpcdash_sched_queue_depth 0"));
        assert!(
            text.contains("hpcdash_ctld_snapshot_publishes_total"),
            "snapshot health metrics exported:\n{text}"
        );
        assert!(text.contains("hpcdash_ctld_snapshot_reader_lag_total{lag=\"0\"}"));
        assert!(
            text.contains("hpcdash_telemetry_samples_ingested_total")
                && text.contains("hpcdash_telemetry_points_scanned_total{tier=\"raw\"}"),
            "telemetry store metrics exported:\n{text}"
        );
        assert!(
            text.contains("hpcdash_trace_spans_dropped_total")
                && text.contains("hpcdash_trace_sink_capacity")
                && text.contains("hpcdash_trace_retained_total{cause=\"error\"}"),
            "trace pipeline metrics exported:\n{text}"
        );
        let resp = get(&d, "/api/health", None);
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.body_json().unwrap()["sources"]["system_status"]["status"],
            "up"
        );
    }
}
