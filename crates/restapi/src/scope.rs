//! Token scopes: the permission vocabulary of the `/slurm/v0` API.
//!
//! The design constraint (ISSUE 7, Palmetto mapping) is that the token
//! layer *unifies* the widget routes' privacy filter instead of running a
//! parallel code path. Two properties make that hold:
//!
//! 1. A user's implicit widget-route view is itself a [`ScopeSet`] — the
//!    [`ScopeSet::profile_for`] profile: own jobs plus every account they
//!    belong to, widened to the whole cluster for admins.
//! 2. Tokens can only *narrow* that profile, never widen it
//!    ([`ScopeSet::validate_against`], enforced at mint time). So whatever
//!    a token reveals, the subject's `X-Remote-User` view already revealed.

use std::collections::BTreeSet;
use std::fmt;

/// One grantable permission.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scope {
    /// Jobs submitted by the token's subject.
    ReadOwnJobs,
    /// Jobs charged to one account (the group-visibility rule, paper §2.4).
    ReadAccount(String),
    /// Jobs in one partition, and that partition's nodes.
    ReadPartition(String),
    /// Everything: all jobs, nodes, partitions, associations, diagnostics.
    ReadCluster,
    /// May switch the effective subject via `X-Act-As` (audited).
    AdminActAs,
}

impl Scope {
    /// Parse the wire form (`read-account:physics`).
    pub fn parse(s: &str) -> Result<Scope, String> {
        match s {
            "read-own-jobs" => Ok(Scope::ReadOwnJobs),
            "read-cluster" => Ok(Scope::ReadCluster),
            "admin-act-as" => Ok(Scope::AdminActAs),
            _ => {
                if let Some(acct) = s.strip_prefix("read-account:") {
                    if acct.is_empty() {
                        return Err("read-account: requires an account name".to_string());
                    }
                    return Ok(Scope::ReadAccount(acct.to_string()));
                }
                if let Some(part) = s.strip_prefix("read-partition:") {
                    if part.is_empty() {
                        return Err("read-partition: requires a partition name".to_string());
                    }
                    return Ok(Scope::ReadPartition(part.to_string()));
                }
                Err(format!("unknown scope: {s}"))
            }
        }
    }

    /// Does this scope grant visibility of jobs at all?
    fn is_job_scope(&self) -> bool {
        !matches!(self, Scope::AdminActAs)
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scope::ReadOwnJobs => f.write_str("read-own-jobs"),
            Scope::ReadAccount(a) => write!(f, "read-account:{a}"),
            Scope::ReadPartition(p) => write!(f, "read-partition:{p}"),
            Scope::ReadCluster => f.write_str("read-cluster"),
            Scope::AdminActAs => f.write_str("admin-act-as"),
        }
    }
}

/// A sorted, deduplicated set of scopes attached to one token.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScopeSet {
    scopes: Vec<Scope>,
}

impl ScopeSet {
    pub fn new(scopes: impl IntoIterator<Item = Scope>) -> ScopeSet {
        let set: BTreeSet<Scope> = scopes.into_iter().collect();
        ScopeSet {
            scopes: set.into_iter().collect(),
        }
    }

    /// Parse a list of wire-form scope strings; any bad entry fails the lot
    /// (deny-by-default: a token never silently loses part of its request).
    pub fn parse_list<S: AsRef<str>>(items: &[S]) -> Result<ScopeSet, String> {
        let mut scopes = Vec::with_capacity(items.len());
        for item in items {
            scopes.push(Scope::parse(item.as_ref())?);
        }
        if scopes.is_empty() {
            return Err("a token needs at least one scope".to_string());
        }
        Ok(ScopeSet::new(scopes))
    }

    pub fn iter(&self) -> impl Iterator<Item = &Scope> {
        self.scopes.iter()
    }

    pub fn contains(&self, scope: &Scope) -> bool {
        self.scopes.binary_search(scope).is_ok()
    }

    pub fn is_empty(&self) -> bool {
        self.scopes.is_empty()
    }

    pub fn has_cluster(&self) -> bool {
        self.contains(&Scope::ReadCluster)
    }

    pub fn has_act_as(&self) -> bool {
        self.contains(&Scope::AdminActAs)
    }

    /// Any scope that could reveal a job?
    pub fn has_job_scope(&self) -> bool {
        self.scopes.iter().any(Scope::is_job_scope)
    }

    /// Accounts named by `read-account:` scopes.
    pub fn accounts(&self) -> impl Iterator<Item = &str> {
        self.scopes.iter().filter_map(|s| match s {
            Scope::ReadAccount(a) => Some(a.as_str()),
            _ => None,
        })
    }

    /// Partitions named by `read-partition:` scopes.
    pub fn partitions(&self) -> impl Iterator<Item = &str> {
        self.scopes.iter().filter_map(|s| match s {
            Scope::ReadPartition(p) => Some(p.as_str()),
            _ => None,
        })
    }

    /// The privacy verdict: may a holder of these scopes, acting for
    /// `subject`, see a job owned by `job_user`, charged to `job_account`,
    /// in `job_partition`? This is the single rule both the widget routes'
    /// privacy filter and every `/slurm/v0` job view evaluate.
    pub fn allows_job(
        &self,
        subject: &str,
        job_user: &str,
        job_account: &str,
        job_partition: &str,
    ) -> bool {
        self.scopes.iter().any(|s| match s {
            Scope::ReadCluster => true,
            Scope::ReadOwnJobs => subject == job_user,
            Scope::ReadAccount(a) => a == job_account,
            Scope::ReadPartition(p) => !job_partition.is_empty() && p == job_partition,
            Scope::AdminActAs => false,
        })
    }

    /// The implicit widget-route view of `username`, expressed as scopes:
    /// own jobs + every account membership; admins additionally see the
    /// whole cluster and may act as others. This *is* the paper-§2.4
    /// privacy filter — `CurrentUser::may_view_job_of` delegates here.
    /// (The subject's *name* binds at evaluation time, via
    /// [`ScopeSet::allows_job`]'s `subject` argument, not at grant time.)
    pub fn profile_for(accounts: &[String], is_admin: bool) -> ScopeSet {
        let mut scopes = vec![Scope::ReadOwnJobs];
        scopes.extend(accounts.iter().map(|a| Scope::ReadAccount(a.clone())));
        if is_admin {
            scopes.push(Scope::ReadCluster);
            scopes.push(Scope::AdminActAs);
        }
        ScopeSet::new(scopes)
    }

    /// The mint-time narrowing rule: every requested scope must already be
    /// implied by the subject's `profile`. `read-cluster` in the profile
    /// implies every read scope but never `admin-act-as`.
    pub fn validate_against(&self, profile: &ScopeSet) -> Result<(), String> {
        for scope in &self.scopes {
            let implied =
                profile.contains(scope) || (scope.is_job_scope() && profile.has_cluster());
            if !implied {
                return Err(format!("scope {scope} exceeds the subject's own view"));
            }
        }
        Ok(())
    }

    /// A stable string form, used in cache keys and token listings.
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.scopes.iter().enumerate() {
            if i > 0 {
                out.push('+');
            }
            out.push_str(&s.to_string());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> ScopeSet {
        ScopeSet::parse_list(items).unwrap()
    }

    #[test]
    fn wire_roundtrip() {
        for s in [
            "read-own-jobs",
            "read-account:physics",
            "read-partition:gpu",
            "read-cluster",
            "admin-act-as",
        ] {
            assert_eq!(Scope::parse(s).unwrap().to_string(), s);
        }
        assert!(Scope::parse("read-account:").is_err());
        assert!(Scope::parse("write-cluster").is_err());
        assert!(
            ScopeSet::parse_list::<&str>(&[]).is_err(),
            "empty is denied"
        );
    }

    #[test]
    fn sets_sort_and_dedupe() {
        let a = set(&["read-cluster", "read-own-jobs", "read-own-jobs"]);
        let b = set(&["read-own-jobs", "read-cluster"]);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), "read-own-jobs+read-cluster");
    }

    #[test]
    fn job_visibility_per_scope() {
        let own = set(&["read-own-jobs"]);
        assert!(own.allows_job("alice", "alice", "physics", "cpu"));
        assert!(!own.allows_job("alice", "bob", "physics", "cpu"));

        let acct = set(&["read-account:physics"]);
        assert!(acct.allows_job("alice", "bob", "physics", "cpu"));
        assert!(!acct.allows_job("alice", "bob", "chem", "cpu"));

        let part = set(&["read-partition:gpu"]);
        assert!(part.allows_job("alice", "bob", "chem", "gpu"));
        assert!(!part.allows_job("alice", "bob", "chem", "cpu"));
        assert!(!part.allows_job("alice", "bob", "chem", ""));

        let cluster = set(&["read-cluster"]);
        assert!(cluster.allows_job("alice", "anyone", "anything", "anywhere"));

        let act = set(&["admin-act-as"]);
        assert!(!act.allows_job("root", "root", "physics", "cpu"));
        assert!(!act.has_job_scope());
    }

    #[test]
    fn profile_matches_widget_privacy_rule() {
        let alice = ScopeSet::profile_for(&["physics".to_string()], false);
        assert!(alice.allows_job("alice", "alice", "other", "cpu"), "own");
        assert!(alice.allows_job("alice", "bob", "physics", "cpu"), "group");
        assert!(!alice.allows_job("alice", "mallory", "secret", "cpu"));
        assert!(!alice.has_cluster());

        let admin = ScopeSet::profile_for(&[], true);
        assert!(admin.allows_job("root", "anyone", "anything", "p"));
        assert!(admin.has_act_as());
    }

    #[test]
    fn narrowing_validation() {
        let alice = ScopeSet::profile_for(&["physics".to_string()], false);
        assert!(set(&["read-own-jobs"]).validate_against(&alice).is_ok());
        assert!(set(&["read-account:physics"])
            .validate_against(&alice)
            .is_ok());
        assert!(
            set(&["read-account:chem"])
                .validate_against(&alice)
                .is_err(),
            "not a member"
        );
        assert!(set(&["read-cluster"]).validate_against(&alice).is_err());
        assert!(set(&["read-partition:cpu"])
            .validate_against(&alice)
            .is_err());
        assert!(set(&["admin-act-as"]).validate_against(&alice).is_err());

        let admin = ScopeSet::profile_for(&[], true);
        assert!(set(&["read-partition:cpu"])
            .validate_against(&admin)
            .is_ok());
        assert!(set(&["read-account:anything"])
            .validate_against(&admin)
            .is_ok());
        assert!(set(&["admin-act-as"]).validate_against(&admin).is_ok());
    }
}
