//! End-to-end observability: trace propagation across every layer, metrics
//! exposition, and data-source health — the full pipeline from a headless
//! browser through the HTTP server, route, server cache, command layer, and
//! the Slurm daemons.

use hpcdash::SimSite;
use hpcdash_client::FetchOutcome;
use hpcdash_obs::trace::sink;
use hpcdash_workload::ScenarioConfig;

#[test]
fn cold_page_fetch_traces_every_hop() {
    let site = SimSite::build(ScenarioConfig::small());
    site.warm_up(600);
    let server = site.serve().expect("serve");
    let user = site.scenario.population.users[0].clone();
    let browser = site.browser(&server.base_url(), &user);

    let r = browser.fetch_api("/api/recent_jobs").expect("fetch");
    assert_eq!(r.outcome, FetchOutcome::Network);
    let trace = r.trace.expect("network fetch carries a trace id");

    let spans = sink().records_for(trace);
    let hops: Vec<&str> = spans.iter().map(|s| s.name).collect();
    assert_eq!(
        hops,
        ["client", "http", "route", "cache-miss", "slurmcli", "ctld"],
        "one hop per layer, in request order"
    );
    for span in &spans {
        assert!(span.dur_ns >= 1, "{} span records a duration", span.name);
        assert_eq!(span.trace, Some(trace));
    }
    // The hops carry layer-specific context.
    assert_eq!(spans[2].attr("route"), Some("/api/recent_jobs"));
    assert_eq!(spans[4].attr("cmd"), Some("squeue_long"));
    assert_eq!(spans[5].attr("kind"), Some("squeue"));

    // A warm fetch by a second browser stops at the server cache: no
    // slurmcli/ctld hops under its trace.
    let user2 = site.scenario.population.users[1].clone();
    let browser2 = site.browser(&server.base_url(), &user2);
    let warm = browser2.fetch_api("/api/system_status").expect("fetch");
    let _cold_hops = sink().records_for(warm.trace.unwrap());
    let warm2 = browser.fetch_api("/api/system_status").expect("fetch");
    let warm_hops: Vec<&str> = sink()
        .records_for(warm2.trace.unwrap())
        .iter()
        .map(|s| s.name)
        .collect();
    assert_eq!(
        warm_hops,
        ["client", "http", "route"],
        "cache hit short-circuits"
    );
}

#[test]
fn metrics_endpoint_is_parseable_and_stable() {
    let site = SimSite::build(ScenarioConfig::small());
    site.warm_up(600);
    let server = site.serve().expect("serve");
    let user = site.scenario.population.users[0].clone();
    let browser = site.browser(&server.base_url(), &user);
    browser.fetch_api("/api/recent_jobs").expect("fetch");
    browser.fetch_api("/api/system_status").expect("fetch");
    // A second user re-reads the system-wide route: a server-cache hit.
    let user2 = site.scenario.population.users[1].clone();
    let browser2 = site.browser(&server.base_url(), &user2);
    browser2.fetch_api("/api/system_status").expect("fetch");

    let scrape = browser.fetch_shell("/api/metrics").expect("scrape").0;
    // Every non-comment line is `name{labels} value` with a numeric value.
    let mut names = Vec::new();
    for line in scrape
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let (series, value) = line.rsplit_once(' ').expect("series value");
        assert!(
            value.parse::<f64>().is_ok(),
            "numeric sample value in {line:?}"
        );
        names.push(series.split('{').next().unwrap().to_string());
    }
    // The families the dashboard promises to export.
    for family in [
        "hpcdash_http_requests_total",
        "hpcdash_http_request_latency",
        "hpcdash_cache_hits_total",
        "hpcdash_cache_misses_total",
        "hpcdash_slurmctld_rpc_total",
        "hpcdash_slurmctld_rpc_latency_ns",
        "hpcdash_sched_ticks_total",
        "hpcdash_sched_queue_depth",
    ] {
        assert!(names.iter().any(|n| n == family), "missing {family}");
    }

    // Scrapes are stably ordered: same series sequence both times (values
    // may move — the scrape itself is traffic).
    let scrape2 = browser.fetch_shell("/api/metrics").expect("scrape").0;
    let series = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(|l| l.rsplit_once(' ').unwrap().0.to_string())
            .collect()
    };
    let first = series(&scrape);
    let second = series(&scrape2);
    // Every series present in the first scrape appears in the same relative
    // order in the second.
    let mut it = second.iter();
    for s in &first {
        assert!(
            it.any(|x| x == s),
            "series {s} missing or reordered in second scrape"
        );
    }
}

#[test]
fn health_endpoint_reflects_source_outcomes() {
    let site = SimSite::build(ScenarioConfig::small());
    site.warm_up(600);
    let server = site.serve().expect("serve");
    let user = site.scenario.population.users[0].clone();
    let browser = site.browser(&server.base_url(), &user);
    browser.fetch_api("/api/recent_jobs").expect("fetch");

    let (body, _) = browser.fetch_shell("/api/health").expect("health");
    let report: serde_json::Value = serde_json::from_str(&body).expect("json");
    assert_eq!(report["status"], "up");
    assert_eq!(report["sources"]["recent_jobs"]["status"], "up");
}
