//! Multi-cluster federation: a registry of simulated sites, lock-free
//! cross-site aggregation, and honest per-site degradation.
//!
//! Real centers put several clusters behind one dashboard. This crate adds
//! the layer that makes that possible without giving up the single-site
//! guarantees the stack already has:
//!
//! * [`ClusterRegistry`] owns N heterogeneous sites. The site list is
//!   immutable after construction, so the fan-out path takes **no lock of
//!   any kind** — each site's freshest data comes from its own
//!   epoch-published [`ClusterSnapshot`], and each site's last-known-good
//!   copy lives in its own [`EpochCell`].
//! * [`FederatedSnapshot`] merges the per-site snapshots into cross-cluster
//!   job/node/association views where every row is tagged with its cluster
//!   name and every slice carries per-site `meta` (snapshot seq + age).
//! * The fan-out consults the caller's [`BreakerBoard`] per site (key
//!   `fed@<cluster>`), so one dark site degrades only its slice: its rows
//!   are served from the last good snapshot with an honest age annotation,
//!   while live sites stay fresh. A site that never answered is reported
//!   `Dark` — shown as unavailable, never silently dropped.
//!
//! The "unreachable site" signal is the site daemon's own fault host: a
//! `FaultRule::error("slurmctld", "*", ...)` blackout makes `fed_status`
//! checks fail exactly like every other RPC against that site, while the
//! daemon itself keeps ticking (the site is up; the link is down).

use hpcdash_cache::breaker::BreakerBoard;
use hpcdash_simtime::SharedClock;
use hpcdash_simtime::Timestamp;
use hpcdash_slurm::ctld::Slurmctld;
use hpcdash_slurm::snapshot::{ClusterSnapshot, EpochCell, StateCounts};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The fault-host RPC name the federation fan-out presents to each site's
/// `slurmctld`. A wildcard blackout rule (`rpc: "*"`) covers it.
pub const FED_RPC: &str = "fed_status";

/// Breaker-board key for one federated site: `fed@<cluster>`. The `@`
/// convention is what lets `/api/health` and the observatory attribute
/// breaker state to a cluster.
pub fn breaker_source(cluster: &str) -> String {
    format!("fed@{cluster}")
}

/// The last successfully fetched snapshot of one site, with the sim-time
/// instant it was fetched (the basis for "data from N seconds ago").
#[derive(Debug, Clone)]
pub struct SiteRecord {
    pub snapshot: Arc<ClusterSnapshot>,
    pub fetched_at: Timestamp,
}

/// Freshness of one site's slice of a federated view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SiteHealth {
    /// The site answered this fan-out; its slice is current.
    Live,
    /// The site is unreachable; its slice is the last good snapshot,
    /// `age_secs` old. Honest, not hidden.
    Stale { age_secs: u64, error: String },
    /// The site is unreachable and no snapshot was ever fetched: there is
    /// nothing to serve, only the outage to report.
    Dark { error: String },
}

impl SiteHealth {
    pub fn is_live(&self) -> bool {
        matches!(self, SiteHealth::Live)
    }

    /// Stable label for payloads and metrics: `live` / `stale` / `dark`.
    pub fn as_str(&self) -> &'static str {
        match self {
            SiteHealth::Live => "live",
            SiteHealth::Stale { .. } => "stale",
            SiteHealth::Dark { .. } => "dark",
        }
    }
}

/// One site's contribution to a [`FederatedSnapshot`].
#[derive(Debug, Clone)]
pub struct SiteStatus {
    pub cluster: Arc<str>,
    pub health: SiteHealth,
    /// The snapshot backing this slice (`None` only when `Dark`).
    pub snapshot: Option<Arc<ClusterSnapshot>>,
}

impl SiteStatus {
    /// The snapshot seq this slice reflects (0 when dark).
    pub fn seq(&self) -> u64 {
        self.snapshot.as_ref().map(|s| s.seq).unwrap_or(0)
    }

    /// The user-facing freshness notice for a degraded slice, in the same
    /// voice the widgets already use ("showing data from N ago").
    pub fn notice(&self) -> Option<String> {
        match &self.health {
            SiteHealth::Live => None,
            SiteHealth::Stale { age_secs, .. } => Some(format!(
                "site {}: data from {}s ago",
                self.cluster, age_secs
            )),
            SiteHealth::Dark { error } => {
                Some(format!("site {}: unavailable ({error})", self.cluster))
            }
        }
    }
}

/// A merged, internally consistent view across every registered site at one
/// fan-out instant. Per-site slices keep their own seq and freshness; there
/// is no global version because there is no global lock.
#[derive(Debug, Clone)]
pub struct FederatedSnapshot {
    /// Sim-time instant of the fan-out.
    pub at: Timestamp,
    /// One entry per registered site, in registration order.
    pub sites: Vec<SiteStatus>,
}

impl FederatedSnapshot {
    pub fn live_sites(&self) -> usize {
        self.sites.iter().filter(|s| s.health.is_live()).count()
    }

    pub fn stale_sites(&self) -> usize {
        self.sites
            .iter()
            .filter(|s| matches!(s.health, SiteHealth::Stale { .. }))
            .count()
    }

    pub fn dark_sites(&self) -> usize {
        self.sites
            .iter()
            .filter(|s| matches!(s.health, SiteHealth::Dark { .. }))
            .count()
    }

    /// True when any slice is not live — the aggregate payloads surface
    /// this as a top-level `degraded` flag.
    pub fn is_degraded(&self) -> bool {
        self.sites.iter().any(|s| !s.health.is_live())
    }

    /// Job-state totals summed across every slice that has data.
    pub fn counts(&self) -> StateCounts {
        let mut total = StateCounts::default();
        for snap in self.sites.iter().filter_map(|s| s.snapshot.as_deref()) {
            total.pending += snap.counts.pending;
            total.running += snap.counts.running;
            total.suspended += snap.counts.suspended;
        }
        total
    }

    /// Every job across the federation, tagged with its cluster. Rows from
    /// a stale slice are included — their `SiteStatus` says how old.
    pub fn jobs(&self) -> impl Iterator<Item = (&SiteStatus, &Arc<hpcdash_slurm::job::Job>)> {
        self.sites
            .iter()
            .filter_map(|s| Some((s, s.snapshot.as_deref()?)))
            .flat_map(|(status, snap)| snap.jobs.iter().map(move |job| (status, job)))
    }

    /// One user's jobs across every cluster, via each slice's `by_user`
    /// index (no scan).
    pub fn jobs_of_user<'a>(
        &'a self,
        user: &str,
    ) -> Vec<(&'a SiteStatus, Arc<hpcdash_slurm::job::Job>)> {
        let mut out = Vec::new();
        for status in &self.sites {
            let Some(snap) = status.snapshot.as_deref() else {
                continue;
            };
            if let Some(positions) = snap.by_user.get(user) {
                for &pos in positions {
                    out.push((status, snap.jobs[pos as usize].clone()));
                }
            }
        }
        out
    }

    /// Every node across the federation, tagged with its cluster.
    pub fn nodes(&self) -> impl Iterator<Item = (&SiteStatus, &hpcdash_slurm::node::Node)> {
        self.sites
            .iter()
            .filter_map(|s| Some((s, s.snapshot.as_deref()?)))
            .flat_map(|(status, snap)| snap.nodes.iter().map(move |node| (status, node)))
    }

    /// Sum of per-site snapshot seqs — monotone non-decreasing across
    /// fan-outs, usable as a cache version for aggregate renders.
    pub fn version(&self) -> u64 {
        self.sites.iter().map(|s| s.seq()).sum()
    }

    pub fn site(&self, cluster: &str) -> Option<&SiteStatus> {
        self.sites.iter().find(|s| &*s.cluster == cluster)
    }
}

/// One registered site: the cluster's `slurmctld` handle plus the
/// last-known-good cell and serve counters. All reads are lock-free.
pub struct ClusterSite {
    name: Arc<str>,
    ctld: Arc<Slurmctld>,
    /// Last good [`SiteRecord`], epoch-published so the fan-out never
    /// blocks a concurrent update (same cell type as the daemon snapshot).
    last_good: EpochCell<Option<SiteRecord>>,
    polls: AtomicU64,
    stale_serves: AtomicU64,
    dark_serves: AtomicU64,
}

impl ClusterSite {
    fn new(ctld: Arc<Slurmctld>) -> ClusterSite {
        let name = ctld.snapshot().name.clone();
        ClusterSite {
            name,
            ctld,
            last_good: EpochCell::new(Arc::new(None)),
            polls: AtomicU64::new(0),
            stale_serves: AtomicU64::new(0),
            dark_serves: AtomicU64::new(0),
        }
    }

    pub fn name(&self) -> &Arc<str> {
        &self.name
    }

    pub fn ctld(&self) -> &Arc<Slurmctld> {
        &self.ctld
    }

    /// Fan-out polls this site has served (live + stale + dark).
    pub fn polls(&self) -> u64 {
        self.polls.load(Ordering::Relaxed)
    }

    /// Polls answered from the last-known-good snapshot.
    pub fn stale_serves(&self) -> u64 {
        self.stale_serves.load(Ordering::Relaxed)
    }

    /// Polls with nothing to serve (site dark before first success).
    pub fn dark_serves(&self) -> u64 {
        self.dark_serves.load(Ordering::Relaxed)
    }

    /// One fan-out step against this site. Breaker-open short-circuits to
    /// the last good snapshot without touching the site at all; a fault
    /// error records the failure and serves last-known-good; success
    /// refreshes the cell. Never acquires the daemon's state mutex — the
    /// live read is the epoch-published snapshot.
    fn poll(&self, now: Timestamp, breakers: &BreakerBoard) -> SiteStatus {
        self.polls.fetch_add(1, Ordering::Relaxed);
        let source = breaker_source(&self.name);
        if !breakers.allow(&source) {
            return self.serve_last_known(now, "circuit open; probe pending".to_string());
        }
        let check = self.ctld.faults().check(FED_RPC);
        if let Some(msg) = check.error() {
            let msg = msg.to_string();
            breakers.record_failure(&source);
            return self.serve_last_known(now, msg);
        }
        check.burn();
        let snapshot = self.ctld.snapshot();
        breakers.record_success(&source);
        self.last_good.store(Arc::new(Some(SiteRecord {
            snapshot: snapshot.clone(),
            fetched_at: now,
        })));
        SiteStatus {
            cluster: self.name.clone(),
            health: SiteHealth::Live,
            snapshot: Some(snapshot),
        }
    }

    fn serve_last_known(&self, now: Timestamp, error: String) -> SiteStatus {
        match &*self.last_good.load() {
            Some(record) => {
                self.stale_serves.fetch_add(1, Ordering::Relaxed);
                let age_secs = now.0.saturating_sub(record.fetched_at.0);
                SiteStatus {
                    cluster: self.name.clone(),
                    health: SiteHealth::Stale { age_secs, error },
                    snapshot: Some(record.snapshot.clone()),
                }
            }
            None => {
                self.dark_serves.fetch_add(1, Ordering::Relaxed);
                SiteStatus {
                    cluster: self.name.clone(),
                    health: SiteHealth::Dark { error },
                    snapshot: None,
                }
            }
        }
    }
}

/// The registry of federated sites. Built once, then shared (`Arc`) and
/// read lock-free: the site list never changes after construction, so the
/// fan-out is a plain slice walk.
pub struct ClusterRegistry {
    clock: SharedClock,
    sites: Vec<Arc<ClusterSite>>,
}

impl ClusterRegistry {
    pub fn new(clock: SharedClock) -> ClusterRegistry {
        ClusterRegistry {
            clock,
            sites: Vec::new(),
        }
    }

    /// Register a site at build time. The cluster name comes from the
    /// daemon's own snapshot — the identity the site publishes is the
    /// identity the federation uses.
    pub fn register(&mut self, ctld: Arc<Slurmctld>) {
        let site = ClusterSite::new(ctld);
        assert!(
            self.get(&site.name).is_none(),
            "duplicate cluster name {:?} in federation",
            site.name
        );
        self.sites.push(Arc::new(site));
    }

    pub fn sites(&self) -> &[Arc<ClusterSite>] {
        &self.sites
    }

    pub fn get(&self, cluster: &str) -> Option<&Arc<ClusterSite>> {
        self.sites.iter().find(|s| &*s.name == cluster)
    }

    pub fn names(&self) -> Vec<String> {
        self.sites.iter().map(|s| s.name.to_string()).collect()
    }

    pub fn len(&self) -> usize {
        self.sites.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Fan out to every site and merge. Cost is linear in the number of
    /// sites; a dark site costs one breaker check (open) or one failed
    /// fault check (closed) — never a backend wait, never a lock.
    pub fn snapshot(&self, breakers: &BreakerBoard) -> FederatedSnapshot {
        let now = self.clock.now();
        FederatedSnapshot {
            at: now,
            sites: self.sites.iter().map(|s| s.poll(now, breakers)).collect(),
        }
    }

    /// One site's slice, through the same breaker/staleness path as the
    /// full fan-out (cluster-scoped routes use this).
    pub fn site_status(&self, cluster: &str, breakers: &BreakerBoard) -> Option<SiteStatus> {
        let site = self.get(cluster)?;
        Some(site.poll(self.clock.now(), breakers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcdash_cache::breaker::{BreakerConfig, BreakerState};
    use hpcdash_faults::{FaultPlan, FaultRule};
    use hpcdash_simtime::SimClock;
    use hpcdash_slurm::cluster::ClusterSpec;
    use hpcdash_slurm::dbd::Slurmdbd;
    use hpcdash_slurm::joblog::JobLogFs;
    use hpcdash_slurm::loadmodel::RpcCostModel;
    use hpcdash_slurm::node::Node;
    use hpcdash_slurm::partition::Partition;
    use hpcdash_slurm::qos::Qos;

    fn site(name: &str, nodes: usize, clock: &SimClock) -> Arc<Slurmctld> {
        let node_list: Vec<Node> = (1..=nodes)
            .map(|i| Node::new(format!("{name}-n{i:02}"), 16, 64_000, 0))
            .collect();
        let names = node_list.iter().map(|n| n.name.clone()).collect();
        let spec = ClusterSpec {
            name: name.to_string(),
            nodes: node_list,
            partitions: vec![Partition::new("cpu").with_nodes(names).default_partition()],
            qos: Qos::standard_set(),
            assoc: hpcdash_slurm::assoc::AssocStore::new(),
        };
        Arc::new(Slurmctld::with_cost(
            spec,
            clock.shared(),
            Arc::new(Slurmdbd::with_cost(RpcCostModel::free())),
            Arc::new(JobLogFs::new()),
            RpcCostModel::free(),
        ))
    }

    fn board(clock: &SimClock) -> BreakerBoard {
        BreakerBoard::new(
            clock.shared(),
            BreakerConfig {
                failure_threshold: 3,
                open_secs: 30,
                half_open_probes: 1,
            },
        )
    }

    #[test]
    fn merges_sites_tagged_by_cluster() {
        let clock = SimClock::new(Timestamp(1_000));
        let alpha = site("alpha", 2, &clock);
        let beta = site("beta", 3, &clock);
        alpha.tick();
        beta.tick();
        let mut reg = ClusterRegistry::new(clock.shared());
        reg.register(alpha);
        reg.register(beta);
        let breakers = board(&clock);

        let fed = reg.snapshot(&breakers);
        assert_eq!(fed.sites.len(), 2);
        assert_eq!(fed.live_sites(), 2);
        assert!(!fed.is_degraded());
        let mut tagged: Vec<(String, String)> = fed
            .nodes()
            .map(|(s, n)| (s.cluster.to_string(), n.name.clone()))
            .collect();
        tagged.sort();
        assert_eq!(tagged.len(), 5);
        assert!(tagged.iter().all(|(c, n)| n.starts_with(c.as_str())));
        // Per-site meta: each slice reports its own seq, not a global one.
        assert!(fed.site("alpha").unwrap().seq() >= 1);
        assert!(fed.site("beta").unwrap().seq() >= 1);
    }

    #[test]
    fn dark_site_degrades_only_its_slice() {
        let clock = SimClock::new(Timestamp(0));
        let alpha = site("alpha", 2, &clock);
        let beta = site("beta", 2, &clock);
        // Beta goes unreachable from t=100 onward.
        let plan = Arc::new(
            FaultPlan::new(9).rule(
                FaultRule::error("slurmctld", "*", "site link down")
                    .during(Timestamp(100), Timestamp(10_000)),
            ),
        );
        beta.faults().install(plan, clock.shared());
        let mut reg = ClusterRegistry::new(clock.shared());
        reg.register(alpha);
        reg.register(beta);
        let breakers = board(&clock);

        // Warm: both live.
        let fed = reg.snapshot(&breakers);
        assert_eq!(fed.live_sites(), 2);

        clock.advance(140);
        let fed = reg.snapshot(&breakers);
        assert_eq!(fed.live_sites(), 1);
        assert_eq!(fed.stale_sites(), 1);
        assert!(fed.is_degraded());
        let beta_slice = fed.site("beta").unwrap();
        match &beta_slice.health {
            SiteHealth::Stale { age_secs, error } => {
                assert_eq!(*age_secs, 140);
                assert_eq!(error, "site link down");
            }
            other => panic!("expected stale, got {other:?}"),
        }
        // The stale slice still has data (nodes survive from last good).
        assert_eq!(fed.nodes().count(), 4);
        assert_eq!(
            beta_slice.notice().unwrap(),
            "site beta: data from 140s ago"
        );
        assert!(fed.site("alpha").unwrap().notice().is_none());
    }

    #[test]
    fn crashed_site_serves_stale_then_returns_live_after_recovery() {
        let clock = SimClock::new(Timestamp(1_000));
        let alpha = site("alpha", 2, &clock);
        let beta = site("beta", 2, &clock);
        alpha.tick();
        beta.tick();
        let mut reg = ClusterRegistry::new(clock.shared());
        reg.register(alpha);
        reg.register(beta.clone());
        let breakers = board(&clock);
        let warm = reg.snapshot(&breakers);
        assert_eq!(warm.live_sites(), 2);
        let epoch_before = warm.site("beta").unwrap().seq();

        // Beta's controller crashes outright on its next tick: unlike the
        // link-blackout above, *every* RPC refuses until the daemon
        // restarts 60 sim-seconds later.
        beta.faults().install(
            Arc::new(FaultPlan::new(5).rule(
                FaultRule::crash("slurmctld", 60).during(Timestamp(1_010), Timestamp(1_011)),
            )),
            clock.shared(),
        );
        clock.advance(10);
        beta.tick();
        assert!(beta.is_down());
        let fed = reg.snapshot(&breakers);
        assert_eq!(fed.live_sites(), 1);
        assert_eq!(fed.stale_sites(), 1);
        match &fed.site("beta").unwrap().health {
            SiteHealth::Stale { error, .. } => {
                assert!(error.contains("connection refused"), "{error}")
            }
            other => panic!("expected stale while crashed, got {other:?}"),
        }
        // Sustained refusals trip beta's breaker; the slice stays stale —
        // a crashed site is degraded honestly, never silently dropped.
        for _ in 0..5 {
            let _ = reg.snapshot(&breakers);
            clock.advance(1);
        }
        assert_eq!(
            breakers.state_of(&breaker_source("beta")),
            BreakerState::Open
        );
        assert!(reg
            .snapshot(&breakers)
            .site("beta")
            .unwrap()
            .snapshot
            .is_some());

        // The daemon restarts on its first tick past down_until and
        // recovers from checkpoint + WAL.
        clock.advance(60);
        beta.tick();
        assert!(!beta.is_down());
        assert_eq!(beta.restart_count(), 1);
        // Once the breaker cools down, the next poll probes, succeeds, and
        // the site is Live again at a strictly newer epoch.
        clock.advance(31);
        let fed = reg.snapshot(&breakers);
        let slice = fed.site("beta").unwrap();
        assert!(
            slice.health.is_live(),
            "recovered site must serve live: {:?}",
            slice.health
        );
        assert!(
            slice.seq() > epoch_before,
            "post-recovery slice rides a fresh epoch ({} !> {epoch_before})",
            slice.seq()
        );
        assert_eq!(fed.live_sites(), 2);
    }

    #[test]
    fn never_fetched_site_reports_dark_not_stale() {
        let clock = SimClock::new(Timestamp(0));
        let beta = site("beta", 1, &clock);
        let plan =
            Arc::new(FaultPlan::new(1).rule(FaultRule::error("slurmctld", "*", "down from birth")));
        beta.faults().install(plan, clock.shared());
        let mut reg = ClusterRegistry::new(clock.shared());
        reg.register(beta);
        let breakers = board(&clock);

        let fed = reg.snapshot(&breakers);
        assert_eq!(fed.dark_sites(), 1);
        let slice = fed.site("beta").unwrap();
        assert!(slice.snapshot.is_none());
        assert_eq!(
            slice.notice().unwrap(),
            "site beta: unavailable (down from birth)"
        );
        assert_eq!(fed.nodes().count(), 0);
    }

    #[test]
    fn breaker_opens_and_stops_touching_the_dark_site() {
        let clock = SimClock::new(Timestamp(0));
        let beta = site("beta", 1, &clock);
        let plan = Arc::new(
            FaultPlan::new(2).rule(
                FaultRule::error("slurmctld", "*", "blackout")
                    .during(Timestamp(50), Timestamp(1_000_000)),
            ),
        );
        beta.faults().install(plan.clone(), clock.shared());
        let mut reg = ClusterRegistry::new(clock.shared());
        reg.register(beta.clone());
        let breakers = board(&clock);

        reg.snapshot(&breakers); // live warm-up
        clock.advance(60);
        for _ in 0..3 {
            reg.snapshot(&breakers);
        }
        assert_eq!(
            breakers.state_of(&breaker_source("beta")),
            BreakerState::Open
        );
        // Open breaker: fan-outs stop consulting the site's fault host.
        let before = beta.faults().stats().checks;
        reg.snapshot(&breakers);
        assert_eq!(beta.faults().stats().checks, before);
        // ... but the slice still serves last-known-good, honestly aged.
        let fed = reg.snapshot(&breakers);
        assert!(matches!(
            fed.site("beta").unwrap().health,
            SiteHealth::Stale { .. }
        ));
    }

    #[test]
    fn fan_out_never_acquires_a_state_mutex() {
        let clock = SimClock::new(Timestamp(0));
        let alpha = site("alpha", 4, &clock);
        let beta = site("beta", 4, &clock);
        let mut reg = ClusterRegistry::new(clock.shared());
        reg.register(alpha.clone());
        reg.register(beta.clone());
        let breakers = board(&clock);

        let before = (
            alpha.stats().state_lock_count(),
            beta.stats().state_lock_count(),
        );
        for _ in 0..100 {
            let fed = reg.snapshot(&breakers);
            assert_eq!(fed.live_sites(), 2);
            let _ = fed.counts();
            let _ = fed.nodes().count();
        }
        assert_eq!(alpha.stats().state_lock_count(), before.0);
        assert_eq!(beta.stats().state_lock_count(), before.1);
    }

    #[test]
    fn version_is_monotone_across_fanouts() {
        let clock = SimClock::new(Timestamp(0));
        let alpha = site("alpha", 1, &clock);
        let mut reg = ClusterRegistry::new(clock.shared());
        reg.register(alpha.clone());
        let breakers = board(&clock);
        let v1 = reg.snapshot(&breakers).version();
        clock.advance(30);
        alpha.tick();
        let v2 = reg.snapshot(&breakers).version();
        assert!(v2 >= v1, "version must not regress ({v1} -> {v2})");
    }
}
