//! API tokens: minting, revocation, and bearer authentication.
//!
//! Secrets are derived from a seeded splitmix64 stream, so a given site
//! configuration mints the same token sequence every run — chaos tests and
//! the load generator stay reproducible, mirroring the seeded backoff
//! jitter in the resilience layer. Every lifecycle event and every
//! authentication attempt is audited via `hpcdash_api_token_*` counters.

use crate::scope::ScopeSet;
use hpcdash_obs::Registry;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Why a bearer secret was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthError {
    /// No `Authorization: Bearer` header at all.
    Missing,
    /// The secret matches no token ever minted.
    Unknown,
    /// The token exists but has been revoked.
    Revoked,
}

impl AuthError {
    /// Stable label for the `hpcdash_api_token_auth_total{outcome}` counter.
    pub fn outcome(&self) -> &'static str {
        match self {
            AuthError::Missing => "missing",
            AuthError::Unknown => "unknown",
            AuthError::Revoked => "revoked",
        }
    }

    /// The 401 body text.
    pub fn message(&self) -> &'static str {
        match self {
            AuthError::Missing => "missing bearer token",
            AuthError::Unknown => "unknown token",
            AuthError::Revoked => "token revoked",
        }
    }
}

/// What `mint` hands back — the only place the secret is ever shown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MintedToken {
    pub id: String,
    pub subject: String,
    pub scopes: ScopeSet,
    pub secret: String,
}

/// A successfully authenticated bearer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthedToken {
    pub id: String,
    pub subject: String,
    pub scopes: ScopeSet,
}

/// Listing row for the admin endpoint (no secret: show-once semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenInfo {
    pub id: String,
    pub subject: String,
    pub scopes: ScopeSet,
    pub revoked: bool,
}

struct Record {
    id: String,
    subject: String,
    scopes: ScopeSet,
    revoked: bool,
}

struct Inner {
    rng: u64,
    tokens: Vec<Record>,
    by_secret: HashMap<String, usize>,
}

/// The token registry: mint, revoke, list, authenticate.
pub struct TokenStore {
    inner: Mutex<Inner>,
    registry: OnceLock<Arc<Registry>>,
}

/// One step of the splitmix64 stream (same generator family the fault
/// layer's jitter uses; good enough for simulation secrets, not crypto).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TokenStore {
    pub fn new(seed: u64) -> TokenStore {
        TokenStore {
            inner: Mutex::new(Inner {
                // Offset the stream so token secrets never collide with the
                // backoff jitter derived from the same site seed.
                rng: seed ^ 0x70_6b_65_6e, // "tokn"
                tokens: Vec::new(),
                by_secret: HashMap::new(),
            }),
            registry: OnceLock::new(),
        }
    }

    /// Attach the metrics registry (idempotent; first caller wins).
    pub fn set_registry(&self, registry: &Arc<Registry>) {
        let _ = self.registry.set(registry.clone());
    }

    fn count(&self, name: &str, labels: &[(&str, &str)]) {
        if let Some(reg) = self.registry.get() {
            reg.counter(name, labels).inc();
        }
    }

    /// Mint a token for `subject` with `scopes`. Scope narrowing against
    /// the subject's profile is the caller's job (it owns the association
    /// lookup); the store records whatever passed validation.
    pub fn mint(&self, subject: &str, scopes: ScopeSet) -> MintedToken {
        let mut inner = self.inner.lock();
        let a = splitmix64(&mut inner.rng);
        let b = splitmix64(&mut inner.rng);
        let secret = format!("hpcd_{a:016x}{b:016x}");
        let id = format!("tok-{}", inner.tokens.len() + 1);
        let idx = inner.tokens.len();
        // The plaintext secret lives only in `by_secret`'s keys (and in the
        // one-time mint response) — listings can never leak it.
        inner.tokens.push(Record {
            id: id.clone(),
            subject: subject.to_string(),
            scopes: scopes.clone(),
            revoked: false,
        });
        inner.by_secret.insert(secret.clone(), idx);
        drop(inner);
        self.count("hpcdash_api_token_minted_total", &[]);
        MintedToken {
            id,
            subject: subject.to_string(),
            scopes,
            secret,
        }
    }

    /// Revoke by token id. Returns false for unknown ids; revoking twice is
    /// idempotent (and only counted once).
    pub fn revoke(&self, id: &str) -> bool {
        let mut inner = self.inner.lock();
        let Some(rec) = inner.tokens.iter_mut().find(|r| r.id == id) else {
            return false;
        };
        let fresh = !rec.revoked;
        rec.revoked = true;
        drop(inner);
        if fresh {
            self.count("hpcdash_api_token_revoked_total", &[]);
        }
        true
    }

    pub fn list(&self) -> Vec<TokenInfo> {
        self.inner
            .lock()
            .tokens
            .iter()
            .map(|r| TokenInfo {
                id: r.id.clone(),
                subject: r.subject.clone(),
                scopes: r.scopes.clone(),
                revoked: r.revoked,
            })
            .collect()
    }

    /// Tokens minted and still valid (for `/slurm/v0/diag`).
    pub fn active_count(&self) -> usize {
        self.inner
            .lock()
            .tokens
            .iter()
            .filter(|r| !r.revoked)
            .count()
    }

    /// Resolve a bearer secret. Every attempt lands in
    /// `hpcdash_api_token_auth_total{outcome}`.
    pub fn authenticate(&self, secret: &str) -> Result<AuthedToken, AuthError> {
        let inner = self.inner.lock();
        let result = match inner.by_secret.get(secret) {
            None => Err(AuthError::Unknown),
            Some(&idx) => {
                let rec = &inner.tokens[idx];
                if rec.revoked {
                    Err(AuthError::Revoked)
                } else {
                    Ok(AuthedToken {
                        id: rec.id.clone(),
                        subject: rec.subject.clone(),
                        scopes: rec.scopes.clone(),
                    })
                }
            }
        };
        drop(inner);
        let outcome = match &result {
            Ok(_) => "ok",
            Err(e) => e.outcome(),
        };
        self.count("hpcdash_api_token_auth_total", &[("outcome", outcome)]);
        result
    }

    /// Audit a request that authenticated but lacked the scope for `route`.
    pub fn note_denied(&self, route: &str) {
        self.count("hpcdash_api_token_denied_total", &[("route", route)]);
    }

    /// Audit a request with no bearer header at all.
    pub fn note_missing(&self) {
        self.count(
            "hpcdash_api_token_auth_total",
            &[("outcome", AuthError::Missing.outcome())],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::Scope;

    fn scopes() -> ScopeSet {
        ScopeSet::new([Scope::ReadOwnJobs])
    }

    #[test]
    fn mint_authenticate_revoke_cycle() {
        let store = TokenStore::new(0x5eed);
        let minted = store.mint("alice", scopes());
        assert!(minted.secret.starts_with("hpcd_"));
        assert_eq!(minted.id, "tok-1");

        let authed = store.authenticate(&minted.secret).unwrap();
        assert_eq!(authed.subject, "alice");
        assert_eq!(authed.scopes, scopes());

        assert!(store.revoke(&minted.id));
        assert_eq!(store.authenticate(&minted.secret), Err(AuthError::Revoked));
        assert!(store.revoke(&minted.id), "idempotent");
        assert!(!store.revoke("tok-99"));
        assert_eq!(store.active_count(), 0);
    }

    #[test]
    fn unknown_secret_rejected() {
        let store = TokenStore::new(1);
        assert_eq!(store.authenticate("nope"), Err(AuthError::Unknown));
    }

    #[test]
    fn secrets_are_deterministic_per_seed_and_unique() {
        let a = TokenStore::new(42);
        let b = TokenStore::new(42);
        let s1 = a.mint("alice", scopes()).secret;
        let s2 = a.mint("bob", scopes()).secret;
        assert_ne!(s1, s2);
        assert_eq!(b.mint("alice", scopes()).secret, s1, "seeded stream");
        let c = TokenStore::new(43);
        assert_ne!(c.mint("alice", scopes()).secret, s1);
    }

    #[test]
    fn listing_never_shows_secrets() {
        let store = TokenStore::new(7);
        store.mint("alice", scopes());
        let rows = store.list();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].subject, "alice");
        assert!(!rows[0].revoked);
        // TokenInfo has no secret field by construction; this test documents
        // the show-once contract.
    }

    #[test]
    fn audit_counters_flow_to_registry() {
        let reg = Arc::new(Registry::new());
        let store = TokenStore::new(9);
        store.set_registry(&reg);
        let t = store.mint("alice", scopes());
        store.authenticate(&t.secret).unwrap();
        store.authenticate("bad").unwrap_err();
        store.note_missing();
        store.note_denied("/slurm/v0/diag");
        store.revoke(&t.id);
        assert_eq!(reg.counter("hpcdash_api_token_minted_total", &[]).get(), 1);
        assert_eq!(reg.counter("hpcdash_api_token_revoked_total", &[]).get(), 1);
        assert_eq!(
            reg.counter("hpcdash_api_token_auth_total", &[("outcome", "ok")])
                .get(),
            1
        );
        assert_eq!(
            reg.counter("hpcdash_api_token_auth_total", &[("outcome", "unknown")])
                .get(),
            1
        );
        assert_eq!(
            reg.counter("hpcdash_api_token_auth_total", &[("outcome", "missing")])
                .get(),
            1
        );
        assert_eq!(
            reg.counter(
                "hpcdash_api_token_denied_total",
                &[("route", "/slurm/v0/diag")]
            )
            .get(),
            1
        );
    }
}
