//! Dual-layer caching, mirroring the paper's design (§2.4):
//!
//! * **Server side** — [`ttl::TtlCache`] plus [`singleflight::SingleFlight`],
//!   combined in [`fetch::CachedFetcher`]: the Rails in-memory cache analog
//!   that absorbs repeated Slurm queries, with a different expiration time
//!   per data source.
//! * **Client side** — [`clientdb::IndexedDb`]: an IndexedDB-analog keyed
//!   store the headless "browser" uses to render instantly from cached data
//!   and revalidate in the background.
//!
//! All expiry is driven by `hpcdash_simtime::Clock`, so cache behaviour is
//! deterministic under simulated time.

pub mod breaker;
pub mod clientdb;
pub mod fetch;
pub mod singleflight;
pub mod stats;
pub mod ttl;

pub use breaker::{BreakerBoard, BreakerConfig, BreakerSnapshot, BreakerState};
pub use clientdb::{IndexedDb, StoredRecord};
pub use fetch::{CachedFetcher, GraceOutcome};
pub use singleflight::SingleFlight;
pub use stats::{CacheStats, CacheStatsSnapshot};
pub use ttl::TtlCache;
