//! Gorilla-style chunk codec: delta-of-delta timestamps, XOR-ed values.
//!
//! Utilization traces are ideal for this encoding — collectors fire on a
//! fixed cadence (delta-of-delta is almost always zero) and consecutive
//! utilization readings share most of their float bits, so the XOR of
//! adjacent values has long runs of zeros at both ends. The encoder is
//! lossless: `decompress(compress(s)) == s` bit-for-bit, including NaNs.
//!
//! Layout: a little-endian `u32` sample count, then a bitstream. The first
//! sample stores its timestamp and value raw (64 bits each). Every later
//! sample stores the delta-of-delta of its timestamp in one of five
//! variable-width buckets and its value XOR-ed against the previous value,
//! reusing the previous meaningful-bit window when it still fits. All
//! timestamp arithmetic wraps, so adversarial `i64` extremes round-trip.

/// Appends bits to a byte buffer, most-significant bit of each value first.
struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the final byte (0 when byte-aligned).
    used: u32,
}

impl BitWriter {
    fn new() -> BitWriter {
        BitWriter {
            bytes: Vec::new(),
            used: 0,
        }
    }

    fn write_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("byte pushed above");
            *last |= 1 << (7 - self.used);
        }
        self.used = (self.used + 1) % 8;
    }

    /// Write the low `n` bits of `value`, most-significant first.
    fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        for i in (0..n).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }
}

/// Reads bits back in `BitWriter` order. Returns `None` past the end.
struct BitReader<'a> {
    bytes: &'a [u8],
    /// Absolute bit position.
    pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, pos: 0 }
    }

    fn read_bit(&mut self) -> Option<bool> {
        let byte = self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8) as u32)) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    fn read_bits(&mut self, n: u32) -> Option<u64> {
        let mut out = 0u64;
        for _ in 0..n {
            out = (out << 1) | self.read_bit()? as u64;
        }
        Some(out)
    }
}

/// Delta-of-delta buckets, smallest first. Each row is
/// (inclusive magnitude bound, payload bits); the control prefix is `1^i 0`
/// for row `i` and `1111` for the raw 64-bit escape.
const DOD_BUCKETS: [(i64, u32); 3] = [(63, 7), (255, 9), (2047, 12)];

/// Compress `(timestamp, value)` samples into a self-delimiting chunk.
pub fn compress(samples: &[(i64, f64)]) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.bytes
        .extend_from_slice(&(samples.len() as u32).to_le_bytes());
    let Some(&(first_ts, first_v)) = samples.first() else {
        return w.bytes;
    };
    w.write_bits(first_ts as u64, 64);
    w.write_bits(first_v.to_bits(), 64);

    let mut prev_ts = first_ts;
    let mut prev_delta: i64 = 0;
    let mut prev_bits = first_v.to_bits();
    // Meaningful-bit window carried between `11`-control values; invalid
    // until the first explicit window is written.
    let mut window: Option<(u32, u32)> = None;

    for &(ts, v) in &samples[1..] {
        let delta = ts.wrapping_sub(prev_ts);
        let dod = delta.wrapping_sub(prev_delta);
        prev_ts = ts;
        prev_delta = delta;
        if dod == 0 {
            w.write_bit(false);
        } else {
            let mut encoded = false;
            for (i, &(bound, bits)) in DOD_BUCKETS.iter().enumerate() {
                // Bucket i covers [-bound, bound+1] biased to 0..2^bits.
                if -bound <= dod && dod <= bound + 1 {
                    // Prefix `1^(i+1) 0`: 0b10, 0b110, 0b1110.
                    w.write_bits(((1u64 << (i + 1)) - 1) << 1, (i + 2) as u32);
                    w.write_bits((dod + bound) as u64, bits);
                    encoded = true;
                    break;
                }
            }
            if !encoded {
                w.write_bits(0b1111, 4);
                w.write_bits(dod as u64, 64);
            }
        }

        let bits = v.to_bits();
        let xor = bits ^ prev_bits;
        prev_bits = bits;
        if xor == 0 {
            w.write_bit(false);
            continue;
        }
        let leading = xor.leading_zeros();
        let trailing = xor.trailing_zeros();
        match window {
            Some((wl, wt)) if leading >= wl && trailing >= wt => {
                w.write_bits(0b10, 2);
                w.write_bits(xor >> wt, 64 - wl - wt);
            }
            _ => {
                // 6+6 bits cover leading in 0..=63 (xor != 0 guarantees
                // leading <= 63) and meaningful length minus one in 0..=63.
                let meaningful = 64 - leading - trailing;
                w.write_bits(0b11, 2);
                w.write_bits(leading as u64, 6);
                w.write_bits((meaningful - 1) as u64, 6);
                w.write_bits(xor >> trailing, meaningful);
                window = Some((leading, trailing));
            }
        }
    }
    w.bytes
}

/// Decompress a chunk produced by [`compress`]. Returns `None` if the bytes
/// are truncated or malformed.
pub fn decompress(bytes: &[u8]) -> Option<Vec<(i64, f64)>> {
    let count = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
    let mut r = BitReader::new(bytes.get(4..)?);
    let mut out = Vec::with_capacity(count);
    if count == 0 {
        return Some(out);
    }
    let mut ts = r.read_bits(64)? as i64;
    let mut val_bits = r.read_bits(64)?;
    out.push((ts, f64::from_bits(val_bits)));

    let mut delta: i64 = 0;
    let mut window: Option<(u32, u32)> = None;
    for _ in 1..count {
        let dod = if !r.read_bit()? {
            0
        } else {
            let mut bucket = None;
            for (i, &(bound, bits)) in DOD_BUCKETS.iter().enumerate() {
                if i + 1 == DOD_BUCKETS.len() || !r.read_bit()? {
                    // Reached bucket i either by its terminating 0 bit or by
                    // exhausting the prefix (last bucket vs raw escape).
                    if i + 1 == DOD_BUCKETS.len() && r.read_bit()? {
                        break; // 1111: raw escape
                    }
                    bucket = Some((bound, bits));
                    break;
                }
            }
            match bucket {
                Some((bound, bits)) => (r.read_bits(bits)? as i64).wrapping_sub(bound),
                None => r.read_bits(64)? as i64,
            }
        };
        delta = delta.wrapping_add(dod);
        ts = ts.wrapping_add(delta);

        if r.read_bit()? {
            let xor = if !r.read_bit()? {
                let (wl, wt) = window?;
                r.read_bits(64 - wl - wt)? << wt
            } else {
                let leading = r.read_bits(6)? as u32;
                let meaningful = r.read_bits(6)? as u32 + 1;
                if leading + meaningful > 64 {
                    return None;
                }
                let trailing = 64 - leading - meaningful;
                window = Some((leading, trailing));
                r.read_bits(meaningful)? << trailing
            };
            val_bits ^= xor;
        }
        out.push((ts, f64::from_bits(val_bits)));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(samples: &[(i64, f64)]) {
        let bytes = compress(samples);
        let back = decompress(&bytes).expect("well-formed chunk");
        assert_eq!(back.len(), samples.len());
        for (a, b) in samples.iter().zip(&back) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "value bits must survive");
        }
    }

    #[test]
    fn empty_and_single() {
        roundtrip(&[]);
        roundtrip(&[(0, 0.0)]);
        roundtrip(&[(-7, f64::NAN)]);
    }

    #[test]
    fn steady_cadence_quantized_values() {
        let samples: Vec<(i64, f64)> = (0..500)
            .map(|i| (i * 30, ((i % 40) * 25) as f64 / 1024.0))
            .collect();
        roundtrip(&samples);
        let bytes = compress(&samples);
        let raw = samples.len() * 16;
        assert!(
            raw as f64 / bytes.len() as f64 >= 4.0,
            "steady traces must compress >=4x ({} -> {} bytes)",
            raw,
            bytes.len()
        );
    }

    #[test]
    fn constant_series_is_tiny() {
        let samples: Vec<(i64, f64)> = (0..1000).map(|i| (i * 60, 0.25)).collect();
        let bytes = compress(&samples);
        // 2 bits per sample after the header: ~250 bytes for 16k raw.
        assert!(bytes.len() < 300, "got {} bytes", bytes.len());
        roundtrip(&samples);
    }

    #[test]
    fn adversarial_extremes() {
        roundtrip(&[
            (i64::MIN, f64::MIN_POSITIVE),
            (i64::MAX, -0.0),
            (0, f64::INFINITY),
            (i64::MIN / 2, f64::NEG_INFINITY),
            (i64::MAX / 2, f64::MAX),
            (1, f64::from_bits(1)),
        ]);
    }

    #[test]
    fn every_dod_bucket() {
        // Deltas chosen so consecutive delta-of-deltas land in each bucket.
        let mut ts = 0i64;
        let mut delta = 0i64;
        let mut samples = vec![(ts, 1.0)];
        for dod in [0, 1, -63, 64, 200, -255, 256, 2048, -2047, 5000, -900000] {
            delta += dod;
            ts += delta;
            samples.push((ts, 1.0));
        }
        roundtrip(&samples);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let samples: Vec<(i64, f64)> = (0..50).map(|i| (i * 30, i as f64 * 0.01)).collect();
        let bytes = compress(&samples);
        for cut in [0, 3, 4, 10, bytes.len() - 1] {
            assert!(decompress(&bytes[..cut]).is_none(), "cut at {cut}");
        }
    }
}
