//! Simulated and real clocks, plus Slurm-style time parsing and formatting.
//!
//! Everything in the `hpcdash` workspace that needs to know "what time is it"
//! goes through the [`Clock`] trait so that simulations and tests are fully
//! deterministic. [`SimClock`] is a shared, atomically advanced clock;
//! [`SystemClock`] reads the host's wall clock for live deployments.
//!
//! The module also implements the subset of Slurm's time grammar the
//! dashboard needs: ISO-like timestamps (`2026-07-04T09:30:00`), elapsed
//! durations (`1-02:03:04`), and time limits (`30:00`, `2-00:00:00`,
//! `UNLIMITED`).

mod civil;
mod clock;
mod timefmt;

pub use civil::{civil_from_days, days_from_civil, days_in_month, is_leap, CivilDateTime};
pub use clock::{Clock, SharedClock, SimClock, SystemClock};
pub use timefmt::{
    format_duration, format_timestamp, parse_duration, parse_timelimit, parse_timestamp, TimeLimit,
};

use serde::{Deserialize, Serialize};

/// Seconds since the Unix epoch. The simulator usually starts at some
/// realistic 2026 date so formatted timestamps look like production output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Timestamp(pub u64);

impl Timestamp {
    pub const ZERO: Timestamp = Timestamp(0);

    pub fn as_secs(self) -> u64 {
        self.0
    }

    /// Saturating difference `self - earlier` in seconds.
    pub fn since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    pub fn plus(self, secs: u64) -> Timestamp {
        Timestamp(self.0 + secs)
    }

    pub fn minus(self, secs: u64) -> Timestamp {
        Timestamp(self.0.saturating_sub(secs))
    }

    /// Render in Slurm's `%Y-%m-%dT%H:%M:%S` format.
    pub fn to_slurm(self) -> String {
        format_timestamp(self)
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_slurm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp(1_000);
        assert_eq!(t.plus(50).as_secs(), 1_050);
        assert_eq!(t.minus(2_000), Timestamp::ZERO);
        assert_eq!(t.plus(70).since(t), 70);
        assert_eq!(t.since(t.plus(70)), 0, "since saturates at zero");
    }

    #[test]
    fn timestamp_display_is_slurm_format() {
        // 2026-07-04 00:00:00 UTC
        let t = Timestamp(1_783_123_200);
        assert_eq!(t.to_string(), "2026-07-04T00:00:00");
    }

    #[test]
    fn timestamp_ordering() {
        assert!(Timestamp(5) < Timestamp(6));
        assert_eq!(Timestamp(5), Timestamp(5));
    }
}
