//! Figure 4a (Job Performance Metrics) as a benchmark: aggregate metric
//! computation over growing accounting histories and time ranges.

use criterion::{BenchmarkId, Criterion};
use hpcdash_bench::{banner, BenchSite};
use hpcdash_core::metrics::JobMetrics;
use hpcdash_simtime::Clock;

fn main() {
    banner(
        "F4a",
        "Job Performance Metrics: aggregation across time ranges",
    );
    let site = BenchSite::fast();
    site.warm_up(4 * 3_600);
    let user = site.user();
    println!(
        "fixture: {} accounting records",
        site.scenario.dbd.archived_count()
    );

    let mut c = Criterion::default().configure_from_args().sample_size(30);
    {
        let mut group = c.benchmark_group("jobmetrics_route");
        for range in ["24h", "7d", "all"] {
            group.bench_with_input(BenchmarkId::from_parameter(range), &range, |b, r| {
                b.iter(|| {
                    site.ctx().cache.clear();
                    let resp = site.get(&format!("/api/jobmetrics?range={r}"), &user);
                    assert_eq!(resp.status, 200);
                    resp
                })
            });
        }
        group.finish();
    }
    {
        // The aggregation kernel in isolation at synthetic scales.
        let records = {
            let text = hpcdash_slurmcli::sacct(
                &site.scenario.dbd,
                &hpcdash_slurmcli::SacctArgs::default(),
                site.scenario.clock.now(),
            )
            .expect("sacct");
            hpcdash_slurmcli::parse_sacct(&text).expect("parse")
        };
        let mut group = c.benchmark_group("metrics_kernel");
        for scale in [1usize, 8, 32] {
            let blown_up: Vec<_> = std::iter::repeat_with(|| records.clone())
                .take(scale)
                .flatten()
                .collect();
            group.bench_with_input(
                BenchmarkId::new("aggregate", blown_up.len()),
                &blown_up,
                |b, recs| b.iter(|| JobMetrics::aggregate(recs)),
            );
        }
        group.finish();
    }
    c.final_summary();
}
