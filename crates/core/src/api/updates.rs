//! Real-time job monitoring (paper §9 future work, implemented): an
//! incremental updates feed. Clients poll `/api/updates?since=<seq>` and
//! receive only the job state transitions they have not seen — visibility
//! filtered like everything else — instead of refetching whole tables.

use crate::auth::CurrentUser;
use crate::colors::job_state_color;
use crate::ctx::DashboardContext;
use crate::reasons::friendly_reason;
use hpcdash_http::{Request, Response, Router};
use serde_json::json;

pub const FEATURE: &str = "Live Updates (extension)";
pub const ROUTES: &[&str] = &["/api/updates"];
pub const SOURCES: &[&str] = &["slurmctld event stream"];

pub fn register(router: &mut Router, ctx: DashboardContext) {
    router.get(ROUTES[0], move |req| handle(&ctx, req));
}

fn handle(ctx: &DashboardContext, req: &Request) -> Response {
    let user = match CurrentUser::from_request(ctx, req) {
        Ok(u) => u,
        Err(resp) => return resp,
    };
    let since: u64 = match req.query_param("since").unwrap_or("0").parse() {
        Ok(s) => s,
        Err(_) => return Response::bad_request("since must be a sequence number"),
    };
    ctx.note_source(FEATURE, "slurmctld event stream");
    let log = ctx.ctld.events();
    let (events, truncated) = log.since(since);
    let accounts = user.visible_accounts(ctx);
    let visible: Vec<serde_json::Value> = events
        .iter()
        .filter(|e| user.is_admin || e.user == user.username || accounts.contains(&e.account))
        .map(|e| {
            json!({
                "seq": e.seq,
                "at": e.at.to_slurm(),
                "job": e.job.to_string(),
                "user": e.user,
                "account": e.account,
                "from": e.from.map(|s| s.to_slurm()),
                "to": e.to.to_slurm(),
                "to_color": job_state_color(e.to),
                "reason": e.reason.map(|r| r.to_slurm()),
                "reason_message": e.reason.map(friendly_reason),
            })
        })
        .collect();
    Response::json(&json!({
        "events": visible,
        "latest_seq": log.latest_seq(),
        // When true the client's cursor predates the retained window and a
        // full table refresh is needed.
        "resync_required": truncated,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::tests::test_ctx;
    use hpcdash_http::Method;
    use hpcdash_slurm::job::JobRequest;

    fn request(path: &str, user: &str) -> Request {
        Request::new(Method::Get, path).with_header("X-Remote-User", user)
    }

    #[test]
    fn incremental_polling() {
        let ctx = test_ctx();
        let id = ctx
            .ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 2))
            .unwrap()[0];
        ctx.ctld.tick();

        // First poll sees submit + start.
        let resp = handle(&ctx, &request("/api/updates", "alice"));
        assert_eq!(resp.status, 200);
        let body = resp.body_json().unwrap();
        let events = body["events"].as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0]["to"], "PENDING");
        assert_eq!(events[1]["to"], "RUNNING");
        assert_eq!(events[1]["job"], id.to_string());
        let cursor = body["latest_seq"].as_u64().unwrap();

        // Nothing new: empty delta.
        let resp = handle(
            &ctx,
            &request(&format!("/api/updates?since={cursor}"), "alice"),
        );
        let body = resp.body_json().unwrap();
        assert_eq!(body["events"].as_array().unwrap().len(), 0);
        assert_eq!(body["resync_required"], false);

        // Cancel produces exactly one new event past the cursor.
        ctx.ctld.cancel(id, "alice").unwrap();
        let resp = handle(
            &ctx,
            &request(&format!("/api/updates?since={cursor}"), "alice"),
        );
        let events = resp.body_json().unwrap()["events"]
            .as_array()
            .unwrap()
            .to_vec();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0]["to"], "CANCELLED");
        assert_eq!(events[0]["from"], "RUNNING");
    }

    #[test]
    fn visibility_filter_applies() {
        let ctx = test_ctx();
        ctx.ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 2))
            .unwrap();
        ctx.ctld.tick();
        let resp = handle(&ctx, &request("/api/updates", "mallory"));
        assert_eq!(
            resp.body_json().unwrap()["events"]
                .as_array()
                .unwrap()
                .len(),
            0
        );
        // But the cursor still advances so clients stay in sync.
        assert!(resp.body_json().unwrap()["latest_seq"].as_u64().unwrap() >= 2);
    }

    #[test]
    fn bad_cursor_rejected() {
        let ctx = test_ctx();
        assert_eq!(
            handle(&ctx, &request("/api/updates?since=abc", "alice")).status,
            400
        );
    }

    #[test]
    fn pending_events_carry_friendly_reasons() {
        let ctx = test_ctx();
        // Fill the node, then submit one more: its submit event carries a
        // Priority reason.
        ctx.ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 16))
            .unwrap();
        ctx.ctld.tick();
        ctx.ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 16))
            .unwrap();
        let resp = handle(&ctx, &request("/api/updates", "alice"));
        let events = resp.body_json().unwrap()["events"]
            .as_array()
            .unwrap()
            .to_vec();
        let pend = events.last().unwrap();
        assert_eq!(pend["to"], "PENDING");
        assert!(pend["reason_message"]
            .as_str()
            .unwrap()
            .starts_with("It means"));
    }
}
