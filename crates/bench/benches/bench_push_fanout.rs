//! Experiment P6 — poll vs push at fleet scale: 500 dashboard tabs keeping
//! their job tables live.
//!
//! Legacy polling pays per *request*: every `/api/updates` poll scans the
//! event log and re-resolves the viewer's account set through slurmctld, so
//! N tabs × R refresh rounds cost N·R scans + N·R assoc RPCs whether or not
//! anything changed. The push hub pays per *event* and per *subscriber*:
//! one log scan + one assoc resolution at subscribe time, then delivery out
//! of pre-filtered in-memory queues. Equivalent freshness (every tab sees
//! every round's deltas) with daemon traffic that no longer scales with the
//! product of tabs and refresh rate.

use criterion::Criterion;
use hpcdash_bench::{banner, BenchSite};
use hpcdash_core::DashboardConfig;
use hpcdash_push::{Hub, HubConfig};
use hpcdash_simtime::Timestamp;
use hpcdash_slurm::events::{EventSink, JobEvent};
use hpcdash_slurm::job::{JobId, JobState};
use hpcdash_workload::ScenarioConfig;
use std::sync::Arc;
use std::time::Duration;

const SUBSCRIBERS: usize = 500;
const ROUNDS: usize = 20;
const ROUND_SECS: u64 = 30;

struct Cost {
    log_scans: u64,
    assoc_rpcs: u64,
    delivered: u64,
}

fn assoc_count(site: &BenchSite) -> u64 {
    site.scenario
        .ctld
        .stats()
        .snapshot()
        .per_kind
        .get("scontrol_assoc")
        .map(|k| k.count)
        .unwrap_or(0)
}

fn site_with_users() -> (BenchSite, Vec<String>) {
    let site = BenchSite::build(ScenarioConfig::small(), DashboardConfig::purdue_like());
    site.warm_up(300);
    let users: Vec<String> = (0..SUBSCRIBERS)
        .map(|i| {
            site.scenario
                .population
                .user(i % site.scenario.population.users.len())
                .to_string()
        })
        .collect();
    (site, users)
}

/// 500 tabs polling `/api/updates?since=` every round.
fn run_poll() -> Cost {
    let (site, users) = site_with_users();
    let log = site.scenario.ctld.events();
    let scans0 = log.scan_count();
    let assoc0 = assoc_count(&site);
    let mut cursors = vec![0u64; SUBSCRIBERS];
    let mut delivered = 0u64;
    let mut driver = site.scenario.driver(ROUNDS as u64 * ROUND_SECS);
    for _ in 0..ROUNDS {
        driver.advance(ROUND_SECS);
        for (i, user) in users.iter().enumerate() {
            let resp = site.get(&format!("/api/updates?since={}", cursors[i]), user);
            assert_eq!(resp.status, 200);
            let body = resp.body_json().unwrap();
            cursors[i] = body["latest_seq"].as_u64().unwrap();
            delivered += body["events"].as_array().unwrap().len() as u64;
        }
    }
    Cost {
        log_scans: log.scan_count() - scans0,
        assoc_rpcs: assoc_count(&site) - assoc0,
        delivered,
    }
}

/// 500 tabs subscribed to `/api/updates/stream`, drained every round.
fn run_push() -> Cost {
    let (site, users) = site_with_users();
    let log = site.scenario.ctld.events();
    let scans0 = log.scan_count();
    let assoc0 = assoc_count(&site);
    let mut delivered = 0u64;
    let mut driver = site.scenario.driver(ROUNDS as u64 * ROUND_SECS);
    for round in 0..ROUNDS {
        driver.advance(ROUND_SECS);
        for (i, user) in users.iter().enumerate() {
            // sub tokens are per-tab; the first round registers + backfills.
            let resp = site.get(&format!("/api/updates/stream?sub=tab{i}"), user);
            assert_eq!(resp.status, 200);
            let body = resp.body_json().unwrap();
            assert_eq!(
                body["resync_required"], false,
                "round {round}: a drained-every-round queue never overflows"
            );
            delivered += body["events"].as_array().unwrap().len() as u64;
        }
    }
    Cost {
        log_scans: log.scan_count() - scans0,
        assoc_rpcs: assoc_count(&site) - assoc0,
        delivered,
    }
}

fn main() {
    banner(
        "P6",
        &format!(
            "live updates at scale: {SUBSCRIBERS} tabs x {ROUNDS} refresh rounds, poll vs push"
        ),
    );
    let poll = run_poll();
    let push = run_push();
    println!(
        "{:>6} | {:>10} {:>10} {:>10}",
        "mode", "log scans", "assoc RPCs", "delivered"
    );
    println!("{}", "-".repeat(44));
    for (name, c) in [("poll", &poll), ("push", &push)] {
        println!(
            "{:>6} | {:>10} {:>10} {:>10}",
            name, c.log_scans, c.assoc_rpcs, c.delivered
        );
    }

    // The claim this bench exists to hold: at equivalent freshness, push
    // costs the daemons >=10x less than polling.
    let poll_reads = poll.log_scans + poll.assoc_rpcs;
    let push_reads = push.log_scans + push.assoc_rpcs;
    assert!(
        poll_reads >= 10 * push_reads.max(1),
        "push must cut daemon reads >=10x (poll {poll_reads} vs push {push_reads})"
    );
    // And not by delivering less: both modes saw the same stream of deltas.
    assert!(
        push.delivered >= poll.delivered,
        "push under-delivered ({} vs {})",
        push.delivered,
        poll.delivered
    );
    println!("\nshape: polling costs {SUBSCRIBERS} log scans + {SUBSCRIBERS} assoc RPCs per round");
    println!("(N*R total); push pays one scan + one assoc per *subscriber* at registration");
    println!("and delivers every later round out of pre-filtered in-memory queues.");

    // Criterion: the marginal costs the modes multiply — one fan-out publish
    // into 500 queues (with amortized drains) vs one empty stream drain.
    let mut cbench = Criterion::default().configure_from_args().sample_size(30);
    {
        let hub = Arc::new(Hub::new(
            HubConfig::default(),
            Arc::new(|_: &str| vec!["physics".to_string()]),
        ));
        let handles: Vec<_> = (0..SUBSCRIBERS)
            .map(|i| hub.ensure(&format!("u{i}:tab"), &format!("u{i}"), false).0)
            .collect();
        let mut group = cbench.benchmark_group("push_fanout");
        let mut seq = 0u64;
        group.bench_function("publish_500_subscribers", |b| {
            b.iter(|| {
                seq += 1;
                hub.publish(&JobEvent {
                    seq,
                    at: Timestamp(seq),
                    cluster: "testbed".to_string(),
                    job: JobId(seq as u32),
                    user: "u0".to_string(),
                    account: "physics".to_string(),
                    from: None,
                    to: JobState::Pending,
                    reason: None,
                });
                // Drain periodically so queues stay in steady state instead
                // of degenerating into coalesced resyncs.
                if seq.is_multiple_of(100) {
                    for h in &handles {
                        hub.wait(h, Duration::ZERO);
                    }
                }
            })
        });
        group.finish();

        let site = BenchSite::fast();
        site.warm_up(300);
        let user = site.user();
        site.get("/api/updates/stream?sub=bench", &user); // register + backfill
        let mut group = cbench.benchmark_group("stream_route");
        group.bench_function("drain_empty", |b| {
            b.iter(|| site.get("/api/updates/stream?sub=bench", &user))
        });
        group.finish();
    }
    cbench.final_summary();
}
