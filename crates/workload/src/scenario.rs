//! Scenario assembly: cluster spec + population + services, ready to run.

use crate::jobs::{JobMix, TraceGenerator};
use crate::population::{Population, PopulationConfig};
use hpcdash_faults::FaultPlan;
use hpcdash_news::{Category, NewsFeed};
use hpcdash_simtime::{Clock, SimClock, Timestamp};
use hpcdash_slurm::cluster::ClusterSpec;
use hpcdash_slurm::ctld::Slurmctld;
use hpcdash_slurm::dbd::Slurmdbd;
use hpcdash_slurm::joblog::JobLogFs;
use hpcdash_slurm::loadmodel::RpcCostModel;
use hpcdash_slurm::node::Node;
use hpcdash_slurm::partition::Partition;
use hpcdash_slurm::qos::Qos;
use hpcdash_storage::{StorageDb, GB, TB};
use hpcdash_telemetry::TelemetryD;
use std::sync::Arc;
use std::time::Duration;

/// Everything needed to stand up a simulated site.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    pub cluster_name: String,
    pub cpu_nodes: usize,
    pub cpu_cores: u32,
    pub cpu_mem_mb: u64,
    pub gpu_nodes: usize,
    pub gpu_cores: u32,
    pub gpu_mem_mb: u64,
    pub gpus_per_node: u32,
    pub population: PopulationConfig,
    pub mix: JobMix,
    pub seed: u64,
    /// Simulation start instant.
    pub start: Timestamp,
    /// Use zero-cost daemons (unit tests) instead of realistic RPC costs.
    pub free_daemons: bool,
    /// Seeded fault script installed into the daemons at build time (chaos
    /// runs). `None` (the default scenarios) leaves every hook disarmed.
    pub faults: Option<FaultPlan>,
}

/// The canonical scenario start instant: 2026-07-04T08:00Z. Every stock
/// scenario begins here so same-seed runs line up tick for tick.
pub const DEFAULT_START: Timestamp = Timestamp(20_638 * 86_400 + 8 * 3_600);

impl ScenarioConfig {
    /// The same scenario with a fault script armed.
    pub fn with_faults(mut self, plan: FaultPlan) -> ScenarioConfig {
        self.faults = Some(plan);
        self
    }
}

impl ScenarioConfig {
    /// Builder base: a named site with the small-testbed shape. Chain the
    /// setters below to describe heterogeneous sites without copying the
    /// whole field list per site.
    pub fn named(name: &str) -> ScenarioConfig {
        ScenarioConfig {
            cluster_name: name.to_string(),
            cpu_nodes: 4,
            cpu_cores: 16,
            cpu_mem_mb: 64_000,
            gpu_nodes: 1,
            gpu_cores: 32,
            gpu_mem_mb: 256_000,
            gpus_per_node: 4,
            population: PopulationConfig {
                accounts: 3,
                users_per_account_min: 2,
                users_per_account_max: 3,
                ..PopulationConfig::default()
            },
            mix: JobMix::default(),
            seed: 7,
            start: DEFAULT_START,
            free_daemons: true,
            faults: None,
        }
    }

    /// CPU fleet shape: `nodes` machines of `cores` cores / `mem_mb` MB.
    pub fn cpu(mut self, nodes: usize, cores: u32, mem_mb: u64) -> ScenarioConfig {
        self.cpu_nodes = nodes;
        self.cpu_cores = cores;
        self.cpu_mem_mb = mem_mb;
        self
    }

    /// GPU fleet shape: `nodes` machines of `cores` cores / `mem_mb` MB with
    /// `per_node` GPUs each. Zero nodes drops the `gpu` partition entirely.
    pub fn gpu(mut self, nodes: usize, cores: u32, mem_mb: u64, per_node: u32) -> ScenarioConfig {
        self.gpu_nodes = nodes;
        self.gpu_cores = cores;
        self.gpu_mem_mb = mem_mb;
        self.gpus_per_node = per_node;
        self
    }

    /// User population: `accounts` groups of `min..=max` members.
    pub fn accounts(mut self, accounts: usize, min: usize, max: usize) -> ScenarioConfig {
        self.population = PopulationConfig {
            accounts,
            users_per_account_min: min,
            users_per_account_max: max,
            ..PopulationConfig::default()
        };
        self
    }

    /// Mean job-arrival rate (Poisson, per simulated hour).
    pub fn arrivals_per_hour(mut self, rate: f64) -> ScenarioConfig {
        self.mix.arrivals_per_hour = rate;
        self
    }

    /// Modulate arrivals with the day/night activity curve.
    pub fn diurnal(mut self) -> ScenarioConfig {
        self.mix.diurnal = true;
        self
    }

    /// RNG seed for population, trace, and fault decisions.
    pub fn seed(mut self, seed: u64) -> ScenarioConfig {
        self.seed = seed;
        self
    }

    /// Simulation start instant (defaults to [`DEFAULT_START`]).
    pub fn starting_at(mut self, start: Timestamp) -> ScenarioConfig {
        self.start = start;
        self
    }

    /// Charge realistic RPC costs instead of the free test daemons.
    pub fn realistic_costs(mut self) -> ScenarioConfig {
        self.free_daemons = false;
        self
    }

    /// A small cluster for fast tests: 4 CPU nodes, 1 GPU node.
    pub fn small() -> ScenarioConfig {
        ScenarioConfig::named("testbed").arrivals_per_hour(60.0)
    }

    /// A campus-production-scale cluster in the spirit of the paper's site:
    /// 32 CPU nodes of 128 cores plus 4 quad-GPU nodes.
    pub fn campus() -> ScenarioConfig {
        ScenarioConfig::named("anvil-sim")
            .cpu(32, 128, 257_000)
            .gpu(4, 128, 512_000, 4)
            .accounts(10, 3, 8)
            .diurnal()
            .seed(42)
            .realistic_costs()
    }
}

/// A fully assembled site: daemons, services, population.
pub struct Scenario {
    pub config: ScenarioConfig,
    pub clock: SimClock,
    pub ctld: Arc<Slurmctld>,
    pub dbd: Arc<Slurmdbd>,
    pub logs: Arc<JobLogFs>,
    pub storage: Arc<StorageDb>,
    pub news: Arc<NewsFeed>,
    /// The metrics daemon; [`Scenario::driver`] runs a collection pass
    /// after every scheduler tick.
    pub telemetry: Arc<TelemetryD>,
    pub population: Population,
}

impl Scenario {
    pub fn build(config: ScenarioConfig) -> Scenario {
        let clock = SimClock::new(config.start);
        let population = Population::generate(&config.population);

        // Nodes and partitions.
        let mut nodes = Vec::new();
        let mut cpu_names = Vec::new();
        for i in 1..=config.cpu_nodes {
            let mut n = Node::new(format!("a{i:03}"), config.cpu_cores, config.cpu_mem_mb, 0);
            n.features = vec!["avx2".to_string(), "icelake".to_string()];
            n.boot_time = config.start.minus(30 * 86_400);
            n.last_busy = config.start;
            cpu_names.push(n.name.clone());
            nodes.push(n);
        }
        let mut gpu_names = Vec::new();
        for i in 1..=config.gpu_nodes {
            let mut n = Node::new(
                format!("g{i:03}"),
                config.gpu_cores,
                config.gpu_mem_mb,
                config.gpus_per_node,
            );
            n.features = vec!["a100".to_string(), "nvlink".to_string()];
            n.boot_time = config.start.minus(30 * 86_400);
            n.last_busy = config.start;
            gpu_names.push(n.name.clone());
            nodes.push(n);
        }
        let mut partitions = vec![Partition::new("cpu")
            .with_nodes(cpu_names)
            .default_partition()];
        if !gpu_names.is_empty() {
            partitions.push(Partition::new("gpu").with_nodes(gpu_names));
        }

        let spec = ClusterSpec {
            name: config.cluster_name.clone(),
            nodes,
            partitions,
            qos: Qos::standard_set(),
            assoc: population.assoc.clone(),
        };

        let (ctld_cost, dbd_cost) = if config.free_daemons {
            (RpcCostModel::free(), RpcCostModel::free())
        } else {
            (RpcCostModel::ctld_default(), RpcCostModel::dbd_default())
        };
        let dbd = Arc::new(Slurmdbd::with_cost(dbd_cost));
        let logs = Arc::new(JobLogFs::new());
        let ctld = Arc::new(Slurmctld::with_cost(
            spec,
            clock.shared(),
            dbd.clone(),
            logs.clone(),
            ctld_cost,
        ));

        // Storage: home+scratch per user, depot per account, seeded usage.
        let storage = Arc::new(StorageDb::with_cost(if config.free_daemons {
            Duration::ZERO
        } else {
            Duration::from_micros(400)
        }));
        for user in &population.users {
            storage.provision_user(user, config.start);
        }
        for account in &population.accounts {
            storage.provision_group(account, 20 * TB, config.start);
        }
        // Several days of activity so the bars are not empty; then pin one
        // user near quota so warning styling has a subject.
        for day in 0..5 {
            storage.drift(config.seed + day, config.start);
        }
        if let Some(first) = population.users.first() {
            storage.set_usage(&format!("/home/{first}"), 23 * GB, 380_000, config.start);
        }

        // Announcements: the standard mix of categories and windows.
        let news = Arc::new(NewsFeed::new());
        let s = config.start;
        news.publish(
            "New dashboard features released",
            "My Jobs now shows efficiency columns and friendly pending reasons.",
            Category::Feature,
            s.minus(6 * 86_400),
            None,
        );
        news.publish(
            "Quarterly maintenance window",
            "All queues drained for firmware updates.",
            Category::Maintenance,
            s.minus(3 * 86_400),
            Some((s.plus(2 * 86_400), s.plus(2 * 86_400 + 8 * 3_600))),
        );
        news.publish(
            "Scratch filesystem degraded",
            "GPFS scratch rebuilding; expect reduced bandwidth.",
            Category::Outage,
            s.minus(86_400),
            Some((s.minus(86_400), s.plus(4 * 3_600))),
        );
        news.publish(
            "Past outage resolved: login nodes",
            "The login node issue from last month was resolved.",
            Category::Outage,
            s.minus(30 * 86_400),
            Some((s.minus(30 * 86_400), s.minus(29 * 86_400))),
        );
        news.publish(
            "HPC user workshop signup open",
            "Intro to batch computing, every first Tuesday.",
            Category::News,
            s.minus(10 * 86_400),
            None,
        );

        // Arm the fault script (chaos scenarios) before anything queries the
        // daemons, so even the first RPC sees the scripted weather.
        if let Some(plan) = &config.faults {
            let plan = Arc::new(plan.clone());
            ctld.faults().install(plan.clone(), clock.shared());
            dbd.faults().install(plan, clock.shared());
        }

        let telemetry = Arc::new(if config.free_daemons {
            TelemetryD::free(clock.shared(), ctld.clone())
        } else {
            TelemetryD::new(clock.shared(), ctld.clone())
        });

        Scenario {
            config,
            clock,
            ctld,
            dbd,
            logs,
            storage,
            news,
            telemetry,
            population,
        }
    }

    /// A trace generator wired to this scenario's partitions, node shapes
    /// and seed (so generated requests are always schedulable).
    pub fn trace_generator(&self) -> TraceGenerator {
        TraceGenerator::with_caps(
            self.config.seed,
            self.config.mix.clone(),
            "cpu",
            if self.config.gpu_nodes > 0 {
                Some("gpu")
            } else {
                None
            },
            crate::jobs::NodeCaps {
                cpus_per_node: self.config.cpu_cores,
                mem_mb_per_node: self.config.cpu_mem_mb,
            },
        )
    }

    /// Build a [`crate::SimDriver`] preloaded with `window_secs` of traffic.
    pub fn driver(&self, window_secs: u64) -> crate::SimDriver {
        let mut gen = self.trace_generator();
        let trace = gen.generate(&self.population, self.clock.now(), window_secs);
        crate::SimDriver::new(self.clock.clone(), self.ctld.clone(), trace, 30)
            .with_telemetry(self.telemetry.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scenario_builds() {
        let s = Scenario::build(ScenarioConfig::small());
        assert_eq!(s.ctld.query_nodes().len(), 5);
        assert_eq!(s.ctld.query_partitions().len(), 2);
        assert!(!s.population.users.is_empty());
        assert_eq!(s.news.recent(10).unwrap().len(), 5);
        let u = &s.population.users[0];
        let dirs = s
            .storage
            .dirs_for_user(u, &s.population.accounts_of(u))
            .unwrap();
        assert!(dirs.len() >= 3, "home + scratch + at least one depot");
    }

    #[test]
    fn campus_scenario_scale() {
        let s = Scenario::build(ScenarioConfig {
            free_daemons: true,
            ..ScenarioConfig::campus()
        });
        assert_eq!(s.ctld.query_nodes().len(), 36);
        let assoc = s.ctld.query_assoc(None);
        assert_eq!(assoc.len(), 10);
    }

    #[test]
    fn announcements_cover_categories_and_windows() {
        let s = Scenario::build(ScenarioConfig::small());
        let now = s.clock.now();
        let all = s.news.all().unwrap();
        use hpcdash_news::Relevance;
        let relevances: Vec<Relevance> = all.iter().map(|a| a.relevance(now)).collect();
        assert!(relevances.contains(&Relevance::Active));
        assert!(relevances.contains(&Relevance::Upcoming));
        assert!(relevances.contains(&Relevance::Past));
        assert!(relevances.contains(&Relevance::Timeless));
    }

    #[test]
    fn fault_plan_arms_both_daemons() {
        use hpcdash_faults::FaultRule;
        let plan = FaultPlan::new(11)
            .rule(FaultRule::error(
                "slurmctld",
                "squeue",
                "ctld: connection refused",
            ))
            .rule(FaultRule::error("slurmdbd", "sacct_query", "dbd down"));
        let s = Scenario::build(ScenarioConfig::small().with_faults(plan));
        assert!(s.ctld.faults().is_armed());
        assert!(s.dbd.faults().is_armed());
        // The default scenarios stay disarmed: no hidden chaos in tests.
        let calm = Scenario::build(ScenarioConfig::small());
        assert!(!calm.ctld.faults().is_armed());
        assert!(!calm.dbd.faults().is_armed());
    }

    #[test]
    fn builder_describes_heterogeneous_sites() {
        let site = ScenarioConfig::named("edge")
            .cpu(8, 64, 128_000)
            .gpu(0, 0, 0, 0)
            .accounts(2, 1, 2)
            .arrivals_per_hour(10.0)
            .seed(99);
        assert_eq!(site.cluster_name, "edge");
        assert_eq!(site.cpu_nodes, 8);
        assert_eq!(site.gpu_nodes, 0);
        assert_eq!(site.population.accounts, 2);
        assert_eq!(site.seed, 99);
        assert!(site.free_daemons);
        // A GPU-less site builds with a single partition.
        let s = Scenario::build(site);
        assert_eq!(s.ctld.query_partitions().len(), 1);
        assert_eq!(s.ctld.query_nodes().len(), 8);
    }

    #[test]
    fn near_quota_user_exists() {
        let s = Scenario::build(ScenarioConfig::small());
        let first = &s.population.users[0];
        let dirs = s.storage.dirs_for_user(first, &[]).unwrap();
        let home = dirs.iter().find(|d| d.path.starts_with("/home/")).unwrap();
        assert!(home.bytes_fraction() > 0.9);
    }
}
