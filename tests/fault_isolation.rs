//! Experiment P5 (paper §2.4, modularity): one broken data source degrades
//! only its own widget; the rest of the dashboard keeps serving.

use hpcdash::SimSite;
use hpcdash_core::pages::homepage;
use hpcdash_http::HttpClient;
use hpcdash_workload::ScenarioConfig;

fn fetch(client: &HttpClient, base: &str, path: &str, user: &str) -> (u16, serde_json::Value) {
    let resp = client
        .get(&format!("{base}{path}"), &[("X-Remote-User", user)])
        .unwrap();
    let body = resp.json().unwrap_or(serde_json::Value::Null);
    (resp.status, body)
}

#[test]
fn news_outage_only_kills_the_announcements_widget() {
    let site = SimSite::build(ScenarioConfig::small());
    site.warm_up(600);
    let server = site.serve().unwrap();
    let base = server.base_url();
    let client = HttpClient::new();
    let user = site.scenario.population.users[0].clone();

    site.scenario.news.set_available(false);

    let mut statuses = Vec::new();
    for (widget, path) in homepage::WIDGETS {
        let (status, _) = fetch(&client, &base, path, &user);
        statuses.push((widget, status));
    }
    assert_eq!(
        statuses.iter().filter(|(_, s)| *s == 200).count(),
        4,
        "{statuses:?}"
    );
    let broken: Vec<&str> = statuses
        .iter()
        .filter(|(_, s)| *s != 200)
        .map(|(w, _)| *w)
        .collect();
    assert_eq!(broken, vec!["announcements"]);

    // Recovery is immediate once the source returns (errors are not cached).
    site.scenario.news.set_available(true);
    let (status, _) = fetch(&client, &base, "/api/announcements", &user);
    assert_eq!(status, 200);
}

#[test]
fn storage_outage_only_kills_the_storage_widget() {
    let site = SimSite::build(ScenarioConfig::small());
    let server = site.serve().unwrap();
    let base = server.base_url();
    let client = HttpClient::new();
    let user = site.scenario.population.users[0].clone();

    site.scenario.storage.set_available(false);
    let (status, body) = fetch(&client, &base, "/api/storage", &user);
    assert_eq!(status, 503);
    assert!(body["error"].as_str().unwrap().contains("storage"));
    for path in [
        "/api/announcements",
        "/api/recent_jobs",
        "/api/system_status",
        "/api/accounts",
    ] {
        let (status, _) = fetch(&client, &base, path, &user);
        assert_eq!(status, 200, "{path} should be unaffected");
    }
}

#[test]
fn homepage_renders_error_cards_for_broken_widgets() {
    let site = SimSite::build(ScenarioConfig::small());
    site.warm_up(300);
    let server = site.serve().unwrap();
    let base = server.base_url();
    let user = site.scenario.population.users[0].clone();
    site.scenario.storage.set_available(false);

    // Render the full homepage the way the frontend would: per-widget
    // payloads, failures becoming error cards.
    let client = HttpClient::new();
    let payloads: Vec<(&str, Result<serde_json::Value, String>)> = homepage::WIDGETS
        .iter()
        .map(|(widget, path)| {
            let (status, body) = fetch(&client, &base, path, &user);
            let result = if status == 200 {
                Ok(body)
            } else {
                Err(body["error"].as_str().unwrap_or("unavailable").to_string())
            };
            (*widget, result)
        })
        .collect();
    let html = homepage::render_full("Anvil", &user, &payloads);
    assert_eq!(
        html.matches("widget-error").count(),
        1,
        "exactly one error card"
    );
    assert!(html.contains("data-widget=\"system_status\""));
    assert!(html.contains("data-widget=\"recent_jobs\""));
}

#[test]
fn drained_partition_surfaces_as_state_not_failure() {
    // Infrastructure trouble inside Slurm is data, not an error: the System
    // Status widget reports the partition down rather than breaking.
    let site = SimSite::build(ScenarioConfig::small());
    let server = site.serve().unwrap();
    let base = server.base_url();
    let client = HttpClient::new();
    let user = site.scenario.population.users[0].clone();

    site.scenario
        .ctld
        .set_partition_state("cpu", hpcdash_slurm::partition::PartitionState::Down);
    let (status, body) = fetch(&client, &base, "/api/system_status", &user);
    assert_eq!(status, 200);
    let cpu = body["partitions"]
        .as_array()
        .unwrap()
        .iter()
        .find(|p| p["name"] == "cpu")
        .unwrap()
        .clone();
    assert_eq!(cpu["status"], "DOWN");
}
