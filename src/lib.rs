//! `hpcdash` — a modular, responsive HPC dashboard in Rust, with a full
//! Slurm-simulator substrate.
//!
//! This umbrella crate re-exports the workspace and provides [`SimSite`],
//! the one-call assembly of a simulated site (cluster + daemons + services
//! + workload) with the dashboard mounted on top.
//!
//! Examples, integration tests and benches all start here:
//!
//! ```
//! use hpcdash::SimSite;
//! use hpcdash_workload::ScenarioConfig;
//!
//! let site = SimSite::build(ScenarioConfig::small());
//! site.warm_up(1_800); // half an hour of simulated traffic
//! let server = site.serve().unwrap();
//! let user = site.scenario.population.users[0].clone();
//! let client = site.browser(&server.base_url(), &user);
//! let page = client.load_homepage().unwrap();
//! assert_eq!(page.healthy_widgets(), 5);
//! ```

pub use hpcdash_cache as cache;
pub use hpcdash_client as client;
pub use hpcdash_core as core;
pub use hpcdash_federation as federation;
pub use hpcdash_http as http;
pub use hpcdash_news as news;
pub use hpcdash_push as push;
pub use hpcdash_restapi as restapi;
pub use hpcdash_simtime as simtime;
pub use hpcdash_slurm as slurm;
pub use hpcdash_slurmcli as slurmcli;
pub use hpcdash_storage as storage;
pub use hpcdash_telemetry as telemetry;
pub use hpcdash_workload as workload;

use hpcdash_client::DashboardClient;
use hpcdash_core::{Dashboard, DashboardConfig, DashboardContext};
use hpcdash_http::Server;
use hpcdash_workload::{
    FederatedScenario, FederationConfig, FederationDriver, Scenario, ScenarioConfig, SimDriver,
};

/// A fully wired simulated site: scenario + dashboard.
pub struct SimSite {
    pub scenario: Scenario,
    pub dashboard: Dashboard,
}

impl SimSite {
    /// Build with the dashboard's default (Purdue-like) configuration.
    pub fn build(scenario_cfg: ScenarioConfig) -> SimSite {
        SimSite::build_with(scenario_cfg, DashboardConfig::purdue_like())
    }

    /// Build with an explicit dashboard configuration (site migration,
    /// cache ablations).
    pub fn build_with(scenario_cfg: ScenarioConfig, dash_cfg: DashboardConfig) -> SimSite {
        let scenario = Scenario::build(scenario_cfg);
        let ctx = DashboardContext::new(
            dash_cfg,
            scenario.clock.shared(),
            scenario.ctld.clone(),
            scenario.dbd.clone(),
            scenario.logs.clone(),
            scenario.storage.clone(),
            scenario.news.clone(),
        )
        .with_telemetry(scenario.telemetry.clone());
        SimSite {
            dashboard: Dashboard::new(ctx),
            scenario,
        }
    }

    pub fn ctx(&self) -> &DashboardContext {
        self.dashboard.ctx()
    }

    /// Run `secs` of simulated cluster traffic (submissions + scheduling)
    /// before measuring anything.
    pub fn warm_up(&self, secs: u64) -> SimDriver {
        let mut driver = self.scenario.driver(secs);
        driver.advance(secs);
        driver
    }

    /// A driver preloaded with `window` seconds of future traffic, for
    /// callers that want to interleave dashboard use with cluster activity.
    pub fn driver(&self, window: u64) -> SimDriver {
        self.scenario.driver(window)
    }

    /// Serve the dashboard on an ephemeral local port.
    pub fn serve(&self) -> std::io::Result<Server> {
        self.dashboard.serve("127.0.0.1:0", 8)
    }

    /// A headless browser for `user`, sharing the site's simulated clock and
    /// using the configured client-cache freshness.
    pub fn browser(&self, base_url: &str, user: &str) -> DashboardClient {
        let fresh = self.ctx().cfg.cache.client_fresh;
        DashboardClient::new(
            base_url,
            user,
            self.scenario.clock.shared(),
            if fresh == 0 { None } else { Some(fresh) },
        )
    }
}

/// A fully wired federation: N site scenarios sharing one timeline, with
/// the dashboard portal mounted on the first site and federating all of
/// them (aggregate `/api/federation/*` routes, cluster-scoped `/slurm/v0`,
/// per-site breakers).
pub struct FedSite {
    pub federation: FederatedScenario,
    pub dashboard: Dashboard,
}

impl FedSite {
    /// Build with the dashboard's default (Purdue-like) configuration. The
    /// first site in the config is the portal's home cluster.
    pub fn build(cfg: FederationConfig) -> FedSite {
        FedSite::build_with(cfg, DashboardConfig::purdue_like())
    }

    pub fn build_with(cfg: FederationConfig, dash_cfg: DashboardConfig) -> FedSite {
        let federation = cfg.build();
        let portal = &federation.sites[0];
        let ctx = DashboardContext::new(
            dash_cfg,
            portal.clock.shared(),
            portal.ctld.clone(),
            portal.dbd.clone(),
            portal.logs.clone(),
            portal.storage.clone(),
            portal.news.clone(),
        )
        .with_telemetry(portal.telemetry.clone())
        .with_federation(federation.registry.clone());
        FedSite {
            dashboard: Dashboard::new(ctx),
            federation,
        }
    }

    pub fn ctx(&self) -> &DashboardContext {
        self.dashboard.ctx()
    }

    /// Run `secs` of lockstep traffic on every site.
    pub fn warm_up(&self, secs: u64) -> FederationDriver {
        let mut driver = self.federation.driver(secs);
        driver.advance(secs);
        driver
    }

    /// Serve the portal on an ephemeral local port.
    pub fn serve(&self) -> std::io::Result<Server> {
        self.dashboard.serve("127.0.0.1:0", 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_example_flow() {
        let site = SimSite::build(ScenarioConfig::small());
        site.warm_up(1_200);
        let server = site.serve().unwrap();
        let user = site.scenario.population.users[0].clone();
        let client = site.browser(&server.base_url(), &user);
        let page = client.load_homepage().unwrap();
        assert_eq!(page.healthy_widgets(), 5);
    }
}
