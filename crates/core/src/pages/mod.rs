//! Full-page renderers (paper §4-§7).
//!
//! Every page has two render paths, mirroring the paper's load strategy
//! (§2.3):
//!
//! * [`shell`](layout::shell) — the instantly served HTML scaffold with
//!   loading placeholders; component data arrives afterwards from the API
//!   routes. Time-to-first-byte is independent of any Slurm query.
//! * `render_full(payload)` — the fully materialized page given the API
//!   payloads, used by server-side tests, examples, and the render benches.

pub mod clusterstatus;
pub mod federation;
pub mod homepage;
pub mod joboverview;
pub mod jobperf;
pub mod layout;
pub mod myjobs;
pub mod newsall;
pub mod nodeoverview;
pub mod observatory;
