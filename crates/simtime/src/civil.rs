//! Civil (proleptic Gregorian) calendar conversions.
//!
//! Implements Howard Hinnant's `days_from_civil` / `civil_from_days`
//! algorithms, which convert between a `(year, month, day)` triple and a day
//! count relative to 1970-01-01. They are exact for the entire range we care
//! about and require no lookup tables.

/// A broken-down UTC date-time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CivilDateTime {
    pub year: i64,
    pub month: u32,
    pub day: u32,
    pub hour: u32,
    pub minute: u32,
    pub second: u32,
}

impl CivilDateTime {
    /// Convert a Unix timestamp (seconds) to a civil date-time in UTC.
    pub fn from_unix(secs: u64) -> CivilDateTime {
        let days = (secs / 86_400) as i64;
        let rem = secs % 86_400;
        let (year, month, day) = civil_from_days(days);
        CivilDateTime {
            year,
            month,
            day,
            hour: (rem / 3_600) as u32,
            minute: ((rem / 60) % 60) as u32,
            second: (rem % 60) as u32,
        }
    }

    /// Convert back to a Unix timestamp. Returns `None` for pre-epoch dates.
    pub fn to_unix(&self) -> Option<u64> {
        let days = days_from_civil(self.year, self.month, self.day);
        if days < 0 {
            return None;
        }
        Some(
            days as u64 * 86_400
                + self.hour as u64 * 3_600
                + self.minute as u64 * 60
                + self.second as u64,
        )
    }
}

/// Number of days from 1970-01-01 to `year-month-day`.
pub fn days_from_civil(year: i64, month: u32, day: u32) -> i64 {
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = (month as u64 + 9) % 12; // March-based month [0, 11]
    let doy = (153 * mp + 2) / 5 + day as u64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe as i64 - 719_468
}

/// Inverse of [`days_from_civil`].
pub fn civil_from_days(days: i64) -> (i64, u32, u32) {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// True when `year` is a Gregorian leap year.
pub fn is_leap(year: i64) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Days in a given month.
pub fn days_in_month(year: i64, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap(year) => 29,
        2 => 28,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        // 2026-07-04 is 20638 days after the epoch.
        assert_eq!(days_from_civil(2026, 7, 4), 20_638);
        assert_eq!(civil_from_days(20_638), (2026, 7, 4));
        // Leap day.
        assert_eq!(civil_from_days(days_from_civil(2024, 2, 29)), (2024, 2, 29));
    }

    #[test]
    fn from_unix_breakdown() {
        let dt = CivilDateTime::from_unix(20_638 * 86_400 + 9 * 3_600 + 30 * 60 + 15);
        assert_eq!((dt.year, dt.month, dt.day), (2026, 7, 4));
        assert_eq!((dt.hour, dt.minute, dt.second), (9, 30, 15));
        assert_eq!(
            dt.to_unix().unwrap(),
            20_638 * 86_400 + 9 * 3_600 + 30 * 60 + 15
        );
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap(2024));
        assert!(!is_leap(2026));
        assert!(!is_leap(1900));
        assert!(is_leap(2000));
        assert_eq!(days_in_month(2024, 2), 29);
        assert_eq!(days_in_month(2026, 2), 28);
        assert_eq!(days_in_month(2026, 12), 31);
    }

    proptest! {
        #[test]
        fn civil_roundtrip(days in 0i64..200_000) {
            let (y, m, d) = civil_from_days(days);
            prop_assert_eq!(days_from_civil(y, m, d), days);
            prop_assert!((1..=12).contains(&m));
            prop_assert!((1..=days_in_month(y, m)).contains(&d));
        }

        #[test]
        fn unix_roundtrip(secs in 0u64..20_000_000_000) {
            let dt = CivilDateTime::from_unix(secs);
            prop_assert_eq!(dt.to_unix(), Some(secs));
        }

        #[test]
        fn days_monotonic(days in 0i64..200_000) {
            let a = civil_from_days(days);
            let b = civil_from_days(days + 1);
            prop_assert!(b > a || (b.0 > a.0));
        }
    }
}
