//! The admin observability page: route-latency history, the SLO/error
//! budget board, breaker states, tick-phase profiles, and the stored-trace
//! table with an accessible waterfall.
//!
//! Like every other page, the shell serves instantly with placeholders and
//! the widgets fill in from their API routes (`/api/observatory`,
//! `/api/traces`, `/api/obs/series`). The waterfall renderer keeps the
//! paper's accessibility bar: it is a real table — each span a row with
//! its depth, offset, and duration as text — with the proportional bar as
//! a decoration on top, so screen readers get the same information sighted
//! operators do.

use crate::pages::layout::{shell, widget_placeholder};
use crate::template::escape_html;
use serde_json::Value;

pub fn render_shell(cluster: &str, user: &str) -> String {
    let mut body = String::from("<h1>Observatory</h1>");
    body.push_str(
        "<p class=\"observatory-intro\">Dashboard self-observability: \
         service levels, circuit breakers, daemon tick phases, the HTTP \
         event loop (connections by state, sheds, 304 revalidations, \
         reactor lag), and tail-sampled request traces.</p>",
    );
    body.push_str("<div class=\"widget-grid\">");
    body.push_str(&widget_placeholder("observatory", "/api/observatory"));
    body.push_str(&widget_placeholder(
        "route-latency-history",
        "/api/obs/series?name=self%3Ahpcdash_sched_queue_depth",
    ));
    body.push_str(&widget_placeholder("traces", "/api/traces?limit=50"));
    body.push_str("</div>");
    shell("Observatory", "observatory", cluster, user, &body)
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{}µs", ns / 1_000)
    }
}

/// Render one stored trace (the `/api/traces/:id` payload) as an accessible
/// waterfall: a table whose rows carry the span name (indented by depth via
/// CSS class, not whitespace), textual offset/duration, and a proportional
/// bar sized against the root span's duration.
pub fn render_waterfall(trace: &Value) -> String {
    let spans = trace["spans"].as_array().map(Vec::as_slice).unwrap_or(&[]);
    let total = trace["root_dur_ns"]
        .as_u64()
        .filter(|d| *d > 0)
        .unwrap_or(1);
    let mut html = format!(
        "<table class=\"waterfall\" aria-label=\"Trace waterfall for {}\">\
         <caption>Trace {} — {} · {}</caption>\
         <thead><tr><th scope=\"col\">Span</th><th scope=\"col\">Start</th>\
         <th scope=\"col\">Duration</th><th scope=\"col\">Timeline</th></tr></thead><tbody>",
        escape_html(trace["id"].as_str().unwrap_or("?")),
        escape_html(trace["id"].as_str().unwrap_or("?")),
        escape_html(trace["cause"].as_str().unwrap_or("?")),
        escape_html(trace["route"].as_str().unwrap_or("(no route)")),
    );
    for span in spans {
        let depth = span["depth"].as_u64().unwrap_or(0);
        let start = span["start_offset_ns"].as_u64().unwrap_or(0);
        let dur = span["dur_ns"].as_u64().unwrap_or(0);
        let left = (start.min(total) * 100) / total;
        let width = ((dur * 100) / total).clamp(1, 100 - left.min(99));
        html.push_str(&format!(
            "<tr><th scope=\"row\" class=\"span-name depth-{depth}\">{}</th>\
             <td>+{}</td><td>{}</td>\
             <td><span class=\"span-bar\" style=\"margin-left:{left}%;width:{width}%\" \
             aria-hidden=\"true\"></span></td></tr>",
            escape_html(span["name"].as_str().unwrap_or("?")),
            fmt_ns(start),
            fmt_ns(dur),
        ));
    }
    html.push_str("</tbody></table>");
    html
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn shell_binds_the_observatory_widgets() {
        let html = render_shell("Anvil", "root");
        assert!(html.contains("data-api=\"/api/observatory\""));
        assert!(html.contains("data-api=\"/api/traces?limit=50\""));
        assert!(html.contains("/api/obs/series?name=self%3A"));
        assert!(html.contains("Logged in as root"));
    }

    #[test]
    fn waterfall_is_a_real_table_with_bars_decorative() {
        let trace = json!({
            "id": "1f",
            "cause": "error",
            "route": "/api/myjobs",
            "root_dur_ns": 10_000_000u64,
            "spans": [
                {"name": "route", "depth": 0, "start_offset_ns": 0,
                 "dur_ns": 10_000_000u64},
                {"name": "cache-miss", "depth": 1, "start_offset_ns": 1_000_000u64,
                 "dur_ns": 8_000_000u64},
            ],
        });
        let html = render_waterfall(&trace);
        // Root-first rows, readable as text without the bars.
        assert!(html.contains("aria-label=\"Trace waterfall for 1f\""));
        assert!(html.contains("<th scope=\"col\">Duration</th>"));
        assert!(html.contains("depth-0\">route"));
        assert!(html.contains("depth-1\">cache-miss"));
        assert!(html.contains("<td>+1.0ms</td>"));
        assert!(html.contains("<td>10.0ms</td>"));
        // Bars are proportional and hidden from assistive tech.
        assert!(html.contains("aria-hidden=\"true\""));
        assert!(html.contains("margin-left:10%;width:80%"));
    }

    #[test]
    fn waterfall_survives_degenerate_payloads() {
        let html = render_waterfall(&json!({"id": "aa", "spans": []}));
        assert!(html.contains("<tbody></tbody>"));
        // Zero-duration root: no division by zero, bars stay in range.
        let html = render_waterfall(&json!({
            "id": "bb", "cause": "sampled", "route": "/x", "root_dur_ns": 0,
            "spans": [{"name": "route", "depth": 0, "start_offset_ns": 0, "dur_ns": 0}],
        }));
        assert!(html.contains("depth-0\">route"));
    }
}
