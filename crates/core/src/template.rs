//! A miniature ERB-style template engine.
//!
//! The paper's frontend pairs each feature with an ERB template that
//! pre-renders a little server-side data (like the username) into an HTML
//! shell; the rest arrives via API calls. This engine supports exactly what
//! those shells need:
//!
//! * `<%= key %>` — HTML-escaped interpolation
//! * `<%== key %>` — raw interpolation (pre-rendered fragments)
//!
//! Loops and conditionals stay in Rust, where they are type-checked.

use std::collections::BTreeMap;

/// Template rendering errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateError {
    UnknownKey(String),
    UnclosedTag(usize),
}

impl std::fmt::Display for TemplateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TemplateError::UnknownKey(k) => write!(f, "unknown template key: {k}"),
            TemplateError::UnclosedTag(pos) => write!(f, "unclosed <% tag at byte {pos}"),
        }
    }
}

impl std::error::Error for TemplateError {}

/// Escape text for HTML.
pub fn escape_html(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// Render `template`, replacing `<%= key %>` / `<%== key %>` with values.
pub fn render(template: &str, values: &BTreeMap<String, String>) -> Result<String, TemplateError> {
    let mut out = String::with_capacity(template.len());
    let mut rest = template;
    let mut offset = 0;
    loop {
        match rest.find("<%") {
            None => {
                out.push_str(rest);
                return Ok(out);
            }
            Some(start) => {
                out.push_str(&rest[..start]);
                let after = &rest[start + 2..];
                let end = after
                    .find("%>")
                    .ok_or(TemplateError::UnclosedTag(offset + start))?;
                let tag = &after[..end];
                let (raw, key) = match tag.strip_prefix("==") {
                    Some(k) => (true, k.trim()),
                    None => match tag.strip_prefix('=') {
                        Some(k) => (false, k.trim()),
                        None => (false, tag.trim()), // tolerate `<% key %>`
                    },
                };
                let value = values
                    .get(key)
                    .ok_or_else(|| TemplateError::UnknownKey(key.to_string()))?;
                if raw {
                    out.push_str(value);
                } else {
                    out.push_str(&escape_html(value));
                }
                offset += start + 2 + end + 2;
                rest = &after[end + 2..];
            }
        }
    }
}

/// Convenience: build the value map from pairs.
pub fn vars<const N: usize>(pairs: [(&str, String); N]) -> BTreeMap<String, String> {
    pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text_passes_through() {
        let v = BTreeMap::new();
        assert_eq!(
            render("hello <b>world</b>", &v).unwrap(),
            "hello <b>world</b>"
        );
    }

    #[test]
    fn escaped_interpolation() {
        let v = vars([("user", "<script>alert(1)</script>".to_string())]);
        let html = render("Hi <%= user %>!", &v).unwrap();
        assert_eq!(html, "Hi &lt;script&gt;alert(1)&lt;/script&gt;!");
    }

    #[test]
    fn raw_interpolation() {
        let v = vars([("widget", "<div class=\"card\">x</div>".to_string())]);
        let html = render("<%== widget %>", &v).unwrap();
        assert_eq!(html, "<div class=\"card\">x</div>");
    }

    #[test]
    fn multiple_tags() {
        let v = vars([("a", "1".to_string()), ("b", "2".to_string())]);
        assert_eq!(render("<%= a %>+<%= a %>=<%= b %>", &v).unwrap(), "1+1=2");
    }

    #[test]
    fn unknown_key_errors() {
        let v = BTreeMap::new();
        assert_eq!(
            render("<%= missing %>", &v).unwrap_err(),
            TemplateError::UnknownKey("missing".to_string())
        );
    }

    #[test]
    fn unclosed_tag_errors() {
        let v = BTreeMap::new();
        assert!(matches!(
            render("ok <%= broken", &v).unwrap_err(),
            TemplateError::UnclosedTag(_)
        ));
    }

    #[test]
    fn escape_html_covers_specials() {
        assert_eq!(
            escape_html(r#"<a href="x">&'</a>"#),
            "&lt;a href=&quot;x&quot;&gt;&amp;&#39;&lt;/a&gt;"
        );
    }

    #[test]
    fn tolerates_bare_tag() {
        let v = vars([("x", "y".to_string())]);
        assert_eq!(render("<% x %>", &v).unwrap(), "y");
    }
}
