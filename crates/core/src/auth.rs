//! Identity and the privacy filter (paper §2.4, "Privacy").
//!
//! Open OnDemand authenticates at the reverse proxy and hands the app the
//! username; this dashboard reads it from `X-Remote-User`. Every route then
//! restricts data to "the user, or allocations/groups the user is a part
//! of". Admins (behind the `admin_view` feature flag) may act as others via
//! `X-Act-As`, the permission-based-accounting extension from §9.

use crate::ctx::DashboardContext;
use hpcdash_http::{Request, Response};

/// The authenticated viewer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CurrentUser {
    pub username: String,
    pub is_admin: bool,
}

impl CurrentUser {
    /// Resolve identity from a request, or produce the HTTP error to send.
    pub fn from_request(ctx: &DashboardContext, req: &Request) -> Result<CurrentUser, Response> {
        let Some(remote) = req.remote_user() else {
            return Err(Response::unauthorized("missing X-Remote-User"));
        };
        if remote.is_empty() {
            return Err(Response::unauthorized("empty X-Remote-User"));
        }
        let is_admin = ctx.cfg.is_admin(remote);
        // Admins may view as another user; everyone else is themselves.
        let username = match (is_admin, req.header("x-act-as")) {
            (true, Some(other)) if !other.is_empty() => other.to_string(),
            _ => remote.to_string(),
        };
        Ok(CurrentUser { username, is_admin })
    }

    /// The accounts this user may see (their own allocations).
    pub fn visible_accounts(&self, ctx: &DashboardContext) -> Vec<String> {
        ctx.ctld
            .query_assoc(Some(&self.username))
            .into_iter()
            .map(|r| r.account.name)
            .collect()
    }

    /// May this user inspect `job_user`'s job details?
    pub fn may_view_job_of(
        &self,
        job_user: &str,
        job_account: &str,
        ctx: &DashboardContext,
    ) -> bool {
        if self.is_admin || self.username == job_user {
            return true;
        }
        // Group visibility: same allocation.
        self.visible_accounts(ctx).iter().any(|a| a == job_account)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::tests::test_ctx;
    use hpcdash_http::Method;

    #[test]
    fn requires_remote_user() {
        let ctx = test_ctx();
        let req = Request::new(Method::Get, "/api/x");
        let err = CurrentUser::from_request(&ctx, &req).unwrap_err();
        assert_eq!(err.status, 401);
        let req = Request::new(Method::Get, "/api/x").with_header("X-Remote-User", "");
        assert!(CurrentUser::from_request(&ctx, &req).is_err());
    }

    #[test]
    fn plain_user_resolves() {
        let ctx = test_ctx();
        let req = Request::new(Method::Get, "/x").with_header("X-Remote-User", "alice");
        let user = CurrentUser::from_request(&ctx, &req).unwrap();
        assert_eq!(user.username, "alice");
        assert!(!user.is_admin);
    }

    #[test]
    fn act_as_requires_admin() {
        let ctx = test_ctx();
        // alice is not an admin: X-Act-As ignored.
        let req = Request::new(Method::Get, "/x")
            .with_header("X-Remote-User", "alice")
            .with_header("X-Act-As", "bob");
        let user = CurrentUser::from_request(&ctx, &req).unwrap();
        assert_eq!(user.username, "alice");
    }

    #[test]
    fn visible_accounts_filter() {
        let ctx = test_ctx();
        let alice = CurrentUser {
            username: "alice".to_string(),
            is_admin: false,
        };
        assert_eq!(alice.visible_accounts(&ctx), vec!["physics".to_string()]);
        let stranger = CurrentUser {
            username: "mallory".to_string(),
            is_admin: false,
        };
        assert!(stranger.visible_accounts(&ctx).is_empty());
    }

    #[test]
    fn job_visibility_rules() {
        let ctx = test_ctx();
        let alice = CurrentUser {
            username: "alice".to_string(),
            is_admin: false,
        };
        assert!(alice.may_view_job_of("alice", "physics", &ctx), "own job");
        assert!(alice.may_view_job_of("bob", "physics", &ctx), "group job");
        assert!(
            !alice.may_view_job_of("mallory", "secret", &ctx),
            "unrelated job"
        );
        let admin = CurrentUser {
            username: "root".to_string(),
            is_admin: true,
        };
        assert!(admin.may_view_job_of("anyone", "anything", &ctx));
    }
}
