//! Recent Jobs widget API (paper §3.2): the user's latest queued/running
//! jobs from `squeue`, cached ~30 s to protect slurmctld.

use crate::auth::CurrentUser;
use crate::colors::job_state_color;
use crate::ctx::DashboardContext;
use crate::reasons::friendly_reason;
use hpcdash_http::{Request, Response, Router};
use hpcdash_slurmcli::{parse_squeue_long, squeue_long, SqueueArgs};
use serde_json::json;

pub const FEATURE: &str = "Recent Jobs widget";
pub const ROUTES: &[&str] = &["/api/recent_jobs"];
pub const SOURCES: &[&str] = &["squeue (slurmctld)"];

pub fn register(router: &mut Router, ctx: DashboardContext) {
    let keyctx = ctx.clone();
    router.get_cached(
        ROUTES[0],
        move |req| {
            let ttl = keyctx.cfg.cache.recent_jobs;
            super::render_decision(&keyctx, req, ROUTES[0], ttl)
        },
        move |req| handle(&ctx, req),
    );
}

fn handle(ctx: &DashboardContext, req: &Request) -> Response {
    let user = match CurrentUser::from_request(ctx, req) {
        Ok(u) => u,
        Err(resp) => return resp,
    };
    let limit = ctx.cfg.recent_jobs_limit;
    let key = format!("recent_jobs:{}", user.username);
    let outcome = ctx.cached_resilient(&key, ctx.cfg.cache.recent_jobs, || {
        ctx.note_source(FEATURE, "squeue (slurmctld)");
        // The route shells out to squeue and parses its text, exactly like
        // the paper's backend.
        let text = squeue_long(
            &ctx.ctld,
            &SqueueArgs {
                user: Some(user.username.clone()),
                ..SqueueArgs::default()
            },
        )?;
        let rows = parse_squeue_long(&text).map_err(|e| format!("squeue parse: {e}"))?;
        Ok(json!({
            "jobs": rows
                .iter()
                .take(limit)
                .map(|r| {
                    let reason = r.reason();
                    json!({
                        "id": r.job_id,
                        "name": r.name,
                        "partition": r.partition,
                        "state": r.state.to_slurm(),
                        "state_color": job_state_color(r.state),
                        "submit_time": r.submit_time.map(|t| t.to_slurm()),
                        "start_time": r.start_time.map(|t| t.to_slurm()),
                        "elapsed_secs": r.time_secs,
                        "time_limit": r.time_limit,
                        "reason": reason.map(|x| x.to_slurm()),
                        // The hoverable tooltip text (paper §3.2).
                        "tooltip": reason.map(friendly_reason),
                    })
                })
                .collect::<Vec<_>>(),
        }))
    });
    super::respond(outcome)
}

#[cfg(test)]
impl crate::ctx::DashboardContext {
    /// Advance the scheduler once in tests (1 simulated second).
    pub(crate) fn clock_tick(&self) {
        self.ctld.tick();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::tests::test_ctx;
    use hpcdash_http::Method;
    use hpcdash_slurm::job::JobRequest;

    fn request(user: &str) -> Request {
        Request::new(Method::Get, "/api/recent_jobs").with_header("X-Remote-User", user)
    }

    #[test]
    fn shows_only_my_jobs_with_colors_and_tooltips() {
        let ctx = test_ctx();
        ctx.ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 4))
            .unwrap();
        ctx.ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 16))
            .unwrap();
        ctx.clock_tick();
        let resp = handle(&ctx, &request("alice"));
        assert_eq!(resp.status, 200);
        let jobs = resp.body_json().unwrap()["jobs"]
            .as_array()
            .unwrap()
            .to_vec();
        assert_eq!(jobs.len(), 2);
        let running = jobs.iter().find(|j| j["state"] == "RUNNING").unwrap();
        assert_eq!(running["state_color"], "green");
        assert!(running["start_time"].is_string());
        let pending = jobs.iter().find(|j| j["state"] == "PENDING").unwrap();
        assert!(pending["tooltip"].as_str().unwrap().starts_with("It means"));
    }

    #[test]
    fn other_users_see_nothing_of_mine() {
        let ctx = test_ctx();
        ctx.ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 4))
            .unwrap();
        ctx.clock_tick();
        let resp = handle(&ctx, &request("mallory"));
        assert_eq!(
            resp.body_json().unwrap()["jobs"].as_array().unwrap().len(),
            0
        );
    }

    #[test]
    fn caching_hides_new_submissions_within_ttl() {
        let ctx = test_ctx();
        handle(&ctx, &request("alice"));
        ctx.ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 1))
            .unwrap();
        ctx.clock_tick();
        let resp = handle(&ctx, &request("alice"));
        assert_eq!(
            resp.body_json().unwrap()["jobs"].as_array().unwrap().len(),
            0,
            "cached empty list served within the 30s TTL"
        );
        assert_eq!(
            ctx.ctld.stats().count_of("squeue"),
            1,
            "only one squeue ran"
        );
    }
}
