//! End-to-end integration: a simulated campus day served over real HTTP.

use hpcdash::SimSite;
use hpcdash_http::HttpClient;
use hpcdash_workload::ScenarioConfig;

fn get_json(client: &HttpClient, base: &str, path: &str, user: &str) -> serde_json::Value {
    let resp = client
        .get(&format!("{base}{path}"), &[("X-Remote-User", user)])
        .unwrap();
    assert_eq!(resp.status, 200, "{path}: {}", resp.body_string());
    resp.json().unwrap()
}

#[test]
fn a_simulated_hour_feeds_every_feature() {
    let site = SimSite::build(ScenarioConfig::small());
    site.warm_up(3_600);
    let server = site.serve().unwrap();
    let base = server.base_url();
    let client = HttpClient::new();
    let user = site.scenario.population.users[0].clone();

    // Homepage widgets.
    let announcements = get_json(&client, &base, "/api/announcements", &user);
    assert_eq!(announcements["items"].as_array().unwrap().len(), 5);

    let status = get_json(&client, &base, "/api/system_status", &user);
    let partitions = status["partitions"].as_array().unwrap();
    assert_eq!(partitions.len(), 2);
    assert!(
        partitions.iter().any(|p| !p["gpus"].is_null()),
        "gpu partition reports gpus"
    );

    let storage = get_json(&client, &base, "/api/storage", &user);
    assert!(storage["disks"].as_array().unwrap().len() >= 2);

    let accounts = get_json(&client, &base, "/api/accounts", &user);
    assert!(!accounts["accounts"].as_array().unwrap().is_empty());

    // My Jobs: after an hour of traffic the group sees jobs in mixed states.
    let myjobs = get_json(&client, &base, "/api/myjobs?range=all", &user);
    let jobs = myjobs["jobs"].as_array().unwrap();
    assert!(
        !jobs.is_empty(),
        "group saw no jobs after an hour of traffic"
    );
    assert!(!myjobs["charts"]["state_distribution"]["labels"]
        .as_array()
        .unwrap()
        .is_empty());

    // Job metrics aggregate.
    let metrics = get_json(&client, &base, "/api/jobmetrics?range=all", &user);
    assert!(metrics["metrics"]["total_jobs"].as_u64().is_some());

    // Cluster status covers every node.
    let cluster = get_json(&client, &base, "/api/clusterstatus", &user);
    assert_eq!(cluster["nodes"].as_array().unwrap().len(), 5);

    // Drill into a node that exists.
    let node_name = cluster["nodes"][0]["name"].as_str().unwrap().to_string();
    let node = get_json(&client, &base, &format!("/api/nodes/{node_name}"), &user);
    assert_eq!(node["status_card"]["name"], node_name.as_str());

    // Drill into one of the user's own jobs end-to-end.
    let own_job = jobs.iter().find(|j| j["user"] == user.as_str());
    if let Some(job) = own_job {
        let id = job["id"].as_str().unwrap();
        let overview = get_json(&client, &base, &format!("/api/jobs/{id}"), &user);
        assert_eq!(overview["header"]["id"], id);
        assert!(overview["timeline"]["submitted"].is_string());
        let logs = get_json(
            &client,
            &base,
            &format!("/api/jobs/{id}/logs?stream=out"),
            &user,
        );
        assert!(logs["lines"].is_array());
    }

    // Page shells all render.
    for page in ["/", "/myjobs", "/jobperf", "/clusterstatus"] {
        let resp = client
            .get(&format!("{base}{page}"), &[("X-Remote-User", &user)])
            .unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.body_string().contains("widget-slot") || resp.body_string().contains("<h1>"));
    }
}

#[test]
fn scheduler_produces_the_states_the_dashboard_reports() {
    let site = SimSite::build(ScenarioConfig::small());
    site.warm_up(3 * 3_600);
    // Accounting should now hold a healthy mix of terminal states.
    let recs = site
        .scenario
        .dbd
        .query_jobs(&hpcdash_slurm::dbd::JobFilter::default());
    assert!(recs.len() > 20, "only {} records", recs.len());
    let states: std::collections::HashSet<_> = recs.iter().map(|j| j.state).collect();
    assert!(states.contains(&hpcdash_slurm::JobState::Completed));
    assert!(
        states.len() >= 3,
        "expected a mix of outcomes, got {states:?}"
    );
    // Completed jobs carry usage stats for the efficiency engine.
    let completed = recs
        .iter()
        .find(|j| j.state == hpcdash_slurm::JobState::Completed)
        .unwrap();
    assert!(completed.stats.is_some());
}

#[test]
fn dashboard_survives_concurrent_users_and_ticks() {
    let site = SimSite::build(ScenarioConfig::small());
    let mut driver = site.driver(2 * 3_600);
    driver.advance(600);
    let server = site.serve().unwrap();
    let base = server.base_url();
    let users: Vec<String> = site.scenario.population.users.clone();

    let mut handles = Vec::new();
    for user in users.into_iter().take(4) {
        let base = base.clone();
        handles.push(std::thread::spawn(move || {
            let client = HttpClient::new();
            for _ in 0..10 {
                for path in [
                    "/api/recent_jobs",
                    "/api/system_status",
                    "/api/myjobs?range=7d",
                ] {
                    let resp = client
                        .get(&format!("{base}{path}"), &[("X-Remote-User", &user)])
                        .unwrap();
                    assert_eq!(resp.status, 200);
                }
            }
        }));
    }
    // Cluster keeps moving while users browse.
    driver.advance(1_200);
    for h in handles {
        h.join().unwrap();
    }
}
