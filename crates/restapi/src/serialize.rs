//! Structured JSON straight from snapshot structs — the whole point of the
//! `/slurm/v0` family. Nothing in this module renders command text or
//! parses anything; every body is built from the immutable
//! [`ClusterSnapshot`] the epoch cell published. Field names follow
//! `slurmrestd`'s `openapi/v0.0.x` vocabulary where the simulator has an
//! equivalent (`job_id`, `user_name`, `node_count`, `state_reason`, ...),
//! so external consumers written against real Slurm mostly port over.

use hpcdash_slurm::ctld::AssocRecord;
use hpcdash_slurm::job::Job;
use hpcdash_slurm::node::Node;
use hpcdash_slurm::snapshot::ClusterSnapshot;
use serde_json::{json, Value};

/// The response envelope every endpoint shares: which plugin emitted it,
/// which cluster, and which publication epoch the data came from. `seq`
/// makes staleness observable to clients (and testable).
pub fn meta(snap: &ClusterSnapshot) -> Value {
    json!({
        "plugin": { "type": "hpcdash/v0", "name": "snapshot" },
        "cluster": snap.name.as_ref(),
        "snapshot_seq": snap.seq,
        "time": snap.now.as_secs(),
    })
}

/// One job, `slurmrestd`-shaped.
pub fn job_value(job: &Job, snap: &ClusterSnapshot) -> Value {
    let now = snap.now;
    json!({
        "job_id": job.id.0,
        "name": job.req.name,
        "user_name": job.req.user,
        "account": job.req.account,
        "partition": job.req.partition,
        "qos": job.req.qos,
        "job_state": job.state.to_slurm(),
        "state_reason": job.reason.map(|r| r.to_slurm()),
        "priority": job.priority,
        "node_count": job.req.nodes,
        "cpus": job.alloc_cpus(),
        "memory_per_node_mb": job.req.mem_mb_per_node,
        "gpus_per_node": job.req.gpus_per_node,
        "nodes": job.nodes,
        "array_job_id": job.array.map(|a| a.array_job_id.0),
        "array_task_id": job.array.map(|a| a.task_id),
        "submit_time": job.submit_time.as_secs(),
        "start_time": job.start_time.map(|t| t.as_secs()),
        "end_time": job.end_time.map(|t| t.as_secs()),
        "elapsed_secs": job.elapsed_secs(now),
        "time_limit_secs": job.req.time_limit.as_secs(),
    })
}

/// One node.
pub fn node_value(node: &Node) -> Value {
    json!({
        "name": node.name,
        "state": node.state().to_slurm(),
        "cpus": node.cpus,
        "alloc_cpus": node.alloc.cpus,
        "cpu_load": node.cpu_load,
        "real_memory_mb": node.real_memory_mb,
        "alloc_memory_mb": node.alloc.mem_mb,
        "gpus": node.gpus,
        "alloc_gpus": node.alloc.gpus,
        "gpu_type": node.gpu_type,
        "features": node.features,
        "partitions": node.partitions,
        "operating_system": node.os,
        "reason": node.reason,
        "boot_time": node.boot_time.as_secs(),
        "last_busy": node.last_busy.as_secs(),
    })
}

/// One partition (by snapshot index, so member totals come from the
/// precomputed `partition_nodes` groups).
pub fn partition_value(snap: &ClusterSnapshot, idx: usize) -> Value {
    let p = &snap.partitions[idx];
    let mut total_cpus = 0u64;
    let mut total_nodes = 0u64;
    for n in snap.nodes_of_partition(idx) {
        total_cpus += u64::from(n.cpus);
        total_nodes += 1;
    }
    json!({
        "name": p.name,
        "state": p.state.to_slurm(),
        "nodes": p.nodes,
        "node_count": total_nodes,
        "total_cpus": total_cpus,
        "max_time_secs": p.max_time.as_secs(),
        "default_time_secs": p.default_time.as_secs(),
        "priority_tier": p.priority_tier,
        "is_default": p.is_default,
        "max_nodes_per_job": p.max_nodes_per_job,
    })
}

/// One association record.
pub fn assoc_value(rec: &AssocRecord) -> Value {
    json!({
        "account": rec.account.name,
        "description": rec.account.description,
        "parent": rec.account.parent,
        "members": rec.members,
        "limits": {
            "grp_cpu": rec.account.grp_cpu_limit,
            "grp_gpu_mins": rec.account.grp_gpu_mins_limit,
        },
        "usage": {
            "cpus_running": rec.usage.cpus_running,
            "cpus_queued": rec.usage.cpus_queued,
            "cpu_seconds": rec.usage.cpu_seconds,
            "gpu_seconds": rec.usage.gpu_seconds,
        },
    })
}

/// `/slurm/v0/jobs` (and `/jobs/:id`): the given positions into
/// `snap.jobs`, in ascending id order.
pub fn jobs_body(snap: &ClusterSnapshot, positions: &[u32]) -> String {
    let jobs: Vec<Value> = positions
        .iter()
        .map(|&p| job_value(&snap.jobs[p as usize], snap))
        .collect();
    json!({ "meta": meta(snap), "jobs": jobs }).to_string()
}

/// `/slurm/v0/nodes`: all nodes, or the subset at `positions` (a
/// partition-scoped view).
pub fn nodes_body(snap: &ClusterSnapshot, positions: Option<&[u32]>) -> String {
    let nodes: Vec<Value> = match positions {
        None => snap.nodes.iter().map(node_value).collect(),
        Some(ps) => ps
            .iter()
            .map(|&p| node_value(&snap.nodes[p as usize]))
            .collect(),
    };
    json!({ "meta": meta(snap), "nodes": nodes }).to_string()
}

/// `/slurm/v0/partitions`: the partitions at `indices`.
pub fn partitions_body(snap: &ClusterSnapshot, indices: &[usize]) -> String {
    let partitions: Vec<Value> = indices.iter().map(|&i| partition_value(snap, i)).collect();
    json!({ "meta": meta(snap), "partitions": partitions }).to_string()
}

/// `/slurm/v0/associations`: the records at `indices`.
pub fn assoc_body(snap: &ClusterSnapshot, indices: &[usize]) -> String {
    let associations: Vec<Value> = indices
        .iter()
        .map(|&i| assoc_value(&snap.assoc[i]))
        .collect();
    json!({ "meta": meta(snap), "associations": associations }).to_string()
}

/// `/slurm/v0/diag`: snapshot-wide statistics plus whatever server-side
/// `extra` the host wires in (RPC counters, token counts).
pub fn diag_body(snap: &ClusterSnapshot, extra: &Value) -> String {
    json!({
        "meta": meta(snap),
        "statistics": {
            "jobs_pending": snap.counts.pending,
            "jobs_running": snap.counts.running,
            "jobs_suspended": snap.counts.suspended,
            "job_count": snap.jobs.len(),
            "node_count": snap.nodes.len(),
            "partition_count": snap.partitions.len(),
            "association_count": snap.assoc.len(),
            "server": extra,
        },
    })
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcdash_simtime::Timestamp;
    use hpcdash_slurm::assoc::{Account, AccountUsage};
    use hpcdash_slurm::job::{JobId, JobRequest, JobState};
    use hpcdash_slurm::partition::Partition;
    use std::sync::Arc;

    fn snap_with_one_of_each() -> ClusterSnapshot {
        let req = JobRequest::simple("alice", "physics", "cpu", 4);
        let job = Job {
            id: JobId(10),
            array: None,
            req,
            state: JobState::Running,
            reason: None,
            priority: 500,
            submit_time: Timestamp(100),
            eligible_time: Timestamp(100),
            start_time: Some(Timestamp(200)),
            end_time: None,
            nodes: vec!["a001".to_string()],
            exit_code: None,
            stats: None,
            stdout_path: String::new(),
            stderr_path: String::new(),
        };
        let node = Node::new("a001", 16, 64_000, 0);
        let part = Partition::new("cpu").with_nodes(vec!["a001".to_string()]);
        let assoc = AssocRecord {
            account: Account::new("physics"),
            usage: AccountUsage::default(),
            members: vec!["alice".to_string()],
        };
        ClusterSnapshot::build(
            3,
            Timestamp(1_000),
            Arc::from("t"),
            vec![Arc::new(job)],
            vec![node],
            vec![part],
            vec![assoc],
        )
    }

    #[test]
    fn jobs_body_is_slurmrestd_shaped() {
        let snap = snap_with_one_of_each();
        let body: Value = serde_json::from_str(&jobs_body(&snap, &[0])).unwrap();
        assert_eq!(body["meta"]["snapshot_seq"], 3);
        assert_eq!(body["meta"]["cluster"], "t");
        let j = &body["jobs"][0];
        assert_eq!(j["job_id"], 10);
        assert_eq!(j["user_name"], "alice");
        assert_eq!(j["account"], "physics");
        assert_eq!(j["job_state"], "RUNNING");
        assert_eq!(j["elapsed_secs"], 800, "now=1000, start=200");
        assert_eq!(j["nodes"][0], "a001");
        assert_eq!(j["state_reason"], Value::Null);
    }

    #[test]
    fn nodes_body_full_and_subset() {
        let snap = snap_with_one_of_each();
        let all: Value = serde_json::from_str(&nodes_body(&snap, None)).unwrap();
        assert_eq!(all["nodes"].as_array().unwrap().len(), 1);
        assert_eq!(all["nodes"][0]["name"], "a001");
        assert_eq!(all["nodes"][0]["cpus"], 16);
        let none: Value = serde_json::from_str(&nodes_body(&snap, Some(&[]))).unwrap();
        assert_eq!(none["nodes"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn partition_body_aggregates_member_nodes() {
        let snap = snap_with_one_of_each();
        let body: Value = serde_json::from_str(&partitions_body(&snap, &[0])).unwrap();
        let p = &body["partitions"][0];
        assert_eq!(p["name"], "cpu");
        assert_eq!(p["node_count"], 1);
        assert_eq!(p["total_cpus"], 16);
    }

    #[test]
    fn assoc_and_diag_bodies() {
        let snap = snap_with_one_of_each();
        let body: Value = serde_json::from_str(&assoc_body(&snap, &[0])).unwrap();
        assert_eq!(body["associations"][0]["account"], "physics");
        assert_eq!(body["associations"][0]["members"][0], "alice");

        let diag: Value =
            serde_json::from_str(&diag_body(&snap, &json!({"tokens_active": 2}))).unwrap();
        assert_eq!(diag["statistics"]["jobs_running"], 1);
        assert_eq!(diag["statistics"]["node_count"], 1);
        assert_eq!(diag["statistics"]["server"]["tokens_active"], 2);
    }
}
