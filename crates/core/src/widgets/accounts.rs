//! The Accounts widget (paper §3.4): per-allocation CPU/GPU usage with an
//! export dropdown.

use crate::template::escape_html;
use crate::widgets::components::{card, progress_bar};
use serde_json::Value;

/// Render from the `/api/accounts` payload.
pub fn render(payload: &Value) -> String {
    let mut body = String::new();
    let accounts = payload["accounts"]
        .as_array()
        .map(Vec::as_slice)
        .unwrap_or(&[]);
    if accounts.is_empty() {
        body.push_str("<p class=\"text-muted\">No allocations found.</p>");
    }
    for a in accounts {
        let name = a["name"].as_str().unwrap_or("");
        body.push_str(&format!(
            "<div class=\"account-row\"><span class=\"account-name\">{}</span>",
            escape_html(name)
        ));
        let in_use = a["cpus_in_use"].as_u64().unwrap_or(0);
        let queued = a["cpus_queued"].as_u64().unwrap_or(0);
        match a["cpu_limit"].as_u64() {
            Some(limit) => {
                body.push_str(&progress_bar(
                    a["cpu_percent"].as_f64().unwrap_or(0.0),
                    a["cpu_color"].as_str().unwrap_or("green"),
                    &format!("CPUs {in_use}/{limit} in use, {queued} queued"),
                ));
            }
            None => {
                body.push_str(&format!(
                    "<span class=\"cpu-counts\">CPUs {in_use} in use, {queued} queued (no limit)</span>"
                ));
            }
        }
        let gpu_used = a["gpu_hours_used"].as_f64().unwrap_or(0.0);
        if let Some(limit) = a["gpu_hours_limit"].as_f64() {
            body.push_str(&progress_bar(
                (gpu_used / limit.max(1e-9) * 100.0).min(100.0),
                a["gpu_color"].as_str().unwrap_or("green"),
                &format!("GPU hours {gpu_used:.1}/{limit:.0}"),
            ));
        }
        if let Some(export) = a["export_url"].as_str() {
            body.push_str(&format!(
                "<div class=\"dropdown export\"><a href=\"{}\">Export CSV</a> \
                 <a href=\"{}?format=excel\">Export Excel</a></div>",
                escape_html(export),
                escape_html(export)
            ));
        }
        body.push_str("</div>");
    }
    if let Some(url) = payload["user_guide_url"].as_str() {
        body.push_str(&format!(
            "<a class=\"guide-link\" href=\"{}\">About accounts</a>",
            escape_html(url)
        ));
    }
    card("accounts", "Accounts", &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn renders_limits_and_exports() {
        let payload = json!({
            "accounts": [
                {"name": "physics", "cpus_in_use": 128, "cpus_queued": 32, "cpu_limit": 256,
                 "cpu_percent": 50.0, "cpu_color": "green",
                 "gpu_hours_used": 80.0, "gpu_hours_limit": 100.0, "gpu_color": "yellow",
                 "member_count": 5, "export_url": "/api/accounts/physics/export"},
                {"name": "bio", "cpus_in_use": 4, "cpus_queued": 0, "cpu_limit": null,
                 "cpu_percent": 0.0, "cpu_color": "green",
                 "gpu_hours_used": 0.0, "gpu_hours_limit": null, "gpu_color": "green",
                 "member_count": 2, "export_url": "/api/accounts/bio/export"},
            ],
            "user_guide_url": "https://example.edu/guide",
        });
        let html = render(&payload);
        assert!(html.contains("CPUs 128/256 in use, 32 queued"));
        assert!(html.contains("GPU hours 80.0/100"));
        assert!(html.contains("CPUs 4 in use, 0 queued (no limit)"));
        assert!(html.contains("/api/accounts/physics/export?format=excel"));
        assert!(html.contains("About accounts"));
    }

    #[test]
    fn empty_accounts_message() {
        let html = render(&json!({"accounts": []}));
        assert!(html.contains("No allocations found"));
    }
}
