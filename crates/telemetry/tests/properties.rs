//! Property tests for the TSDB internals: the Gorilla codec must be a
//! bit-exact round trip on every series shape (random walks, constants,
//! adversarial steps), and rollup buckets must conserve the min/max/sum/
//! count of the raw windows they summarize.

use hpcdash_telemetry::codec;
use hpcdash_telemetry::series::{RetentionPolicy, Series};
use proptest::prelude::*;

/// A compressible "sensor-like" series: mostly steady cadence with
/// occasional gaps, values doing a small quantized random walk.
fn random_walk() -> impl Strategy<Value = Vec<(i64, f64)>> {
    proptest::collection::vec((0u32..1_024, -40i64..40, 1u32..4), 0..400).prop_map(|steps| {
        let mut ts = 0i64;
        let mut level = 512i64;
        let mut out = Vec::with_capacity(steps.len());
        for (q, dv, gap) in steps {
            ts += 30 * i64::from(gap) + i64::from(q % 3);
            level = (level + dv).clamp(0, 1_024);
            out.push((ts, level as f64 / 1_024.0));
        }
        out
    })
}

/// Arbitrary timestamps (any i64 deltas, possibly non-monotonic) paired
/// with arbitrary bit patterns, NaNs and infinities included.
fn adversarial() -> impl Strategy<Value = Vec<(i64, f64)>> {
    proptest::collection::vec((any::<i64>(), any::<u64>()), 0..200)
        .prop_map(|v| v.into_iter().map(|(t, b)| (t, f64::from_bits(b))).collect())
}

fn assert_roundtrip(samples: &[(i64, f64)]) {
    let bytes = codec::compress(samples);
    let back = codec::decompress(&bytes).expect("decompress");
    assert_eq!(back.len(), samples.len());
    for (i, (a, b)) in samples.iter().zip(&back).enumerate() {
        assert_eq!(a.0, b.0, "timestamp {i}");
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "value bits {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn codec_roundtrips_random_walks(samples in random_walk()) {
        assert_roundtrip(&samples);
    }

    #[test]
    fn codec_roundtrips_adversarial_series(samples in adversarial()) {
        assert_roundtrip(&samples);
    }

    #[test]
    fn codec_roundtrips_constant_series(
        n in 0usize..500,
        start in any::<i64>(),
        bits in any::<u64>(),
    ) {
        let v = f64::from_bits(bits);
        let samples: Vec<(i64, f64)> =
            (0..n).map(|i| (start.wrapping_add(i as i64 * 30), v)).collect();
        assert_roundtrip(&samples);
    }

    #[test]
    fn codec_roundtrips_step_series(
        n in 1usize..300,
        lo_bits in any::<u64>(),
        hi_bits in any::<u64>(),
        period in 1usize..10,
    ) {
        // Hard case for the XOR window: values flip between two arbitrary
        // bit patterns, repeatedly invalidating the meaningful-bit window.
        let samples: Vec<(i64, f64)> = (0..n)
            .map(|i| {
                let bits = if (i / period) % 2 == 0 { lo_bits } else { hi_bits };
                (i as i64 * 30, f64::from_bits(bits))
            })
            .collect();
        assert_roundtrip(&samples);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every 1m and 10m rollup bucket must agree exactly with an
    /// aggregation recomputed from the raw points in its window.
    #[test]
    fn rollups_conserve_raw_windows(samples in random_walk()) {
        let mut series = Series::new(RetentionPolicy {
            // Huge retention so nothing expires mid-test; tiny chunks so
            // sealing happens even on short inputs.
            raw_secs: i64::MAX / 4,
            rollup_1m_secs: i64::MAX / 4,
            rollup_10m_secs: i64::MAX / 4,
            chunk_samples: 16,
        });
        let mut accepted: Vec<(i64, f64)> = Vec::new();
        for &(ts, v) in &samples {
            if series.append(ts, v).accepted {
                accepted.push((ts, v));
            }
        }
        let lo = accepted.first().map(|p| p.0).unwrap_or(0);
        let hi = accepted.last().map(|p| p.0).unwrap_or(0);

        for width in [60i64, 600] {
            let (buckets, _) = series.query_rollup(width, lo, hi);
            // The 10m tier only sees *closed* 1m buckets, so its coverage
            // lags the raw tail by up to one open 1m bucket; recompute
            // against the raw points each bucket could have seen.
            let cutoff = if width == 600 {
                accepted.last().map(|p| p.0 - p.0.rem_euclid(60)).unwrap_or(0)
            } else {
                i64::MAX
            };
            let mut covered = 0u64;
            for b in &buckets {
                let window: Vec<f64> = accepted
                    .iter()
                    .filter(|&&(t, _)| t >= b.start && t < b.start + width && t < cutoff)
                    .map(|&(_, v)| v)
                    .collect();
                prop_assert_eq!(b.count as usize, window.len(), "count @{}", b.start);
                covered += b.count;
                let min = window.iter().copied().fold(f64::INFINITY, f64::min);
                let max = window.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                prop_assert_eq!(b.min, min, "min @{}", b.start);
                prop_assert_eq!(b.max, max, "max @{}", b.start);
                let sum: f64 = window.iter().sum();
                prop_assert!((b.sum - sum).abs() <= 1e-9 * sum.abs().max(1.0),
                    "sum @{}: {} vs {}", b.start, b.sum, sum);
                prop_assert!((b.mean() - sum / window.len() as f64).abs() <= 1e-9);
            }
            // Buckets partition the samples they cover: nothing counted
            // twice, nothing (before the cutoff) dropped.
            let expect: u64 = accepted.iter().filter(|&&(t, _)| t < cutoff).count() as u64;
            prop_assert_eq!(covered, expect, "tier {} coverage", width);
        }
    }
}
