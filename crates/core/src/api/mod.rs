//! The backend API routes — one module per dashboard feature, each pairing
//! with exactly one frontend component (the paper's modularity rule, §2.3).
//!
//! Every module declares its `FEATURE` name and `SOURCES` (the data sources
//! of the paper's Table 1); [`feature_table`] assembles the declared table,
//! and `DashboardContext::observed_sources` records what each feature
//! actually touched at runtime so the Table-1 harness can verify the two
//! agree.

pub mod accounts;
pub mod activejobs;
pub mod admin;
pub mod announcements;
pub mod clusterstatus;
pub mod federation;
pub mod health;
pub mod jobmetrics;
pub mod joboverview;
pub mod jobtelemetry;
pub mod metrics;
pub mod myjobs;
pub mod nodeoverview;
pub mod observatory;
pub mod recent_jobs;
pub mod slurmrest;
pub mod storage;
pub mod system_status;
pub mod updates;

use crate::ctx::{DashboardContext, SourceOutcome};
use hpcdash_http::{CacheDecision, Request, Response, Router};

/// Turn a resilient fetch outcome into the widget's HTTP response — the
/// single place the per-widget degradation contract is encoded:
///
/// * `Fresh` — 200, payload unchanged.
/// * `Stale` — 200, payload annotated with `"degraded": true`,
///   `"stale_age_secs"`, and `"stale_error"` so the frontend can render the
///   accessible "showing data from N min ago" notice instead of silently
///   presenting old numbers as current.
/// * `Failed` — 503 with the error; only this widget goes dark.
pub(crate) fn respond(outcome: SourceOutcome) -> Response {
    // Note the degradation outcome on the current trace: tail sampling
    // retains every trace whose request was served stale or failed, even
    // though both can answer 200/503 — the status alone can't tell the
    // trace store a stale serve happened.
    match &outcome {
        SourceOutcome::Stale { .. } => hpcdash_obs::tracestore::annotate("outcome", "degraded"),
        SourceOutcome::Failed(_) => hpcdash_obs::tracestore::annotate("outcome", "failed"),
        SourceOutcome::Fresh(_) => {}
    }
    match outcome {
        // Only a fully fresh payload may enter the render-bytes cache;
        // degraded/stale responses keep their ages and banners per-request.
        SourceOutcome::Fresh(v) => Response::json(&v).mark_cacheable(),
        SourceOutcome::Stale {
            mut value,
            age_secs,
            error,
        } => {
            // Every route payload is a JSON object; anything else is served
            // unannotated rather than re-shaped under the client's feet.
            if let Some(obj) = value.as_object_mut() {
                obj.insert("degraded".to_string(), serde_json::json!(true));
                obj.insert("stale_age_secs".to_string(), serde_json::json!(age_secs));
                obj.insert("stale_error".to_string(), serde_json::json!(error));
            }
            Response::json(&value)
        }
        SourceOutcome::Failed(e) => Response::service_unavailable(&e),
    }
}

/// Render-cache admission shared by every cacheable GET route: decide the
/// cache key, epoch, and TTL for one request — or decline (`None`) so the
/// request flows uncached.
///
/// The key folds in everything that can change the bytes: the route and
/// concrete path (so `:param` routes key per target), the authenticated
/// identity with its admin bit, any `X-Act-As` impersonation, and the
/// query string. The version is the cluster snapshot's publication seq —
/// a new scheduler epoch invalidates implicitly, the same trick the
/// `/slurm/v0` response cache uses. `now`/TTL ride the sim clock so the
/// render cache can never outlive the JSON value cache underneath it, and
/// a TTL of zero (the no-cache ablation) disables render caching too.
pub(crate) fn render_decision(
    ctx: &DashboardContext,
    req: &Request,
    route: &'static str,
    ttl_secs: u64,
) -> Option<CacheDecision> {
    if ttl_secs == 0 {
        return None;
    }
    // Before admitting a cached render, react to any daemon recovery: the
    // purge must beat the lookup or a dead-epoch body could serve once.
    ctx.observe_recoveries();
    let user = req.remote_user()?; // anonymous requests 401 in the handler
    let is_admin = ctx.cfg.is_admin(user);
    let mut key = String::with_capacity(64);
    key.push_str(route);
    key.push('|');
    key.push_str(&req.path);
    key.push('|');
    key.push_str(if is_admin { "admin:" } else { "user:" });
    key.push_str(user);
    if is_admin {
        if let Some(target) = req.header("x-act-as") {
            key.push_str("|act:");
            key.push_str(target);
        }
    }
    for (k, v) in &req.query {
        key.push('|');
        key.push_str(k);
        key.push('=');
        key.push_str(v);
    }
    Some(CacheDecision {
        key,
        version: ctx.ctld.snapshot().seq,
        ttl_secs,
        now_secs: ctx.now().0,
    })
}

/// One row of the (declared) Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureInfo {
    pub feature: &'static str,
    pub routes: &'static [&'static str],
    pub sources: &'static [&'static str],
}

/// The daemon liveness/recovery section shared by `/api/health` and the
/// observatory summary: per-daemon down flag, restart count, checkpoint
/// count, and the last crash-recovery's honest accounting (what the WAL
/// replayed, what was lost, how long resync took).
pub(crate) fn daemons_payload(ctx: &DashboardContext) -> serde_json::Value {
    fn report(r: Option<hpcdash_slurm::durable::RecoveryReport>) -> serde_json::Value {
        match r {
            None => serde_json::Value::Null,
            Some(r) => serde_json::json!({
                "crashed_at": r.crashed_at.as_secs(),
                "recovered_at": r.recovered_at.as_secs(),
                "checkpoint_at": r.checkpoint_at.as_secs(),
                "wal_replayed": r.wal_replayed,
                "wal_lost": r.wal_lost,
                "epoch_before": r.epoch_before,
                "epoch_after": r.epoch_after,
                "duration_us": r.duration_micros,
            }),
        }
    }
    serde_json::json!({
        "slurmctld": {
            "down": ctx.ctld.is_down(),
            "restarts": ctx.ctld.restart_count(),
            "checkpoints": ctx.ctld.checkpoint_count(),
            "wal_unflushed": ctx.ctld.wal_unflushed(),
            "last_recovery": report(ctx.ctld.last_recovery()),
        },
        "slurmdbd": {
            "down": ctx.dbd.is_down(),
            "restarts": ctx.dbd.restart_count(),
            "checkpoints": ctx.dbd.checkpoint_count(),
            "last_recovery": report(ctx.dbd.last_recovery()),
        },
        "telemetry_gap_skips": ctx.telemetry.gap_skips(),
        "telemetry_last_gap_at": ctx.telemetry.last_gap_at(),
    })
}

/// Register every feature's API route(s).
pub fn register_all(router: &mut Router, ctx: &DashboardContext) {
    // The recovery watch purges the router's render-bytes cache after a
    // daemon crash-recovery; hand it over before any route can populate it.
    ctx.attach_render_cache(router.render_cache().clone());
    announcements::register(router, ctx.clone());
    recent_jobs::register(router, ctx.clone());
    system_status::register(router, ctx.clone());
    accounts::register(router, ctx.clone());
    storage::register(router, ctx.clone());
    myjobs::register(router, ctx.clone());
    jobmetrics::register(router, ctx.clone());
    clusterstatus::register(router, ctx.clone());
    joboverview::register(router, ctx.clone());
    nodeoverview::register(router, ctx.clone());
    // Beyond Table 1: the OOD baseline app (for the paper's §4 comparison),
    // the real-time updates feed, the admin job controls (§9 future work,
    // implemented), and the collector-backed job telemetry series.
    activejobs::register(router, ctx.clone());
    updates::register(router, ctx.clone());
    admin::register(router, ctx.clone());
    jobtelemetry::register(router, ctx.clone());
    // Observability endpoints (not dashboard widgets): metrics exposition
    // and data-source health.
    metrics::register(router, ctx.clone());
    health::register(router, ctx.clone());
    // The admin observatory: stored traces, self-metrics history, and the
    // SLO/breaker/profiler summary behind the `/observatory` page.
    observatory::register(router, ctx.clone());
    // The `/slurm/v0` structured family (token-scoped, snapshot-serialized).
    slurmrest::register(router, ctx.clone());
    // Multi-cluster federation: cross-site aggregates with honest per-site
    // degradation, plus cluster-scoped slices.
    federation::register(router, ctx.clone());
}

/// The declared feature -> data-source table (the paper's Table 1).
pub fn feature_table() -> Vec<FeatureInfo> {
    vec![
        FeatureInfo {
            feature: announcements::FEATURE,
            routes: announcements::ROUTES,
            sources: announcements::SOURCES,
        },
        FeatureInfo {
            feature: recent_jobs::FEATURE,
            routes: recent_jobs::ROUTES,
            sources: recent_jobs::SOURCES,
        },
        FeatureInfo {
            feature: system_status::FEATURE,
            routes: system_status::ROUTES,
            sources: system_status::SOURCES,
        },
        FeatureInfo {
            feature: accounts::FEATURE,
            routes: accounts::ROUTES,
            sources: accounts::SOURCES,
        },
        FeatureInfo {
            feature: storage::FEATURE,
            routes: storage::ROUTES,
            sources: storage::SOURCES,
        },
        FeatureInfo {
            feature: myjobs::FEATURE,
            routes: myjobs::ROUTES,
            sources: myjobs::SOURCES,
        },
        FeatureInfo {
            feature: jobmetrics::FEATURE,
            routes: jobmetrics::ROUTES,
            sources: jobmetrics::SOURCES,
        },
        FeatureInfo {
            feature: clusterstatus::FEATURE,
            routes: clusterstatus::ROUTES,
            sources: clusterstatus::SOURCES,
        },
        FeatureInfo {
            feature: joboverview::FEATURE,
            routes: joboverview::ROUTES,
            sources: joboverview::SOURCES,
        },
        FeatureInfo {
            feature: nodeoverview::FEATURE,
            routes: nodeoverview::ROUTES,
            sources: nodeoverview::SOURCES,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_ten_features_like_the_paper() {
        let table = feature_table();
        assert_eq!(table.len(), 10, "Table 1 lists ten features");
        for row in &table {
            assert!(!row.sources.is_empty(), "{} has no sources", row.feature);
            assert!(!row.routes.is_empty(), "{} has no routes", row.feature);
        }
    }

    #[test]
    fn slurm_backed_features_name_their_command() {
        let table = feature_table();
        let my_jobs = table
            .iter()
            .find(|r| r.feature.contains("My Jobs"))
            .unwrap();
        assert!(my_jobs.sources.iter().any(|s| s.contains("sacct")));
        let status = table
            .iter()
            .find(|r| r.feature.contains("System Status"))
            .unwrap();
        assert!(status.sources.iter().any(|s| s.contains("sinfo")));
    }
}
