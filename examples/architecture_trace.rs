//! Figure 1, regenerated as a trace: follow one widget refresh through every
//! layer of the system — browser cache, HTTP, API route, server cache, the
//! Slurm command layer, and the daemons — printing what happened at each hop.
//!
//! ```sh
//! cargo run --example architecture_trace
//! ```

use hpcdash::SimSite;
use hpcdash_client::FetchOutcome;
use hpcdash_workload::ScenarioConfig;

fn main() {
    let site = SimSite::build(ScenarioConfig::small());
    site.warm_up(900);
    let server = site.serve().expect("serve");
    let user = site.scenario.population.users[0].clone();
    let browser = site.browser(&server.base_url(), &user);

    println!("System architecture & data flow (Figure 1), traced live:\n");
    println!("  [browser {user}] --HTTP--> [Rails-analog backend] --commands--> [Slurm daemons]");
    println!("       |IndexedDB cache|         |in-memory TTL cache|     |slurmctld / slurmdbd|\n");

    let path = "/api/recent_jobs";
    let ttl = site.ctx().cfg.cache.recent_jobs;

    // --- Request 1: everything cold --------------------------------------
    let squeue_before = site.scenario.ctld.stats().count_of("squeue");
    let r1 = browser.fetch_api(path).expect("fetch");
    let squeue_after = site.scenario.ctld.stats().count_of("squeue");
    println!("request 1 (cold):");
    println!("  1. client cache: MISS");
    println!("  2. HTTP GET {path} -> 200 in {:?}", r1.network);
    println!("  3. server cache: MISS (loads, stores for {ttl}s)");
    println!(
        "  4. backend ran `squeue -u {user}` against slurmctld: {} RPC(s)",
        squeue_after - squeue_before
    );
    println!("  -> outcome {:?}, perceived {:?}\n", r1.outcome, r1.perceived);
    assert_eq!(r1.outcome, FetchOutcome::Network);

    // --- Request 2: client cache absorbs it -------------------------------
    let squeue_before = site.scenario.ctld.stats().count_of("squeue");
    let r2 = browser.fetch_api(path).expect("fetch");
    println!("request 2 (same browser, within client freshness):");
    println!("  1. client cache: HIT (age < {}s)", site.ctx().cfg.cache.client_fresh);
    println!("  2-4. no HTTP, no server cache, no slurmctld");
    println!(
        "  -> outcome {:?}, perceived {:?}, squeue RPCs +{}\n",
        r2.outcome,
        r2.perceived,
        site.scenario.ctld.stats().count_of("squeue") - squeue_before
    );
    assert_eq!(r2.outcome, FetchOutcome::CacheFresh);

    // --- Request 3: second user, server cache absorbs the backend ---------
    let user2 = site.scenario.population.users[1].clone();
    let browser2 = site.browser(&server.base_url(), &user2);
    let squeue_before = site.scenario.ctld.stats().count_of("squeue");
    let r3 = browser2.fetch_api("/api/system_status").expect("fetch");
    let first_hit = site.scenario.ctld.stats().count_of("sinfo");
    let r3b = browser.fetch_api("/api/system_status").expect("fetch");
    let second_hit = site.scenario.ctld.stats().count_of("sinfo");
    println!("request 3 (system-wide data, two different browsers):");
    println!("  browser {user2}: network fetch in {:?} (sinfo RPCs now {first_hit})", r3.network);
    println!(
        "  browser {user}: network fetch in {:?}, but server cache HIT (sinfo RPCs still {second_hit})",
        r3b.network
    );
    let _ = squeue_before;
    println!("\ndaemon load so far: {:?}", site.scenario.ctld.stats().snapshot().per_kind.keys().collect::<Vec<_>>());

    // --- Request 4: stale client entry revalidates ------------------------
    site.scenario.clock.advance(site.ctx().cfg.cache.client_fresh + 1);
    let r4 = browser.fetch_api(path).expect("fetch");
    println!("\nrequest 4 (after {}s of simulated time):", site.ctx().cfg.cache.client_fresh + 1);
    println!("  1. client cache: STALE -> rendered instantly ({:?})", r4.perceived);
    println!("  2. background revalidation over HTTP took {:?}", r4.network);
    assert_eq!(r4.outcome, FetchOutcome::StaleRevalidated);

    println!("\ntrace complete: one data flow, four cache behaviours.");
}
