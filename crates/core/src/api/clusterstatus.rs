//! Cluster Status API (paper §6): every node's state for the grid and list
//! views, from `scontrol show node`.

use crate::auth::CurrentUser;
use crate::colors::{node_color, utilization_color};
use crate::ctx::DashboardContext;
use hpcdash_http::{Request, Response, Router};
use hpcdash_slurmcli::{parse_show_node, show_node};
use serde_json::json;

pub const FEATURE: &str = "Cluster Status";
pub const ROUTES: &[&str] = &["/api/clusterstatus"];
pub const SOURCES: &[&str] = &["scontrol show node (slurmctld)"];

pub fn register(router: &mut Router, ctx: DashboardContext) {
    let keyctx = ctx.clone();
    router.get_cached(
        ROUTES[0],
        move |req| {
            let ttl = keyctx.cfg.cache.cluster_status;
            super::render_decision(&keyctx, req, ROUTES[0], ttl)
        },
        move |req| handle(&ctx, req),
    );
}

fn handle(ctx: &DashboardContext, req: &Request) -> Response {
    if let Err(resp) = CurrentUser::from_request(ctx, req) {
        return resp;
    }
    let outcome = ctx.cached_resilient("clusterstatus", ctx.cfg.cache.cluster_status, || {
        ctx.note_source(FEATURE, "scontrol show node (slurmctld)");
        let text = show_node(&ctx.ctld, None)?;
        let nodes = parse_show_node(&text).map_err(|e| format!("scontrol parse: {e}"))?;
        Ok(json!({
            "nodes": nodes
                .iter()
                .map(|n| {
                    let cpu_frac = if n.cpu_total > 0 {
                        n.cpu_alloc as f64 / n.cpu_total as f64
                    } else {
                        0.0
                    };
                    let mem_frac = if n.real_memory_mb > 0 {
                        n.alloc_memory_mb as f64 / n.real_memory_mb as f64
                    } else {
                        0.0
                    };
                    json!({
                        "name": n.name,
                        "state": n.state.to_slurm(),
                        // Grid-view cell colour (paper §6's legend).
                        "color": node_color(n.state),
                        "cpus_alloc": n.cpu_alloc,
                        "cpus_total": n.cpu_total,
                        "cpu_percent": (cpu_frac * 1000.0).round() / 10.0,
                        "cpu_color": utilization_color(cpu_frac),
                        "cpu_load": n.cpu_load,
                        "mem_alloc_mb": n.alloc_memory_mb,
                        "mem_total_mb": n.real_memory_mb,
                        "mem_percent": (mem_frac * 1000.0).round() / 10.0,
                        "mem_color": utilization_color(mem_frac),
                        "partitions": n.partitions,
                        "gres": n.gres,
                        "gres_used": n.gres_used,
                        "reason": n.reason,
                        "overview_url": format!("/nodes/{}", n.name),
                    })
                })
                .collect::<Vec<_>>(),
        }))
    });
    super::respond(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::tests::test_ctx;
    use hpcdash_http::Method;
    use hpcdash_slurm::job::JobRequest;
    use hpcdash_slurm::node::AdminFlag;

    fn request() -> Request {
        Request::new(Method::Get, "/api/clusterstatus").with_header("X-Remote-User", "alice")
    }

    #[test]
    fn reports_node_states_and_colors() {
        let ctx = test_ctx();
        ctx.ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 8))
            .unwrap();
        ctx.ctld.tick();
        let resp = handle(&ctx, &request());
        assert_eq!(resp.status, 200);
        let nodes = resp.body_json().unwrap()["nodes"]
            .as_array()
            .unwrap()
            .to_vec();
        assert_eq!(nodes.len(), 1);
        let n = &nodes[0];
        assert_eq!(n["name"], "a001");
        assert_eq!(n["state"], "MIXED");
        assert_eq!(n["color"], "green");
        assert_eq!(n["cpus_alloc"], 8);
        assert_eq!(n["cpu_percent"], 50.0);
        assert_eq!(n["overview_url"], "/nodes/a001");
        assert_eq!(n["partitions"][0], "cpu");
    }

    #[test]
    fn drained_node_shows_reason_and_yellow() {
        let ctx = test_ctx();
        ctx.ctld
            .set_node_flag("a001", AdminFlag::Drain, Some("bad disk".to_string()));
        let resp = handle(&ctx, &request());
        let nodes = resp.body_json().unwrap()["nodes"]
            .as_array()
            .unwrap()
            .to_vec();
        assert_eq!(nodes[0]["state"], "DRAINED");
        assert_eq!(nodes[0]["color"], "yellow");
        assert_eq!(nodes[0]["reason"], "bad_disk");
    }
}
