//! A small HTTP/1.1 stack on `std::net`: server, router, worker pool, and a
//! blocking client.
//!
//! This is the 3-tier glue of the reproduction: the dashboard's backend
//! (Rails in the paper) serves JSON API routes and HTML shells over this
//! server; the headless browser (`hpcdash-client`) talks to it with the
//! client half. Handlers run inside `catch_unwind`, so one crashing route
//! degrades to a 500 for that component only — the modularity property the
//! paper calls out (§2.4) and the fault-isolation benches verify.

pub mod client;
pub mod longpoll;
pub mod request;
pub mod response;
pub mod router;
pub mod server;
pub mod threadpool;

pub use client::{ClientError, ClientResponse, HttpClient};
pub use longpoll::{ParkBudget, ParkPermit};
pub use request::{Method, Request};
pub use response::Response;
pub use router::{Router, TRACE_HEADER};
pub use server::Server;
pub use threadpool::ThreadPool;
