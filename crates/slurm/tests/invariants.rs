//! Property tests: whatever sequence of submissions, cancellations and
//! clock advances the cluster experiences, the simulator's books must
//! balance. These are the invariants every dashboard number sits on.

use hpcdash_simtime::{TimeLimit, Timestamp};
use hpcdash_slurm::assoc::{Account, AssocStore};
use hpcdash_slurm::cluster::{ClusterSpec, ClusterState};
use hpcdash_slurm::job::{ArraySpec, JobId, JobRequest, JobState, PlannedOutcome, UsageProfile};
use hpcdash_slurm::node::Node;
use hpcdash_slurm::partition::Partition;
use hpcdash_slurm::qos::Qos;
use hpcdash_slurm::tres::Tres;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Submit {
        user_idx: usize,
        cpus: u32,
        nodes: u32,
        mem_per_cpu: u64,
        runtime: u64,
        limit: u64,
        outcome: u8,
        array: Option<(u32, Option<u32>)>,
    },
    Cancel {
        nth_active: usize,
    },
    Advance {
        secs: u64,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (
            0usize..4,
            prop_oneof![Just(1u32), Just(2), Just(4), Just(8), Just(16)],
            1u32..=2,
            512u64..3_000,
            30u64..2_000,
            60u64..3_000,
            0u8..5,
            proptest::option::of((1u32..6, proptest::option::of(1u32..3))),
        )
            .prop_map(|(user_idx, cpus, nodes, mem_per_cpu, runtime, limit, outcome, array)| {
                Op::Submit {
                    user_idx,
                    cpus,
                    nodes,
                    mem_per_cpu,
                    runtime,
                    limit,
                    outcome,
                    array,
                }
            }),
        1 => (0usize..8).prop_map(|nth_active| Op::Cancel { nth_active }),
        3 => (1u64..600).prop_map(|secs| Op::Advance { secs }),
    ]
}

fn users() -> [&'static str; 4] {
    ["alice", "bob", "carol", "dave"]
}

fn cluster() -> ClusterState {
    let mut assoc = AssocStore::new();
    assoc.add_account(Account::new("physics").with_cpu_limit(24));
    assoc.add_account(Account::new("bio"));
    for u in users() {
        assoc.add_user("physics", u);
    }
    assoc.add_user("bio", "alice");
    assoc.add_user("bio", "bob");
    let nodes: Vec<Node> = (1..=3)
        .map(|i| Node::new(format!("n{i:02}"), 16, 32_000, 0))
        .collect();
    let names: Vec<String> = nodes.iter().map(|n| n.name.clone()).collect();
    ClusterState::new(ClusterSpec {
        name: "prop".to_string(),
        nodes,
        partitions: vec![Partition::new("cpu").with_nodes(names).default_partition()],
        qos: Qos::standard_set(),
        assoc,
    })
}

fn apply(cluster: &mut ClusterState, op: &Op, now: &mut u64, submitted: &mut u64) {
    match op {
        Op::Submit {
            user_idx,
            cpus,
            nodes,
            mem_per_cpu,
            runtime,
            limit,
            outcome,
            array,
        } => {
            let user = users()[*user_idx];
            let account = if *user_idx < 2 && cpus % 2 == 0 {
                "bio"
            } else {
                "physics"
            };
            // bio membership is alice/bob only.
            let account = if account == "bio" && *user_idx >= 2 {
                "physics"
            } else {
                account
            };
            let mut req = JobRequest::simple(user, account, "cpu", *cpus);
            req.nodes = *nodes;
            req.mem_mb_per_node = (*cpus as u64 * mem_per_cpu).min(32_000);
            req.time_limit = TimeLimit::Limited(*limit);
            req.array = array.map(|(last, thr)| ArraySpec {
                first: 0,
                last,
                max_concurrent: thr,
            });
            req.usage = UsageProfile {
                cpu_util: 0.8,
                mem_util: 0.5,
                gpu_util: 0.0,
                planned_runtime_secs: *runtime,
                outcome: match outcome {
                    0 => PlannedOutcome::Success,
                    1 => PlannedOutcome::Fail { exit_code: 1 },
                    2 => PlannedOutcome::OutOfMemory,
                    3 => PlannedOutcome::RunsOverLimit,
                    _ => PlannedOutcome::CancelledMidway,
                },
            };
            if let Ok(ids) = cluster.submit(req, Timestamp(*now)) {
                *submitted += ids.len() as u64;
            }
        }
        Op::Cancel { nth_active } => {
            let target: Option<(JobId, String)> = cluster
                .active_jobs()
                .nth(*nth_active)
                .map(|j| (j.id, j.req.user.clone()));
            if let Some((id, user)) = target {
                let _ = cluster.cancel(id, &user, Timestamp(*now));
            }
        }
        Op::Advance { secs } => {
            *now += secs;
            cluster.tick(Timestamp(*now));
        }
    }
}

fn check_invariants(cluster: &ClusterState, now: u64) {
    // 1. No node is over-allocated.
    for node in cluster.nodes.values() {
        assert!(node.alloc.cpus <= node.cpus, "{} cpu over-alloc", node.name);
        assert!(
            node.alloc.mem_mb <= node.real_memory_mb,
            "{} mem over-alloc",
            node.name
        );
        assert!(node.alloc.gpus <= node.gpus, "{} gpu over-alloc", node.name);
    }

    // 2. Node allocations equal the sum of running jobs' footprints.
    let mut expected: BTreeMap<&str, Tres> = BTreeMap::new();
    for job in cluster.active_jobs() {
        if job.state == JobState::Running {
            for node in &job.nodes {
                let t = expected.entry(node.as_str()).or_default();
                *t = t.plus(Tres {
                    nodes: 0,
                    ..job.req.per_node_tres()
                });
            }
        }
    }
    for node in cluster.nodes.values() {
        let want = expected
            .get(node.name.as_str())
            .copied()
            .unwrap_or_default();
        assert_eq!(
            node.alloc, want,
            "node {} allocation does not match running jobs at t={now}",
            node.name
        );
    }

    // 3. Association accounting matches the live queue.
    let mut running: BTreeMap<String, u32> = BTreeMap::new();
    let mut queued: BTreeMap<String, u32> = BTreeMap::new();
    for job in cluster.active_jobs() {
        match job.state {
            JobState::Running | JobState::Suspended => {
                *running.entry(job.req.account.clone()).or_insert(0) += job.alloc_cpus();
            }
            JobState::Pending => {
                *queued.entry(job.req.account.clone()).or_insert(0) += job.alloc_cpus();
            }
            _ => {}
        }
    }
    for account in ["physics", "bio"] {
        let usage = cluster.assoc.usage(account).cloned().unwrap_or_default();
        assert_eq!(
            usage.cpus_running,
            running.get(account).copied().unwrap_or(0),
            "{account} running-cpu ledger at t={now}"
        );
        assert_eq!(
            usage.cpus_queued,
            queued.get(account).copied().unwrap_or(0),
            "{account} queued-cpu ledger at t={now}"
        );
    }

    // 4. Group limits hold for running work.
    let physics_cap = cluster
        .assoc
        .account("physics")
        .unwrap()
        .grp_cpu_limit
        .unwrap();
    assert!(
        running.get("physics").copied().unwrap_or(0) <= physics_cap,
        "GrpTRES cpu cap violated at t={now}"
    );

    // 5. Running jobs sit on distinct existing nodes and have timestamps in
    //    order.
    for job in cluster.active_jobs() {
        if job.state == JobState::Running {
            let mut nodes = job.nodes.clone();
            let before = nodes.len();
            nodes.sort();
            nodes.dedup();
            assert_eq!(
                nodes.len(),
                before,
                "job {} node list has duplicates",
                job.id
            );
            for n in &nodes {
                assert!(
                    cluster.node(n).is_some(),
                    "job {} on unknown node {n}",
                    job.id
                );
            }
            let start = job.start_time.expect("running job has start");
            assert!(start >= job.submit_time);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ledgers_balance_under_random_ops(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut cluster = cluster();
        let mut now = 0u64;
        let mut submitted = 0u64;
        for op in &ops {
            apply(&mut cluster, op, &mut now, &mut submitted);
            check_invariants(&cluster, now);
        }
        // Drain. Jobs stuck behind unsatisfiable group limits pend forever
        // (as in real Slurm), so after letting the queue run down we cancel
        // whatever remains, the way users eventually do.
        for _ in 0..100 {
            now += 600;
            cluster.tick(Timestamp(now));
            check_invariants(&cluster, now);
            if cluster.active_jobs().count() == 0 {
                break;
            }
        }
        let stuck: Vec<(JobId, String)> = cluster
            .active_jobs()
            .map(|j| (j.id, j.req.user.clone()))
            .collect();
        for (id, user) in stuck {
            cluster.cancel(id, &user, Timestamp(now)).expect("cancel leftover");
            check_invariants(&cluster, now);
        }
        now += 600;
        cluster.tick(Timestamp(now));
        check_invariants(&cluster, now);
        prop_assert_eq!(cluster.active_jobs().count(), 0, "queue did not drain");
        for node in cluster.nodes.values() {
            prop_assert_eq!(node.alloc.cpus, 0);
            prop_assert_eq!(node.alloc.mem_mb, 0);
        }
        // Every submission is accounted for in the finished stream.
        let finished = cluster.drain_finished();
        prop_assert_eq!(finished.len() as u64, submitted);
        // Event log recorded a submit event per job.
        let (events, _) = cluster.events().since(0);
        let submits = events.iter().filter(|e| e.from.is_none()).count() as u64;
        prop_assert!(submits <= submitted, "log is bounded, cannot exceed submissions");
    }
}
