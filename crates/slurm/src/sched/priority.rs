//! Multifactor job priority, modelled on Slurm's priority/multifactor
//! plugin: a weighted sum of age, fairshare, QoS and partition factors.

use crate::assoc::AssocStore;
use crate::job::Job;
use crate::partition::Partition;
use crate::qos::Qos;
use hpcdash_simtime::Timestamp;

/// Weights for the priority factors. Defaults approximate a typical
/// university-cluster configuration.
#[derive(Debug, Clone, Copy)]
pub struct PriorityWeights {
    pub age: u64,
    pub fairshare: u64,
    pub qos: u64,
    pub partition: u64,
    /// Age saturates after this many seconds (Slurm's `PriorityMaxAge`).
    pub max_age_secs: u64,
}

impl Default for PriorityWeights {
    fn default() -> PriorityWeights {
        PriorityWeights {
            age: 1_000,
            fairshare: 10_000,
            qos: 1,
            partition: 100,
            max_age_secs: 7 * 86_400,
        }
    }
}

/// Compute a job's scheduling priority at `now`.
pub fn compute_priority(
    job: &Job,
    now: Timestamp,
    assoc: &AssocStore,
    qos: Option<&Qos>,
    partition: Option<&Partition>,
    weights: &PriorityWeights,
) -> u64 {
    let age_secs = now.since(job.eligible_time).min(weights.max_age_secs);
    let age_factor = age_secs as f64 / weights.max_age_secs as f64;
    let fs_factor = assoc.fairshare(&job.req.account);
    let qos_prio = qos.map(|q| q.priority as u64).unwrap_or(0);
    let tier = partition.map(|p| p.priority_tier as u64).unwrap_or(1);

    (age_factor * weights.age as f64) as u64
        + (fs_factor * weights.fairshare as f64) as u64
        + qos_prio * weights.qos
        + tier * weights.partition
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assoc::Account;
    use crate::job::{JobId, JobRequest, JobState};

    fn job_at(eligible: u64) -> Job {
        let req = JobRequest::simple("alice", "physics", "cpu", 4);
        Job {
            id: JobId(1),
            array: None,
            req,
            state: JobState::Pending,
            reason: None,
            priority: 0,
            submit_time: Timestamp(eligible),
            eligible_time: Timestamp(eligible),
            start_time: None,
            end_time: None,
            nodes: Vec::new(),
            exit_code: None,
            stats: None,
            stdout_path: String::new(),
            stderr_path: String::new(),
        }
    }

    fn assoc() -> AssocStore {
        let mut a = AssocStore::new();
        a.add_account(Account::new("physics"));
        a.add_user("physics", "alice");
        a
    }

    #[test]
    fn age_increases_priority() {
        let a = assoc();
        let w = PriorityWeights::default();
        let job = job_at(0);
        let p_young = compute_priority(&job, Timestamp(60), &a, None, None, &w);
        let p_old = compute_priority(&job, Timestamp(86_400), &a, None, None, &w);
        assert!(p_old > p_young);
    }

    #[test]
    fn age_saturates() {
        let a = assoc();
        let w = PriorityWeights::default();
        let job = job_at(0);
        let p1 = compute_priority(&job, Timestamp(w.max_age_secs), &a, None, None, &w);
        let p2 = compute_priority(&job, Timestamp(w.max_age_secs * 5), &a, None, None, &w);
        assert_eq!(p1, p2);
    }

    #[test]
    fn heavy_usage_lowers_priority() {
        let mut a = assoc();
        let w = PriorityWeights::default();
        let job = job_at(0);
        let before = compute_priority(&job, Timestamp(0), &a, None, None, &w);
        a.note_start("physics", 1_000);
        a.note_end("physics", "alice", 1_000, 0, 360_000, 1.0);
        let after = compute_priority(&job, Timestamp(0), &a, None, None, &w);
        assert!(after < before);
    }

    #[test]
    fn qos_priority_adds() {
        let a = assoc();
        let w = PriorityWeights::default();
        let job = job_at(0);
        let base = compute_priority(&job, Timestamp(0), &a, None, None, &w);
        let high = Qos::new("high", 10_000);
        let boosted = compute_priority(&job, Timestamp(0), &a, Some(&high), None, &w);
        assert_eq!(boosted, base + 10_000);
    }
}
