//! A blocking HTTP client (one request per connection), used by the
//! headless browser and the load generator.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    BadUrl(String),
    Io(std::io::Error),
    Malformed(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::BadUrl(u) => write!(f, "bad url: {u}"),
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Malformed(m) => write!(f, "malformed response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A received response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    pub status: u16,
    pub headers: BTreeMap<String, String>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    pub fn body_string(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    pub fn json(&self) -> Result<serde_json::Value, serde_json::Error> {
        serde_json::from_slice(&self.body)
    }

    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }
}

/// The client. Stateless; safe to share across threads by cloning.
#[derive(Debug, Clone)]
pub struct HttpClient {
    timeout: Duration,
}

impl HttpClient {
    pub fn new() -> HttpClient {
        HttpClient {
            timeout: Duration::from_secs(10),
        }
    }

    pub fn with_timeout(timeout: Duration) -> HttpClient {
        HttpClient { timeout }
    }

    pub fn get(&self, url: &str, headers: &[(&str, &str)]) -> Result<ClientResponse, ClientError> {
        self.request("GET", url, headers, Vec::new())
    }

    pub fn post(
        &self,
        url: &str,
        headers: &[(&str, &str)],
        body: Vec<u8>,
    ) -> Result<ClientResponse, ClientError> {
        self.request("POST", url, headers, body)
    }

    fn request(
        &self,
        method: &str,
        url: &str,
        headers: &[(&str, &str)],
        body: Vec<u8>,
    ) -> Result<ClientResponse, ClientError> {
        let (host, path) = split_url(url).ok_or_else(|| ClientError::BadUrl(url.to_string()))?;
        let stream = TcpStream::connect(&host)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true)?;

        let mut req = format!("{method} {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n");
        for (k, v) in headers {
            req.push_str(&format!("{k}: {v}\r\n"));
        }
        if !body.is_empty() {
            req.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        req.push_str("\r\n");

        let mut write_half = stream.try_clone()?;
        write_half.write_all(req.as_bytes())?;
        write_half.write_all(&body)?;
        write_half.flush()?;

        read_response(&mut BufReader::new(stream))
    }
}

impl Default for HttpClient {
    fn default() -> HttpClient {
        HttpClient::new()
    }
}

fn split_url(url: &str) -> Option<(String, String)> {
    let rest = url.strip_prefix("http://")?;
    let (host, path) = match rest.split_once('/') {
        Some((h, p)) => (h.to_string(), format!("/{p}")),
        None => (rest.to_string(), "/".to_string()),
    };
    if host.is_empty() {
        return None;
    }
    Some((host, path))
}

fn read_response(reader: &mut impl BufRead) -> Result<ClientResponse, ClientError> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let mut parts = status_line.split_whitespace();
    let version = parts.next().unwrap_or_default();
    if !version.starts_with("HTTP/1.") {
        return Err(ClientError::Malformed(format!(
            "bad status line: {status_line:?}"
        )));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Malformed("missing status code".to_string()))?;

    let mut headers = BTreeMap::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Malformed("eof in headers".to_string()));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((k, v)) = trimmed.split_once(':') {
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
        }
    }

    let body = match headers
        .get("content-length")
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf)?;
            buf
        }
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
    };

    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_splitting() {
        assert_eq!(
            split_url("http://127.0.0.1:8080/api/jobs?x=1"),
            Some(("127.0.0.1:8080".to_string(), "/api/jobs?x=1".to_string()))
        );
        assert_eq!(
            split_url("http://localhost:9"),
            Some(("localhost:9".to_string(), "/".to_string()))
        );
        assert!(split_url("https://secure").is_none());
        assert!(split_url("ftp://x").is_none());
        assert!(split_url("http://").is_none());
    }

    #[test]
    fn parses_response_with_body() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 5\r\n\r\nhello";
        let resp = read_response(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.is_success());
        assert_eq!(resp.header("content-type"), Some("text/plain"));
        assert_eq!(resp.body_string(), "hello");
    }

    #[test]
    fn parses_response_without_length() {
        let raw = b"HTTP/1.1 404 Not Found\r\n\r\ngone";
        let resp = read_response(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(resp.status, 404);
        assert_eq!(resp.body_string(), "gone");
    }

    #[test]
    fn rejects_non_http() {
        let raw = b"SPDY/3 200\r\n\r\n";
        assert!(read_response(&mut BufReader::new(&raw[..])).is_err());
    }
}
