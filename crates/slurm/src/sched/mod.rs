//! The scheduler: multifactor priority, node selection, and EASY backfill.
//!
//! The goal is not to clone slurmctld's scheduler bit-for-bit but to produce
//! the *observable behaviour* the dashboard reports on: realistic mixes of
//! `Priority`/`Resources`/limit pending reasons, queue wait times that react
//! to load, backfilled short jobs, and per-account usage accounting.

pub mod backfill;
pub mod fit;
pub mod priority;

pub use backfill::{plan_schedule, PlanInputs, RunningJobInfo, ScheduleDecision, SchedulePlan};
pub use fit::{could_ever_fit, select_nodes};
pub use priority::{compute_priority, PriorityWeights};
