//! Node Overview API (paper §6.1): one node's status card, resource card,
//! configuration details, and the jobs currently running on it.

use crate::auth::CurrentUser;
use crate::colors::{node_color, utilization_color};
use crate::ctx::DashboardContext;
use hpcdash_http::{Request, Response, Router};
use hpcdash_slurm::ctld::JobQuery;
use hpcdash_slurm::job::Job;
use hpcdash_slurmcli::{node_fields, parse_show_node, show_node, ScontrolNode};
use serde_json::json;
use std::sync::Arc;

pub const FEATURE: &str = "Node Overview";
pub const ROUTES: &[&str] = &["/api/nodes/:name"];
pub const SOURCES: &[&str] = &["scontrol show node (slurmctld)", "squeue (slurmctld)"];

pub fn register(router: &mut Router, ctx: DashboardContext) {
    let keyctx = ctx.clone();
    router.get_cached(
        ROUTES[0],
        move |req| {
            let ttl = keyctx.cfg.cache.node_overview;
            super::render_decision(&keyctx, req, ROUTES[0], ttl)
        },
        move |req| handle(&ctx, req),
    );
}

fn handle(ctx: &DashboardContext, req: &Request) -> Response {
    if let Err(resp) = CurrentUser::from_request(ctx, req) {
        return resp;
    }
    let Some(name) = req.param("name").map(str::to_string) else {
        return Response::bad_request("missing node name");
    };
    let key = format!("node:{name}");
    let outcome = ctx.cached_resilient(&key, ctx.cfg.cache.node_overview, || {
        if ctx.cfg.features.structured_widgets {
            load_structured(ctx, &name)
        } else {
            load_text(ctx, &name)
        }
    });
    let served = match &outcome {
        crate::ctx::SourceOutcome::Fresh(v) => Some(v),
        crate::ctx::SourceOutcome::Stale { value, .. } => Some(value),
        crate::ctx::SourceOutcome::Failed(_) => None,
    };
    if served.is_some_and(|v| v["not_found"] == serde_json::json!(true)) {
        return Response::not_found(&format!("node {name} not found"));
    }
    super::respond(outcome)
}

/// The stock loader: render `scontrol show node` text and parse it back.
fn load_text(ctx: &DashboardContext, name: &str) -> Result<serde_json::Value, String> {
    ctx.note_source(FEATURE, "scontrol show node (slurmctld)");
    let text = show_node(&ctx.ctld, Some(name))?;
    if text.is_empty() {
        // A bad node name is data, not a backend failure: returning Ok
        // keeps retries, health errors, and the breaker out of 404s.
        return Ok(json!({ "not_found": true }));
    }
    let nodes = parse_show_node(&text).map_err(|e| format!("scontrol parse: {e}"))?;
    let n = nodes.into_iter().next().ok_or("empty scontrol output")?;

    // Running-jobs tab: every job on this node (name/user/partition are
    // public queue data, as in squeue).
    ctx.note_source(FEATURE, "squeue (slurmctld)");
    let jobs = ctx.ctld.query_jobs(&JobQuery {
        node: Some(name.to_string()),
        ..JobQuery::default()
    });
    Ok(payload(&n, &jobs))
}

/// The `structured_widgets` opt-in: the same payload straight from the
/// snapshot. `node_fields` supplies the details tab as the exact token map
/// `scontrol show node` would have rendered (property-tested in slurmcli),
/// so the two paths serve identical JSON. `scontrol_node` error faults
/// still fail this loader, matching the text path's chaos behaviour.
fn load_structured(ctx: &DashboardContext, name: &str) -> Result<serde_json::Value, String> {
    ctx.note_source(FEATURE, "scontrol show node (slurmctld)");
    if ctx.ctld.faults().is_armed() {
        let check = ctx.ctld.faults().check("scontrol_node");
        check.burn();
        if let Some(msg) = check.error() {
            return Err(msg.to_string());
        }
    }
    let snap = ctx.ctld.snapshot();
    let Some(node) = snap.nodes.iter().find(|n| n.name == name) else {
        return Ok(json!({ "not_found": true }));
    };
    let raw = node_fields(node);
    let view = ScontrolNode {
        name: node.name.clone(),
        state: node.state(),
        cpu_alloc: node.alloc.cpus,
        cpu_total: node.cpus,
        cpu_load: node.cpu_load,
        real_memory_mb: node.real_memory_mb,
        alloc_memory_mb: node.alloc.mem_mb,
        gres: raw.get("Gres").cloned(),
        gres_used: raw.get("GresUsed").cloned(),
        features: node.features.clone(),
        partitions: node.partitions.clone(),
        os: node.os.clone(),
        boot_time: Some(node.boot_time),
        last_busy: Some(node.last_busy),
        reason: raw.get("Reason").cloned(),
        raw,
    };
    ctx.note_source(FEATURE, "squeue (slurmctld)");
    let jobs: Vec<Arc<Job>> = snap
        .jobs
        .iter()
        .filter(|j| j.nodes.iter().any(|n| n == name))
        .cloned()
        .collect();
    Ok(payload(&view, &jobs))
}

/// The response both loaders share — one shape, two provenances.
fn payload(n: &ScontrolNode, jobs: &[Arc<Job>]) -> serde_json::Value {
    let cpu_frac = if n.cpu_total > 0 {
        n.cpu_alloc as f64 / n.cpu_total as f64
    } else {
        0.0
    };
    let mem_frac = if n.real_memory_mb > 0 {
        n.alloc_memory_mb as f64 / n.real_memory_mb as f64
    } else {
        0.0
    };
    let gpu_usage = n.gres_used.as_deref().and_then(parse_gres_count);
    let gpu_total = n.gres.as_deref().and_then(parse_gres_count);

    json!({
        "status_card": {
            "name": n.name,
            "state": n.state.to_slurm(),
            "color": node_color(n.state),
            "last_busy": n.last_busy.map(|t| t.to_slurm()),
            "reason": n.reason,
        },
        "resource_card": {
            "cpu": {
                "alloc": n.cpu_alloc,
                "total": n.cpu_total,
                "percent": (cpu_frac * 1000.0).round() / 10.0,
                "color": utilization_color(cpu_frac),
            },
            "memory": {
                "alloc_mb": n.alloc_memory_mb,
                "total_mb": n.real_memory_mb,
                "percent": (mem_frac * 1000.0).round() / 10.0,
                "color": utilization_color(mem_frac),
            },
            "gpu": match (gpu_usage, gpu_total) {
                (Some(used), Some(total)) if total > 0 => {
                    let frac = used as f64 / total as f64;
                    json!({
                        "alloc": used,
                        "total": total,
                        "percent": (frac * 1000.0).round() / 10.0,
                        "color": utilization_color(frac),
                    })
                }
                _ => serde_json::Value::Null,
            },
        },
        // Details tab: the raw scontrol fields (paper: "pulled directly
        // from Slurm's scontrol show node command").
        "details": n.raw,
        "running_jobs": jobs
            .iter()
            .map(|j| json!({
                "id": j.display_id(),
                "name": j.req.name,
                "user": j.req.user,
                "partition": j.req.partition,
                "state": j.state.to_slurm(),
                "alloc_cpus": j.req.cpus_per_node,
                "alloc_mem_mb": j.req.mem_mb_per_node,
                "overview_url": format!("/jobs/{}", j.display_id()),
            }))
            .collect::<Vec<_>>(),
    })
}

/// Count trailing `:N` of a gres string like `gpu:a100:4`.
fn parse_gres_count(gres: &str) -> Option<u32> {
    gres.rsplit(':').next()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::tests::test_ctx;
    use hpcdash_http::Method;
    use hpcdash_slurm::job::JobRequest;

    fn request(node: &str) -> Request {
        let mut r = Request::new(Method::Get, &format!("/api/nodes/{node}"))
            .with_header("X-Remote-User", "alice");
        r.params.insert("name".to_string(), node.to_string());
        r
    }

    #[test]
    fn cards_details_and_running_jobs() {
        let ctx = test_ctx();
        ctx.ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 8))
            .unwrap();
        ctx.ctld.tick();
        let resp = handle(&ctx, &request("a001"));
        assert_eq!(resp.status, 200, "{}", resp.body_string());
        let body = resp.body_json().unwrap();
        assert_eq!(body["status_card"]["name"], "a001");
        assert_eq!(body["status_card"]["state"], "MIXED");
        assert_eq!(body["resource_card"]["cpu"]["alloc"], 8);
        assert_eq!(body["resource_card"]["cpu"]["percent"], 50.0);
        assert!(
            body["details"]["CPUTot"].is_string(),
            "raw scontrol fields exposed"
        );
        let jobs = body["running_jobs"].as_array().unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0]["user"], "alice");
    }

    #[test]
    fn unknown_node_is_404() {
        let ctx = test_ctx();
        assert_eq!(handle(&ctx, &request("zzz")).status, 404);
    }

    #[test]
    fn structured_path_matches_text_path_without_parsing() {
        let ctx = test_ctx();
        ctx.ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 8))
            .unwrap();
        ctx.ctld.tick();
        let text = handle(&ctx, &request("a001")).body_json().unwrap();

        let sctx = crate::api::activejobs::tests::structured_twin(&ctx);
        let parses = hpcdash_slurmcli::parse_call_count();
        let structured = handle(&sctx, &request("a001")).body_json().unwrap();
        assert_eq!(structured, text, "flag changes the path, not the payload");
        assert_eq!(hpcdash_slurmcli::parse_call_count(), parses);
        // not_found semantics survive the structured path too.
        assert_eq!(handle(&sctx, &request("zzz")).status, 404);
    }

    #[test]
    fn gres_count_parser() {
        assert_eq!(parse_gres_count("gpu:a100:4"), Some(4));
        assert_eq!(parse_gres_count("gpu:2"), Some(2));
        assert_eq!(parse_gres_count("gpu"), None);
    }
}
