//! The `/slurm/v0` family end to end over HTTP: deny-by-default 401s with
//! structured error bodies, the mint → use → revoke token lifecycle, the
//! scope-vs-privacy parity matrix (a token carrying a subject's full
//! profile sees exactly what that subject's `X-Remote-User` widget view
//! allows — and a narrowed token strictly less), act-as gating with its
//! audit trail on `/observatory`, and the hot-path guarantee: structured
//! requests take no cluster-state lock and invoke no text parser.
//!
//! Everything lives in one test: the parse counter is process-wide, so the
//! zero-parse section must not race widget requests from sibling tests.

use hpcdash::SimSite;
use hpcdash_http::{ClientResponse, HttpClient};
use hpcdash_slurm::job::{JobRequest, UsageProfile};
use hpcdash_workload::ScenarioConfig;
use serde_json::json;
use std::collections::BTreeSet;

struct Api {
    client: HttpClient,
    base: String,
}

impl Api {
    fn get(&self, path: &str, headers: &[(&str, &str)]) -> ClientResponse {
        self.client
            .get(&format!("{}{path}", self.base), headers)
            .unwrap()
    }

    fn with_user(&self, path: &str, user: &str) -> ClientResponse {
        self.get(path, &[("X-Remote-User", user)])
    }

    fn with_bearer(&self, path: &str, secret: &str) -> ClientResponse {
        self.get(path, &[("Authorization", &format!("Bearer {secret}"))])
    }

    fn mint(&self, subject: &str, scopes: &[&str], as_user: &str) -> ClientResponse {
        self.client
            .post(
                &format!("{}/slurm/v0/admin/tokens", self.base),
                &[("X-Remote-User", as_user)],
                json!({ "subject": subject, "scopes": scopes })
                    .to_string()
                    .into_bytes(),
            )
            .unwrap()
    }

    /// Mint as root, returning `(token id, one-time secret)`.
    fn mint_ok(&self, subject: &str, scopes: &[&str]) -> (String, String) {
        let resp = self.mint(subject, scopes, "root");
        assert_eq!(resp.status, 200, "mint for {subject} {scopes:?}");
        let body = resp.json().unwrap();
        (
            body["id"].as_str().unwrap().to_string(),
            body["secret"].as_str().unwrap().to_string(),
        )
    }

    /// Job ids a bearer sees on the list endpoint.
    fn listed_jobs(&self, secret: &str) -> BTreeSet<u64> {
        let resp = self.with_bearer("/slurm/v0/jobs", secret);
        assert_eq!(resp.status, 200);
        resp.json().unwrap()["jobs"]
            .as_array()
            .unwrap()
            .iter()
            .map(|j| j["job_id"].as_u64().unwrap())
            .collect()
    }
}

const READ_ROUTES: &[&str] = &[
    "/slurm/v0/jobs",
    "/slurm/v0/jobs/1",
    "/slurm/v0/nodes",
    "/slurm/v0/partitions",
    "/slurm/v0/associations",
    "/slurm/v0/diag",
];

#[test]
fn slurm_v0_end_to_end() {
    let site = SimSite::build(ScenarioConfig::small());
    site.warm_up(900);
    let server = site.serve().unwrap();
    let api = Api {
        base: server.base_url(),
        client: HttpClient::new(),
    };

    // Three subjects: an owner, a teammate in the same account, and a user
    // from a disjoint account — the privacy matrix's interesting corners.
    let pop = &site.scenario.population;
    let alice = pop.users[0].clone();
    let a_accounts = pop.accounts_of(&alice);
    let account = a_accounts[0].clone();
    let teammate = pop
        .users
        .iter()
        .find(|u| **u != alice && pop.accounts_of(u).contains(&account))
        .expect("account has two members")
        .clone();
    let bob = pop
        .users
        .iter()
        .find(|u| !pop.accounts_of(u).iter().any(|a| a_accounts.contains(a)))
        .expect("population has a disjoint user")
        .clone();
    let bob_account = pop.accounts_of(&bob)[0].clone();
    for (u, a) in [
        (&alice, &account),
        (&teammate, &account),
        (&bob, &bob_account),
    ] {
        let mut req = JobRequest::simple(u, a, "cpu", 2);
        req.usage = UsageProfile::batch(600);
        site.scenario.ctld.submit(req).unwrap();
    }
    site.scenario.ctld.tick();

    // --- Deny by default: every read route 401s without a token, and the
    // refusal is a structured JSON body, not prose.
    for path in READ_ROUTES {
        let resp = api.get(path, &[]);
        assert_eq!(resp.status, 401, "{path}");
        let body = resp.json().unwrap();
        assert_eq!(body["status"], 401, "{path}: structured error body");
        assert!(
            body["error"].as_str().unwrap().contains("token"),
            "{path}: {body}"
        );
    }
    // An X-Remote-User identity alone does not open the family either.
    assert_eq!(api.with_user("/slurm/v0/jobs", &alice).status, 401);

    // --- Minting is admin-gated, and can only narrow the subject's view:
    // scopes the subject's profile doesn't imply refuse at mint time.
    assert_eq!(api.mint(&alice, &["read-own-jobs"], &alice).status, 403);
    let wide = format!("read-account:{account}");
    assert_eq!(api.mint(&bob, &[&wide], "root").status, 403);
    assert_eq!(api.mint(&bob, &["read-cluster"], "root").status, 403);

    // --- The parity matrix. A cluster-scoped admin token enumerates every
    // active job; then for each subject, a token carrying the subject's
    // full profile must agree with the subject's widget-route verdict on
    // every single job — and its list endpoint must return exactly the
    // allowed set. No token ever sees more than `X-Remote-User` would.
    let (_, root_secret) = api.mint_ok("root", &["read-cluster"]);
    let resp = api.with_bearer("/slurm/v0/jobs", &root_secret);
    assert_eq!(resp.status, 200);
    let all_jobs = resp.json().unwrap()["jobs"].as_array().unwrap().to_vec();
    let ids: BTreeSet<u64> = all_jobs
        .iter()
        .map(|j| j["job_id"].as_u64().unwrap())
        .collect();
    assert!(ids.len() >= 3, "warm-up left {} active jobs", ids.len());

    for subject in [&alice, &teammate, &bob] {
        let mut scopes = vec!["read-own-jobs".to_string()];
        scopes.extend(
            pop.accounts_of(subject)
                .iter()
                .map(|a| format!("read-account:{a}")),
        );
        let scope_refs: Vec<&str> = scopes.iter().map(String::as_str).collect();
        let (_, secret) = api.mint_ok(subject, &scope_refs);
        let mut allowed = BTreeSet::new();
        for id in &ids {
            let widget = api.with_user(&format!("/api/jobs/{id}"), subject).status;
            let token = api
                .with_bearer(&format!("/slurm/v0/jobs/{id}"), &secret)
                .status;
            assert_eq!(
                token, widget,
                "job {id} as {subject}: token and widget verdicts disagree"
            );
            if token == 200 {
                allowed.insert(*id);
            }
        }
        assert_eq!(
            api.listed_jobs(&secret),
            allowed,
            "{subject}: list endpoint must return exactly the per-id-allowed set"
        );
    }

    // --- Narrowing: an own-jobs-only token is a strict subset of the
    // widget view. The teammate's job stays widget-visible to alice (group
    // rule) but vanishes from the narrowed token: 403, with a distinct 404
    // for ids that don't exist at all.
    let (_, own_secret) = api.mint_ok(&alice, &["read-own-jobs"]);
    let own: BTreeSet<u64> = all_jobs
        .iter()
        .filter(|j| j["user_name"] == alice.as_str())
        .map(|j| j["job_id"].as_u64().unwrap())
        .collect();
    assert_eq!(api.listed_jobs(&own_secret), own);
    let teammates_job = all_jobs
        .iter()
        .find(|j| j["user_name"] == teammate.as_str())
        .unwrap()["job_id"]
        .as_u64()
        .unwrap();
    assert_eq!(
        api.with_user(&format!("/api/jobs/{teammates_job}"), &alice)
            .status,
        200
    );
    let resp = api.with_bearer(&format!("/slurm/v0/jobs/{teammates_job}"), &own_secret);
    assert_eq!(resp.status, 403);
    assert_eq!(resp.json().unwrap()["status"], 403);
    assert_eq!(
        api.with_bearer("/slurm/v0/jobs/999999", &own_secret).status,
        404,
        "unknown id is 404, out-of-scope is 403"
    );

    // --- Act-as requires the scope, and leaves an audit trail the
    // observatory surfaces.
    let (_, actas_secret) = api.mint_ok("root", &["read-own-jobs", "admin-act-as"]);
    let resp = api.get(
        "/slurm/v0/jobs",
        &[
            ("Authorization", &format!("Bearer {actas_secret}")),
            ("X-Act-As", &alice),
        ],
    );
    assert_eq!(resp.status, 200);
    let acted: BTreeSet<u64> = resp.json().unwrap()["jobs"]
        .as_array()
        .unwrap()
        .iter()
        .map(|j| j["job_id"].as_u64().unwrap())
        .collect();
    assert_eq!(acted, own, "acting as alice shows alice's own-jobs view");
    let resp = api.get(
        "/slurm/v0/jobs",
        &[
            ("Authorization", &format!("Bearer {own_secret}")),
            ("X-Act-As", &bob),
        ],
    );
    assert_eq!(resp.status, 403, "a user token cannot act as anyone");
    let observatory = api.with_user("/api/observatory", "root").json().unwrap();
    assert!(
        observatory["act_as"]
            .as_array()
            .unwrap()
            .iter()
            .any(|r| r["admin"] == "root" && r["target"] == alice.as_str()),
        "the switch is on the audit table: {}",
        observatory["act_as"]
    );

    // --- Revoke: the inventory never repeats secrets; a revoked token
    // 401s from then on.
    let (id, secret) = api.mint_ok(&alice, &["read-own-jobs"]);
    assert_eq!(api.with_bearer("/slurm/v0/jobs", &secret).status, 200);
    let inventory = api
        .with_user("/slurm/v0/admin/tokens", "root")
        .json()
        .unwrap();
    assert!(!inventory.to_string().contains(&secret), "secrets withheld");
    let resp = api
        .client
        .post(
            &format!("{}/slurm/v0/admin/tokens/{id}/revoke", api.base),
            &[("X-Remote-User", "root")],
            Vec::new(),
        )
        .unwrap();
    assert_eq!(resp.status, 200);
    let resp = api.with_bearer("/slurm/v0/jobs", &secret);
    assert_eq!(resp.status, 401);
    assert!(resp.json().unwrap()["error"]
        .as_str()
        .unwrap()
        .contains("revoked"));

    // --- The hot-path guarantee, over the wire: a burst across the whole
    // read family adds zero cluster-state-mutex acquisitions and zero text
    // parses. (The sections above ran widget routes, which do both — the
    // counters are sampled after them on purpose.)
    let locks0 = site.scenario.ctld.stats().state_lock_count();
    let parses0 = hpcdash_slurmcli::parse_call_count();
    for _ in 0..5 {
        for path in [
            "/slurm/v0/jobs",
            "/slurm/v0/nodes",
            "/slurm/v0/partitions",
            "/slurm/v0/associations",
            "/slurm/v0/diag",
        ] {
            assert_eq!(api.with_bearer(path, &root_secret).status, 200, "{path}");
        }
    }
    assert_eq!(
        site.scenario.ctld.stats().state_lock_count(),
        locks0,
        "structured requests must never take the cluster-state mutex"
    );
    assert_eq!(
        hpcdash_slurmcli::parse_call_count(),
        parses0,
        "structured requests must never invoke a text parser"
    );
}
