//! The Storage widget (paper §3.5): per-directory usage/file-count bars
//! linking into the Open OnDemand files app.

use crate::template::escape_html;
use crate::widgets::components::{card, progress_bar};
use serde_json::Value;

fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.1} {}", UNITS[unit])
}

/// Render from the `/api/storage` payload.
pub fn render(payload: &Value) -> String {
    let mut body = String::new();
    for d in payload["disks"]
        .as_array()
        .map(Vec::as_slice)
        .unwrap_or(&[])
    {
        let path = d["path"].as_str().unwrap_or("");
        let fs_url = d["files_app_url"].as_str().unwrap_or("#");
        body.push_str(&format!(
            "<div class=\"disk-row\"><a class=\"disk-path\" href=\"{}\">{}</a> \
             <span class=\"disk-fs\">{}</span>",
            escape_html(fs_url),
            escape_html(path),
            escape_html(d["filesystem"].as_str().unwrap_or("")),
        ));
        body.push_str(&progress_bar(
            d["bytes_percent"].as_f64().unwrap_or(0.0),
            d["bytes_color"].as_str().unwrap_or("green"),
            &format!(
                "{} / {}",
                human_bytes(d["bytes_used"].as_u64().unwrap_or(0)),
                human_bytes(d["bytes_quota"].as_u64().unwrap_or(0)),
            ),
        ));
        body.push_str(&progress_bar(
            d["files_percent"].as_f64().unwrap_or(0.0),
            d["files_color"].as_str().unwrap_or("green"),
            &format!(
                "{} / {} files",
                d["files_used"].as_u64().unwrap_or(0),
                d["files_quota"].as_u64().unwrap_or(0),
            ),
        ));
        body.push_str("</div>");
    }
    card("storage", "Storage", &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn renders_disk_rows_with_links() {
        let payload = json!({"disks": [
            {"path": "/home/alice", "filesystem": "zfs-home",
             "bytes_used": 21_474_836_480u64, "bytes_quota": 26_843_545_600u64,
             "bytes_percent": 80.0, "bytes_color": "yellow",
             "files_used": 100_000, "files_quota": 400_000,
             "files_percent": 25.0, "files_color": "green",
             "files_app_url": "/pun/sys/files/fs/home/alice"},
        ]});
        let html = render(&payload);
        assert!(html.contains("href=\"/pun/sys/files/fs/home/alice\""));
        assert!(html.contains("20.0 GB / 25.0 GB"));
        assert!(html.contains("100000 / 400000 files"));
        assert!(html.contains("bg-yellow"));
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(0), "0.0 B");
        assert_eq!(human_bytes(1_536), "1.5 KB");
        assert_eq!(human_bytes(1_073_741_824), "1.0 GB");
        assert_eq!(human_bytes(3 * 1_099_511_627_776), "3.0 TB");
    }
}
