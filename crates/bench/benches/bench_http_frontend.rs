//! Experiment P12 — the million-client path: the event-driven HTTP
//! frontend holds thousands of concurrent keep-alive connections on a
//! fixed thread count, and the per-epoch render-bytes cache answers
//! ETag revalidation (`If-None-Match` -> `304`) without executing the
//! route or serializing a byte.
//!
//! Three claims asserted here:
//!   1. N concurrent keep-alive connections are served by exactly
//!      `reactors + workers` threads — no thread-per-connection anywhere.
//!   2. A revalidated poll (304) costs >=10x less than a full render.
//!   3. The render-bytes cache serves byte-identical bodies hit vs miss.

use criterion::Criterion;
use hpcdash_bench::{banner, BenchSite};
use hpcdash_core::CachePolicy;
use hpcdash_http::{Method, Request, Server, ServerConfig};
use hpcdash_workload::ScenarioConfig;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Lift RLIMIT_NOFILE toward `want` (capped at the hard limit) so the
/// connection flood isn't cut short by a conservative default soft limit.
/// Returns the effective soft limit.
#[cfg(target_os = "linux")]
fn raise_nofile(want: u64) -> u64 {
    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }
    const RLIMIT_NOFILE: i32 = 7;
    unsafe {
        let mut r = Rlimit { cur: 0, max: 0 };
        if getrlimit(RLIMIT_NOFILE, &mut r) != 0 {
            return 1024;
        }
        if r.cur < want {
            let bumped = Rlimit {
                cur: want.min(r.max),
                max: r.max,
            };
            if setrlimit(RLIMIT_NOFILE, &bumped) == 0 {
                return bumped.cur;
            }
        }
        r.cur
    }
}

#[cfg(not(target_os = "linux"))]
fn raise_nofile(_want: u64) -> u64 {
    1024
}

fn os_thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|d| d.count())
        .unwrap_or(0)
}

/// One keep-alive request/response on a raw socket; returns the body.
fn roundtrip(stream: &mut TcpStream, path: &str, user: &str) -> Vec<u8> {
    let req = format!(
        "GET {path} HTTP/1.1\r\nHost: bench\r\nX-Remote-User: {user}\r\nConnection: keep-alive\r\n\r\n"
    );
    stream.write_all(req.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("HTTP/1.1 "), "bad status line: {line:?}");
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        reader.read_line(&mut h).unwrap();
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap();
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    body
}

/// Claim 1: a flood of concurrent keep-alive connections on a fixed
/// thread budget. Opens `target` connections in batches, each completing
/// one request and then staying open (parked in the reactor, not on a
/// thread), and asserts the process thread count never moves.
fn connection_flood(site: &BenchSite, target: usize) {
    let cfg = ServerConfig {
        reactors: 2,
        workers: 8,
        max_connections: target + 1_024,
        idle_timeout: Duration::from_secs(120),
        ..ServerConfig::default()
    };
    let server = Server::bind_with("127.0.0.1:0", site.dashboard.router(), cfg).unwrap();
    let addr = server.addr();
    let expected_threads = server.thread_count();
    let baseline = os_thread_count();
    let user = site.user();

    let t0 = Instant::now();
    let mut conns: Vec<TcpStream> = Vec::with_capacity(target);
    while conns.len() < target {
        let batch = (target - conns.len()).min(128);
        let mut opened = Vec::with_capacity(batch);
        for _ in 0..batch {
            opened.push(TcpStream::connect(addr).unwrap());
        }
        for stream in &mut opened {
            let body = roundtrip(stream, "/healthz", &user);
            assert!(!body.is_empty());
        }
        conns.append(&mut opened);
        // The thread count must not grow with connections — that is the
        // whole point of the event loop.
        assert_eq!(
            os_thread_count(),
            baseline,
            "server grew threads at {} connections",
            conns.len()
        );
    }
    let elapsed = t0.elapsed();
    assert_eq!(server.connection_count(), target);

    // A sample of parked connections must still be live (keep-alive reuse).
    for stream in conns.iter_mut().step_by((target / 64).max(1)) {
        let body = roundtrip(stream, "/healthz", &user);
        assert!(!body.is_empty());
    }
    assert_eq!(os_thread_count(), baseline);

    println!(
        "{target} concurrent keep-alive connections on {expected_threads} server threads \
         ({:.1}s to establish+serve, {:.0} conns/s)",
        elapsed.as_secs_f64(),
        target as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    drop(conns);
    server.shutdown();
}

/// Claim 2 + 3: revalidated polls vs full renders, in-process so the
/// comparison measures route cost and not socket noise.
fn revalidation_vs_render(iters: usize) -> (Duration, Duration) {
    // Cached site: the second request onward is served from the
    // render-bytes cache; with If-None-Match it degenerates to a 304.
    let cached = BenchSite::fast();
    cached.warm_up(300);
    let user = cached.user();
    let path = "/api/system_status";
    let get = |etag: Option<&str>| {
        let mut req = Request::new(Method::Get, path).with_header("X-Remote-User", &user);
        if let Some(etag) = etag {
            req = req.with_header("If-None-Match", etag);
        }
        cached.dashboard.handle(&req)
    };

    // Claim 3 first: miss and hit bodies are byte-identical.
    let miss = get(None);
    assert_eq!(miss.status, 200);
    let etag = miss
        .header("ETag")
        .expect("cacheable route sets ETag")
        .to_string();
    let hit = get(None);
    assert_eq!(hit.status, 200);
    assert_eq!(
        miss.body.as_slice(),
        hit.body.as_slice(),
        "render cache must serve byte-identical bodies"
    );
    assert_eq!(hit.header("ETag"), Some(etag.as_str()));

    let t0 = Instant::now();
    for _ in 0..iters {
        let resp = get(Some(&etag));
        assert_eq!(resp.status, 304, "revalidation must short-circuit");
    }
    let revalidated = t0.elapsed();

    // Uncached site: every request executes the route and serializes.
    let mut cfg = ScenarioConfig::small();
    cfg.free_daemons = true;
    let mut dcfg = hpcdash_core::DashboardConfig::purdue_like();
    dcfg.cache = CachePolicy::disabled();
    let uncached = BenchSite::build(cfg, dcfg);
    uncached.warm_up(300);
    let uuser = uncached.user();
    let t0 = Instant::now();
    for _ in 0..iters {
        let resp = uncached.get(path, &uuser);
        assert_eq!(resp.status, 200);
    }
    let full = t0.elapsed();
    (revalidated, full)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    banner(
        "P12",
        "event-driven frontend: concurrent keep-alive connections + 304 revalidation cost",
    );

    let want = if smoke { 512 } else { 10_000 };
    // Client and server ends live in this one process: ~2 fds per
    // connection plus headroom.
    let limit = raise_nofile(2 * want as u64 + 2_048);
    let budget = (limit.saturating_sub(1_024) / 2) as usize;
    let target = want.min(budget.max(256));
    if target < want {
        println!("(fd budget {limit} caps the flood at {target} connections, wanted {want})");
    }

    let site = BenchSite::fast();
    site.warm_up(300);
    connection_flood(&site, target);

    let iters = if smoke { 200 } else { 2_000 };
    let (revalidated, full) = revalidation_vs_render(iters);
    let per_304 = revalidated.as_nanos() as f64 / iters as f64;
    let per_full = full.as_nanos() as f64 / iters as f64;
    println!(
        "{iters} polls: 304 revalidation {:.1}us/req vs full render {:.1}us/req ({:.1}x)",
        per_304 / 1_000.0,
        per_full / 1_000.0,
        per_full / per_304,
    );
    // The floor the issue requires: revalidated polls are an order of
    // magnitude cheaper than rendering.
    assert!(
        per_full >= 10.0 * per_304,
        "304 path must be >=10x cheaper than a full render \
         ({per_304:.0}ns vs {per_full:.0}ns)"
    );

    // Criterion numbers for the report.
    let cached = BenchSite::fast();
    cached.warm_up(300);
    let user = cached.user();
    let miss = cached.get("/api/system_status", &user);
    let etag = miss.header("ETag").unwrap().to_string();
    let mut cbench = Criterion::default().configure_from_args().sample_size(30);
    {
        let mut group = cbench.benchmark_group("http_frontend");
        group.bench_function("revalidated_304", |b| {
            b.iter(|| {
                let req = Request::new(Method::Get, "/api/system_status")
                    .with_header("X-Remote-User", &user)
                    .with_header("If-None-Match", &etag);
                let resp = cached.dashboard.handle(&req);
                assert_eq!(resp.status, 304);
            })
        });
        group.bench_function("render_bytes_hit", |b| {
            b.iter(|| {
                let resp = cached.get("/api/system_status", &user);
                assert_eq!(resp.status, 200);
            })
        });
        group.finish();
    }
    cbench.final_summary();
}
