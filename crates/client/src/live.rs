//! The push-mode live client: a browser tab subscribed to
//! `/api/updates/stream`.
//!
//! Instead of refetching job tables on a timer, the subscriber holds a
//! server-assigned queue (identified by its `sub` token) and applies the
//! delivered deltas to a local `live_jobs` store in the IndexedDB analog —
//! the client half of the poll-to-push inversion in `hpcdash-push`. When the
//! server reports `resync_required` (queue overflow, or a cursor that fell
//! out of the event log's retained window) the local store is cleared and
//! the cursor re-anchors at the reported `latest_seq`; the real frontend
//! would refetch its tables at that point.

use hpcdash_cache::IndexedDb;
use hpcdash_http::{ClientResponse, HttpClient};
use hpcdash_simtime::SharedClock;
use serde_json::Value;
use std::cell::{Cell, RefCell};
use std::sync::Arc;

/// How a subscriber reaches the server. The default is a real keep-alive
/// TCP connection ([`HttpClient`]); harnesses that want more concurrent
/// tabs than one process's fd limit allows dispatch in-process instead.
/// Either way the server-side cost is identical — one hub queue, one
/// registered subscriber, one drain per poll — only the socket is elided,
/// so a 100k-tab fleet exercises the real fan-out path.
pub trait StreamTransport: Send + Sync {
    fn get(&self, url: &str, headers: &[(&str, &str)]) -> Result<ClientResponse, String>;

    /// `(connections opened, requests served over a reused connection)` —
    /// zeros for transports that hold no sockets.
    fn connection_stats(&self) -> (u64, u64) {
        (0, 0)
    }
}

impl StreamTransport for HttpClient {
    fn get(&self, url: &str, headers: &[(&str, &str)]) -> Result<ClientResponse, String> {
        HttpClient::get(self, url, headers).map_err(|e| e.to_string())
    }

    fn connection_stats(&self) -> (u64, u64) {
        HttpClient::connection_stats(self)
    }
}

/// What one stream poll produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollOutcome {
    /// Deltas were applied to the local store.
    Events(usize),
    /// The wait expired with nothing queued.
    Empty,
    /// The delta stream had a hole: local state was dropped and the cursor
    /// re-anchored. The caller should refetch full tables.
    Resync,
    /// The server shed the long-poll (`503`); retry after the given delay.
    Shed { retry_after_secs: u64 },
}

/// The IndexedDB store deltas are applied to (one record per job id).
pub const LIVE_STORE: &str = "live_jobs";

/// A live-updates subscriber for one user and one tab (`sub` token).
pub struct LiveSubscriber {
    transport: Arc<dyn StreamTransport>,
    base_url: String,
    user: String,
    token: String,
    db: IndexedDb,
    clock: SharedClock,
    /// The `since` cursor used when the server has to (re)register us.
    anchor: Cell<u64>,
    resyncs: Cell<u64>,
    applied: Cell<u64>,
    /// Consecutive `Shed` responses; resets on any successful poll. Drives
    /// the exponential part of [`LiveSubscriber::retry_delay_ms`].
    shed_streak: Cell<u32>,
    /// Per-subscriber jitter seed derived from the `sub` token, so a fleet
    /// of shed tabs spreads its retries instead of returning in one wave.
    seed: u64,
    /// Last seen `(etag, body)` validator for the stream route; polls send
    /// `If-None-Match` so an unchanged answer costs a `304` round trip
    /// instead of a re-serialized body.
    validator: RefCell<Option<(String, Value)>>,
    not_modified: Cell<u64>,
}

impl LiveSubscriber {
    pub fn new(base_url: &str, user: &str, token: &str, clock: SharedClock) -> LiveSubscriber {
        // A live tab holds one TCP connection and parks it between
        // deliveries; reconnect-per-poll would defeat the event loop.
        LiveSubscriber::with_transport(
            base_url,
            user,
            token,
            clock,
            Arc::new(HttpClient::keep_alive()),
        )
    }

    /// A subscriber on a caller-supplied transport. Fleets share one
    /// transport `Arc` — the per-tab state (queue token, cursor, local
    /// store) stays per-subscriber.
    pub fn with_transport(
        base_url: &str,
        user: &str,
        token: &str,
        clock: SharedClock,
        transport: Arc<dyn StreamTransport>,
    ) -> LiveSubscriber {
        // FNV-1a over the token: stable, spread-out per-tab seeds.
        let seed = token.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
        });
        LiveSubscriber {
            transport,
            base_url: base_url.trim_end_matches('/').to_string(),
            user: user.to_string(),
            token: token.to_string(),
            db: IndexedDb::new(),
            clock,
            anchor: Cell::new(0),
            resyncs: Cell::new(0),
            applied: Cell::new(0),
            shed_streak: Cell::new(0),
            seed,
            validator: RefCell::new(None),
            not_modified: Cell::new(0),
        }
    }

    /// Anchor the cursor (e.g. at the `latest_seq` of an initial table
    /// fetch) so the first subscribe doesn't replay already-rendered
    /// history.
    pub fn anchor_at(&self, seq: u64) {
        self.anchor.set(seq);
    }

    /// One long-poll round trip: drain the server-side queue (parking up to
    /// `wait_ms`) and apply the deltas locally.
    pub fn poll(&self, wait_ms: u64) -> Result<PollOutcome, String> {
        let url = format!(
            "{}/api/updates/stream?sub={}&since={}&wait_ms={}",
            self.base_url,
            self.token,
            self.anchor.get(),
            wait_ms
        );
        let validator = self.validator.borrow().clone();
        let mut headers: Vec<(&str, &str)> = vec![("X-Remote-User", &self.user)];
        if let Some((etag, _)) = &validator {
            headers.push(("If-None-Match", etag));
        }
        let resp = self.transport.get(&url, &headers)?;
        if resp.status == 503 {
            let retry_after_secs = resp
                .header("Retry-After")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1);
            self.shed_streak
                .set(self.shed_streak.get().saturating_add(1));
            return Ok(PollOutcome::Shed { retry_after_secs });
        }
        let body = if resp.status == 304 {
            // Unchanged since our last delivery: render the validator copy.
            let Some((_, body)) = validator else {
                return Err("stream -> HTTP 304 without a stored validator".to_string());
            };
            self.not_modified.set(self.not_modified.get() + 1);
            self.shed_streak.set(0);
            body
        } else {
            if !resp.is_success() {
                return Err(format!("stream -> HTTP {}", resp.status));
            }
            self.shed_streak.set(0);
            let body: Value = resp.json().map_err(|e| format!("stream: bad json: {e}"))?;
            *self.validator.borrow_mut() = resp
                .header("etag")
                .map(|etag| (etag.to_string(), body.clone()));
            body
        };
        let latest = body["latest_seq"].as_u64().unwrap_or(self.anchor.get());
        self.anchor.set(latest);
        if body["resync_required"].as_bool().unwrap_or(false) {
            // The delta stream has a hole: local job state may be stale in
            // unknowable ways, so drop it and start over from the head.
            self.db.clear_store(LIVE_STORE);
            self.resyncs.set(self.resyncs.get() + 1);
            return Ok(PollOutcome::Resync);
        }
        let events = body["events"].as_array().cloned().unwrap_or_default();
        if events.is_empty() {
            return Ok(PollOutcome::Empty);
        }
        let now = self.clock.now();
        for event in &events {
            if let Some(job) = event["job"].as_str() {
                self.db.put(LIVE_STORE, job, event.clone(), now);
            }
        }
        self.applied.set(self.applied.get() + events.len() as u64);
        Ok(PollOutcome::Events(events.len()))
    }

    /// The locally-known state of a job, as last delivered.
    pub fn job_state(&self, job: &str) -> Option<String> {
        self.db
            .get(LIVE_STORE, job)
            .and_then(|rec| rec.value["to"].as_str().map(str::to_string))
    }

    /// Jobs with locally-tracked state.
    pub fn tracked_jobs(&self) -> usize {
        self.db.record_count()
    }

    pub fn cursor(&self) -> u64 {
        self.anchor.get()
    }

    pub fn resync_count(&self) -> u64 {
        self.resyncs.get()
    }

    /// Total deltas applied over this subscriber's lifetime.
    pub fn events_applied(&self) -> u64 {
        self.applied.get()
    }

    /// Consecutive sheds without a successful poll in between.
    pub fn shed_streak(&self) -> u32 {
        self.shed_streak.get()
    }

    /// Polls the server answered `304 Not Modified`.
    pub fn not_modified_count(&self) -> u64 {
        self.not_modified.get()
    }

    /// `(connections opened, requests served over a reused connection)`.
    pub fn connection_stats(&self) -> (u64, u64) {
        self.transport.connection_stats()
    }

    /// How long to wait before re-polling after a `Shed`.
    ///
    /// The server's `Retry-After` is the floor, never undercut; on top of
    /// it the delay doubles per consecutive shed (capped at 16x / 60 s) and
    /// is scaled by deterministic per-subscriber jitter, so a thousand tabs
    /// shed in the same instant come back spread out instead of as a
    /// synchronized thundering herd.
    pub fn retry_delay_ms(&self, retry_after_secs: u64) -> u64 {
        let base_ms = retry_after_secs.max(1).saturating_mul(1_000);
        let cap_ms = base_ms.saturating_mul(16).min(60_000).max(base_ms);
        let attempt = self.shed_streak.get().saturating_sub(1);
        // The key must NOT be the token: the seed already is the token's
        // FNV hash, and the jitter mix XORs seed with fnv(key) — passing
        // the token both ways cancels them and collapses every tab onto
        // one jitter value.
        let jittered =
            hpcdash_faults::backoff_delay_ms(base_ms, cap_ms, attempt, self.seed, "shed-retry");
        // The jitter spans [0.5, 1.5) x the exponential delay; fold the low
        // half up rather than clamping it, so the floor never undercuts
        // Retry-After but the spread is preserved (uniform in [1.0, 1.5)).
        let exp = base_ms.saturating_mul(1u64 << attempt.min(20)).min(cap_ms);
        if jittered < exp {
            jittered + exp.div_ceil(2)
        } else {
            jittered
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcdash_simtime::{SimClock, Timestamp};

    fn sub(token: &str) -> LiveSubscriber {
        let clock = SimClock::new(Timestamp(0));
        LiveSubscriber::new("http://127.0.0.1:1", "alice", token, clock.shared())
    }

    /// A socketless transport answering from a canned script, recording the
    /// URLs it was asked for — the seam the 100k-tab bench rides through.
    struct Scripted {
        responses: std::sync::Mutex<Vec<ClientResponse>>,
        urls: std::sync::Mutex<Vec<String>>,
    }

    impl StreamTransport for Scripted {
        fn get(&self, url: &str, _headers: &[(&str, &str)]) -> Result<ClientResponse, String> {
            self.urls.lock().unwrap().push(url.to_string());
            self.responses
                .lock()
                .unwrap()
                .pop()
                .ok_or_else(|| "script exhausted".to_string())
        }
    }

    fn canned(body: &str) -> ClientResponse {
        ClientResponse {
            status: 200,
            headers: Default::default(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn custom_transport_carries_the_full_poll_protocol() {
        let transport = Arc::new(Scripted {
            responses: std::sync::Mutex::new(vec![canned(
                r#"{"events":[{"seq":7,"job":"42","to":"RUNNING"}],"latest_seq":7}"#,
            )]),
            urls: std::sync::Mutex::new(Vec::new()),
        });
        let clock = SimClock::new(Timestamp(0));
        let s = LiveSubscriber::with_transport(
            "http://inproc",
            "alice",
            "tab-1",
            clock.shared(),
            transport.clone(),
        );
        s.anchor_at(3);
        assert_eq!(s.poll(0), Ok(PollOutcome::Events(1)));
        assert_eq!(s.cursor(), 7, "cursor re-anchors at latest_seq");
        assert_eq!(s.job_state("42"), Some("RUNNING".to_string()));
        assert_eq!(s.connection_stats(), (0, 0), "no sockets anywhere");
        let urls = transport.urls.lock().unwrap();
        assert_eq!(
            urls.as_slice(),
            ["http://inproc/api/updates/stream?sub=tab-1&since=3&wait_ms=0"]
        );
    }

    #[test]
    fn shed_retry_delays_spread_across_subscribers() {
        // A whole fleet shed at once with Retry-After: 2 must NOT come back
        // at the same millisecond.
        let delays: Vec<u64> = (0..32)
            .map(|i| {
                let s = sub(&format!("tab-{i}"));
                s.shed_streak.set(1);
                s.retry_delay_ms(2)
            })
            .collect();
        let distinct: std::collections::BTreeSet<u64> = delays.iter().copied().collect();
        assert!(
            distinct.len() >= 24,
            "expected jittered spread, got {delays:?}"
        );
        for d in &delays {
            assert!(*d >= 2_000, "Retry-After is a floor: {d}");
            assert!(*d <= 3_000, "first retry stays near the advertised delay");
        }
    }

    #[test]
    fn shed_backoff_grows_with_the_streak_and_caps() {
        let s = sub("tab-x");
        s.shed_streak.set(1);
        let first = s.retry_delay_ms(1);
        s.shed_streak.set(3);
        let third = s.retry_delay_ms(1);
        assert!(third > first, "streak raises the delay: {first} vs {third}");
        s.shed_streak.set(30);
        let capped = s.retry_delay_ms(1);
        assert!(
            capped <= 16_000 * 3 / 2,
            "delay is capped even for a long streak: {capped}"
        );
        // Deterministic: the same subscriber computes the same delay.
        assert_eq!(s.retry_delay_ms(1), capped);
    }
}
