//! Administrator-only job controls (paper §9: "permission-based job
//! accounting, such as administrator-only content, is another feature under
//! development" — implemented here).
//!
//! Admins can hold, release, and cancel any job from the dashboard. All
//! three actions require the caller to be in the configured admin list;
//! everyone else gets 403 regardless of job ownership (owners use scancel /
//! their own tooling — this surface is for operators).

use crate::auth::CurrentUser;
use crate::ctx::DashboardContext;
use hpcdash_http::{Method, Request, Response, Router};
use hpcdash_slurm::cluster::ClusterError;
use hpcdash_slurm::job::JobId;
use serde_json::json;

pub const FEATURE: &str = "Admin job controls (extension)";
pub const ROUTES: &[&str] = &[
    "/api/admin/jobs/:id/hold",
    "/api/admin/jobs/:id/release",
    "/api/admin/jobs/:id/cancel",
];

pub fn register(router: &mut Router, ctx: DashboardContext) {
    let c1 = ctx.clone();
    let c2 = ctx.clone();
    router.add(Method::Post, ROUTES[0], move |req| {
        handle(&ctx, req, Action::Hold)
    });
    router.add(Method::Post, ROUTES[1], move |req| {
        handle(&c1, req, Action::Release)
    });
    router.add(Method::Post, ROUTES[2], move |req| {
        handle(&c2, req, Action::Cancel)
    });
}

#[derive(Clone, Copy)]
enum Action {
    Hold,
    Release,
    Cancel,
}

fn handle(ctx: &DashboardContext, req: &Request, action: Action) -> Response {
    let user = match CurrentUser::from_request(ctx, req) {
        Ok(u) => u,
        Err(resp) => return resp,
    };
    if !user.is_admin {
        return Response::forbidden("administrator access required");
    }
    let Some(id) = req.param("id").and_then(|s| s.parse().ok()).map(JobId) else {
        return Response::bad_request("invalid job id");
    };
    let result = match action {
        Action::Hold => ctx.ctld.hold(id, true),
        Action::Release => ctx.ctld.release(id),
        // Admin cancellation acts as root, bypassing ownership.
        Action::Cancel => ctx.ctld.cancel(id, "root"),
    };
    match result {
        Ok(()) => Response::json(&json!({"ok": true, "job": id.to_string()})),
        Err(ClusterError::UnknownJob(_)) => Response::not_found("no such active job"),
        Err(e) => Response::bad_request(&e.to_string()),
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::ctx::tests::test_ctx;
    use hpcdash_slurm::job::{JobRequest, JobState, PendingReason};

    fn post(path: &str, id: &str, user: &str) -> Request {
        let mut r = Request::new(Method::Post, path).with_header("X-Remote-User", user);
        r.params.insert("id".to_string(), id.to_string());
        r
    }

    pub(crate) fn admin_ctx() -> crate::ctx::DashboardContext {
        let ctx = test_ctx();
        // test_ctx uses the generic config (no admins); rebuild with root.
        let mut cfg = (*ctx.cfg).clone();
        cfg.admins = vec!["root".to_string()];
        cfg.features.admin_view = true;
        crate::ctx::DashboardContext::new(
            cfg,
            ctx.clock.clone(),
            ctx.ctld.clone(),
            ctx.dbd.clone(),
            ctx.logs.clone(),
            ctx.storage.clone(),
            ctx.news.clone(),
        )
    }

    #[test]
    fn non_admin_is_forbidden() {
        let ctx = admin_ctx();
        let id = ctx
            .ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 1))
            .unwrap()[0];
        let resp = handle(&ctx, &post("/x", &id.to_string(), "alice"), Action::Hold);
        assert_eq!(resp.status, 403, "owners don't get the admin surface");
    }

    #[test]
    fn admin_hold_release_cycle() {
        let ctx = admin_ctx();
        let id = ctx
            .ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 1))
            .unwrap()[0];
        let resp = handle(&ctx, &post("/x", &id.to_string(), "root"), Action::Hold);
        assert_eq!(resp.status, 200, "{}", resp.body_string());
        ctx.ctld.tick();
        let job = ctx.ctld.query_job(id).unwrap();
        assert_eq!(job.state, JobState::Pending);
        assert_eq!(job.reason, Some(PendingReason::JobHeldAdmin));

        let resp = handle(&ctx, &post("/x", &id.to_string(), "root"), Action::Release);
        assert_eq!(resp.status, 200);
        ctx.ctld.tick();
        assert_eq!(ctx.ctld.query_job(id).unwrap().state, JobState::Running);
    }

    #[test]
    fn admin_cancel_any_job() {
        let ctx = admin_ctx();
        let id = ctx
            .ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 1))
            .unwrap()[0];
        ctx.ctld.tick();
        let resp = handle(&ctx, &post("/x", &id.to_string(), "root"), Action::Cancel);
        assert_eq!(resp.status, 200);
        assert!(ctx.ctld.query_job(id).is_none());
        ctx.ctld.tick(); // stream the cancellation into accounting
        assert_eq!(ctx.dbd.job(id).unwrap().state, JobState::Cancelled);
    }

    #[test]
    fn unknown_job_and_bad_id() {
        let ctx = admin_ctx();
        let resp = handle(&ctx, &post("/x", "999999", "root"), Action::Cancel);
        assert_eq!(resp.status, 404);
        let resp = handle(&ctx, &post("/x", "not-a-number", "root"), Action::Hold);
        assert_eq!(resp.status, 400);
    }
}
