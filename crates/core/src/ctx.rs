//! The dashboard's shared context: daemons, services, server cache, and the
//! data-source probe used to regenerate the paper's Table 1.

use crate::config::DashboardConfig;
use hpcdash_cache::CachedFetcher;
use hpcdash_http::ParkBudget;
use hpcdash_news::NewsFeed;
use hpcdash_obs::health::HealthBoard;
use hpcdash_obs::{Registry, Span};
use hpcdash_push::{AccountResolver, Hub, HubConfig};
use hpcdash_simtime::{SharedClock, Timestamp};
use hpcdash_slurm::ctld::Slurmctld;
use hpcdash_slurm::dbd::Slurmdbd;
use hpcdash_slurm::joblog::JobLogFs;
use hpcdash_storage::StorageDb;
use hpcdash_telemetry::TelemetryD;
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Everything a route handler needs. Cheap to clone (all `Arc`s).
#[derive(Clone)]
pub struct DashboardContext {
    pub cfg: Arc<DashboardConfig>,
    pub clock: SharedClock,
    pub ctld: Arc<Slurmctld>,
    pub dbd: Arc<Slurmdbd>,
    pub logs: Arc<JobLogFs>,
    pub storage: Arc<StorageDb>,
    pub news: Arc<NewsFeed>,
    /// The server-side cache: every route's JSON payload flows through it.
    pub cache: Arc<CachedFetcher<serde_json::Value>>,
    /// The dashboard's metrics registry (exposed at `/api/metrics`).
    pub obs: Arc<Registry>,
    /// Per-data-source health derived from loader outcomes (`/api/health`).
    pub health: Arc<HealthBoard>,
    /// The real-time fan-out hub: registered as an event sink on the
    /// cluster's `EventLog`, drained by `/api/updates/stream`.
    pub push: Arc<Hub>,
    /// Cap on workers parked in long-polls (`503 + Retry-After` past it).
    pub park: Arc<ParkBudget>,
    /// The metrics daemon behind sparklines and collector-backed GPU
    /// efficiency. [`DashboardContext::new`] builds an empty one; sites
    /// whose driver feeds a shared daemon inject it via
    /// [`DashboardContext::with_telemetry`].
    pub telemetry: Arc<TelemetryD>,
    /// route name -> data sources it touched on cache-cold loads.
    sources: Arc<Mutex<BTreeMap<String, BTreeSet<String>>>>,
}

/// Typed cache envelope for [`DashboardContext::cached_result`]. Every
/// loader outcome is wrapped in a variant, so the payload itself is opaque:
/// no field name a data source could emit (historically the magic
/// `"__error"` key) can be mistaken for the failure marker.
#[derive(Debug, Clone, PartialEq)]
enum CacheEnvelope {
    Ok(serde_json::Value),
    Failed(String),
}

impl CacheEnvelope {
    fn to_value(&self) -> serde_json::Value {
        match self {
            CacheEnvelope::Ok(v) => serde_json::json!({ "Ok": v }),
            CacheEnvelope::Failed(e) => serde_json::json!({ "Failed": e }),
        }
    }

    fn from_value(value: serde_json::Value) -> CacheEnvelope {
        if let Some(obj) = value.as_object() {
            if obj.len() == 1 {
                if let Some(inner) = obj.get("Ok") {
                    return CacheEnvelope::Ok(inner.clone());
                }
                if let Some(msg) = obj.get("Failed").and_then(|e| e.as_str()) {
                    return CacheEnvelope::Failed(msg.to_string());
                }
            }
        }
        CacheEnvelope::Failed("malformed cache envelope".to_string())
    }
}

/// The data-source label for a cache key: the prefix before the first `:`
/// (`"recent_jobs:alice"` -> `"recent_jobs"`). Bounded cardinality — user
/// names and job ids never become labels.
fn source_of(key: &str) -> &str {
    key.split(':').next().unwrap_or(key)
}

impl DashboardContext {
    pub fn new(
        cfg: DashboardConfig,
        clock: SharedClock,
        ctld: Arc<Slurmctld>,
        dbd: Arc<Slurmdbd>,
        logs: Arc<JobLogFs>,
        storage: Arc<StorageDb>,
        news: Arc<NewsFeed>,
    ) -> DashboardContext {
        let obs = Arc::new(Registry::new());
        // The resolver reaches into slurmctld (daemon lock); the hub promises
        // never to call it from the fan-out path, which runs under that lock.
        let resolver: AccountResolver = {
            let ctld = ctld.clone();
            Arc::new(move |user: &str| {
                ctld.query_assoc(Some(user))
                    .into_iter()
                    .map(|r| r.account.name)
                    .collect()
            })
        };
        let push = Arc::new(Hub::new(
            HubConfig {
                queue_capacity: cfg.push.queue_capacity,
                accounts_ttl: std::time::Duration::from_secs(cfg.push.accounts_ttl_secs),
                idle_ttl: std::time::Duration::from_secs(cfg.push.idle_ttl_secs),
                ..HubConfig::default()
            },
            resolver,
        ));
        push.set_registry(&obs);
        ctld.events().add_sink(push.clone());
        let park = Arc::new(ParkBudget::new(cfg.push.max_parked_workers));
        let telemetry = Arc::new(TelemetryD::free(clock.clone(), ctld.clone()));
        DashboardContext {
            cfg: Arc::new(cfg),
            cache: Arc::new(CachedFetcher::new(clock.clone())),
            telemetry,
            obs,
            health: Arc::new(HealthBoard::new()),
            push,
            park,
            clock,
            ctld,
            dbd,
            logs,
            storage,
            news,
            sources: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// Use an externally owned telemetry daemon (the scenario's, so routes
    /// see the series the sim driver's collection passes produced).
    pub fn with_telemetry(mut self, telemetry: Arc<TelemetryD>) -> DashboardContext {
        self.telemetry = telemetry;
        self
    }

    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// Record that `feature` read from `source` (called inside cache-miss
    /// loaders, so it reflects true backend traffic, not cached replays).
    pub fn note_source(&self, feature: &str, source: &str) {
        self.sources
            .lock()
            .entry(feature.to_string())
            .or_default()
            .insert(source.to_string());
    }

    /// The observed feature -> sources mapping (the measured Table 1).
    pub fn observed_sources(&self) -> BTreeMap<String, BTreeSet<String>> {
        self.sources.lock().clone()
    }

    pub fn clear_observed_sources(&self) {
        self.sources.lock().clear();
    }

    /// Fetch-with-cache wrapper all routes use. A `ttl` of zero bypasses the
    /// cache entirely (used by the no-cache ablation).
    pub fn cached(
        &self,
        key: &str,
        ttl: u64,
        load: impl FnOnce() -> serde_json::Value,
    ) -> serde_json::Value {
        if ttl == 0 {
            return load();
        }
        let source = source_of(key);
        let labels = [("source", source)];
        self.obs
            .counter("hpcdash_cache_requests_total", &labels)
            .inc();
        let loader_ran = Cell::new(false);
        let value = self.cache.get_or_fetch(key, ttl, || {
            loader_ran.set(true);
            let _span = Span::enter("cache-miss").attr("key", key.to_string());
            load()
        });
        let counter = if loader_ran.get() {
            "hpcdash_cache_misses_total"
        } else {
            "hpcdash_cache_hits_total"
        };
        self.obs.counter(counter, &labels).inc();
        value
    }

    /// Like [`DashboardContext::cached`], but failures are never cached: a
    /// broken data source keeps being retried instead of pinning its error
    /// into the cache until expiry.
    pub fn cached_result(
        &self,
        key: &str,
        ttl: u64,
        load: impl FnOnce() -> Result<serde_json::Value, String>,
    ) -> Result<serde_json::Value, String> {
        let source = source_of(key);
        if ttl == 0 {
            let outcome = load();
            match &outcome {
                Ok(_) => self.health.record_ok(source),
                Err(_) => self.health.record_error(source),
            }
            return outcome;
        }
        let labels = [("source", source)];
        self.obs
            .counter("hpcdash_cache_requests_total", &labels)
            .inc();
        let loader_ran = Cell::new(false);
        let value = self.cache.get_or_fetch(key, ttl, || {
            loader_ran.set(true);
            let _span = Span::enter("cache-miss").attr("key", key.to_string());
            match load() {
                Ok(v) => CacheEnvelope::Ok(v).to_value(),
                Err(e) => CacheEnvelope::Failed(e).to_value(),
            }
        });
        let counter = if loader_ran.get() {
            "hpcdash_cache_misses_total"
        } else {
            "hpcdash_cache_hits_total"
        };
        self.obs.counter(counter, &labels).inc();
        match CacheEnvelope::from_value(value) {
            CacheEnvelope::Ok(v) => {
                // Only loader runs probe the backend; cache hits say nothing
                // about source health.
                if loader_ran.get() {
                    self.health.record_ok(source);
                }
                Ok(v)
            }
            CacheEnvelope::Failed(e) => {
                if loader_ran.get() {
                    self.health.record_error(source);
                }
                self.cache.invalidate(key);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use hpcdash_simtime::SimClock;
    use hpcdash_slurm::assoc::{Account, AssocStore};
    use hpcdash_slurm::cluster::ClusterSpec;
    use hpcdash_slurm::loadmodel::RpcCostModel;
    use hpcdash_slurm::node::Node;
    use hpcdash_slurm::partition::Partition;
    use hpcdash_slurm::qos::Qos;
    use serde_json::json;

    pub(crate) fn test_ctx() -> DashboardContext {
        test_ctx_with(DashboardConfig::generic("Test"))
    }

    /// Like [`test_ctx`], but also hands back the clock so tests can
    /// advance simulated time.
    pub(crate) fn test_ctx_clocked() -> (DashboardContext, SimClock) {
        let clock = SimClock::new(Timestamp(1_000));
        let ctx = build_ctx(DashboardConfig::generic("Test"), &clock);
        (ctx, clock)
    }

    pub(crate) fn test_ctx_with(cfg: DashboardConfig) -> DashboardContext {
        build_ctx(cfg, &SimClock::new(Timestamp(1_000)))
    }

    fn build_ctx(cfg: DashboardConfig, clock: &SimClock) -> DashboardContext {
        let mut assoc = AssocStore::new();
        assoc.add_account(Account::new("physics"));
        assoc.add_user("physics", "alice");
        let nodes = vec![Node::new("a001", 16, 64_000, 0)];
        let names = vec!["a001".to_string()];
        let spec = ClusterSpec {
            name: "t".to_string(),
            nodes,
            partitions: vec![Partition::new("cpu").with_nodes(names)],
            qos: Qos::standard_set(),
            assoc,
        };
        let dbd = Arc::new(Slurmdbd::with_cost(RpcCostModel::free()));
        let logs = Arc::new(JobLogFs::new());
        let ctld = Arc::new(Slurmctld::with_cost(
            spec,
            clock.shared(),
            dbd.clone(),
            logs.clone(),
            RpcCostModel::free(),
        ));
        DashboardContext::new(
            cfg,
            clock.shared(),
            ctld,
            dbd,
            logs,
            Arc::new(StorageDb::with_cost(std::time::Duration::ZERO)),
            Arc::new(NewsFeed::new()),
        )
    }

    #[test]
    fn cached_respects_ttl_zero() {
        let ctx = test_ctx();
        let mut calls = 0;
        for _ in 0..3 {
            ctx.cached("k", 0, || {
                calls += 1;
                json!(1)
            });
        }
        assert_eq!(calls, 3, "ttl=0 bypasses the cache");
    }

    #[test]
    fn cached_caches() {
        let ctx = test_ctx();
        let v1 = ctx.cached("k", 60, || json!({"x": 1}));
        let v2 = ctx.cached("k", 60, || unreachable!());
        assert_eq!(v1, v2);
    }

    #[test]
    fn cached_result_payload_may_contain_error_like_keys() {
        // Regression: the old implementation signalled loader failure with a
        // magic "__error" key inside the cached value itself, so a legitimate
        // payload carrying that field was misread as a failure (and never
        // cached). The typed envelope keeps payloads opaque.
        let ctx = test_ctx();
        let tricky = json!({"__error": "this is data, not a failure", "rows": [1, 2]});
        let expect = tricky.clone();
        let got = ctx.cached_result("tricky:key", 60, || Ok(tricky)).unwrap();
        assert_eq!(got, expect);
        // And it really was cached (second call never invokes the loader).
        let again = ctx
            .cached_result("tricky:key", 60, || unreachable!())
            .unwrap();
        assert_eq!(again, expect);
    }

    #[test]
    fn cached_result_failures_are_retried_not_cached() {
        let ctx = test_ctx();
        let mut calls = 0;
        for _ in 0..3 {
            let r = ctx.cached_result("flaky:x", 60, || {
                calls += 1;
                Err::<serde_json::Value, _>("backend down".to_string())
            });
            assert_eq!(r.unwrap_err(), "backend down");
        }
        assert_eq!(calls, 3, "errors are never served from cache");
        assert_eq!(
            ctx.health.status_of("flaky"),
            hpcdash_obs::health::HealthStatus::Down
        );
    }

    #[test]
    fn cache_hit_miss_counters_by_source() {
        let ctx = test_ctx();
        ctx.cached("squeue:alice", 60, || json!(1));
        ctx.cached("squeue:alice", 60, || unreachable!());
        ctx.cached("squeue:bob", 60, || json!(2));
        let labels = [("source", "squeue")];
        assert_eq!(
            ctx.obs
                .counter("hpcdash_cache_requests_total", &labels)
                .get(),
            3
        );
        assert_eq!(
            ctx.obs.counter("hpcdash_cache_misses_total", &labels).get(),
            2
        );
        assert_eq!(
            ctx.obs.counter("hpcdash_cache_hits_total", &labels).get(),
            1
        );
    }

    #[test]
    fn source_probe_accumulates() {
        let ctx = test_ctx();
        ctx.note_source("My Jobs", "sacct (slurmdbd)");
        ctx.note_source("My Jobs", "squeue (slurmctld)");
        ctx.note_source("My Jobs", "sacct (slurmdbd)");
        let observed = ctx.observed_sources();
        assert_eq!(observed["My Jobs"].len(), 2);
        ctx.clear_observed_sources();
        assert!(ctx.observed_sources().is_empty());
    }
}
