//! The dashboard's shared context: daemons, services, server cache, and the
//! data-source probe used to regenerate the paper's Table 1.

use crate::config::DashboardConfig;
use hpcdash_cache::CachedFetcher;
use hpcdash_news::NewsFeed;
use hpcdash_simtime::{SharedClock, Timestamp};
use hpcdash_slurm::ctld::Slurmctld;
use hpcdash_slurm::dbd::Slurmdbd;
use hpcdash_slurm::joblog::JobLogFs;
use hpcdash_storage::StorageDb;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Everything a route handler needs. Cheap to clone (all `Arc`s).
#[derive(Clone)]
pub struct DashboardContext {
    pub cfg: Arc<DashboardConfig>,
    pub clock: SharedClock,
    pub ctld: Arc<Slurmctld>,
    pub dbd: Arc<Slurmdbd>,
    pub logs: Arc<JobLogFs>,
    pub storage: Arc<StorageDb>,
    pub news: Arc<NewsFeed>,
    /// The server-side cache: every route's JSON payload flows through it.
    pub cache: Arc<CachedFetcher<serde_json::Value>>,
    /// route name -> data sources it touched on cache-cold loads.
    sources: Arc<Mutex<BTreeMap<String, BTreeSet<String>>>>,
}

impl DashboardContext {
    pub fn new(
        cfg: DashboardConfig,
        clock: SharedClock,
        ctld: Arc<Slurmctld>,
        dbd: Arc<Slurmdbd>,
        logs: Arc<JobLogFs>,
        storage: Arc<StorageDb>,
        news: Arc<NewsFeed>,
    ) -> DashboardContext {
        DashboardContext {
            cfg: Arc::new(cfg),
            cache: Arc::new(CachedFetcher::new(clock.clone())),
            clock,
            ctld,
            dbd,
            logs,
            storage,
            news,
            sources: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// Record that `feature` read from `source` (called inside cache-miss
    /// loaders, so it reflects true backend traffic, not cached replays).
    pub fn note_source(&self, feature: &str, source: &str) {
        self.sources
            .lock()
            .entry(feature.to_string())
            .or_default()
            .insert(source.to_string());
    }

    /// The observed feature -> sources mapping (the measured Table 1).
    pub fn observed_sources(&self) -> BTreeMap<String, BTreeSet<String>> {
        self.sources.lock().clone()
    }

    pub fn clear_observed_sources(&self) {
        self.sources.lock().clear();
    }

    /// Fetch-with-cache wrapper all routes use. A `ttl` of zero bypasses the
    /// cache entirely (used by the no-cache ablation).
    pub fn cached(
        &self,
        key: &str,
        ttl: u64,
        load: impl FnOnce() -> serde_json::Value,
    ) -> serde_json::Value {
        if ttl == 0 {
            return load();
        }
        self.cache.get_or_fetch(key, ttl, load)
    }

    /// Like [`DashboardContext::cached`], but failures are never cached: a
    /// broken data source keeps being retried instead of pinning its error
    /// into the cache until expiry.
    pub fn cached_result(
        &self,
        key: &str,
        ttl: u64,
        load: impl FnOnce() -> Result<serde_json::Value, String>,
    ) -> Result<serde_json::Value, String> {
        if ttl == 0 {
            return load();
        }
        let value = self.cache.get_or_fetch(key, ttl, || match load() {
            Ok(v) => v,
            Err(e) => serde_json::json!({ "__error": e }),
        });
        if let Some(err) = value.get("__error").and_then(|e| e.as_str()) {
            let msg = err.to_string();
            self.cache.invalidate(key);
            return Err(msg);
        }
        Ok(value)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use hpcdash_simtime::SimClock;
    use hpcdash_slurm::assoc::{Account, AssocStore};
    use hpcdash_slurm::cluster::ClusterSpec;
    use hpcdash_slurm::loadmodel::RpcCostModel;
    use hpcdash_slurm::node::Node;
    use hpcdash_slurm::partition::Partition;
    use hpcdash_slurm::qos::Qos;
    use serde_json::json;

    pub(crate) fn test_ctx() -> DashboardContext {
        let clock = SimClock::new(Timestamp(1_000));
        let mut assoc = AssocStore::new();
        assoc.add_account(Account::new("physics"));
        assoc.add_user("physics", "alice");
        let nodes = vec![Node::new("a001", 16, 64_000, 0)];
        let names = vec!["a001".to_string()];
        let spec = ClusterSpec {
            name: "t".to_string(),
            nodes,
            partitions: vec![Partition::new("cpu").with_nodes(names)],
            qos: Qos::standard_set(),
            assoc,
        };
        let dbd = Arc::new(Slurmdbd::with_cost(RpcCostModel::free()));
        let logs = Arc::new(JobLogFs::new());
        let ctld = Arc::new(Slurmctld::with_cost(
            spec,
            clock.shared(),
            dbd.clone(),
            logs.clone(),
            RpcCostModel::free(),
        ));
        DashboardContext::new(
            DashboardConfig::generic("Test"),
            clock.shared(),
            ctld,
            dbd,
            logs,
            Arc::new(StorageDb::with_cost(std::time::Duration::ZERO)),
            Arc::new(NewsFeed::new()),
        )
    }

    #[test]
    fn cached_respects_ttl_zero() {
        let ctx = test_ctx();
        let mut calls = 0;
        for _ in 0..3 {
            ctx.cached("k", 0, || {
                calls += 1;
                json!(1)
            });
        }
        assert_eq!(calls, 3, "ttl=0 bypasses the cache");
    }

    #[test]
    fn cached_caches() {
        let ctx = test_ctx();
        let v1 = ctx.cached("k", 60, || json!({"x": 1}));
        let v2 = ctx.cached("k", 60, || unreachable!());
        assert_eq!(v1, v2);
    }

    #[test]
    fn source_probe_accumulates() {
        let ctx = test_ctx();
        ctx.note_source("My Jobs", "sacct (slurmdbd)");
        ctx.note_source("My Jobs", "squeue (slurmctld)");
        ctx.note_source("My Jobs", "sacct (slurmdbd)");
        let observed = ctx.observed_sources();
        assert_eq!(observed["My Jobs"].len(), 2);
        ctx.clear_observed_sources();
        assert!(ctx.observed_sources().is_empty());
    }
}
