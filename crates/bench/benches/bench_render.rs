//! Figures F2/F4b as render benches: HTML generation for the homepage
//! widgets and the Cluster Status grid/list at increasing cluster sizes.

use criterion::{BenchmarkId, Criterion};
use hpcdash_bench::{banner, BenchSite};
use hpcdash_core::pages;

fn main() {
    banner("F2/F4b", "widget & page render throughput");
    let site = BenchSite::fast();
    site.warm_up(900);
    let user = site.user();

    // Gather live payloads once; rendering is the thing under test.
    let payloads: Vec<(&str, serde_json::Value)> = pages::homepage::WIDGETS
        .iter()
        .map(|(w, path)| {
            let resp = site.get(path, &user);
            assert_eq!(resp.status, 200, "{path}");
            (*w, resp.body_json().expect("json"))
        })
        .collect();

    let mut c = Criterion::default().configure_from_args().sample_size(60);
    {
        let mut group = c.benchmark_group("widget_render");
        for (widget, payload) in &payloads {
            group.bench_with_input(BenchmarkId::from_parameter(widget), payload, |b, p| {
                b.iter(|| match *widget {
                    "announcements" => hpcdash_core::widgets::announcements::render(p),
                    "recent_jobs" => hpcdash_core::widgets::recent_jobs::render(p),
                    "system_status" => hpcdash_core::widgets::system_status::render(p),
                    "accounts" => hpcdash_core::widgets::accounts::render(p),
                    "storage" => hpcdash_core::widgets::storage::render(p),
                    _ => unreachable!(),
                })
            });
        }
        group.finish();
    }
    {
        let ok_payloads: Vec<(&str, Result<serde_json::Value, String>)> =
            payloads.iter().map(|(w, p)| (*w, Ok(p.clone()))).collect();
        let mut group = c.benchmark_group("page_render");
        group.bench_function("homepage_full", |b| {
            b.iter(|| pages::homepage::render_full("Anvil", &user, &ok_payloads))
        });
        group.bench_function("homepage_shell", |b| {
            b.iter(|| pages::homepage::render_shell("Anvil", &user))
        });
        group.finish();
    }
    {
        // Cluster Status at synthetic scales: 64, 512, 2048 nodes.
        let mut group = c.benchmark_group("clusterstatus_render");
        for node_count in [64usize, 512, 2_048] {
            let payload = synthetic_nodes(node_count);
            group.bench_with_input(BenchmarkId::new("grid", node_count), &payload, |b, p| {
                b.iter(|| pages::clusterstatus::render_grid(p))
            });
            group.bench_with_input(
                BenchmarkId::new("list_filtered", node_count),
                &payload,
                |b, p| b.iter(|| pages::clusterstatus::render_list(p, Some("mixed"))),
            );
        }
        group.finish();
    }
    c.final_summary();
}

fn synthetic_nodes(n: usize) -> serde_json::Value {
    let states = ["IDLE", "MIXED", "ALLOCATED", "DRAINED", "DOWN"];
    let colors = ["faded-green", "green", "green", "yellow", "red"];
    let nodes: Vec<serde_json::Value> = (0..n)
        .map(|i| {
            let s = i % states.len();
            serde_json::json!({
                "name": format!("a{i:04}"),
                "state": states[s],
                "color": colors[s],
                "cpus_alloc": (i * 7) % 128,
                "cpus_total": 128,
                "cpu_percent": ((i * 7) % 128) as f64 / 1.28,
                "cpu_color": "green",
                "cpu_load": (i % 128) as f64,
                "mem_alloc_mb": (i * 1_000) % 257_000,
                "mem_total_mb": 257_000,
                "mem_percent": 40.0,
                "mem_color": "green",
                "partitions": ["cpu"],
                "gres": null,
                "gres_used": null,
                "reason": null,
                "overview_url": format!("/nodes/a{i:04}"),
            })
        })
        .collect();
    serde_json::json!({ "nodes": nodes })
}
