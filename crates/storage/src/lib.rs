//! A ZFS/GPFS quota-database simulator.
//!
//! The paper's Storage widget (§3.5) lists "disks the user has access to"
//! — home (ZFS), scratch (GPFS) and group depot directories — with usage in
//! bytes and file count against quota. Production clusters answer those
//! queries from a periodically refreshed quota database; this crate plays
//! that database, including its latency and the possibility of being down
//! (used by the fault-isolation experiment).

use hpcdash_simtime::Timestamp;
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Which filesystem a directory lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilesystemKind {
    /// ZFS home directories.
    ZfsHome,
    /// GPFS scratch.
    GpfsScratch,
    /// GPFS group depot space.
    GpfsDepot,
}

impl FilesystemKind {
    pub fn label(self) -> &'static str {
        match self {
            FilesystemKind::ZfsHome => "zfs-home",
            FilesystemKind::GpfsScratch => "gpfs-scratch",
            FilesystemKind::GpfsDepot => "gpfs-depot",
        }
    }
}

/// Who a directory belongs to (drives the privacy filter).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DirOwner {
    User(String),
    Group(String),
}

/// One directory row in the quota database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DirectoryUsage {
    pub path: String,
    pub filesystem: FilesystemKind,
    pub owner: DirOwner,
    pub bytes_used: u64,
    pub bytes_quota: u64,
    pub files_used: u64,
    pub files_quota: u64,
    /// When the quota scanner last refreshed this row.
    pub scanned_at: Timestamp,
}

impl DirectoryUsage {
    pub fn bytes_fraction(&self) -> f64 {
        if self.bytes_quota == 0 {
            0.0
        } else {
            self.bytes_used as f64 / self.bytes_quota as f64
        }
    }

    pub fn files_fraction(&self) -> f64 {
        if self.files_quota == 0 {
            0.0
        } else {
            self.files_used as f64 / self.files_quota as f64
        }
    }
}

/// Storage query errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The quota database is unreachable (fault injection).
    Unavailable,
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Unavailable => write!(f, "storage quota database unavailable"),
        }
    }
}

impl std::error::Error for StorageError {}

pub const GB: u64 = 1_073_741_824;
pub const TB: u64 = 1_099_511_627_776;

/// The quota database.
pub struct StorageDb {
    dirs: RwLock<Vec<DirectoryUsage>>,
    available: RwLock<bool>,
    /// Artificial per-query latency (quota DBs are not fast).
    query_cost: Duration,
}

impl StorageDb {
    pub fn new() -> StorageDb {
        StorageDb::with_cost(Duration::from_micros(400))
    }

    pub fn with_cost(query_cost: Duration) -> StorageDb {
        StorageDb {
            dirs: RwLock::new(Vec::new()),
            available: RwLock::new(true),
            query_cost,
        }
    }

    /// Provision the standard pair for a user: home (ZFS) + scratch (GPFS).
    pub fn provision_user(&self, user: &str, now: Timestamp) {
        let mut dirs = self.dirs.write();
        dirs.push(DirectoryUsage {
            path: format!("/home/{user}"),
            filesystem: FilesystemKind::ZfsHome,
            owner: DirOwner::User(user.to_string()),
            bytes_used: 0,
            bytes_quota: 25 * GB,
            files_used: 0,
            files_quota: 400_000,
            scanned_at: now,
        });
        dirs.push(DirectoryUsage {
            path: format!("/scratch/{user}"),
            filesystem: FilesystemKind::GpfsScratch,
            owner: DirOwner::User(user.to_string()),
            bytes_used: 0,
            bytes_quota: TB,
            files_used: 0,
            files_quota: 2_000_000,
            scanned_at: now,
        });
    }

    /// Provision a group depot directory.
    pub fn provision_group(&self, group: &str, quota_bytes: u64, now: Timestamp) {
        self.dirs.write().push(DirectoryUsage {
            path: format!("/depot/{group}"),
            filesystem: FilesystemKind::GpfsDepot,
            owner: DirOwner::Group(group.to_string()),
            bytes_used: 0,
            bytes_quota: quota_bytes,
            files_used: 0,
            files_quota: 20_000_000,
            scanned_at: now,
        });
    }

    /// Set a directory's usage outright (workload generator).
    pub fn set_usage(&self, path: &str, bytes_used: u64, files_used: u64, now: Timestamp) -> bool {
        let mut dirs = self.dirs.write();
        match dirs.iter_mut().find(|d| d.path == path) {
            Some(d) => {
                d.bytes_used = bytes_used;
                d.files_used = files_used;
                d.scanned_at = now;
                true
            }
            None => false,
        }
    }

    /// Nudge every directory's usage up or down, as a day of user activity
    /// would. Deterministic for a given seed.
    pub fn drift(&self, seed: u64, now: Timestamp) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dirs = self.dirs.write();
        for d in dirs.iter_mut() {
            let delta = rng.gen_range(-0.02f64..0.05);
            let new = (d.bytes_used as f64 + delta * d.bytes_quota as f64)
                .clamp(0.0, d.bytes_quota as f64);
            d.bytes_used = new as u64;
            let fdelta = rng.gen_range(-500i64..2_000);
            d.files_used = (d.files_used as i64 + fdelta).clamp(0, d.files_quota as i64) as u64;
            d.scanned_at = now;
        }
    }

    /// The privacy-filtered query the Storage widget runs: the user's own
    /// directories plus the depot spaces of groups they belong to.
    pub fn dirs_for_user(
        &self,
        user: &str,
        groups: &[String],
    ) -> Result<Vec<DirectoryUsage>, StorageError> {
        self.check_available()?;
        burn(self.query_cost);
        let dirs = self.dirs.read();
        Ok(dirs
            .iter()
            .filter(|d| match &d.owner {
                DirOwner::User(u) => u == user,
                DirOwner::Group(g) => groups.contains(g),
            })
            .cloned()
            .collect())
    }

    /// Admin view of every directory.
    pub fn all_dirs(&self) -> Result<Vec<DirectoryUsage>, StorageError> {
        self.check_available()?;
        burn(self.query_cost);
        Ok(self.dirs.read().clone())
    }

    /// Fault injection: take the quota DB down / bring it back.
    pub fn set_available(&self, up: bool) {
        *self.available.write() = up;
    }

    pub fn is_available(&self) -> bool {
        *self.available.read()
    }

    fn check_available(&self) -> Result<(), StorageError> {
        if *self.available.read() {
            Ok(())
        } else {
            Err(StorageError::Unavailable)
        }
    }
}

impl Default for StorageDb {
    fn default() -> StorageDb {
        StorageDb::new()
    }
}

fn burn(cost: Duration) {
    if cost.is_zero() {
        return;
    }
    let start = Instant::now();
    while start.elapsed() < cost {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> StorageDb {
        let db = StorageDb::with_cost(Duration::ZERO);
        db.provision_user("alice", Timestamp(0));
        db.provision_user("bob", Timestamp(0));
        db.provision_group("physics", 10 * TB, Timestamp(0));
        db.provision_group("bio", 5 * TB, Timestamp(0));
        db
    }

    #[test]
    fn provisioning_creates_standard_dirs() {
        let db = db();
        let all = db.all_dirs().unwrap();
        assert_eq!(all.len(), 6);
        assert!(all.iter().any(|d| d.path == "/home/alice"));
        assert!(all.iter().any(|d| d.path == "/scratch/alice"));
        assert!(all.iter().any(|d| d.path == "/depot/physics"));
    }

    #[test]
    fn privacy_filter() {
        let db = db();
        let mine = db.dirs_for_user("alice", &["physics".to_string()]).unwrap();
        let paths: Vec<&str> = mine.iter().map(|d| d.path.as_str()).collect();
        assert_eq!(
            paths,
            vec!["/home/alice", "/scratch/alice", "/depot/physics"]
        );
        // bob without groups sees only his own.
        let bobs = db.dirs_for_user("bob", &[]).unwrap();
        assert_eq!(bobs.len(), 2);
        assert!(bobs.iter().all(|d| d.path.contains("bob")));
    }

    #[test]
    fn set_usage_and_fractions() {
        let db = db();
        assert!(db.set_usage("/home/alice", 20 * GB, 100_000, Timestamp(50)));
        assert!(!db.set_usage("/nope", 1, 1, Timestamp(50)));
        let mine = db.dirs_for_user("alice", &[]).unwrap();
        let home = mine.iter().find(|d| d.path == "/home/alice").unwrap();
        assert_eq!(home.bytes_used, 20 * GB);
        assert!((home.bytes_fraction() - 0.8).abs() < 1e-9);
        assert!((home.files_fraction() - 0.25).abs() < 1e-9);
        assert_eq!(home.scanned_at, Timestamp(50));
    }

    #[test]
    fn zero_quota_fraction_is_zero() {
        let d = DirectoryUsage {
            path: "/x".into(),
            filesystem: FilesystemKind::GpfsDepot,
            owner: DirOwner::Group("g".into()),
            bytes_used: 5,
            bytes_quota: 0,
            files_used: 5,
            files_quota: 0,
            scanned_at: Timestamp(0),
        };
        assert_eq!(d.bytes_fraction(), 0.0);
        assert_eq!(d.files_fraction(), 0.0);
    }

    #[test]
    fn drift_is_deterministic_and_bounded() {
        let db1 = db();
        let db2 = db();
        db1.drift(42, Timestamp(100));
        db2.drift(42, Timestamp(100));
        assert_eq!(db1.all_dirs().unwrap(), db2.all_dirs().unwrap());
        for d in db1.all_dirs().unwrap() {
            assert!(d.bytes_used <= d.bytes_quota);
            assert!(d.files_used <= d.files_quota);
        }
        // A different seed gives a different trajectory.
        let db3 = db();
        db3.drift(43, Timestamp(100));
        assert_ne!(db1.all_dirs().unwrap(), db3.all_dirs().unwrap());
    }

    #[test]
    fn fault_injection() {
        let db = db();
        db.set_available(false);
        assert!(!db.is_available());
        assert_eq!(
            db.dirs_for_user("alice", &[]),
            Err(StorageError::Unavailable)
        );
        assert_eq!(db.all_dirs(), Err(StorageError::Unavailable));
        db.set_available(true);
        assert!(db.dirs_for_user("alice", &[]).is_ok());
    }

    #[test]
    fn filesystem_labels() {
        assert_eq!(FilesystemKind::ZfsHome.label(), "zfs-home");
        assert_eq!(FilesystemKind::GpfsScratch.label(), "gpfs-scratch");
        assert_eq!(FilesystemKind::GpfsDepot.label(), "gpfs-depot");
    }
}
