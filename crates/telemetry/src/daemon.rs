//! `TelemetryD`: the metrics daemon the dashboard talks to.
//!
//! Collection reads the epoch-published [`ClusterSnapshot`] — never
//! `slurmctld`'s state mutex — so a telemetry pipeline running at full tick
//! rate adds zero contention to scheduling (PR 3's invariant, extended here
//! and asserted by tests and `bench_telemetry`). Queries are served entirely
//! from the daemon's own store. Like the other simulated daemons it burns a
//! calibrated [`RpcCostModel`] cost per item touched and records per-kind
//! [`RpcStats`], so load tests see realistic telemetry latencies.

use crate::collector::{self, CollectOutcome};
use crate::store::{RangePoint, Tier, TsdbStore};
use hpcdash_simtime::SharedClock;
use hpcdash_slurm::ctld::Slurmctld;
use hpcdash_slurm::loadmodel::{RpcCostModel, RpcStats};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub struct TelemetryD {
    clock: SharedClock,
    ctld: Arc<Slurmctld>,
    store: TsdbStore,
    cost: RpcCostModel,
    stats: RpcStats,
}

impl TelemetryD {
    /// telemetryd-ish default costs: cheaper per item than slurmctld (it
    /// serves precomputed buckets), with a small fixed floor.
    pub fn default_cost() -> RpcCostModel {
        RpcCostModel {
            base: Duration::from_micros(60),
            per_item: Duration::from_nanos(150),
        }
    }

    pub fn new(clock: SharedClock, ctld: Arc<Slurmctld>) -> TelemetryD {
        TelemetryD::with_cost(clock, ctld, TelemetryD::default_cost())
    }

    /// A zero-cost daemon for tests that don't measure timing.
    pub fn free(clock: SharedClock, ctld: Arc<Slurmctld>) -> TelemetryD {
        TelemetryD::with_cost(clock, ctld, RpcCostModel::free())
    }

    pub fn with_cost(clock: SharedClock, ctld: Arc<Slurmctld>, cost: RpcCostModel) -> TelemetryD {
        TelemetryD {
            clock,
            ctld,
            store: TsdbStore::default(),
            cost,
            stats: RpcStats::new(),
        }
    }

    /// Run one collection pass against the current cluster snapshot.
    /// Lock-free with respect to slurmctld: the snapshot is an epoch load.
    pub fn collect_now(&self) -> CollectOutcome {
        let t0 = Instant::now();
        let snap = self.ctld.snapshot();
        let ts = self.clock.now().as_secs() as i64;
        let out = collector::collect(&self.store, &snap, ts);
        self.cost.burn(out.samples as usize);
        self.stats.record("collect", t0.elapsed());
        self.stats.record_scanned("collect", out.samples);
        out
    }

    /// Range query with load-model cost proportional to stored points read.
    pub fn query_range(
        &self,
        series: &str,
        start: i64,
        end: i64,
        resolution_secs: i64,
    ) -> (Vec<RangePoint>, Tier) {
        let t0 = Instant::now();
        let (points, tier, scanned) =
            self.store
                .query_range_counted(series, start, end, resolution_secs);
        self.cost.burn(scanned as usize);
        self.stats.record("range_query", t0.elapsed());
        self.stats.record_scanned("range_query", scanned);
        (points, tier)
    }

    /// Count-weighted series mean over a window (1m tier), with RPC cost.
    pub fn series_mean(&self, series: &str, start: i64, end: i64) -> Option<f64> {
        let t0 = Instant::now();
        let mean = self.store.series_mean(series, start, end);
        self.cost.burn(1);
        self.stats.record("series_mean", t0.elapsed());
        mean
    }

    /// Direct store access (ingest stats, uncosted reads for exporters).
    pub fn store(&self) -> &TsdbStore {
        &self.store
    }

    pub fn stats(&self) -> &RpcStats {
        &self.stats
    }

    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }
}
