//! The real-time monitoring extension (paper §9 future work): clients poll
//! the updates feed and see job transitions as the cluster evolves, without
//! refetching tables.

use hpcdash::SimSite;
use hpcdash_http::HttpClient;
use hpcdash_workload::ScenarioConfig;

fn poll(client: &HttpClient, base: &str, user: &str, since: u64) -> serde_json::Value {
    let resp = client
        .get(
            &format!("{base}/api/updates?since={since}"),
            &[("X-Remote-User", user)],
        )
        .unwrap();
    assert_eq!(resp.status, 200);
    resp.json().unwrap()
}

#[test]
fn polling_sees_the_cluster_evolve() {
    let site = SimSite::build(ScenarioConfig::small());
    let server = site.serve().unwrap();
    let base = server.base_url();
    let client = HttpClient::new();
    let user = site.scenario.population.users[0].clone();

    // Initial cursor.
    let body = poll(&client, &base, &user, 0);
    let mut cursor = body["latest_seq"].as_u64().unwrap();

    // Run half an hour of traffic; poll incrementally and accumulate.
    let mut driver = site.driver(1_800);
    let mut seen = Vec::new();
    for _ in 0..6 {
        driver.advance(300);
        let body = poll(&client, &base, &user, cursor);
        cursor = body["latest_seq"].as_u64().unwrap();
        for e in body["events"].as_array().unwrap() {
            seen.push(e.clone());
        }
        assert_eq!(body["resync_required"], false, "cursor kept up");
    }

    // The user's own submissions must appear, with transitions in order
    // per job (PENDING before RUNNING before terminal).
    assert!(
        !seen.is_empty(),
        "an active cluster produced no visible events for {user}"
    );
    let mut per_job: std::collections::BTreeMap<String, Vec<String>> = Default::default();
    for e in &seen {
        per_job
            .entry(e["job"].as_str().unwrap().to_string())
            .or_default()
            .push(e["to"].as_str().unwrap().to_string());
    }
    for (job, transitions) in &per_job {
        if let Some(run_idx) = transitions.iter().position(|t| t == "RUNNING") {
            if let Some(pend_idx) = transitions.iter().position(|t| t == "PENDING") {
                assert!(pend_idx < run_idx, "job {job}: RUNNING before PENDING");
            }
        }
    }

    // Sequence numbers strictly increase.
    let seqs: Vec<u64> = seen.iter().map(|e| e["seq"].as_u64().unwrap()).collect();
    for w in seqs.windows(2) {
        assert!(w[0] < w[1], "event sequence regressed");
    }

    // Privacy: every event belongs to the user or their accounts.
    let accounts = site.scenario.population.accounts_of(&user);
    for e in &seen {
        let event_user = e["user"].as_str().unwrap();
        let event_account = e["account"].as_str().unwrap();
        assert!(
            event_user == user || accounts.iter().any(|a| a == event_account),
            "leaked event for {event_user}/{event_account}"
        );
    }
}

#[test]
fn stale_cursor_requests_resync() {
    let site = SimSite::build(ScenarioConfig::small());
    let server = site.serve().unwrap();
    let base = server.base_url();
    let client = HttpClient::new();
    let user = site.scenario.population.users[0].clone();

    // Generate far more events than the log retains (4096), with a stale
    // cursor pointing at evicted history.
    let account = site.scenario.population.accounts_of(&user)[0].clone();
    for _ in 0..2_200 {
        let mut req = hpcdash_slurm::job::JobRequest::simple(&user, &account, "cpu", 1);
        req.usage.planned_runtime_secs = 1;
        site.scenario.ctld.submit(req).unwrap();
        site.scenario.clock.advance(2);
        site.scenario.ctld.tick();
    }
    let body = poll(&client, &base, &user, 1);
    assert_eq!(body["resync_required"], true, "client must refetch tables");
}
