//! Shared fixtures for the benchmark harnesses.
//!
//! Every bench regenerates one of the paper's artifacts (Table 1, Figures
//! 2-4) or validates one of its performance claims (P1-P5 in DESIGN.md).
//! The fixtures here standardize how a simulated site is stood up and how
//! requests are issued, so benches measure the system and not setup noise.

use hpcdash_core::{CachePolicy, Dashboard, DashboardConfig, DashboardContext};
use hpcdash_http::{Method, Request, Response};
use hpcdash_workload::{Scenario, ScenarioConfig};

/// A site plus dashboard, with realistic or free daemon costs.
pub struct BenchSite {
    pub scenario: Scenario,
    pub dashboard: Dashboard,
}

impl BenchSite {
    /// Small cluster, free daemons (for measuring dashboard-side code).
    pub fn fast() -> BenchSite {
        BenchSite::build(ScenarioConfig::small(), DashboardConfig::purdue_like())
    }

    /// Small cluster, realistic RPC costs (for measuring daemon protection).
    pub fn realistic() -> BenchSite {
        let mut cfg = ScenarioConfig::small();
        cfg.free_daemons = false;
        BenchSite::build(cfg, DashboardConfig::purdue_like())
    }

    /// Same as [`BenchSite::realistic`] but with the server cache disabled.
    pub fn realistic_uncached() -> BenchSite {
        let mut cfg = ScenarioConfig::small();
        cfg.free_daemons = false;
        let mut dcfg = DashboardConfig::purdue_like();
        dcfg.cache = CachePolicy::disabled();
        BenchSite::build(cfg, dcfg)
    }

    pub fn build(scenario_cfg: ScenarioConfig, dash_cfg: DashboardConfig) -> BenchSite {
        let scenario = Scenario::build(scenario_cfg);
        let ctx = DashboardContext::new(
            dash_cfg,
            scenario.clock.shared(),
            scenario.ctld.clone(),
            scenario.dbd.clone(),
            scenario.logs.clone(),
            scenario.storage.clone(),
            scenario.news.clone(),
        )
        .with_telemetry(scenario.telemetry.clone());
        BenchSite {
            dashboard: Dashboard::new(ctx),
            scenario,
        }
    }

    pub fn ctx(&self) -> &DashboardContext {
        self.dashboard.ctx()
    }

    /// Run `secs` of simulated traffic so accounting and the queue have
    /// realistic content.
    pub fn warm_up(&self, secs: u64) {
        let mut driver = self.scenario.driver(secs);
        driver.advance(secs);
    }

    /// In-process GET as `user` (no sockets: benches isolate route cost).
    pub fn get(&self, path: &str, user: &str) -> Response {
        let req = Request::new(Method::Get, path).with_header("X-Remote-User", user);
        self.dashboard.handle(&req)
    }

    /// First user of the population.
    pub fn user(&self) -> String {
        self.scenario.population.users[0].clone()
    }
}

/// Print an experiment banner so `cargo bench` output reads as a report.
pub fn banner(id: &str, title: &str) {
    println!("\n============================================================");
    println!("{id}: {title}");
    println!("============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build_and_serve() {
        let site = BenchSite::fast();
        site.warm_up(300);
        let user = site.user();
        let resp = site.get("/api/system_status", &user);
        assert_eq!(resp.status, 200);
    }
}
