//! Experiment P9 — resilience under injected faults (paper §2.2.2's
//! "protect the daemons, keep the dashboard up" claim, stress-tested).
//!
//! Two measurements:
//!
//! 1. **Availability under a rough afternoon.** A seeded fault plan fails
//!    20% of all slurmctld/slurmdbd calls (plus 200 µs of added service
//!    time) for ~40 simulated minutes while a user keeps refreshing the
//!    homepage widgets. With warm caches the full resilience policy must
//!    keep widget availability ≥ 99%; the ablation (retries and breakers
//!    off) shows what the policy buys: failures that retries would have
//!    absorbed surface as stale-served rounds instead of fresh ones.
//!
//! 2. **The cost of having the fault layer at all.** Disarmed, a
//!    `FaultHost::check` is one relaxed atomic load; a million checks must
//!    be measurable only in nanoseconds each — chaos support may not tax
//!    the production path.

use criterion::{black_box, Criterion};
use hpcdash_bench::{banner, BenchSite};
use hpcdash_core::pages::homepage::WIDGETS;
use hpcdash_core::{DashboardConfig, ResiliencePolicy};
use hpcdash_faults::{FaultHost, FaultPlan, FaultRule};
use hpcdash_workload::ScenarioConfig;
use std::sync::Arc;
use std::time::Instant;

#[derive(Default)]
struct OutageTally {
    fresh: u64,
    degraded: u64,
    failed: u64,
}

impl OutageTally {
    fn total(&self) -> u64 {
        self.fresh + self.degraded + self.failed
    }
    fn availability(&self) -> f64 {
        (self.fresh + self.degraded) as f64 / self.total().max(1) as f64
    }
}

/// Refresh the five homepage widgets through a 20%-failure storm and tally
/// what each round served. Same seed for every policy: the comparison is
/// policy-only.
fn outage_run(policy: ResiliencePolicy) -> OutageTally {
    let mut dash_cfg = DashboardConfig::purdue_like();
    dash_cfg.resilience = policy;
    let site = BenchSite::build(ScenarioConfig::small(), dash_cfg);
    site.warm_up(600);
    let user = site.user();
    for (_, path) in WIDGETS {
        assert_eq!(site.get(path, &user).status, 200, "warm fetch of {path}");
    }

    let plan = Arc::new(
        FaultPlan::new(0x0b5e)
            .rule(FaultRule::error("*", "*", "transient backend fault").with_probability(0.2))
            .rule(FaultRule::latency("*", "*", 200)),
    );
    site.scenario
        .ctld
        .faults()
        .install(plan.clone(), site.scenario.clock.shared());
    site.scenario
        .dbd
        .faults()
        .install(plan, site.scenario.clock.shared());

    let mut tally = OutageTally::default();
    for _ in 0..40 {
        site.scenario.clock.advance(61);
        for (_, path) in WIDGETS {
            let resp = site.get(path, &user);
            let body = resp.body_json().unwrap_or(serde_json::Value::Null);
            match (resp.status, body["degraded"].as_bool().unwrap_or(false)) {
                (200, false) => tally.fresh += 1,
                (200, true) => tally.degraded += 1,
                _ => tally.failed += 1,
            }
        }
    }
    tally
}

fn main() {
    banner(
        "P9",
        "resilience under injected faults: 20% backend errors, warm caches, 40 sim-minutes",
    );
    println!(
        "{:>22} | {:>6} | {:>8} | {:>6} | {:>12}",
        "policy", "fresh", "degraded", "failed", "availability"
    );
    println!("{}", "-".repeat(70));
    let full = outage_run(ResiliencePolicy::default());
    let ablated = outage_run(ResiliencePolicy::disabled());
    for (name, t) in [
        ("retries + breakers", &full),
        ("ablated (fail fast)", &ablated),
    ] {
        println!(
            "{:>22} | {:>6} | {:>8} | {:>6} | {:>11.1}%",
            name,
            t.fresh,
            t.degraded,
            t.failed,
            t.availability() * 100.0
        );
    }
    assert!(
        full.availability() >= 0.99,
        "resilient availability {:.3} under the floor",
        full.availability()
    );
    assert_eq!(full.failed, 0, "warm caches mean no widget goes dark");
    assert!(
        full.fresh > ablated.fresh,
        "retries must convert would-be-stale rounds into fresh ones \
         ({} vs {})",
        full.fresh,
        ablated.fresh
    );
    println!("\nshape check: both policies stay available (serve-stale is the last line of");
    println!("defense either way), but retries absorb most transient failures before they");
    println!("cost freshness — the degraded column is the difference.");

    // The disarmed hook: a million checks in a handful of milliseconds.
    let host = FaultHost::new("slurmctld");
    let start = Instant::now();
    for _ in 0..1_000_000u32 {
        black_box(host.check(black_box("squeue")));
    }
    let disarmed = start.elapsed();
    println!(
        "\ndisarmed fault hook: 1M checks in {:?} ({:.1} ns/check)",
        disarmed,
        disarmed.as_nanos() as f64 / 1e6
    );
    assert!(
        disarmed.as_millis() < 100,
        "disarmed checks must be ~free, took {disarmed:?} for 1M"
    );

    // Criterion timings: disarmed vs armed-but-missing vs armed-and-firing.
    let mut c = Criterion::default().configure_from_args().sample_size(50);
    {
        let mut group = c.benchmark_group("fault_hook");
        let disarmed_host = FaultHost::new("slurmctld");
        group.bench_function("check_disarmed", |b| {
            b.iter(|| disarmed_host.check(black_box("squeue")))
        });
        let armed_host = FaultHost::new("slurmctld");
        let clock = hpcdash_simtime::SimClock::new(hpcdash_simtime::Timestamp(0));
        armed_host.install(
            Arc::new(FaultPlan::new(1).rule(FaultRule::error("slurmctld", "sacct", "x"))),
            clock.shared(),
        );
        group.bench_function("check_armed_no_match", |b| {
            b.iter(|| armed_host.check(black_box("squeue")))
        });
        group.bench_function("check_armed_firing", |b| {
            b.iter(|| armed_host.check(black_box("sacct")))
        });
        group.finish();
    }
    {
        // The retry path's jitter math, in isolation.
        let mut group = c.benchmark_group("backoff");
        group.bench_function("delay_ms", |b| {
            let mut i = 0u32;
            b.iter(|| {
                i = i.wrapping_add(1);
                hpcdash_faults::backoff_delay_ms(5, 40, i % 3, 0x5eed, black_box("recent_jobs"))
            })
        });
        group.finish();
    }
    c.final_summary();
}
