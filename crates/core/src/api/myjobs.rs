//! My Jobs API (paper §4): the full job-history table (every state, not
//! just queued), efficiency columns and warnings, friendly pending reasons,
//! and the two distribution charts.
//!
//! Data sources: `sacct` against slurmdbd for history + usage, and one
//! `squeue` against slurmctld to attach live pending reasons.

use crate::auth::CurrentUser;
use crate::charts;
use crate::colors::job_state_color;
use crate::ctx::DashboardContext;
use crate::efficiency::EfficiencyReport;
use crate::metrics::TimeRange;
use crate::reasons::friendly_reason;
use hpcdash_http::{Request, Response, Router};
use hpcdash_slurm::job::JobState;
use hpcdash_slurmcli::{parse_sacct, parse_squeue_long, sacct, squeue_long, SacctArgs, SqueueArgs};
use serde_json::json;
use std::collections::HashMap;

pub const FEATURE: &str = "My Jobs";
pub const ROUTES: &[&str] = &["/api/myjobs"];
pub const SOURCES: &[&str] = &["sacct (slurmdbd)", "squeue (slurmctld)"];

pub fn register(router: &mut Router, ctx: DashboardContext) {
    router.get(ROUTES[0], move |req| handle(&ctx, req));
}

fn handle(ctx: &DashboardContext, req: &Request) -> Response {
    let user = match CurrentUser::from_request(ctx, req) {
        Ok(u) => u,
        Err(resp) => return resp,
    };
    let Some(range) = TimeRange::from_query(
        req.query_param("range"),
        req.query_param("start"),
        req.query_param("end"),
    ) else {
        return Response::bad_request("invalid range");
    };
    // Optional state filter (clicking a chart segment filters the table).
    let state_filter = match req.query_param("state") {
        None => None,
        Some(s) => match JobState::parse(s) {
            Some(st) => Some(st),
            None => return Response::bad_request("invalid state filter"),
        },
    };
    // The "better filtering methods" of paper §4: narrow by partition, QoS,
    // or a specific group member (within the visibility set).
    let partition_filter = req.query_param("partition").map(str::to_string);
    let qos_filter = req.query_param("qos").map(str::to_string);
    let member_filter = req.query_param("user").map(str::to_string);
    let gpu_flag = ctx.cfg.features.gpu_efficiency;
    let now = ctx.now();
    let key = format!(
        "myjobs:{}:{:?}:{:?}:{:?}:{:?}:{:?}",
        user.username,
        range.window(now),
        state_filter,
        partition_filter,
        qos_filter,
        member_filter,
    );
    let outcome = ctx.cached_resilient(&key, ctx.cfg.cache.myjobs, || {
        let accounts = user.visible_accounts(ctx);

        ctx.note_source(FEATURE, "sacct (slurmdbd)");
        let (since, until) = range.window(now);
        let text = sacct(
            &ctx.dbd,
            &SacctArgs {
                user: Some(user.username.clone()),
                accounts: accounts.to_vec(),
                states: state_filter.map(|s| vec![s]),
                since,
                until,
                job_ids: None,
            },
            now,
        )?;
        let mut records = parse_sacct(&text).map_err(|e| format!("sacct parse: {e}"))?;
        if let Some(p) = &partition_filter {
            records.retain(|r| r.partition == *p);
        }
        if let Some(q) = &qos_filter {
            records.retain(|r| r.qos == *q);
        }
        if let Some(m) = &member_filter {
            records.retain(|r| r.user == *m);
        }

        // Live reasons for pending jobs come from squeue.
        ctx.note_source(FEATURE, "squeue (slurmctld)");
        let qtext = squeue_long(
            &ctx.ctld,
            &SqueueArgs {
                user: Some(user.username.clone()),
                accounts: accounts.to_vec(),
                partition: None,
            },
        )?;
        let qrows = parse_squeue_long(&qtext).map_err(|e| format!("squeue parse: {e}"))?;
        let reasons: HashMap<String, _> = qrows
            .iter()
            .filter_map(|r| r.reason().map(|x| (r.job_id.clone(), x)))
            .collect();

        let jobs: Vec<serde_json::Value> = records
            .iter()
            .map(|rec| {
                let eff = EfficiencyReport::from_record(rec, gpu_flag);
                let reason = reasons.get(&rec.job_id).copied();
                let wait = rec.wait_secs().or_else(|| {
                    rec.submit
                        .map(|s| now.since(s))
                        .filter(|_| rec.state == JobState::Pending)
                });
                json!({
                    "id": rec.job_id,
                    "name": rec.job_name,
                    "user": rec.user,
                    "account": rec.account,
                    "partition": rec.partition,
                    "qos": rec.qos,
                    "state": rec.state.to_slurm(),
                    "state_color": job_state_color(rec.state),
                    "submit": rec.submit.map(|t| t.to_slurm()),
                    "start": rec.start.map(|t| t.to_slurm()),
                    "end": rec.end.map(|t| t.to_slurm()),
                    "wait_secs": wait,
                    "elapsed_secs": rec.elapsed_secs,
                    "timelimit": rec.timelimit.to_slurm(),
                    "alloc_cpus": rec.alloc_cpus,
                    "alloc_nodes": rec.alloc_nodes,
                    "req_mem_mb": rec.req_mem_mb,
                    "gpu_hours": (rec.gpu_hours() * 100.0).round() / 100.0,
                    "nodelist": rec.nodelist,
                    "exit_code": rec.exit_code,
                    "session_id": parse_session_id(&rec.comment),
                    "efficiency": eff,
                    "reason": reason.map(|r| json!({
                        "code": r.to_slurm(),
                        "message": friendly_reason(r),
                    })),
                    "overview_url": format!("/jobs/{}", rec.job_id),
                })
            })
            .collect();

        Ok(json!({
            "range": range.label(),
            "jobs": jobs,
            "charts": {
                "state_distribution": charts::job_state_distribution(&records),
                "gpu_hours": charts::gpu_hours_distribution(&records),
            },
        }))
    });
    super::respond(outcome)
}

/// Extract the Open OnDemand session id from a job comment.
fn parse_session_id(comment: &str) -> Option<String> {
    let mut parts = comment.strip_prefix("ood:")?.split(':');
    let _app = parts.next()?;
    parts.next().map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::tests::test_ctx;
    use hpcdash_http::Method;
    use hpcdash_slurm::job::{JobRequest, PlannedOutcome, UsageProfile};

    fn request(path: &str, user: &str) -> Request {
        Request::new(Method::Get, path).with_header("X-Remote-User", user)
    }

    fn submit_and_tick(ctx: &crate::ctx::DashboardContext) {
        // A wasteful completed job, a failed one, and a pending one.
        let mut wasteful = JobRequest::simple("alice", "physics", "cpu", 8);
        wasteful.usage = UsageProfile {
            cpu_util: 0.05,
            mem_util: 0.05,
            gpu_util: 0.0,
            planned_runtime_secs: 600,
            outcome: PlannedOutcome::Success,
        };
        wasteful.comment = Some("ood:jupyter:sess42:/home/alice/ondemand".to_string());
        ctx.ctld.submit(wasteful).unwrap();
        let mut failing = JobRequest::simple("alice", "physics", "cpu", 4);
        failing.usage.outcome = PlannedOutcome::Fail { exit_code: 2 };
        failing.usage.planned_runtime_secs = 500;
        ctx.ctld.submit(failing).unwrap();
        ctx.ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 16))
            .unwrap();
        ctx.ctld.tick();
    }

    #[test]
    fn table_includes_all_states_and_efficiency() {
        let ctx = test_ctx();
        submit_and_tick(&ctx);
        let resp = handle(&ctx, &request("/api/myjobs?range=all", "alice"));
        assert_eq!(resp.status, 200, "{}", resp.body_string());
        let body = resp.body_json().unwrap();
        let jobs = body["jobs"].as_array().unwrap();
        assert_eq!(jobs.len(), 3);
        let states: Vec<&str> = jobs.iter().map(|j| j["state"].as_str().unwrap()).collect();
        assert!(states.contains(&"RUNNING"));
        assert!(states.contains(&"PENDING"));
        let pending = jobs.iter().find(|j| j["state"] == "PENDING").unwrap();
        assert!(pending["reason"]["message"]
            .as_str()
            .unwrap()
            .starts_with("It means"));
        assert!(pending["wait_secs"].is_u64());
        let session = jobs.iter().find(|j| j["session_id"] == "sess42");
        assert!(session.is_some(), "OOD session id parsed from comment");
        // Charts present.
        assert!(body["charts"]["state_distribution"]["labels"].is_array());
        assert!(body["charts"]["gpu_hours"]["labels"].is_array());
    }

    #[test]
    fn state_filter_narrows_table() {
        let ctx = test_ctx();
        submit_and_tick(&ctx);
        let resp = handle(
            &ctx,
            &request("/api/myjobs?range=all&state=PENDING", "alice"),
        );
        let jobs = resp.body_json().unwrap()["jobs"]
            .as_array()
            .unwrap()
            .to_vec();
        assert!(!jobs.is_empty());
        assert!(jobs.iter().all(|j| j["state"] == "PENDING"));
        assert_eq!(
            handle(&ctx, &request("/api/myjobs?range=all&state=BOGUS", "alice")).status,
            400
        );
    }

    #[test]
    fn partition_qos_and_member_filters() {
        let ctx = test_ctx();
        submit_and_tick(&ctx);
        let all = handle(&ctx, &request("/api/myjobs?range=all", "alice"));
        let total = all.body_json().unwrap()["jobs"].as_array().unwrap().len();
        assert!(total >= 3);

        let cpu_only = handle(
            &ctx,
            &request("/api/myjobs?range=all&partition=cpu", "alice"),
        );
        assert_eq!(
            cpu_only.body_json().unwrap()["jobs"]
                .as_array()
                .unwrap()
                .len(),
            total,
            "every job is on the cpu partition here"
        );
        let gpu_only = handle(
            &ctx,
            &request("/api/myjobs?range=all&partition=gpu", "alice"),
        );
        assert_eq!(
            gpu_only.body_json().unwrap()["jobs"]
                .as_array()
                .unwrap()
                .len(),
            0
        );

        let normal = handle(&ctx, &request("/api/myjobs?range=all&qos=normal", "alice"));
        assert_eq!(
            normal.body_json().unwrap()["jobs"]
                .as_array()
                .unwrap()
                .len(),
            total
        );
        let high = handle(&ctx, &request("/api/myjobs?range=all&qos=high", "alice"));
        assert_eq!(
            high.body_json().unwrap()["jobs"].as_array().unwrap().len(),
            0
        );

        let mine = handle(&ctx, &request("/api/myjobs?range=all&user=alice", "alice"));
        assert_eq!(
            mine.body_json().unwrap()["jobs"].as_array().unwrap().len(),
            total
        );
        let theirs = handle(&ctx, &request("/api/myjobs?range=all&user=bob", "alice"));
        assert_eq!(
            theirs.body_json().unwrap()["jobs"]
                .as_array()
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn invalid_range_rejected() {
        let ctx = test_ctx();
        assert_eq!(
            handle(&ctx, &request("/api/myjobs?range=century", "alice")).status,
            400
        );
    }

    #[test]
    fn privacy_limits_to_group() {
        let ctx = test_ctx();
        submit_and_tick(&ctx);
        let resp = handle(&ctx, &request("/api/myjobs?range=all", "mallory"));
        assert_eq!(
            resp.body_json().unwrap()["jobs"].as_array().unwrap().len(),
            0
        );
    }
}
