//! Aggregate job performance metrics (paper §5): totals, queue wait, mean
//! duration, wall time and average efficiencies over a selectable range.

use crate::efficiency::EfficiencyReport;
use hpcdash_simtime::Timestamp;
use hpcdash_slurmcli::SacctRecord;
use serde::Serialize;
use serde_json::json;
use std::collections::BTreeMap;

/// The time ranges the Job Performance Metrics page offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeRange {
    Last24h,
    Last7d,
    Last30d,
    AllTime,
    Custom { start: Timestamp, end: Timestamp },
}

impl TimeRange {
    /// Parse from the page's query parameters (`range`, `start`, `end`).
    pub fn from_query(
        range: Option<&str>,
        start: Option<&str>,
        end: Option<&str>,
    ) -> Option<TimeRange> {
        match range.unwrap_or("7d") {
            "24h" => Some(TimeRange::Last24h),
            "7d" => Some(TimeRange::Last7d),
            "30d" => Some(TimeRange::Last30d),
            "all" => Some(TimeRange::AllTime),
            "custom" => {
                let s = hpcdash_simtime::parse_timestamp(start?)?;
                let e = hpcdash_simtime::parse_timestamp(end?)?;
                if e < s {
                    return None;
                }
                Some(TimeRange::Custom { start: s, end: e })
            }
            _ => None,
        }
    }

    /// The `(since, until)` pair for the accounting query.
    pub fn window(&self, now: Timestamp) -> (Option<Timestamp>, Option<Timestamp>) {
        match self {
            TimeRange::Last24h => (Some(now.minus(86_400)), None),
            TimeRange::Last7d => (Some(now.minus(7 * 86_400)), None),
            TimeRange::Last30d => (Some(now.minus(30 * 86_400)), None),
            TimeRange::AllTime => (None, None),
            TimeRange::Custom { start, end } => (Some(*start), Some(*end)),
        }
    }

    pub fn label(&self) -> String {
        match self {
            TimeRange::Last24h => "Last 24 hours".to_string(),
            TimeRange::Last7d => "Last 7 days".to_string(),
            TimeRange::Last30d => "Last 30 days".to_string(),
            TimeRange::AllTime => "All time".to_string(),
            TimeRange::Custom { start, end } => format!("{} — {}", start, end),
        }
    }
}

/// The aggregate metrics card data.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JobMetrics {
    pub total_jobs: usize,
    pub by_state: BTreeMap<String, usize>,
    /// Average queue wait over jobs that started, seconds.
    pub avg_wait_secs: Option<f64>,
    /// Mean duration of finished jobs, seconds.
    pub mean_duration_secs: Option<f64>,
    /// Total wall time across finished jobs, seconds.
    pub total_wall_secs: u64,
    /// Total charged CPU-hours (alloc CPUs × elapsed).
    pub total_cpu_hours: f64,
    /// Total GPU-hours.
    pub total_gpu_hours: f64,
    /// Averages over finished jobs with usage data.
    pub avg_cpu_eff: Option<f64>,
    pub avg_mem_eff: Option<f64>,
    pub avg_time_eff: Option<f64>,
}

impl JobMetrics {
    /// Aggregate a set of accounting records.
    pub fn aggregate(records: &[SacctRecord]) -> JobMetrics {
        let mut by_state: BTreeMap<String, usize> = BTreeMap::new();
        let mut waits = Vec::new();
        let mut durations = Vec::new();
        let mut total_wall = 0u64;
        let mut cpu_hours = 0.0;
        let mut gpu_hours = 0.0;
        let mut cpu_effs = Vec::new();
        let mut mem_effs = Vec::new();
        let mut time_effs = Vec::new();

        for rec in records {
            *by_state
                .entry(rec.state.to_slurm().to_string())
                .or_insert(0) += 1;
            if let Some(w) = rec.wait_secs() {
                waits.push(w as f64);
            }
            if rec.state.is_finished() {
                durations.push(rec.elapsed_secs as f64);
                total_wall += rec.elapsed_secs;
            }
            cpu_hours += rec.alloc_cpus as f64 * rec.elapsed_secs as f64 / 3_600.0;
            gpu_hours += rec.gpu_hours();
            if rec.state.is_finished() {
                let e = EfficiencyReport::from_record(rec, false);
                if let Some(c) = e.cpu {
                    cpu_effs.push(c);
                }
                if let Some(m) = e.memory {
                    mem_effs.push(m);
                }
                if let Some(t) = e.time {
                    time_effs.push(t);
                }
            }
        }

        JobMetrics {
            total_jobs: records.len(),
            by_state,
            avg_wait_secs: mean(&waits),
            mean_duration_secs: mean(&durations),
            total_wall_secs: total_wall,
            total_cpu_hours: cpu_hours,
            total_gpu_hours: gpu_hours,
            avg_cpu_eff: mean(&cpu_effs),
            avg_mem_eff: mean(&mem_effs),
            avg_time_eff: mean(&time_effs),
        }
    }

    pub fn to_json(&self) -> serde_json::Value {
        json!({
            "total_jobs": self.total_jobs,
            "by_state": self.by_state,
            "avg_wait_secs": self.avg_wait_secs,
            "mean_duration_secs": self.mean_duration_secs,
            "total_wall_secs": self.total_wall_secs,
            "total_cpu_hours": self.total_cpu_hours,
            "total_gpu_hours": self.total_gpu_hours,
            "avg_cpu_eff": self.avg_cpu_eff,
            "avg_mem_eff": self.avg_mem_eff,
            "avg_time_eff": self.avg_time_eff,
        })
    }
}

fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use hpcdash_simtime::TimeLimit;
    use hpcdash_slurm::job::JobState;
    use hpcdash_slurm::tres::Tres;

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rec(
        id: u32,
        user: &str,
        state: JobState,
        submit: u64,
        start: Option<u64>,
        end: Option<u64>,
        cpus: u32,
        gpus: u32,
    ) -> SacctRecord {
        let elapsed = match (start, end) {
            (Some(s), Some(e)) => e - s,
            _ => 0,
        };
        SacctRecord {
            job_id: id.to_string(),
            job_name: format!("j{id}"),
            user: user.to_string(),
            account: "physics".to_string(),
            partition: if gpus > 0 { "gpu" } else { "cpu" }.to_string(),
            qos: "normal".to_string(),
            state,
            submit: Some(Timestamp(submit)),
            start: start.map(Timestamp),
            end: end.map(Timestamp),
            elapsed_secs: elapsed,
            timelimit: TimeLimit::Limited(7_200),
            alloc_cpus: cpus,
            alloc_nodes: 1,
            alloc_tres: Tres::new(cpus, 1_000, gpus, 1),
            req_mem_mb: 16_384,
            max_rss_mb: end.map(|_| 8_192),
            total_cpu_secs: end.map(|_| elapsed * cpus as u64 * 8 / 10),
            exit_code: "0:0".to_string(),
            nodelist: "a001".to_string(),
            comment: String::new(),
        }
    }

    #[test]
    fn aggregates_basics() {
        let recs = vec![
            rec(
                1,
                "alice",
                JobState::Completed,
                0,
                Some(100),
                Some(3_700),
                8,
                0,
            ),
            rec(
                2,
                "alice",
                JobState::Failed,
                0,
                Some(200),
                Some(1_200),
                4,
                0,
            ),
            rec(3, "alice", JobState::Pending, 500, None, None, 2, 0),
            rec(
                4,
                "alice",
                JobState::Completed,
                0,
                Some(50),
                Some(7_250),
                8,
                2,
            ),
        ];
        let m = JobMetrics::aggregate(&recs);
        assert_eq!(m.total_jobs, 4);
        assert_eq!(m.by_state["COMPLETED"], 2);
        assert_eq!(m.by_state["FAILED"], 1);
        assert_eq!(m.by_state["PENDING"], 1);
        // waits: 100, 200, 50 => 116.67
        assert!((m.avg_wait_secs.unwrap() - 350.0 / 3.0).abs() < 1e-6);
        // durations: 3600, 1000, 7200 => mean 3933.33
        assert!((m.mean_duration_secs.unwrap() - 11_800.0 / 3.0).abs() < 1e-6);
        assert_eq!(m.total_wall_secs, 3_600 + 1_000 + 7_200);
        // gpu hours: job4 = 2 gpus * 2h = 4.
        assert!((m.total_gpu_hours - 4.0).abs() < 1e-9);
        assert!((m.avg_cpu_eff.unwrap() - 0.8).abs() < 0.01);
        assert!(m.avg_time_eff.is_some());
    }

    #[test]
    fn empty_set_is_all_none() {
        let m = JobMetrics::aggregate(&[]);
        assert_eq!(m.total_jobs, 0);
        assert_eq!(m.avg_wait_secs, None);
        assert_eq!(m.mean_duration_secs, None);
        assert_eq!(m.total_gpu_hours, 0.0);
        assert!(m.to_json()["avg_wait_secs"].is_null());
    }

    #[test]
    fn range_parsing() {
        assert_eq!(
            TimeRange::from_query(Some("24h"), None, None),
            Some(TimeRange::Last24h)
        );
        assert_eq!(
            TimeRange::from_query(None, None, None),
            Some(TimeRange::Last7d)
        );
        assert_eq!(
            TimeRange::from_query(Some("all"), None, None),
            Some(TimeRange::AllTime)
        );
        assert_eq!(TimeRange::from_query(Some("bogus"), None, None), None);
        let custom = TimeRange::from_query(
            Some("custom"),
            Some("2026-07-01T00:00:00"),
            Some("2026-07-03T00:00:00"),
        )
        .unwrap();
        assert!(matches!(custom, TimeRange::Custom { .. }));
        // Reversed custom range rejected.
        assert_eq!(
            TimeRange::from_query(
                Some("custom"),
                Some("2026-07-03T00:00:00"),
                Some("2026-07-01T00:00:00")
            ),
            None
        );
        // Custom without bounds rejected.
        assert_eq!(TimeRange::from_query(Some("custom"), None, None), None);
    }

    #[test]
    fn range_windows() {
        let now = Timestamp(100 * 86_400);
        assert_eq!(
            TimeRange::Last24h.window(now).0,
            Some(Timestamp(99 * 86_400))
        );
        assert_eq!(TimeRange::AllTime.window(now), (None, None));
        let (s, e) = TimeRange::Custom {
            start: Timestamp(5),
            end: Timestamp(9),
        }
        .window(now);
        assert_eq!((s, e), (Some(Timestamp(5)), Some(Timestamp(9))));
    }

    #[test]
    fn labels() {
        assert_eq!(TimeRange::Last7d.label(), "Last 7 days");
        assert!(TimeRange::Custom {
            start: Timestamp(0),
            end: Timestamp(86_400)
        }
        .label()
        .contains("1970"));
    }
}
