//! User and account population generation.

use hpcdash_slurm::assoc::{Account, AssocStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DOMAINS: [&str; 12] = [
    "physics", "bio", "chem", "cs", "stat", "mech", "civil", "aero", "mse", "ece", "earth", "astro",
];

const FIRST: [&str; 16] = [
    "wei", "maria", "john", "priya", "chen", "sofia", "omar", "elena", "raj", "yuki", "lucas",
    "amara", "ivan", "nina", "kofi", "lena",
];

/// Population parameters.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    pub accounts: usize,
    pub users_per_account_min: usize,
    pub users_per_account_max: usize,
    /// Fraction of accounts that get a `GrpTRES` CPU cap.
    pub capped_fraction: f64,
    pub seed: u64,
}

impl Default for PopulationConfig {
    fn default() -> PopulationConfig {
        PopulationConfig {
            accounts: 6,
            users_per_account_min: 2,
            users_per_account_max: 6,
            capped_fraction: 0.5,
            seed: 7,
        }
    }
}

/// The generated population.
#[derive(Debug, Clone)]
pub struct Population {
    pub assoc: AssocStore,
    pub accounts: Vec<String>,
    pub users: Vec<String>,
    /// `(user, account)` memberships; a few users belong to two accounts.
    pub memberships: Vec<(String, String)>,
}

impl Population {
    pub fn generate(cfg: &PopulationConfig) -> Population {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut assoc = AssocStore::new();
        let mut accounts = Vec::new();
        let mut users = Vec::new();
        let mut memberships = Vec::new();

        for i in 0..cfg.accounts {
            let name = format!(
                "{}{}",
                DOMAINS[i % DOMAINS.len()],
                if i >= DOMAINS.len() {
                    (i / DOMAINS.len()).to_string()
                } else {
                    String::new()
                }
            );
            let mut account = Account::new(name.clone());
            account.description = format!("{name} research allocation");
            if rng.gen_bool(cfg.capped_fraction) {
                account = account.with_cpu_limit(rng.gen_range(128..=1_024));
            }
            if rng.gen_bool(0.4) {
                account = account.with_gpu_mins_limit(rng.gen_range(10_000..200_000));
            }
            assoc.add_account(account);
            accounts.push(name);
        }

        let mut user_counter = 0usize;
        for account in &accounts {
            let n = rng.gen_range(cfg.users_per_account_min..=cfg.users_per_account_max);
            for _ in 0..n {
                let user = format!("{}{:03}", FIRST[user_counter % FIRST.len()], user_counter);
                user_counter += 1;
                assoc.add_user(account, &user);
                users.push(user.clone());
                memberships.push((user, account.clone()));
            }
        }

        // A handful of cross-account users (the group-visibility cases).
        let crossovers = (users.len() / 8).max(1);
        for k in 0..crossovers {
            if accounts.len() < 2 {
                break;
            }
            let user = users[k * 7 % users.len()].clone();
            let other = accounts[(k + 1) % accounts.len()].clone();
            if !assoc.is_member(&other, &user) {
                assoc.add_user(&other, &user);
                memberships.push((user, other));
            }
        }

        Population {
            assoc,
            accounts,
            users,
            memberships,
        }
    }

    /// Accounts of one user.
    pub fn accounts_of(&self, user: &str) -> Vec<String> {
        self.assoc.accounts_of_user(user)
    }

    /// A user with at least one account, by index (wraps).
    pub fn user(&self, i: usize) -> &str {
        &self.users[i % self.users.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let cfg = PopulationConfig::default();
        let a = Population::generate(&cfg);
        let b = Population::generate(&cfg);
        assert_eq!(a.users, b.users);
        assert_eq!(a.accounts, b.accounts);
        assert_eq!(a.memberships, b.memberships);
        let c = Population::generate(&PopulationConfig { seed: 8, ..cfg });
        assert_ne!(a.memberships, c.memberships);
    }

    #[test]
    fn every_user_has_an_account() {
        let p = Population::generate(&PopulationConfig::default());
        assert!(!p.users.is_empty());
        for u in &p.users {
            assert!(!p.accounts_of(u).is_empty(), "{u} has no account");
        }
    }

    #[test]
    fn some_users_cross_accounts() {
        let p = Population::generate(&PopulationConfig {
            accounts: 6,
            users_per_account_min: 4,
            users_per_account_max: 8,
            ..PopulationConfig::default()
        });
        let multi = p
            .users
            .iter()
            .filter(|u| p.accounts_of(u).len() > 1)
            .count();
        assert!(multi >= 1, "expected cross-account users");
    }

    #[test]
    fn account_count_respected() {
        let p = Population::generate(&PopulationConfig {
            accounts: 15,
            ..PopulationConfig::default()
        });
        assert_eq!(p.accounts.len(), 15);
        // Names stay unique even past the domain list length.
        let mut sorted = p.accounts.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 15);
    }
}
