//! The observatory end to end: faulted traffic leaves tail-sampled traces
//! that an administrator can list and fetch root-first, the p99 exemplar on
//! the route latency histogram resolves to a stored trace, the dashboard's
//! own metrics history is queryable from the TSDB's 1-minute tier, and the
//! whole surface is admin-gated.
//!
//! Everything lives in one test because the trace store and span sink are
//! process-wide: the last-built context owns the exemplar registry, and two
//! sites built by parallel tests would race for it.

use hpcdash::SimSite;
use hpcdash_client::admin_observability_paths;
use hpcdash_faults::{FaultPlan, FaultRule};
use hpcdash_http::{HttpClient, TRACE_HEADER};
use hpcdash_workload::ScenarioConfig;
use std::sync::Arc;

fn get(
    client: &HttpClient,
    base: &str,
    path: &str,
    user: &str,
    trace: Option<u64>,
) -> hpcdash_http::ClientResponse {
    let hex = trace.map(|t| format!("{t:016x}"));
    let mut headers: Vec<(&str, &str)> = vec![("X-Remote-User", user)];
    if let Some(h) = &hex {
        headers.push((TRACE_HEADER, h));
    }
    client.get(&format!("{base}{path}"), &headers).unwrap()
}

#[test]
fn observatory_end_to_end() {
    let site = SimSite::build(ScenarioConfig::small());
    site.warm_up(600);
    let server = site.serve().unwrap();
    let base = server.base_url();
    let client = HttpClient::new();
    let user = site.scenario.population.users[0].clone();

    // --- Self-metrics history: 15 simulated minutes of collection feed the
    // `self:` series, enough for the TSDB's 1-minute tier to fill.
    for _ in 0..30 {
        site.scenario.clock.advance(30);
        site.scenario.ctld.tick();
        site.scenario.telemetry.collect_now();
    }

    // --- Healthy traffic under known trace ids (1-in-N tail sampling).
    for i in 0..20u64 {
        let r = get(&client, &base, "/api/recent_jobs", &user, Some(0xA000 + i));
        assert_eq!(r.status, 200);
    }

    // --- An errored request: dbd outage, cold sacct route goes dark.
    let error_trace = 0xE001u64;
    site.scenario.dbd.faults().install(
        Arc::new(FaultPlan::new(21).rule(FaultRule::error(
            "slurmdbd",
            "*",
            "slurmdbd: connection refused",
        ))),
        site.scenario.clock.shared(),
    );
    let r = get(&client, &base, "/api/jobmetrics", &user, Some(error_trace));
    assert_eq!(r.status, 503);
    site.scenario.dbd.faults().clear();

    // --- A degraded request: the recent-jobs cache goes stale past its TTL,
    // the refresh fails, and the last good payload is served stale.
    let degraded_trace = 0xD001u64;
    site.scenario.clock.advance(40);
    site.scenario.ctld.faults().install(
        Arc::new(FaultPlan::new(3).rule(FaultRule::error(
            "slurmctld",
            "squeue",
            "ctld: socket timeout",
        ))),
        site.scenario.clock.shared(),
    );
    let r = get(
        &client,
        &base,
        "/api/recent_jobs",
        &user,
        Some(degraded_trace),
    );
    assert_eq!(r.status, 200);
    assert_eq!(r.json().unwrap()["degraded"], true, "served stale");
    site.scenario.ctld.faults().clear();

    // --- Both faulted traces are retained and listed for the admin.
    let listing = get(&client, &base, "/api/traces?limit=100", "root", None);
    assert_eq!(listing.status, 200);
    let listing = listing.json().unwrap();
    let rows = listing["traces"].as_array().unwrap();
    let row_for = |id: u64| {
        let hex = format!("{id:016x}");
        rows.iter()
            .find(|t| t["id"] == hex.as_str())
            .unwrap_or_else(|| panic!("trace {hex} not listed in {rows:?}"))
            .clone()
    };
    assert_eq!(row_for(error_trace)["cause"], "error");
    assert_eq!(row_for(degraded_trace)["cause"], "degraded");

    // --- Each is fetchable by id, spans root-first for the waterfall.
    for (id, cause, route) in [
        (error_trace, "error", "/api/jobmetrics"),
        (degraded_trace, "degraded", "/api/recent_jobs"),
    ] {
        let r = get(
            &client,
            &base,
            &format!("/api/traces/{id:016x}"),
            "root",
            None,
        );
        assert_eq!(r.status, 200, "{}", r.body_string());
        let t = r.json().unwrap();
        assert_eq!(t["cause"], cause);
        assert_eq!(t["route"], route);
        let spans = t["spans"].as_array().unwrap();
        assert!(!spans.is_empty());
        assert_eq!(spans[0]["depth"], 0, "root first: {spans:?}");
        assert_eq!(spans[0]["start_offset_ns"], 0);
        assert!(spans[0]["dur_ns"].as_u64().unwrap() >= 1);
    }
    assert_eq!(
        get(&client, &base, "/api/traces/zz", "root", None).status,
        400
    );

    // --- The SLO board's p99 exemplar resolves to a stored trace.
    let summary = get(&client, &base, "/api/observatory", "root", None);
    assert_eq!(summary.status, 200);
    let summary = summary.json().unwrap();
    let slo = summary["slo"].as_array().unwrap();
    let recent = slo
        .iter()
        .find(|row| row["route"] == "/api/recent_jobs")
        .expect("recent_jobs SLO row");
    let exemplar = recent["latency"]["p99_exemplar"]
        .as_str()
        .expect("exemplar written at retention")
        .to_string();
    let r = get(
        &client,
        &base,
        &format!("/api/traces/{exemplar}"),
        "root",
        None,
    );
    assert_eq!(r.status, 200, "exemplar must resolve to a stored trace");

    // --- Tick phases and trace-pipeline pressure ride along in the summary.
    assert!(summary["phases"]["slurmctld"]
        .as_array()
        .unwrap()
        .iter()
        .any(|p| p["phase"] == "sched_pass"));
    assert!(summary["trace_sink"]["capacity"].as_u64().unwrap() > 0);
    assert!(summary["traces"]["by_cause"]["error"].as_u64().unwrap() >= 1);

    // --- Self-metrics history serves from the 1-minute tier, non-empty.
    let series_path = "/api/obs/series?name=self%3Ahpcdash_sched_queue_depth&resolution=60";
    let r = get(&client, &base, series_path, "root", None);
    assert_eq!(r.status, 200, "{}", r.body_string());
    let body = r.json().unwrap();
    assert_eq!(body["tier"], "1m");
    assert!(
        !body["points"].as_array().unwrap().is_empty(),
        "15 min of collection must land in the 1m tier: {body}"
    );

    // --- The whole admin mix (what the load generator replays) is gated.
    for path in admin_observability_paths() {
        assert_eq!(
            get(&client, &base, &path, &user, None).status,
            403,
            "{path} must refuse non-admins"
        );
        assert_eq!(
            get(&client, &base, &path, "root", None).status,
            200,
            "{path} must serve admins"
        );
    }
    let page = get(&client, &base, "/observatory", "root", None);
    assert_eq!(page.status, 200);
    assert!(page.body_string().contains("data-api=\"/api/observatory\""));
    assert_eq!(get(&client, &base, "/observatory", &user, None).status, 403);

    // --- Health reports sink pressure alongside source status.
    let health = get(&client, &base, "/api/health", &user, None);
    let health = health.json().unwrap();
    assert!(health["trace_sink"]["capacity"].as_u64().unwrap() > 0);
    assert!(health["trace_sink"]["depth"].as_u64().is_some());
    assert!(health["trace_sink"]["dropped_spans"].as_u64().is_some());
}
