//! A sharded TTL cache driven by the simulation clock — the Rails
//! in-memory-cache analog on the dashboard's server side.

use crate::stats::CacheStats;
use hpcdash_simtime::{SharedClock, Timestamp};
use parking_lot::RwLock;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

const SHARDS: usize = 16;

#[derive(Debug, Clone)]
struct Entry<V> {
    value: V,
    stored_at: Timestamp,
    ttl_secs: u64,
}

impl<V> Entry<V> {
    fn expired(&self, now: Timestamp) -> bool {
        now.since(self.stored_at) >= self.ttl_secs
    }
}

/// A thread-safe string-keyed cache with per-entry TTLs.
///
/// Sharded so that widget routes refreshing different data sources do not
/// contend on one lock (the hpc-parallel guides' standard remedy for hot
/// shared maps).
pub struct TtlCache<V> {
    shards: Vec<RwLock<HashMap<String, Entry<V>>>>,
    clock: SharedClock,
    stats: Arc<CacheStats>,
}

impl<V: Clone> TtlCache<V> {
    pub fn new(clock: SharedClock) -> TtlCache<V> {
        TtlCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            clock,
            stats: Arc::new(CacheStats::new()),
        }
    }

    fn shard(&self, key: &str) -> &RwLock<HashMap<String, Entry<V>>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Fresh value for `key`, if present and unexpired.
    pub fn get(&self, key: &str) -> Option<V> {
        self.get_with_age(key).map(|(v, _)| v)
    }

    /// Fresh value plus its age in seconds.
    pub fn get_with_age(&self, key: &str) -> Option<(V, u64)> {
        let now = self.clock.now();
        let shard = self.shard(key).read();
        match shard.get(key) {
            Some(e) if !e.expired(now) => {
                self.stats.hit();
                Some((e.value.clone(), now.since(e.stored_at)))
            }
            Some(_) => {
                self.stats.miss();
                self.stats.expiration();
                None
            }
            None => {
                self.stats.miss();
                None
            }
        }
    }

    /// The value even if expired (for stale-while-revalidate callers),
    /// tagged with whether it is still fresh.
    pub fn get_allow_stale(&self, key: &str) -> Option<(V, bool)> {
        let now = self.clock.now();
        let shard = self.shard(key).read();
        shard.get(key).map(|e| (e.value.clone(), !e.expired(now)))
    }

    /// The value even if expired, with its age in seconds and freshness —
    /// the serve-stale-on-error read: when a refresh fails, the caller
    /// returns this last-known-good value labelled "from N seconds ago".
    /// No stats side effects; the caller records the outcome it chose.
    pub fn get_stale_with_age(&self, key: &str) -> Option<(V, u64, bool)> {
        let now = self.clock.now();
        let shard = self.shard(key).read();
        shard
            .get(key)
            .map(|e| (e.value.clone(), now.since(e.stored_at), !e.expired(now)))
    }

    pub fn insert(&self, key: impl Into<String>, value: V, ttl_secs: u64) {
        let key = key.into();
        let entry = Entry {
            value,
            stored_at: self.clock.now(),
            ttl_secs,
        };
        self.shard(&key).write().insert(key, entry);
        self.stats.insert();
    }

    pub fn invalidate(&self, key: &str) -> bool {
        self.shard(key).write().remove(key).is_some()
    }

    /// Drop every expired entry; returns how many were removed.
    pub fn purge_expired(&self) -> usize {
        let now = self.clock.now();
        let mut removed = 0;
        for shard in &self.shards {
            let mut map = shard.write();
            let before = map.len();
            map.retain(|_, e| !e.expired(now));
            removed += before - map.len();
        }
        removed
    }

    /// Entries currently stored (fresh or stale).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }

    pub fn stats(&self) -> &Arc<CacheStats> {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcdash_simtime::SimClock;

    fn cache() -> (TtlCache<String>, SimClock) {
        let clock = SimClock::new(Timestamp(0));
        (TtlCache::new(clock.shared()), clock)
    }

    #[test]
    fn basic_get_insert() {
        let (c, _clock) = cache();
        assert_eq!(c.get("k"), None);
        c.insert("k", "v".to_string(), 30);
        assert_eq!(c.get("k"), Some("v".to_string()));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn entries_expire_with_sim_time() {
        let (c, clock) = cache();
        c.insert("squeue:alice", "jobs".to_string(), 30);
        clock.advance(29);
        assert!(c.get("squeue:alice").is_some());
        clock.advance(1);
        assert_eq!(c.get("squeue:alice"), None, "expired exactly at ttl");
        // Still present as stale.
        assert_eq!(
            c.get_allow_stale("squeue:alice"),
            Some(("jobs".to_string(), false))
        );
    }

    #[test]
    fn age_is_tracked() {
        let (c, clock) = cache();
        c.insert("k", "v".to_string(), 100);
        clock.advance(42);
        assert_eq!(c.get_with_age("k"), Some(("v".to_string(), 42)));
    }

    #[test]
    fn per_entry_ttls_are_independent() {
        let (c, clock) = cache();
        c.insert("fast", "a".to_string(), 30); // squeue-style
        c.insert("slow", "b".to_string(), 3_600); // announcements-style
        clock.advance(60);
        assert_eq!(c.get("fast"), None);
        assert_eq!(c.get("slow"), Some("b".to_string()));
    }

    #[test]
    fn reinsert_refreshes() {
        let (c, clock) = cache();
        c.insert("k", "v1".to_string(), 30);
        clock.advance(29);
        c.insert("k", "v2".to_string(), 30);
        clock.advance(29);
        assert_eq!(c.get("k"), Some("v2".to_string()));
    }

    #[test]
    fn purge_and_invalidate() {
        let (c, clock) = cache();
        for i in 0..20 {
            c.insert(
                format!("k{i}"),
                "v".to_string(),
                if i % 2 == 0 { 10 } else { 100 },
            );
        }
        clock.advance(50);
        assert_eq!(c.purge_expired(), 10);
        assert_eq!(c.len(), 10);
        assert!(c.invalidate("k1"));
        assert!(!c.invalidate("k1"));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn stats_track_hits_misses_expirations() {
        let (c, clock) = cache();
        c.insert("k", "v".to_string(), 10);
        c.get("k");
        c.get("nope");
        clock.advance(11);
        c.get("k");
        let snap = c.stats().snapshot();
        assert_eq!(snap.hits, 1);
        assert_eq!(snap.misses, 2);
        assert_eq!(snap.expirations, 1);
        assert_eq!(snap.inserts, 1);
    }

    #[test]
    fn concurrent_access() {
        let clock = SimClock::new(Timestamp(0));
        let c = Arc::new(TtlCache::<u64>::new(clock.shared()));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1_000u64 {
                    let key = format!("k{}", (t * 1_000 + i) % 64);
                    c.insert(key.clone(), i, 60);
                    let _ = c.get(&key);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 64);
        assert!(c.stats().snapshot().hits > 0);
    }
}
