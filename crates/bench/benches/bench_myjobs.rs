//! Figure 3 (My Jobs) as a benchmark: full route latency — sacct + squeue +
//! efficiency engine + charts — at growing history sizes, cold vs warm
//! server cache.

use criterion::{BenchmarkId, Criterion};
use hpcdash_bench::{banner, BenchSite};
use hpcdash_simtime::Clock;

fn site_with_history(hours: u64) -> (BenchSite, String) {
    let site = BenchSite::fast();
    site.warm_up(hours * 3_600);
    let user = site.user();
    (site, user)
}

fn main() {
    banner(
        "F3",
        "My Jobs route: table + efficiency + charts, cold vs warm cache",
    );

    // The paper's §4 comparison: My Jobs vs the stock Active Jobs baseline.
    {
        let (site, user) = site_with_history(2);
        let myjobs = site
            .get("/api/myjobs?range=all", &user)
            .body_json()
            .expect("json");
        let baseline = site
            .get("/api/activejobs", &user)
            .body_json()
            .expect("json");
        let my_rows = myjobs["jobs"].as_array().unwrap();
        let base_rows = baseline["jobs"].as_array().unwrap();
        let my_fields = my_rows
            .first()
            .map(|j| j.as_object().unwrap().len())
            .unwrap_or(0);
        let base_fields = base_rows
            .first()
            .map(|j| j.as_object().unwrap().len())
            .unwrap_or(0);
        println!("\ninformation coverage vs the OOD Active Jobs baseline (2h history):");
        println!("  {:<22} {:>10} {:>16}", "", "jobs shown", "fields per job");
        println!(
            "  {:<22} {:>10} {:>16}",
            "Active Jobs (baseline)",
            base_rows.len(),
            base_fields
        );
        println!(
            "  {:<22} {:>10} {:>16}",
            "My Jobs (paper)",
            my_rows.len(),
            my_fields
        );
        assert!(
            my_rows.len() >= base_rows.len(),
            "My Jobs must cover at least the active set"
        );
        assert!(my_fields > base_fields, "My Jobs must carry more columns");
        let historical = my_rows
            .iter()
            .filter(|j| !matches!(j["state"].as_str(), Some("PENDING") | Some("RUNNING")))
            .count();
        println!("  My Jobs additionally shows {historical} finished/failed/cancelled jobs\n");
    }

    let mut c = Criterion::default().configure_from_args().sample_size(20);
    {
        let mut group = c.benchmark_group("myjobs_route");
        for hours in [1u64, 4] {
            let (site, user) = site_with_history(hours);
            let archived = site.scenario.dbd.archived_count();
            println!("history of {hours}h -> {archived} accounting records");
            group.bench_with_input(
                BenchmarkId::new("cold_cache", format!("{archived}rec")),
                &archived,
                |b, _| {
                    b.iter(|| {
                        site.ctx().cache.clear();
                        let resp = site.get("/api/myjobs?range=all", &user);
                        assert_eq!(resp.status, 200);
                        resp
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new("warm_cache", format!("{archived}rec")),
                &archived,
                |b, _| {
                    site.get("/api/myjobs?range=all", &user); // prime
                    b.iter(|| {
                        let resp = site.get("/api/myjobs?range=all", &user);
                        assert_eq!(resp.status, 200);
                        resp
                    })
                },
            );
        }
        group.finish();
    }
    {
        // The efficiency engine on its own.
        let (site, user) = site_with_history(2);
        let resp = site.get("/api/myjobs?range=all", &user);
        let payload = resp.body_json().expect("json");
        let mut group = c.benchmark_group("myjobs_parts");
        group.bench_function("render_full_page", |b| {
            b.iter(|| hpcdash_core::pages::myjobs::render_full("Anvil", &user, &payload))
        });
        let records = {
            let text = hpcdash_slurmcli::sacct(
                &site.scenario.dbd,
                &hpcdash_slurmcli::SacctArgs::default(),
                site.scenario.clock.now(),
            )
            .expect("sacct");
            hpcdash_slurmcli::parse_sacct(&text).expect("parse")
        };
        group.bench_function("efficiency_engine", |b| {
            b.iter(|| {
                records
                    .iter()
                    .map(|r| hpcdash_core::efficiency::EfficiencyReport::from_record(r, true))
                    .collect::<Vec<_>>()
            })
        });
        group.bench_function("state_chart", |b| {
            b.iter(|| hpcdash_core::charts::job_state_distribution(&records))
        });
        group.finish();
    }
    c.final_summary();
}
