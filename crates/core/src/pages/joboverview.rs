//! The Job Overview page (paper §7, Figure 4d): header, timeline, and the
//! overview / session / output / error / job-array tabs.

use crate::charts::sparkline_svg;
use crate::pages::layout::{shell, widget_placeholder};
use crate::template::escape_html;
use serde_json::Value;

pub fn render_shell(cluster: &str, user: &str, job_id: &str) -> String {
    let mut body = format!("<h1>Job {}</h1>", escape_html(job_id));
    body.push_str(&widget_placeholder(
        "joboverview",
        &format!("/api/jobs/{job_id}"),
    ));
    shell(
        &format!("Job {job_id}"),
        "joboverview",
        cluster,
        user,
        &body,
    )
}

/// Render from the `/api/jobs/:id` payload plus (optionally) the log tails.
pub fn render_full(
    cluster: &str,
    user: &str,
    payload: &Value,
    stdout_tail: Option<&Value>,
    stderr_tail: Option<&Value>,
) -> String {
    let header = &payload["header"];
    let color = header["state_color"].as_str().unwrap_or("gray");
    let mut body = format!(
        "<div class=\"job-header state-{}\"><h1>Job {} — {}</h1>\
         <span class=\"badge badge-{}\">{}</span>{}</div>",
        color,
        escape_html(header["id"].as_str().unwrap_or("")),
        escape_html(header["name"].as_str().unwrap_or("")),
        color,
        escape_html(header["state"].as_str().unwrap_or("")),
        match header["reason_message"].as_str() {
            Some(msg) => format!("<p class=\"reason-message\">{}</p>", escape_html(msg)),
            None => String::new(),
        },
    );

    // Timeline (submitted -> eligible -> started -> ended), coloured by state.
    body.push_str(&format!("<ol class=\"timeline timeline-{color}\">"));
    let tl = &payload["timeline"];
    for (label, key) in [
        ("Submitted", "submitted"),
        ("Eligible", "eligible"),
        ("Started", "started"),
        ("Ended", "ended"),
    ] {
        match tl[key].as_str() {
            Some(t) => body.push_str(&format!(
                "<li class=\"done\"><span>{label}</span> <time data-utc=\"{}\">{}</time></li>",
                escape_html(t),
                escape_html(t),
            )),
            None => body.push_str(&format!(
                "<li class=\"pending-step\"><span>{label}</span> —</li>"
            )),
        }
    }
    body.push_str("</ol>");

    // Overview tab: four cards.
    let cards = &payload["cards"];
    body.push_str(
        "<div class=\"tabs\"><div class=\"tab\" id=\"overview\"><div class=\"card-grid\">",
    );
    let info = &cards["job_information"];
    body.push_str(&format!(
        "<div class=\"card\"><div class=\"card-header\">Job Information</div><div class=\"card-body\">\
         Name: {}<br>User: {}<br>Allocation: {}<br>Partition: {}<br>QoS: {}</div></div>",
        escape_html(info["name"].as_str().unwrap_or("")),
        escape_html(info["user"].as_str().unwrap_or("")),
        escape_html(info["account"].as_str().unwrap_or("")),
        escape_html(info["partition"].as_str().unwrap_or("")),
        escape_html(info["qos"].as_str().unwrap_or("")),
    ));
    let res = &cards["resources"];
    let node_links = res["node_links"]
        .as_array()
        .map(Vec::as_slice)
        .unwrap_or(&[])
        .iter()
        .map(|n| {
            format!(
                "<a href=\"{}\">{}</a>",
                n["overview_url"].as_str().unwrap_or("#"),
                escape_html(n["name"].as_str().unwrap_or(""))
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    body.push_str(&format!(
        "<div class=\"card\"><div class=\"card-header\">Resources</div><div class=\"card-body\">\
         CPUs: {}<br>Nodes: {}<br>Memory/node: {} MB<br>GPUs: {}<br>Node list: {}</div></div>",
        res["cpus"], res["nodes"], res["mem_mb_per_node"], res["gpus"], node_links,
    ));
    let time = &cards["time"];
    body.push_str(&format!(
        "<div class=\"card\"><div class=\"card-header\">Time</div><div class=\"card-body\">\
         Wall time: {}<br>Time limit: {}<br>Remaining: {}<br>CPU time: {}</div></div>",
        escape_html(time["elapsed"].as_str().unwrap_or("")),
        escape_html(time["limit"].as_str().unwrap_or("")),
        time["remaining_secs"]
            .as_u64()
            .map(hpcdash_simtime::format_duration)
            .unwrap_or_else(|| "—".to_string()),
        time["cpu_time_secs"]
            .as_u64()
            .map(hpcdash_simtime::format_duration)
            .unwrap_or_else(|| "—".to_string()),
    ));
    let eff = &cards["efficiency"];
    let pct = |v: &Value| match v.as_f64() {
        Some(f) => format!("{:.1}%", f * 100.0),
        None => "—".to_string(),
    };
    let gpu_line = if eff["gpu"].is_null() {
        String::new()
    } else {
        format!("<br>GPU: {}", pct(&eff["gpu"]))
    };
    body.push_str(&format!(
        "<div class=\"card\"><div class=\"card-header\">Efficiency</div><div class=\"card-body\">\
         CPU: {}<br>Memory: {}<br>Time: {}{}</div></div>",
        pct(&eff["cpu"]),
        pct(&eff["memory"]),
        pct(&eff["time"]),
        gpu_line,
    ));
    // Utilization card: sparklines from the collector's series, when the
    // job has run long enough to have any.
    let tele = &payload["telemetry"];
    let spark_rows: String = [("cpu", "CPU"), ("mem", "Memory"), ("gpu", "GPU")]
        .iter()
        .filter_map(|(key, label)| {
            let svg = sparkline_svg(&tele[*key], key, 120, 32);
            (!svg.is_empty()).then(|| {
                format!("<div class=\"telemetry-row\"><span class=\"telemetry-label\">{label}</span>{svg}</div>")
            })
        })
        .collect();
    if !spark_rows.is_empty() {
        body.push_str(&format!(
            "<div class=\"card\"><div class=\"card-header\">Utilization</div>\
             <div class=\"card-body\">{spark_rows}</div></div>"
        ));
    }
    body.push_str("</div></div>");

    // Session tab (interactive-app jobs only).
    if !payload["session"].is_null() {
        let s = &payload["session"];
        body.push_str(&format!(
            "<div class=\"tab\" id=\"session\">\
             App: <a href=\"{}\">{}</a><br>Session ID: {}<br>\
             Working dir: <a href=\"{}\">{}</a>\
             <button class=\"launch\">Launch {}</button></div>",
            s["relaunch_url"].as_str().unwrap_or("#"),
            escape_html(s["app"].as_str().unwrap_or("")),
            escape_html(s["session_id"].as_str().unwrap_or("")),
            s["workdir_url"].as_str().unwrap_or("#"),
            escape_html(s["workdir"].as_str().unwrap_or("")),
            escape_html(s["app"].as_str().unwrap_or("")),
        ));
    }

    // Output / error tabs: line-numbered read-only views, auto-scrolled.
    for (tab_id, tail) in [("output", stdout_tail), ("error", stderr_tail)] {
        if let Some(t) = tail {
            body.push_str(&format!(
                "<div class=\"tab log-view\" id=\"{tab_id}\" data-autoscroll=\"bottom\">"
            ));
            if t["truncated"].as_bool().unwrap_or(false) {
                body.push_str(&format!(
                    "<p class=\"log-note\">Showing last {} of {} lines. \
                     <a href=\"{}\">View entire file</a></p>",
                    t["lines"].as_array().map(|l| l.len()).unwrap_or(0),
                    t["total_lines"],
                    t["full_file_url"].as_str().unwrap_or("#"),
                ));
            }
            body.push_str("<pre>");
            for line in t["lines"].as_array().map(Vec::as_slice).unwrap_or(&[]) {
                let no = line[0].as_u64().unwrap_or(0);
                let text = line[1].as_str().unwrap_or("");
                body.push_str(&format!(
                    "<span class=\"lineno\">{no}</span> {}\n",
                    escape_html(text)
                ));
            }
            body.push_str("</pre></div>");
        }
    }

    // Job-array tab marker: the client fetches the array route on demand.
    if payload["has_array"].as_bool().unwrap_or(false) {
        body.push_str(&format!(
            "<div class=\"tab\" id=\"job-array\" data-api=\"{}\"></div>",
            payload["array_url"].as_str().unwrap_or("#")
        ));
    }

    body.push_str("</div>");
    let title = format!("Job {}", header["id"].as_str().unwrap_or(""));
    shell(&title, "joboverview", cluster, user, &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn payload() -> Value {
        json!({
            "header": {"id": "55", "name": "train", "state": "RUNNING",
                       "state_color": "green", "reason": null, "reason_message": null},
            "timeline": {"submitted": "2026-07-04T08:00:00", "eligible": "2026-07-04T08:00:00",
                         "started": "2026-07-04T08:05:00", "ended": null},
            "cards": {
                "job_information": {"name": "train", "user": "alice", "account": "physics",
                                    "partition": "gpu", "qos": "normal"},
                "resources": {"cpus": 16, "nodes": 1, "mem_mb_per_node": 65_536, "gpus": 2,
                              "node_links": [{"name": "g001", "overview_url": "/nodes/g001"}]},
                "time": {"elapsed": "01:00:00", "elapsed_secs": 3_600, "limit": "04:00:00",
                         "remaining_secs": 10_800, "cpu_time_secs": 46_080},
                "efficiency": {"cpu": 0.8, "memory": 0.6, "time": null, "gpu": null, "warnings": []},
            },
            "session": {"app": "jupyter", "session_id": "s1", "workdir": "/home/alice/ondemand",
                        "workdir_url": "/pun/sys/files/fs/home/alice/ondemand",
                        "relaunch_url": "/pun/sys/dashboard/batch_connect/sys/jupyter/session_contexts/new"},
            "has_array": false,
            "array_url": null,
            "logs": {"stdout_url": "/api/jobs/55/logs?stream=out",
                     "stderr_url": "/api/jobs/55/logs?stream=err"},
            "exit_code": null,
        })
    }

    #[test]
    fn header_timeline_cards_session() {
        let html = render_full("Anvil", "alice", &payload(), None, None);
        assert!(html.contains("Job 55 — train"));
        assert!(html.contains("timeline-green"));
        assert!(html.contains("2026-07-04T08:05:00"));
        assert!(html.contains("<li class=\"pending-step\"><span>Ended</span> —</li>"));
        assert!(html.contains("Allocation: physics"));
        assert!(html.contains("href=\"/nodes/g001\""));
        assert!(html.contains("Remaining: 03:00:00"));
        assert!(html.contains("CPU: 80.0%"));
        assert!(html.contains("Launch jupyter"));
    }

    #[test]
    fn log_tabs_with_line_numbers_and_truncation() {
        let stdout = json!({
            "total_lines": 2_500, "truncated": true,
            "full_file_url": "/pun/sys/files/fs/home/alice/slurm-55.out",
            "lines": [[1_501, "step one"], [1_502, "step <two>"]],
        });
        let html = render_full("Anvil", "alice", &payload(), Some(&stdout), None);
        assert!(html.contains("Showing last 2 of 2500 lines"));
        assert!(html.contains("View entire file"));
        assert!(html.contains("<span class=\"lineno\">1501</span> step one"));
        assert!(html.contains("step &lt;two&gt;"), "log content escaped");
        assert!(html.contains("data-autoscroll=\"bottom\""));
        assert!(!html.contains("id=\"error\""), "no stderr tab without data");
    }

    #[test]
    fn telemetry_sparklines_and_gpu_efficiency_render() {
        let mut p = payload();
        p["cards"]["efficiency"]["gpu"] = json!(0.42);
        p["telemetry"] = json!({
            "start": 0, "end": 90, "resolution_secs": 30, "tier": "raw",
            "cpu": [[0, 0.5], [30, 0.6], [60, 0.55]],
            "mem": [[0, 0.3], [30, 0.4], [60, 0.45]],
            "gpu": null,
        });
        let html = render_full("Anvil", "alice", &p, None, None);
        assert!(html.contains("GPU: 42.0%"), "gpu efficiency line renders");
        assert!(html.contains("Utilization"));
        assert!(html.contains("spark-cpu") && html.contains("spark-mem"));
        assert!(!html.contains("spark-gpu"), "no gpu series, no gpu row");
        // The baseline payload (no telemetry block) has no card at all.
        let plain = render_full("Anvil", "alice", &payload(), None, None);
        assert!(!plain.contains("Utilization"));
        assert!(!plain.contains("GPU:"), "gpu: null stays hidden");
    }

    #[test]
    fn array_tab_appears_when_flagged() {
        let mut p = payload();
        p["has_array"] = json!(true);
        p["array_url"] = json!("/api/jobs/55/array");
        let html = render_full("Anvil", "alice", &p, None, None);
        assert!(html.contains("id=\"job-array\" data-api=\"/api/jobs/55/array\""));
    }

    #[test]
    fn pending_job_shows_reason_message() {
        let mut p = payload();
        p["header"]["state"] = json!("PENDING");
        p["header"]["state_color"] = json!("blue");
        p["header"]["reason_message"] =
            json!("It means this job's association has reached its aggregate group CPU limit.");
        p["session"] = Value::Null;
        let html = render_full("Anvil", "alice", &p, None, None);
        assert!(html.contains("aggregate group CPU limit"));
        assert!(
            !html.contains("id=\"session\""),
            "batch job has no session tab"
        );
    }
}
