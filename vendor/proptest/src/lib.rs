//! Vendored stand-in for `proptest`.
//!
//! Same testing model — generate many random inputs per property, fail the
//! test on the first counterexample — without shrinking. Inputs are
//! deterministic per fully-qualified test name, so a failure reproduces on
//! every run. Supports the strategy subset used by this workspace: integer
//! ranges, `Just`, tuples, `prop_map`, weighted `prop_oneof!`,
//! `collection::vec`, `option::of`, `any::<T>()`, and the two string
//! pattern families `\PC{m,n}` (printable chars) and `[^...]{m,n}`
//! (negated char class).

use rand::{Rng as _, RngCore, SeedableRng};

/// The per-test random source (xoshiro256++, seeded from the test name).
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the test path gives a stable, well-mixed seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(h),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// `Strategy::prop_map` adapter.
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Integer ranges.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// `any::<T>()` — the whole domain of `T`.
pub fn any<T: rand::Standard>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: rand::Standard> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

// Tuples of strategies.
macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Weighted choice between boxed alternatives (`prop_oneof!` backing type).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof!: no alternatives");
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof!: zero total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (weight, strat) in &self.arms {
            if pick < *weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of(strategy)`: `None` a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

// ---------------------------------------------------------------------------
// String patterns
// ---------------------------------------------------------------------------

/// `&str` patterns act as string strategies, like in real proptest. Only the
/// two pattern shapes used by the workspace's tests are understood:
/// `\PC{m,n}` (printable, non-control chars — deliberately including the
/// HTML/template metacharacters `< > & " ' %`) and `[^abc]{m,n}`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (pool, min, max) = parse_pattern(self);
        let len = rng.gen_range(min..=max);
        (0..len)
            .map(|_| pool[rng.gen_range(0..pool.len())])
            .collect()
    }
}

/// Printable sample pool. Heavy on ASCII (including every char the escaping
/// and template tests care about), with a sprinkle of multibyte chars so
/// UTF-8 boundaries get exercised.
fn printable_pool() -> Vec<char> {
    let mut pool: Vec<char> = (0x20u8..=0x7e).map(|b| b as char).collect();
    pool.extend(['é', 'ß', 'λ', '中', '✓', '🙂', '\u{00a0}']);
    pool
}

fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let (class, rest) = if let Some(rest) = pattern.strip_prefix("\\PC") {
        (printable_pool(), rest)
    } else if let Some(stripped) = pattern.strip_prefix("[^") {
        let end = stripped
            .find(']')
            .unwrap_or_else(|| panic!("unterminated char class in pattern {pattern:?}"));
        let excluded: Vec<char> = stripped[..end].chars().collect();
        let pool: Vec<char> = printable_pool()
            .into_iter()
            .filter(|c| !excluded.contains(c))
            .collect();
        (pool, &stripped[end + 1..])
    } else if let Some(stripped) = pattern.strip_prefix('[') {
        let end = stripped
            .find(']')
            .unwrap_or_else(|| panic!("unterminated char class in pattern {pattern:?}"));
        let pool: Vec<char> = stripped[..end].chars().collect();
        (pool, &stripped[end + 1..])
    } else {
        panic!("unsupported proptest pattern {pattern:?} (vendored subset)");
    };
    assert!(
        !class.is_empty(),
        "pattern {pattern:?} excludes every sample char"
    );
    let (min, max) = parse_repeat(rest, pattern);
    (class, min, max)
}

fn parse_repeat(rest: &str, pattern: &str) -> (usize, usize) {
    if rest.is_empty() {
        return (1, 1);
    }
    let inner = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition in pattern {pattern:?}"));
    let (lo, hi) = inner
        .split_once(',')
        .unwrap_or_else(|| panic!("unsupported repetition in pattern {pattern:?}"));
    (
        lo.trim().parse().expect("pattern repeat min"),
        hi.trim().parse().expect("pattern repeat max"),
    )
}

// ---------------------------------------------------------------------------
// Config + macros
// ---------------------------------------------------------------------------

/// Number of random cases per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::for_test("x::y");
        let mut b = crate::TestRng::for_test("x::y");
        let s = "\\PC{0,50}";
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn negated_class_excludes_chars() {
        let mut rng = crate::TestRng::for_test("neg");
        for _ in 0..200 {
            let s = "[^<%]{0,40}".generate(&mut rng);
            assert!(!s.contains('<') && !s.contains('%'), "{s:?}");
        }
    }

    #[test]
    fn printable_pool_hits_metacharacters() {
        let mut rng = crate::TestRng::for_test("meta");
        let mut joined = String::new();
        for _ in 0..300 {
            joined.push_str(&"\\PC{0,80}".generate(&mut rng));
        }
        for c in ['<', '>', '&', '"', '\'', '%'] {
            assert!(joined.contains(c), "pool never produced {c:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn macro_wires_strategies(v in crate::collection::vec(1u32..10, 0..5), flag in 0u8..2) {
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|x| (1..10).contains(x)));
            prop_assert!(flag < 2);
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![
            2 => (0u32..10).prop_map(|n| n * 2),
            1 => Just(99u32),
        ]) {
            prop_assert!(x == 99 || (x % 2 == 0 && x < 20));
        }
    }
}
