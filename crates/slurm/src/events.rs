//! The cluster event log: every job state transition, timestamped.
//!
//! This powers the dashboard's real-time job monitoring (listed as future
//! work in the paper's §9 and implemented here) in two delivery modes:
//! clients either poll `/api/updates?since=<seq>` and receive only the
//! transitions they have not seen, or subscribe through the push hub
//! (`hpcdash-push`), which registers itself as an [`EventSink`] and fans
//! each appended event out to parked long-poll subscribers.
//!
//! The storage core — a bounded deque with a monotonic sequence under one
//! lock — is factored out as the generic [`Journal`], which also backs the
//! daemons' write-ahead logs ([`crate::durable::Wal`]): same retention,
//! same cursor semantics, same "truncated means resync" contract.

use crate::job::{JobId, JobState, PendingReason};
use hpcdash_simtime::Timestamp;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// One job state transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobEvent {
    /// Monotonic sequence number (cluster-wide).
    pub seq: u64,
    pub at: Timestamp,
    /// Which cluster emitted this transition. Stamped by the log (see
    /// [`EventLog::set_cluster`]) so federated consumers can attribute
    /// merged event streams; empty on logs that never set an identity.
    pub cluster: String,
    pub job: JobId,
    pub user: String,
    pub account: String,
    pub from: Option<JobState>,
    pub to: JobState,
    /// Pending reason attached at the transition, if any.
    pub reason: Option<PendingReason>,
}

/// A consumer of appended events, notified synchronously from
/// [`EventLog::push`] (after the log's own lock is released). Sinks must be
/// non-blocking: they run on the publisher's thread, which typically holds
/// the daemon lock.
pub trait EventSink: Send + Sync {
    fn publish(&self, event: &JobEvent);

    /// The event stream has a gap the sink cannot paper over: a daemon
    /// crashed and recovered (replayed history is not re-delivered), or
    /// retention was trimmed past a live cursor. Incremental delivery is
    /// no longer trustworthy — consumers must resync from a fresh
    /// snapshot. Default: ignore (poll-based consumers learn the same
    /// thing from `since()`'s `truncated` flag).
    fn discontinuity(&self) {}
}

/// A bounded, append-only journal with a monotonic sequence — the storage
/// core shared by the cluster [`EventLog`] and the daemons' write-ahead
/// logs ([`crate::durable::Wal`]).
///
/// Sequence assignment and storage live under ONE lock so `latest_seq()`
/// can never be observed ahead of the entries a concurrent `since()`
/// returns (a two-lock version allowed a reader to see the bumped counter
/// before the entry landed in the deque).
pub struct Journal<T> {
    state: RwLock<JournalState<T>>,
    capacity: usize,
}

struct JournalState<T> {
    entries: VecDeque<(u64, T)>,
    next_seq: u64,
    /// Highest seq ever dropped from the FRONT (capacity eviction or
    /// [`Journal::trim_through`]). A cursor below this floor has missed
    /// retained history and must resync. Seqs dropped from the BACK by
    /// [`Journal::truncate_after`] do NOT move it: a burned tail is not
    /// history anyone was entitled to replay.
    trimmed_through: u64,
}

impl<T: Clone> Journal<T> {
    pub fn new(capacity: usize) -> Journal<T> {
        Journal {
            state: RwLock::new(JournalState {
                entries: VecDeque::new(),
                next_seq: 1,
                trimmed_through: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append, letting the caller build the entry from its assigned seq.
    /// Returns the seq and a clone of the stored entry.
    pub fn append_with(&self, make: impl FnOnce(u64) -> T) -> (u64, T) {
        let mut state = self.state.write();
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.entries.len() >= self.capacity {
            if let Some((evicted, _)) = state.entries.pop_front() {
                state.trimmed_through = state.trimmed_through.max(evicted);
            }
        }
        let item = make(seq);
        state.entries.push_back((seq, item.clone()));
        (seq, item)
    }

    /// Append an entry; returns its sequence number.
    pub fn append(&self, item: T) -> u64 {
        let mut state = self.state.write();
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.entries.len() >= self.capacity {
            if let Some((evicted, _)) = state.entries.pop_front() {
                state.trimmed_through = state.trimmed_through.max(evicted);
            }
        }
        state.entries.push_back((seq, item));
        seq
    }

    /// Entries with `seq > since`, oldest first. `truncated` is true when
    /// history the cursor was entitled to replay was dropped from the
    /// front — capacity eviction or an explicit [`Journal::trim_through`]
    /// moved the floor past it — so the consumer must resync rather than
    /// silently miss entries. A tail burned by [`Journal::truncate_after`]
    /// never trips it: those seqs were crash-lost everywhere, not skipped.
    pub fn since(&self, since: u64) -> (Vec<(u64, T)>, bool) {
        let state = self.state.read();
        let truncated = since < state.trimmed_through;
        (
            state
                .entries
                .iter()
                .filter(|(seq, _)| *seq > since)
                .cloned()
                .collect(),
            truncated,
        )
    }

    /// Drop every entry with `seq <= through` (checkpoint compaction: the
    /// prefix is covered by a snapshot, only the suffix must replay).
    pub fn trim_through(&self, through: u64) {
        let mut state = self.state.write();
        while state
            .entries
            .front()
            .map(|(seq, _)| *seq <= through)
            .unwrap_or(false)
        {
            state.entries.pop_front();
        }
        // Clamp to issued seqs: trimming "through 100" on a journal whose
        // history stops at 10 leaves a cursor at 10 fully caught up.
        let issued = state.next_seq - 1;
        state.trimmed_through = state.trimmed_through.max(through.min(issued));
    }

    /// Drop every entry with `seq > after` — the crash-recovery "lost
    /// tail": records appended but never committed die here. The sequence
    /// counter is NOT rewound, so the discarded seqs are burned forever and
    /// a later append can never silently resurrect a lost position.
    pub fn truncate_after(&self, after: u64) {
        let mut state = self.state.write();
        while state
            .entries
            .back()
            .map(|(seq, _)| *seq > after)
            .unwrap_or(false)
        {
            state.entries.pop_back();
        }
    }

    /// The newest sequence number issued (0 when empty).
    pub fn latest_seq(&self) -> u64 {
        self.state.read().next_seq - 1
    }

    /// The oldest retained sequence number, if any entry is retained.
    pub fn first_seq(&self) -> Option<u64> {
        self.state.read().entries.front().map(|(seq, _)| *seq)
    }

    pub fn len(&self) -> usize {
        self.state.read().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.state.read().entries.is_empty()
    }
}

/// A bounded, append-only event log.
pub struct EventLog {
    journal: Journal<JobEvent>,
    sinks: RwLock<Vec<Arc<dyn EventSink>>>,
    /// Cluster identity stamped onto every appended event (set once at
    /// daemon construction; `Arc<str>` so the hot path clones a refcount).
    cluster: RwLock<Arc<str>>,
    /// How many `since()` scans have been served (the poll-cost observable
    /// the push hub exists to eliminate).
    scans: AtomicU64,
    /// Raised while a recovering daemon replays its WAL: replayed
    /// transitions are reconstruction, not new history — the pre-crash log
    /// already delivered the journaled prefix — so appends are dropped and
    /// sinks stay quiet until the follow-up discontinuity signal.
    replay_mute: AtomicBool,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("capacity", &self.journal.capacity())
            .field("len", &self.len())
            .field("latest_seq", &self.latest_seq())
            .finish()
    }
}

impl EventLog {
    pub fn new(capacity: usize) -> EventLog {
        EventLog {
            journal: Journal::new(capacity),
            sinks: RwLock::new(Vec::new()),
            cluster: RwLock::new(Arc::from("")),
            scans: AtomicU64::new(0),
            replay_mute: AtomicBool::new(false),
        }
    }

    /// Register a sink notified on every append (e.g. the push hub).
    pub fn add_sink(&self, sink: Arc<dyn EventSink>) {
        self.sinks.write().push(sink);
    }

    /// Set the cluster identity stamped onto every subsequent append. The
    /// owning daemon calls this once at construction with its spec name.
    pub fn set_cluster(&self, cluster: &str) {
        *self.cluster.write() = Arc::from(cluster);
    }

    /// The cluster identity this log stamps (empty if never set).
    pub fn cluster(&self) -> Arc<str> {
        self.cluster.read().clone()
    }

    /// Mute (or unmute) appends during crash-recovery replay. While muted,
    /// `push` is a no-op returning seq 0. Recovery wraps its replay in
    /// mute/unmute and then calls [`EventLog::signal_discontinuity`].
    pub fn set_replay_mute(&self, muted: bool) {
        self.replay_mute.store(muted, Ordering::Release);
    }

    /// Tell every sink the stream has a gap (crash recovery completed, or
    /// history was trimmed past live cursors): incremental delivery cannot
    /// be trusted, consumers must resync from a fresh snapshot.
    pub fn signal_discontinuity(&self) {
        for sink in self.sinks.read().iter() {
            sink.discontinuity();
        }
    }

    /// Append a transition; returns its sequence number (0 if the log is
    /// replay-muted and the append was dropped).
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &self,
        at: Timestamp,
        job: JobId,
        user: &str,
        account: &str,
        from: Option<JobState>,
        to: JobState,
        reason: Option<PendingReason>,
    ) -> u64 {
        if self.replay_mute.load(Ordering::Relaxed) {
            return 0;
        }
        let cluster = self.cluster.read().clone();
        let (seq, event) = self.journal.append_with(|seq| JobEvent {
            seq,
            at,
            cluster: cluster.to_string(),
            job,
            user: user.to_string(),
            account: account.to_string(),
            from,
            to,
            reason,
        });
        // Fan out with the log lock released; sinks are non-blocking.
        for sink in self.sinks.read().iter() {
            sink.publish(&event);
        }
        seq
    }

    /// Events with `seq > since`, oldest first. `truncated` is true when the
    /// retained window no longer reaches back to `since` — including for a
    /// fresh `since = 0` cursor against a log whose front has already been
    /// evicted past seq 1 — so the client knows to do a full refresh rather
    /// than silently missing history.
    pub fn since(&self, since: u64) -> (Vec<JobEvent>, bool) {
        self.scans.fetch_add(1, Ordering::Relaxed);
        let (entries, truncated) = self.journal.since(since);
        (entries.into_iter().map(|(_, e)| e).collect(), truncated)
    }

    /// The newest sequence number issued (0 when empty).
    pub fn latest_seq(&self) -> u64 {
        self.journal.latest_seq()
    }

    /// How many `since()` scans this log has served.
    pub fn scan_count(&self) -> u64 {
        self.scans.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.journal.len()
    }

    pub fn is_empty(&self) -> bool {
        self.journal.is_empty()
    }
}

impl Default for EventLog {
    fn default() -> EventLog {
        EventLog::new(4_096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_n(log: &EventLog, n: u64) {
        for i in 0..n {
            log.push(
                Timestamp(i),
                JobId(i as u32 + 1),
                "alice",
                "physics",
                Some(JobState::Pending),
                JobState::Running,
                None,
            );
        }
    }

    #[test]
    fn sequence_is_monotonic() {
        let log = EventLog::new(100);
        push_n(&log, 5);
        let (events, truncated) = log.since(0);
        assert_eq!(events.len(), 5);
        assert!(!truncated);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        assert_eq!(log.latest_seq(), 5);
    }

    #[test]
    fn events_carry_the_cluster_identity() {
        let log = EventLog::new(10);
        log.set_cluster("anvil-sim");
        push_n(&log, 2);
        let (events, _) = log.since(0);
        assert!(events.iter().all(|e| e.cluster == "anvil-sim"));
        assert_eq!(&*log.cluster(), "anvil-sim");
        // A log that never set an identity stamps the empty string.
        let anon = EventLog::new(10);
        push_n(&anon, 1);
        assert_eq!(anon.since(0).0[0].cluster, "");
    }

    #[test]
    fn since_filters() {
        let log = EventLog::new(100);
        push_n(&log, 10);
        let (events, truncated) = log.since(7);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![8, 9, 10]
        );
        assert!(!truncated);
        let (events, _) = log.since(10);
        assert!(events.is_empty());
        assert_eq!(log.scan_count(), 2, "every since() counts as a scan");
    }

    #[test]
    fn capacity_evicts_and_flags_truncation() {
        let log = EventLog::new(4);
        push_n(&log, 10);
        assert_eq!(log.len(), 4);
        // Client last saw seq 2, but the log now starts at 7.
        let (events, truncated) = log.since(2);
        assert!(truncated, "client is told to do a full refresh");
        assert_eq!(events.first().unwrap().seq, 7);
        // A client that is up to date is not truncated.
        let (_, truncated) = log.since(9);
        assert!(!truncated);
    }

    #[test]
    fn fresh_client_is_never_truncated_from_zero_on_small_logs() {
        let log = EventLog::new(100);
        push_n(&log, 3);
        let (events, truncated) = log.since(0);
        assert_eq!(events.len(), 3);
        assert!(!truncated);
    }

    #[test]
    fn fresh_client_behind_evicted_history_must_resync() {
        // Regression: `since = 0` against a log whose front seq is already
        // past 1 used to report `truncated = false`, silently hiding the
        // evicted prefix from brand-new clients.
        let log = EventLog::new(4);
        push_n(&log, 10);
        let (events, truncated) = log.since(0);
        assert!(truncated, "a fresh cursor cannot see seqs 1..=6 — resync");
        assert_eq!(events.first().unwrap().seq, 7);
    }

    #[test]
    fn latest_seq_never_ahead_of_since_under_concurrency() {
        // With one lock over (events, next_seq), any seq implied by
        // `latest_seq()` must be visible to an immediate `since()` call.
        let log = Arc::new(EventLog::new(100_000));
        let writer = {
            let log = log.clone();
            std::thread::spawn(move || push_n(&log, 20_000))
        };
        for _ in 0..2_000 {
            let latest = log.latest_seq();
            let (events, _) = log.since(0);
            let max_seen = events.last().map(|e| e.seq).unwrap_or(0);
            assert!(
                max_seen >= latest,
                "latest_seq {latest} observed ahead of stored events (max {max_seen})"
            );
        }
        writer.join().unwrap();
    }

    #[test]
    fn sinks_observe_every_append() {
        struct Collect(parking_lot::Mutex<Vec<u64>>);
        impl EventSink for Collect {
            fn publish(&self, event: &JobEvent) {
                self.0.lock().push(event.seq);
            }
        }
        let log = EventLog::new(8);
        let sink = Arc::new(Collect(parking_lot::Mutex::new(Vec::new())));
        log.add_sink(sink.clone());
        push_n(&log, 20);
        let seen = sink.0.lock();
        assert_eq!(seen.len(), 20, "sinks see evicted events too");
        assert_eq!(seen.first(), Some(&1));
        assert_eq!(seen.last(), Some(&20));
    }

    #[test]
    fn concurrent_pushes_keep_unique_seqs() {
        let log = std::sync::Arc::new(EventLog::new(10_000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    log.push(
                        Timestamp(0),
                        JobId(1),
                        "u",
                        "a",
                        None,
                        JobState::Pending,
                        None,
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (events, _) = log.since(0);
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        let before = seqs.len();
        seqs.dedup();
        assert_eq!(seqs.len(), before, "no duplicate sequence numbers");
        assert_eq!(log.latest_seq(), 4_000);
    }

    #[test]
    fn journal_trim_through_compacts_the_prefix() {
        let j: Journal<u64> = Journal::new(100);
        for i in 0..10 {
            assert_eq!(j.append(i), i + 1);
        }
        j.trim_through(6);
        assert_eq!(j.first_seq(), Some(7));
        assert_eq!(j.len(), 4);
        assert_eq!(j.latest_seq(), 10, "trim never moves the seq counter");
        // Trimming past the tail empties the journal but keeps the seq.
        j.trim_through(100);
        assert!(j.is_empty());
        assert_eq!(j.latest_seq(), 10);
        assert_eq!(j.append(99), 11, "appends resume after full trim");
    }

    #[test]
    fn truncate_after_burns_the_lost_tail() {
        let j: Journal<u64> = Journal::new(100);
        for i in 0..10 {
            j.append(i);
        }
        j.truncate_after(7);
        assert_eq!(j.latest_seq(), 10, "seq counter is never rewound");
        assert_eq!(j.len(), 7);
        let (entries, truncated) = j.since(0);
        assert_eq!(entries.last().map(|(s, _)| *s), Some(7));
        assert!(!truncated, "the front is intact; only the tail died");
        // The burned seqs 8..=10 are gone for good: the next append takes
        // seq 11, so no later record can impersonate a lost one.
        assert_eq!(j.append(99), 11);
    }

    #[test]
    fn cursor_predating_trimmed_journal_gets_resync_signal() {
        // The WAL-compaction contract: a consumer whose cursor predates
        // the retained journal must see `truncated = true`, never a silent
        // gap — same rule as capacity eviction.
        let j: Journal<u64> = Journal::new(100);
        for i in 0..10 {
            j.append(i);
        }
        j.trim_through(6);
        let (entries, truncated) = j.since(2);
        assert!(truncated, "cursor 2 predates retained front 7 — resync");
        assert_eq!(
            entries.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![7, 8, 9, 10]
        );
        // A cursor exactly at the trim point is fine: nothing was skipped.
        let (entries, truncated) = j.since(6);
        assert!(!truncated);
        assert_eq!(entries.len(), 4);
        // A fully trimmed journal still flags stale cursors...
        j.trim_through(100);
        let (entries, truncated) = j.since(3);
        assert!(entries.is_empty());
        assert!(truncated, "empty journal with history past the cursor");
        // ...but an up-to-date cursor against it is clean.
        let (_, truncated) = j.since(10);
        assert!(!truncated);
    }

    #[test]
    fn replay_mute_drops_appends_and_sink_fanout() {
        struct Collect(parking_lot::Mutex<Vec<u64>>);
        impl EventSink for Collect {
            fn publish(&self, event: &JobEvent) {
                self.0.lock().push(event.seq);
            }
        }
        let log = EventLog::new(100);
        let sink = Arc::new(Collect(parking_lot::Mutex::new(Vec::new())));
        log.add_sink(sink.clone());
        push_n(&log, 3);
        log.set_replay_mute(true);
        let seq = log.push(
            Timestamp(9),
            JobId(9),
            "u",
            "a",
            None,
            JobState::Pending,
            None,
        );
        assert_eq!(seq, 0, "muted append is dropped");
        assert_eq!(log.latest_seq(), 3);
        log.set_replay_mute(false);
        push_n(&log, 1);
        assert_eq!(log.latest_seq(), 4);
        assert_eq!(sink.0.lock().len(), 4, "sink never saw the muted push");
    }

    #[test]
    fn discontinuity_reaches_every_sink() {
        #[derive(Default)]
        struct Gap(AtomicU64);
        impl EventSink for Gap {
            fn publish(&self, _event: &JobEvent) {}
            fn discontinuity(&self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let log = EventLog::new(8);
        let a = Arc::new(Gap::default());
        let b = Arc::new(Gap::default());
        log.add_sink(a.clone());
        log.add_sink(b.clone());
        log.signal_discontinuity();
        assert_eq!(a.0.load(Ordering::Relaxed), 1);
        assert_eq!(b.0.load(Ordering::Relaxed), 1);
    }
}
