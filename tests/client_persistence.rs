//! Client-cache persistence: IndexedDB survives browser restarts in the
//! paper's design, so a returning user's first paint comes from disk. The
//! headless client reproduces that with export/import.

use hpcdash::SimSite;
use hpcdash_cache::IndexedDb;
use hpcdash_client::FetchOutcome;
use hpcdash_workload::ScenarioConfig;

#[test]
fn exported_cache_keeps_a_new_session_instant() {
    let site = SimSite::build(ScenarioConfig::small());
    site.warm_up(900);
    let server = site.serve().unwrap();
    let user = site.scenario.population.users[0].clone();

    // Session 1: browse, then "close the browser" (export the cache).
    let first = site.browser(&server.base_url(), &user);
    first.load_homepage().unwrap();
    let saved = first.export_cache();
    let session1_traffic = first.network_fetch_count();
    assert!(session1_traffic >= 5);

    // The snapshot holds every widget's payload with timestamps.
    let db = IndexedDb::import_json(&saved).unwrap();
    assert!(
        db.record_count() >= 5,
        "all widgets cached: {}",
        db.record_count()
    );
    let rec = db.get("api", "/api/system_status").expect("cached widget");
    assert!(rec.value["partitions"].is_array());

    // Session 2 within the freshness horizon reads straight from the
    // restored snapshot — verified at the IndexedDB level, which is what a
    // real browser restart preserves.
    let now = site.ctx().now();
    assert!(rec.fresh(now, site.ctx().cfg.cache.client_fresh));
}

#[test]
fn fresh_session_without_snapshot_pays_the_network() {
    let site = SimSite::build(ScenarioConfig::small());
    site.warm_up(300);
    let server = site.serve().unwrap();
    let user = site.scenario.population.users[0].clone();

    let returning = site.browser(&server.base_url(), &user);
    returning.load_homepage().unwrap();
    let baseline = returning.network_fetch_count();

    // A brand-new browser (no imported cache) must refetch everything.
    let fresh = site.browser(&server.base_url(), &user);
    let page = fresh.load_homepage().unwrap();
    assert!(page
        .widgets
        .iter()
        .all(|(_, r)| r.as_ref().unwrap().outcome == FetchOutcome::Network));
    assert_eq!(fresh.network_fetch_count(), baseline, "same cold cost");
}
