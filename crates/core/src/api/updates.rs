//! Real-time job monitoring (paper §9 future work, implemented): an
//! incremental updates feed with two delivery modes.
//!
//! - **Legacy poll** — `/api/updates?since=<seq>` scans the event log and
//!   re-resolves the viewer's account set on every request. Simple, but N
//!   pollers cost N scans + N assoc RPCs per refresh interval.
//! - **Push stream** — `/api/updates/stream?sub=<token>&since=<seq>&wait_ms=<ms>`
//!   long-polls a per-subscriber queue fed by the push hub. The daemons are
//!   touched once per event (at publish) and once per subscriber (at
//!   subscribe + account-TTL refresh), not once per poll.
//!
//! # Cursor semantics (intentional)
//!
//! Both modes report `latest_seq`, the cluster-wide head of the event log —
//! which advances even when every new event was filtered out of the caller's
//! view. This is deliberate: the cursor is a *log position*, not a count of
//! visible events, and clients must anchor at the head so their next request
//! is an honest "nothing since X". What a non-admin can learn from it is
//! only that *some* job somewhere changed state — never whose, which, or
//! why — the same signal the homepage's cluster-utilization widget already
//! publishes. Anchoring at a filtered cursor also keeps resync detection
//! sound: truncation is measured against log positions, so a client parked
//! on an old "visible" seq would see spurious resyncs on busy clusters.
//!
//! On `resync_required: true` the client's delta stream has a hole (cursor
//! fell out of the retained window, or its push queue overflowed): refetch
//! full tables, then resume from the reported `latest_seq`.

use crate::auth::CurrentUser;
use crate::colors::job_state_color;
use crate::ctx::DashboardContext;
use crate::reasons::friendly_reason;
use hpcdash_http::{
    ParkDirective, ParkWaker, Request, Response, Router, CONN_PARK_HEADER, PARK_FINAL_HEADER,
};
use hpcdash_slurm::events::JobEvent;
use serde_json::json;
use std::sync::Arc;
use std::time::Duration;

pub const FEATURE: &str = "Live Updates (extension)";
pub const ROUTES: &[&str] = &["/api/updates", "/api/updates/stream"];
pub const SOURCES: &[&str] = &["slurmctld event stream"];

pub fn register(router: &mut Router, ctx: DashboardContext) {
    let poll_ctx = ctx.clone();
    router.get(ROUTES[0], move |req| handle(&poll_ctx, req));
    router.get(ROUTES[1], move |req| handle_stream(&ctx, req));
}

/// The wire shape shared by both delivery modes.
fn event_json(e: &JobEvent) -> serde_json::Value {
    json!({
        "seq": e.seq,
        "at": e.at.to_slurm(),
        "job": e.job.to_string(),
        "user": e.user,
        "account": e.account,
        "from": e.from.map(|s| s.to_slurm()),
        "to": e.to.to_slurm(),
        "to_color": job_state_color(e.to),
        "reason": e.reason.map(|r| r.to_slurm()),
        "reason_message": e.reason.map(friendly_reason),
    })
}

fn handle(ctx: &DashboardContext, req: &Request) -> Response {
    let user = match CurrentUser::from_request(ctx, req) {
        Ok(u) => u,
        Err(resp) => return resp,
    };
    let since: u64 = match req.query_param("since").unwrap_or("0").parse() {
        Ok(s) => s,
        Err(_) => return Response::bad_request("since must be a sequence number"),
    };
    ctx.note_source(FEATURE, "slurmctld event stream");
    let log = ctx.ctld.events();
    let (events, truncated) = log.since(since);
    let accounts = user.visible_accounts(ctx);
    let visible: Vec<serde_json::Value> = events
        .iter()
        .filter(|e| user.is_admin || e.user == user.username || accounts.contains(&e.account))
        .map(event_json)
        .collect();
    Response::json(&json!({
        "events": visible,
        // Cluster-wide log head, advancing past filtered events by design
        // (see the module docs).
        "latest_seq": log.latest_seq(),
        // When true the client's cursor predates the retained window and a
        // full table refresh is needed.
        "resync_required": truncated,
    }))
}

/// The push-mode long-poll. First request with a fresh `sub` token registers
/// the subscriber and backfills it from `since`; subsequent requests drain
/// the subscriber's queue, parking up to `wait_ms` (clamped by
/// `PushPolicy::max_wait_ms`) while it is empty. When the park budget is
/// exhausted the route sheds with `503 + Retry-After` instead of starving.
///
/// Parking has two implementations behind one contract. Dispatched from the
/// event loop (the `x-hpcdash-conn-park` marker), an empty queue returns a
/// [`ParkDirective`]: the *connection* parks inside the reactor at zero
/// thread cost, a hub notify fires the directive's waker, and the reactor
/// re-dispatches this request with `x-hpcdash-park-final` for the immediate
/// answer. Called any other way (tests, in-process benches), the handler
/// blocks on the hub condvar exactly as the thread era did.
fn handle_stream(ctx: &DashboardContext, req: &Request) -> Response {
    let user = match CurrentUser::from_request(ctx, req) {
        Ok(u) => u,
        Err(resp) => return resp,
    };
    let since: u64 = match req.query_param("since").unwrap_or("0").parse() {
        Ok(s) => s,
        Err(_) => return Response::bad_request("since must be a sequence number"),
    };
    let wait_ms: u64 = match req.query_param("wait_ms").unwrap_or("0").parse() {
        Ok(w) => w,
        Err(_) => return Response::bad_request("wait_ms must be milliseconds"),
    };
    let wait_ms = wait_ms.min(ctx.cfg.push.max_wait_ms);
    let token = req.query_param("sub").unwrap_or("default");
    if token.is_empty() || token.len() > 64 {
        return Response::bad_request("sub must be 1-64 characters");
    }
    ctx.note_source(FEATURE, "push hub (slurmctld event stream)");
    // Subscriber keys are scoped per-user: one user's token can never attach
    // to another user's pre-filtered queue.
    let key = format!("{}:{}", user.username, token);
    let (handle, created) = ctx.push.ensure(&key, &user.username, user.is_admin);
    let log = ctx.ctld.events();
    if created {
        // Registration precedes this backfill, so events published in
        // between are queued, not lost; the hub dedups the overlap.
        let (history, truncated) = log.since(since);
        ctx.push.backfill(&handle, &history, truncated);
    }
    // Drain without parking first: only an empty queue costs a park slot.
    let mut delivery = ctx.push.wait(&handle, Duration::ZERO);
    if delivery.events.is_empty()
        && !delivery.resync_required
        && wait_ms > 0
        && req.header(PARK_FINAL_HEADER).is_none()
    {
        let Some(permit) = ctx.park.try_acquire() else {
            return Response::service_unavailable("long-poll capacity exhausted, retry shortly")
                .with_header("Retry-After", "1");
        };
        if req.header(CONN_PARK_HEADER).is_some() {
            // Event-loop dispatch: park the connection, not this thread.
            let waker = ParkWaker::new();
            let notify = waker.clone();
            ctx.push.set_notify(&handle, move || notify.wake());
            // Close the install/publish race: anything queued since the
            // drain above answers now instead of parking.
            delivery = ctx.push.wait(&handle, Duration::ZERO);
            if delivery.events.is_empty() && !delivery.resync_required {
                return Response::json(&json!({"parked": true})).with_park(ParkDirective {
                    waker,
                    max_wait: Duration::from_millis(wait_ms),
                    permit: Some(Arc::new(permit)),
                });
            }
            ctx.push.clear_notify(&handle);
        } else {
            delivery = ctx.push.wait(&handle, Duration::from_millis(wait_ms));
        }
    }
    let events: Vec<serde_json::Value> = delivery.events.iter().map(event_json).collect();
    Response::json(&json!({
        "sub": token,
        "events": events,
        "latest_seq": log.latest_seq(),
        "resync_required": delivery.resync_required,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DashboardConfig;
    use crate::ctx::tests::{test_ctx, test_ctx_with};
    use hpcdash_http::Method;
    use hpcdash_slurm::job::JobRequest;

    fn request(path: &str, user: &str) -> Request {
        Request::new(Method::Get, path).with_header("X-Remote-User", user)
    }

    #[test]
    fn incremental_polling() {
        let ctx = test_ctx();
        let id = ctx
            .ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 2))
            .unwrap()[0];
        ctx.ctld.tick();

        // First poll sees submit + start.
        let resp = handle(&ctx, &request("/api/updates", "alice"));
        assert_eq!(resp.status, 200);
        let body = resp.body_json().unwrap();
        let events = body["events"].as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0]["to"], "PENDING");
        assert_eq!(events[1]["to"], "RUNNING");
        assert_eq!(events[1]["job"], id.to_string());
        let cursor = body["latest_seq"].as_u64().unwrap();

        // Nothing new: empty delta.
        let resp = handle(
            &ctx,
            &request(&format!("/api/updates?since={cursor}"), "alice"),
        );
        let body = resp.body_json().unwrap();
        assert_eq!(body["events"].as_array().unwrap().len(), 0);
        assert_eq!(body["resync_required"], false);

        // Cancel produces exactly one new event past the cursor.
        ctx.ctld.cancel(id, "alice").unwrap();
        let resp = handle(
            &ctx,
            &request(&format!("/api/updates?since={cursor}"), "alice"),
        );
        let events = resp.body_json().unwrap()["events"]
            .as_array()
            .unwrap()
            .to_vec();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0]["to"], "CANCELLED");
        assert_eq!(events[0]["from"], "RUNNING");
    }

    #[test]
    fn visibility_filter_applies() {
        let ctx = test_ctx();
        ctx.ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 2))
            .unwrap();
        ctx.ctld.tick();
        let resp = handle(&ctx, &request("/api/updates", "mallory"));
        assert_eq!(
            resp.body_json().unwrap()["events"]
                .as_array()
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn cursor_advances_without_visible_events_by_design() {
        // See "Cursor semantics" in the module docs: latest_seq is a log
        // position, not a visible-event count. A viewer with zero visible
        // events still anchors at the cluster-wide head, and polling from
        // that cursor is clean (no events, no resync).
        let ctx = test_ctx();
        ctx.ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 2))
            .unwrap();
        ctx.ctld.tick();
        let resp = handle(&ctx, &request("/api/updates", "mallory"));
        let body = resp.body_json().unwrap();
        assert_eq!(body["events"].as_array().unwrap().len(), 0);
        let cursor = body["latest_seq"].as_u64().unwrap();
        assert!(
            cursor >= 2,
            "cursor advances past filtered events by design"
        );
        let resp = handle(
            &ctx,
            &request(&format!("/api/updates?since={cursor}"), "mallory"),
        );
        let body = resp.body_json().unwrap();
        assert_eq!(body["events"].as_array().unwrap().len(), 0);
        assert_eq!(body["resync_required"], false);
        assert_eq!(body["latest_seq"].as_u64().unwrap(), cursor);
    }

    #[test]
    fn bad_cursor_rejected() {
        let ctx = test_ctx();
        assert_eq!(
            handle(&ctx, &request("/api/updates?since=abc", "alice")).status,
            400
        );
    }

    #[test]
    fn pending_events_carry_friendly_reasons() {
        let ctx = test_ctx();
        // Fill the node, then submit one more: its submit event carries a
        // Priority reason.
        ctx.ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 16))
            .unwrap();
        ctx.ctld.tick();
        ctx.ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 16))
            .unwrap();
        let resp = handle(&ctx, &request("/api/updates", "alice"));
        let events = resp.body_json().unwrap()["events"]
            .as_array()
            .unwrap()
            .to_vec();
        let pend = events.last().unwrap();
        assert_eq!(pend["to"], "PENDING");
        assert!(pend["reason_message"]
            .as_str()
            .unwrap()
            .starts_with("It means"));
    }

    #[test]
    fn stream_backfills_then_delivers_deltas() {
        let ctx = test_ctx();
        let id = ctx
            .ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 2))
            .unwrap()[0];
        ctx.ctld.tick();

        // First request registers the subscriber and backfills from seq 0.
        let resp = handle_stream(&ctx, &request("/api/updates/stream?sub=tab1", "alice"));
        assert_eq!(resp.status, 200);
        let body = resp.body_json().unwrap();
        let events = body["events"].as_array().unwrap();
        assert_eq!(events.len(), 2, "submit + start backfilled");
        assert_eq!(body["resync_required"], false);

        // Nothing new: empty non-blocking drain.
        let resp = handle_stream(&ctx, &request("/api/updates/stream?sub=tab1", "alice"));
        assert_eq!(
            resp.body_json().unwrap()["events"]
                .as_array()
                .unwrap()
                .len(),
            0
        );

        // A cancel is pushed through the hub; no since= bookkeeping needed.
        ctx.ctld.cancel(id, "alice").unwrap();
        let resp = handle_stream(&ctx, &request("/api/updates/stream?sub=tab1", "alice"));
        let body = resp.body_json().unwrap();
        let events = body["events"].as_array().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0]["to"], "CANCELLED");
    }

    #[test]
    fn stream_is_visibility_filtered() {
        let ctx = test_ctx();
        ctx.ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 2))
            .unwrap();
        ctx.ctld.tick();
        let resp = handle_stream(&ctx, &request("/api/updates/stream?sub=t", "mallory"));
        let body = resp.body_json().unwrap();
        assert_eq!(body["events"].as_array().unwrap().len(), 0);
        // Live publishes are filtered too, not just the backfill.
        ctx.ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 2))
            .unwrap();
        let resp = handle_stream(&ctx, &request("/api/updates/stream?sub=t", "mallory"));
        assert_eq!(
            resp.body_json().unwrap()["events"]
                .as_array()
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn stream_sheds_with_retry_after_when_park_budget_exhausted() {
        let mut cfg = DashboardConfig::generic("Test");
        cfg.push.max_parked_workers = 1;
        let ctx = test_ctx_with(cfg);
        // Occupy the only park slot, as a parked long-poll worker would.
        let _held = ctx.park.try_acquire().expect("slot available");
        let resp = handle_stream(
            &ctx,
            &request("/api/updates/stream?sub=t&wait_ms=5000", "alice"),
        );
        assert_eq!(resp.status, 503);
        assert_eq!(
            resp.headers.get("Retry-After").map(String::as_str),
            Some("1")
        );
        // With data queued, no parking is needed and the request succeeds
        // even at zero budget.
        ctx.ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 2))
            .unwrap();
        let resp = handle_stream(
            &ctx,
            &request("/api/updates/stream?sub=t&wait_ms=5000", "alice"),
        );
        assert_eq!(resp.status, 200);
        assert!(!resp.body_json().unwrap()["events"]
            .as_array()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn stream_overflow_reports_resync_then_recovers() {
        let mut cfg = DashboardConfig::generic("Test");
        cfg.push.queue_capacity = 2;
        let ctx = test_ctx_with(cfg);
        // Register the subscriber first so the overflow hits its live queue.
        let resp = handle_stream(&ctx, &request("/api/updates/stream?sub=t", "alice"));
        assert_eq!(
            resp.body_json().unwrap()["events"]
                .as_array()
                .unwrap()
                .len(),
            0
        );
        // Each submit+start publishes 2 events; 4 jobs overflow a queue of 2.
        for _ in 0..4 {
            ctx.ctld
                .submit(JobRequest::simple("alice", "physics", "cpu", 1))
                .unwrap();
            ctx.ctld.tick();
        }
        let resp = handle_stream(&ctx, &request("/api/updates/stream?sub=t", "alice"));
        let body = resp.body_json().unwrap();
        assert_eq!(body["resync_required"], true, "overflow coalesced");
        assert_eq!(body["events"].as_array().unwrap().len(), 0);
        // After refetching tables the client streams again from the hub.
        ctx.ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 1))
            .unwrap();
        let resp = handle_stream(&ctx, &request("/api/updates/stream?sub=t", "alice"));
        let body = resp.body_json().unwrap();
        assert_eq!(body["resync_required"], false);
        assert_eq!(body["events"].as_array().unwrap().len(), 1);
    }

    #[test]
    fn stream_validates_params() {
        let ctx = test_ctx();
        assert_eq!(
            handle_stream(&ctx, &request("/api/updates/stream?since=abc", "alice")).status,
            400
        );
        assert_eq!(
            handle_stream(&ctx, &request("/api/updates/stream?wait_ms=soon", "alice")).status,
            400
        );
        assert_eq!(
            handle_stream(&ctx, &request("/api/updates/stream?sub=", "alice")).status,
            400
        );
    }
}
