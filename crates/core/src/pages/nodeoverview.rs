//! The Node Overview page (paper §6.1, Figure 4c): status + resource cards,
//! details tab, running-jobs tab.

use crate::pages::layout::{shell, widget_placeholder};
use crate::template::escape_html;
use crate::widgets::components::progress_bar;
use serde_json::Value;

pub fn render_shell(cluster: &str, user: &str, node: &str) -> String {
    let mut body = format!("<h1>Node {}</h1>", escape_html(node));
    body.push_str(&widget_placeholder(
        "nodeoverview",
        &format!("/api/nodes/{node}"),
    ));
    shell(
        &format!("Node {node}"),
        "nodeoverview",
        cluster,
        user,
        &body,
    )
}

/// Render from the `/api/nodes/:name` payload.
pub fn render_full(cluster: &str, user: &str, payload: &Value) -> String {
    let status = &payload["status_card"];
    let res = &payload["resource_card"];
    let name = status["name"].as_str().unwrap_or("");
    let mut body = format!(
        "<h1>Node {}</h1><div class=\"card-pair\">",
        escape_html(name)
    );

    // Status card.
    body.push_str(&format!(
        "<div class=\"card status-card\"><div class=\"card-header\">Status</div>\
         <div class=\"card-body\"><span class=\"badge badge-{}\">{}</span>\
         <div class=\"last-active\">Last active: {}</div>{}</div></div>",
        status["color"].as_str().unwrap_or("gray"),
        escape_html(status["state"].as_str().unwrap_or("")),
        escape_html(status["last_busy"].as_str().unwrap_or("unknown")),
        match status["reason"].as_str() {
            Some(r) => format!("<div class=\"reason\">Reason: {}</div>", escape_html(r)),
            None => String::new(),
        },
    ));

    // Resource usage card.
    body.push_str("<div class=\"card resource-card\"><div class=\"card-header\">Resource usage</div><div class=\"card-body\">");
    body.push_str(&progress_bar(
        res["cpu"]["percent"].as_f64().unwrap_or(0.0),
        res["cpu"]["color"].as_str().unwrap_or("green"),
        &format!("CPU {}/{}", res["cpu"]["alloc"], res["cpu"]["total"]),
    ));
    body.push_str(&progress_bar(
        res["memory"]["percent"].as_f64().unwrap_or(0.0),
        res["memory"]["color"].as_str().unwrap_or("green"),
        &format!(
            "Memory {}/{} MB",
            res["memory"]["alloc_mb"], res["memory"]["total_mb"]
        ),
    ));
    if !res["gpu"].is_null() {
        body.push_str(&progress_bar(
            res["gpu"]["percent"].as_f64().unwrap_or(0.0),
            res["gpu"]["color"].as_str().unwrap_or("green"),
            &format!("GPU {}/{}", res["gpu"]["alloc"], res["gpu"]["total"]),
        ));
    }
    body.push_str("</div></div></div>");

    // Tabs: details + running jobs.
    body.push_str(
        "<div class=\"tabs\"><div class=\"tab\" id=\"details\"><table class=\"kv-table\"><tbody>",
    );
    if let Some(details) = payload["details"].as_object() {
        for (k, v) in details {
            body.push_str(&format!(
                "<tr><th>{}</th><td>{}</td></tr>",
                escape_html(k),
                escape_html(v.as_str().unwrap_or(""))
            ));
        }
    }
    body.push_str("</tbody></table></div><div class=\"tab\" id=\"running-jobs\"><table class=\"job-table\"><thead><tr><th>Job</th><th>Name</th><th>User</th><th>Partition</th><th>State</th><th>CPUs</th><th>Memory</th></tr></thead><tbody>");
    for j in payload["running_jobs"]
        .as_array()
        .map(Vec::as_slice)
        .unwrap_or(&[])
    {
        body.push_str(&format!(
            "<tr><td><a href=\"{}\">{}</a></td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{} MB</td></tr>",
            j["overview_url"].as_str().unwrap_or("#"),
            escape_html(j["id"].as_str().unwrap_or("")),
            escape_html(j["name"].as_str().unwrap_or("")),
            escape_html(j["user"].as_str().unwrap_or("")),
            escape_html(j["partition"].as_str().unwrap_or("")),
            escape_html(j["state"].as_str().unwrap_or("")),
            j["alloc_cpus"],
            j["alloc_mem_mb"],
        ));
    }
    body.push_str("</tbody></table></div></div>");
    shell(
        &format!("Node {name}"),
        "nodeoverview",
        cluster,
        user,
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn cards_tabs_and_jobs() {
        let payload = json!({
            "status_card": {"name": "g001", "state": "MIXED", "color": "green",
                            "last_busy": "2026-07-04T08:00:00", "reason": null},
            "resource_card": {
                "cpu": {"alloc": 32, "total": 64, "percent": 50.0, "color": "green"},
                "memory": {"alloc_mb": 100_000, "total_mb": 512_000, "percent": 19.5, "color": "green"},
                "gpu": {"alloc": 2, "total": 4, "percent": 50.0, "color": "green"},
            },
            "details": {"OS": "Linux", "CPUTot": "64", "Gres": "gpu:a100:4"},
            "running_jobs": [
                {"id": "77", "name": "train", "user": "alice", "partition": "gpu",
                 "state": "RUNNING", "alloc_cpus": 16, "alloc_mem_mb": 65_536,
                 "overview_url": "/jobs/77"},
            ],
        });
        let html = render_full("Anvil", "alice", &payload);
        assert!(html.contains("Node g001"));
        assert!(html.contains("Last active: 2026-07-04T08:00:00"));
        assert!(html.contains("CPU 32/64"));
        assert!(html.contains("GPU 2/4"));
        assert!(html.contains("<th>Gres</th><td>gpu:a100:4</td>"));
        assert!(html.contains("href=\"/jobs/77\""));
    }

    #[test]
    fn down_node_shows_reason_no_gpu_bar() {
        let payload = json!({
            "status_card": {"name": "a001", "state": "DOWN", "color": "red",
                            "last_busy": null, "reason": "power supply"},
            "resource_card": {
                "cpu": {"alloc": 0, "total": 128, "percent": 0.0, "color": "green"},
                "memory": {"alloc_mb": 0, "total_mb": 257_000, "percent": 0.0, "color": "green"},
                "gpu": null,
            },
            "details": {},
            "running_jobs": [],
        });
        let html = render_full("Anvil", "alice", &payload);
        assert!(html.contains("Reason: power supply"));
        assert!(html.contains("badge-red"));
        assert!(!html.contains("GPU "));
        assert!(html.contains("Last active: unknown"));
    }
}
