//! The Cluster Status page (paper §6, Figure 4b): grid view + list view.

use crate::pages::layout::{shell, widget_placeholder};
use crate::template::escape_html;
use serde_json::Value;

pub fn render_shell(cluster: &str, user: &str) -> String {
    let mut body = String::from(
        "<h1>Cluster Status</h1>\
         <div class=\"controls\"><button id=\"grid-view\">Grid</button>\
         <button id=\"list-view\">List</button>\
         <input id=\"node-search\" placeholder=\"Filter nodes...\"></div>",
    );
    body.push_str(&widget_placeholder("clusterstatus", "/api/clusterstatus"));
    shell("Cluster Status", "clusterstatus", cluster, user, &body)
}

/// Grid view: one colour-coded cell per node with a hover summary.
pub fn render_grid(payload: &Value) -> String {
    let mut out = String::from("<div class=\"node-grid\">");
    for n in payload["nodes"]
        .as_array()
        .map(Vec::as_slice)
        .unwrap_or(&[])
    {
        let name = n["name"].as_str().unwrap_or("");
        out.push_str(&format!(
            "<a class=\"node-cell node-{}\" href=\"{}\" \
             title=\"{}: {} — CPU {}/{}, mem {}/{} MB, partitions: {}\">{}</a>",
            n["color"].as_str().unwrap_or("gray"),
            n["overview_url"].as_str().unwrap_or("#"),
            escape_html(name),
            n["state"].as_str().unwrap_or(""),
            n["cpus_alloc"],
            n["cpus_total"],
            n["mem_alloc_mb"],
            n["mem_total_mb"],
            n["partitions"]
                .as_array()
                .map(|p| p
                    .iter()
                    .filter_map(|x| x.as_str())
                    .collect::<Vec<_>>()
                    .join(","))
                .unwrap_or_default(),
            escape_html(name),
        ));
    }
    out.push_str("</div>");
    out
}

/// List view: a sortable/filterable table.
pub fn render_list(payload: &Value, filter: Option<&str>) -> String {
    let mut out = String::from(
        "<table class=\"node-table\"><thead><tr>\
         <th data-sort=\"name\">Node</th><th data-sort=\"state\">State</th>\
         <th>Partitions</th><th data-sort=\"cpu\">CPU load</th>\
         <th data-sort=\"mem\">Memory load</th></tr></thead><tbody>",
    );
    for n in payload["nodes"]
        .as_array()
        .map(Vec::as_slice)
        .unwrap_or(&[])
    {
        let name = n["name"].as_str().unwrap_or("");
        let state = n["state"].as_str().unwrap_or("");
        let partitions = n["partitions"]
            .as_array()
            .map(|p| {
                p.iter()
                    .filter_map(|x| x.as_str())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .unwrap_or_default();
        if let Some(f) = filter {
            let f = f.to_lowercase();
            if !name.to_lowercase().contains(&f)
                && !state.to_lowercase().contains(&f)
                && !partitions.to_lowercase().contains(&f)
            {
                continue;
            }
        }
        out.push_str(&format!(
            "<tr><td><a href=\"{}\">{}</a></td><td class=\"state-{}\">{}</td>\
             <td>{}</td><td>{:.1}%</td><td>{:.1}%</td></tr>",
            n["overview_url"].as_str().unwrap_or("#"),
            escape_html(name),
            n["color"].as_str().unwrap_or("gray"),
            escape_html(state),
            escape_html(&partitions),
            n["cpu_percent"].as_f64().unwrap_or(0.0),
            n["mem_percent"].as_f64().unwrap_or(0.0),
        ));
    }
    out.push_str("</tbody></table>");
    out
}

/// List view sorted by a column (paper §6: "users can sort any column to
/// find the nodes with the highest or lowest CPU or memory load and/or view
/// the nodes in alphabetical order"). `descending` controls direction.
pub fn render_list_sorted(payload: &Value, sort_key: &str, descending: bool) -> String {
    let mut nodes: Vec<Value> = payload["nodes"]
        .as_array()
        .map(Vec::as_slice)
        .unwrap_or(&[])
        .to_vec();
    let metric = |n: &Value, key: &str| n[key].as_f64().unwrap_or(0.0);
    match sort_key {
        "cpu" => nodes.sort_by(|a, b| {
            metric(a, "cpu_percent")
                .partial_cmp(&metric(b, "cpu_percent"))
                .expect("finite")
        }),
        "mem" => nodes.sort_by(|a, b| {
            metric(a, "mem_percent")
                .partial_cmp(&metric(b, "mem_percent"))
                .expect("finite")
        }),
        "state" => nodes.sort_by_key(|n| n["state"].as_str().unwrap_or("").to_string()),
        _ => nodes.sort_by_key(|n| n["name"].as_str().unwrap_or("").to_string()),
    }
    if descending {
        nodes.reverse();
    }
    render_list(&serde_json::json!({ "nodes": nodes }), None)
}

/// The full page with both views.
pub fn render_full(cluster: &str, user: &str, payload: &Value) -> String {
    let body = format!(
        "<h1>Cluster Status</h1>{}{}",
        render_grid(payload),
        render_list(payload, None)
    );
    shell("Cluster Status", "clusterstatus", cluster, user, &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn payload() -> Value {
        json!({"nodes": [
            {"name": "a001", "state": "MIXED", "color": "green",
             "cpus_alloc": 64, "cpus_total": 128, "cpu_percent": 50.0, "cpu_color": "green",
             "cpu_load": 63.0, "mem_alloc_mb": 100_000, "mem_total_mb": 257_000,
             "mem_percent": 38.9, "mem_color": "green",
             "partitions": ["cpu"], "gres": null, "gres_used": null, "reason": null,
             "overview_url": "/nodes/a001"},
            {"name": "g001", "state": "DOWN", "color": "red",
             "cpus_alloc": 0, "cpus_total": 128, "cpu_percent": 0.0, "cpu_color": "green",
             "cpu_load": 0.0, "mem_alloc_mb": 0, "mem_total_mb": 512_000,
             "mem_percent": 0.0, "mem_color": "green",
             "partitions": ["gpu"], "gres": "gpu:a100:4", "gres_used": "gpu:a100:0",
             "reason": "power supply", "overview_url": "/nodes/g001"},
        ]})
    }

    #[test]
    fn grid_cells_colored_with_hover() {
        let html = render_grid(&payload());
        assert!(html.contains("node-green"));
        assert!(html.contains("node-red"));
        assert!(html.contains("title=\"a001: MIXED — CPU 64/128"));
        assert!(html.contains("href=\"/nodes/g001\""));
    }

    #[test]
    fn list_filter_narrows() {
        let all = render_list(&payload(), None);
        assert!(all.contains("a001") && all.contains("g001"));
        let gpu_only = render_list(&payload(), Some("gpu"));
        assert!(!gpu_only.contains("a001") && gpu_only.contains("g001"));
        let down_only = render_list(&payload(), Some("down"));
        assert!(down_only.contains("g001") && !down_only.contains("a001"));
        let none = render_list(&payload(), Some("zzz"));
        assert!(!none.contains("a001") && !none.contains("g001"));
    }

    #[test]
    fn sorted_list_orders_by_load() {
        let html = render_list_sorted(&payload(), "cpu", true);
        let a_pos = html.find(">a001<").expect("a001 row");
        let g_pos = html.find(">g001<").expect("g001 row");
        assert!(a_pos < g_pos, "highest CPU load first when descending");
        let html = render_list_sorted(&payload(), "cpu", false);
        let a_pos = html.find(">a001<").unwrap();
        let g_pos = html.find(">g001<").unwrap();
        assert!(g_pos < a_pos, "ascending flips the order");
        // Alphabetical by default.
        let html = render_list_sorted(&payload(), "name", false);
        assert!(html.find(">a001<").unwrap() < html.find(">g001<").unwrap());
    }

    #[test]
    fn full_page_has_both_views() {
        let html = render_full("Anvil", "alice", &payload());
        assert!(html.contains("node-grid"));
        assert!(html.contains("node-table"));
    }
}
