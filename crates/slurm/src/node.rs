//! Compute nodes and their state machine.

use crate::tres::Tres;
use hpcdash_simtime::Timestamp;
use serde::{Deserialize, Serialize};

/// Administrative / derived node state, matching the states the dashboard's
/// Cluster Status grid colour-codes (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeState {
    /// Online, no jobs running.
    Idle,
    /// Online, some resources allocated.
    Mixed,
    /// Online, fully allocated.
    Allocated,
    /// Admin-drained: running jobs may finish, no new work.
    Drained,
    /// Scheduled maintenance.
    Maint,
    /// Offline / unreachable.
    Down,
}

impl NodeState {
    /// Slurm's display token, e.g. in `sinfo` / `scontrol show node`.
    pub fn to_slurm(self) -> &'static str {
        match self {
            NodeState::Idle => "IDLE",
            NodeState::Mixed => "MIXED",
            NodeState::Allocated => "ALLOCATED",
            NodeState::Drained => "DRAINED",
            NodeState::Maint => "MAINT",
            NodeState::Down => "DOWN",
        }
    }

    pub fn parse(s: &str) -> Option<NodeState> {
        // Tolerate the `*`/`+` suffixes slurm appends for non-responding /
        // power-saving nodes.
        match s.trim_end_matches(['*', '+', '~', '#']) {
            "IDLE" => Some(NodeState::Idle),
            "MIXED" => Some(NodeState::Mixed),
            "ALLOCATED" | "ALLOC" => Some(NodeState::Allocated),
            "DRAINED" | "DRAIN" | "DRAINING" => Some(NodeState::Drained),
            "MAINT" | "MAINTENANCE" => Some(NodeState::Maint),
            "DOWN" => Some(NodeState::Down),
            _ => None,
        }
    }

    /// Can the scheduler place new work here?
    pub fn schedulable(self) -> bool {
        matches!(
            self,
            NodeState::Idle | NodeState::Mixed | NodeState::Allocated
        )
    }

    /// Is the node reachable at all (running jobs can continue)?
    pub fn online(self) -> bool {
        !matches!(self, NodeState::Down | NodeState::Maint)
    }
}

impl std::fmt::Display for NodeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.to_slurm())
    }
}

/// Admin override applied on top of the allocation-derived state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AdminFlag {
    #[default]
    None,
    Drain,
    Maint,
    Down,
}

/// One compute node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    pub name: String,
    /// Configured resources.
    pub cpus: u32,
    pub real_memory_mb: u64,
    pub gpus: u32,
    pub gpu_type: Option<String>,
    pub features: Vec<String>,
    /// Partitions this node belongs to.
    pub partitions: Vec<String>,
    pub os: String,
    /// Currently allocated resources (maintained by the scheduler).
    pub alloc: Tres,
    /// 1-minute load average reported by slurmd; the simulator derives it
    /// from allocation plus jitter.
    pub cpu_load: f64,
    pub admin_flag: AdminFlag,
    /// Why the node was drained/downed, if it was.
    pub reason: Option<String>,
    pub boot_time: Timestamp,
    /// Last instant the node had work (drives "last active" on the
    /// Node Overview status card).
    pub last_busy: Timestamp,
}

impl Node {
    pub fn new(name: impl Into<String>, cpus: u32, real_memory_mb: u64, gpus: u32) -> Node {
        Node {
            name: name.into(),
            cpus,
            real_memory_mb,
            gpus,
            gpu_type: if gpus > 0 {
                Some("a100".to_string())
            } else {
                None
            },
            features: Vec::new(),
            partitions: Vec::new(),
            os: "Linux 5.14.0-427.el9".to_string(),
            alloc: Tres::default(),
            cpu_load: 0.0,
            admin_flag: AdminFlag::None,
            reason: None,
            boot_time: Timestamp::ZERO,
            last_busy: Timestamp::ZERO,
        }
    }

    /// Total configured resources as a TRES bundle.
    pub fn configured(&self) -> Tres {
        Tres::new(self.cpus, self.real_memory_mb, self.gpus, 1)
    }

    /// Resources still free for new allocations.
    pub fn free(&self) -> Tres {
        self.configured()
            .minus(self.alloc)
            .with_node_if_idle(self.alloc.cpus == 0)
    }

    /// The effective state shown to users.
    pub fn state(&self) -> NodeState {
        match self.admin_flag {
            AdminFlag::Down => NodeState::Down,
            AdminFlag::Maint => NodeState::Maint,
            AdminFlag::Drain => NodeState::Drained,
            AdminFlag::None => {
                if self.alloc.cpus == 0 {
                    NodeState::Idle
                } else if self.alloc.cpus >= self.cpus {
                    NodeState::Allocated
                } else {
                    NodeState::Mixed
                }
            }
        }
    }

    /// Can the scheduler place a new allocation of `req` on this node?
    pub fn can_fit(&self, req: Tres) -> bool {
        self.state().schedulable()
            && self.admin_flag == AdminFlag::None
            && req.cpus <= self.cpus.saturating_sub(self.alloc.cpus)
            && req.mem_mb <= self.real_memory_mb.saturating_sub(self.alloc.mem_mb)
            && req.gpus <= self.gpus.saturating_sub(self.alloc.gpus)
    }

    /// Allocate resources. Panics if they do not fit — the scheduler must
    /// check [`Node::can_fit`] first; violating that is a simulator bug.
    pub fn allocate(&mut self, req: Tres, now: Timestamp) {
        assert!(
            self.can_fit(req),
            "allocation {req} does not fit on {} (alloc {})",
            self.name,
            self.alloc
        );
        self.alloc = self.alloc.plus(Tres { nodes: 0, ..req });
        self.last_busy = now;
    }

    /// Release a previous allocation.
    pub fn release(&mut self, req: Tres, now: Timestamp) {
        self.alloc = self.alloc.minus(Tres { nodes: 0, ..req });
        self.last_busy = now;
    }

    /// Fraction of CPUs allocated, in `[0, 1]`.
    pub fn cpu_utilization(&self) -> f64 {
        if self.cpus == 0 {
            0.0
        } else {
            self.alloc.cpus as f64 / self.cpus as f64
        }
    }

    /// Fraction of memory allocated, in `[0, 1]`.
    pub fn mem_utilization(&self) -> f64 {
        if self.real_memory_mb == 0 {
            0.0
        } else {
            self.alloc.mem_mb as f64 / self.real_memory_mb as f64
        }
    }
}

trait WithNodeIfIdle {
    fn with_node_if_idle(self, idle: bool) -> Self;
}

impl WithNodeIfIdle for Tres {
    fn with_node_if_idle(mut self, idle: bool) -> Tres {
        self.nodes = if idle { 1 } else { 0 };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Node {
        Node::new("a001", 128, 257_000, 0)
    }

    #[test]
    fn derived_states() {
        let mut n = node();
        assert_eq!(n.state(), NodeState::Idle);
        n.allocate(Tres::new(4, 8_192, 0, 1), Timestamp(10));
        assert_eq!(n.state(), NodeState::Mixed);
        n.allocate(Tres::new(124, 1_000, 0, 1), Timestamp(11));
        assert_eq!(n.state(), NodeState::Allocated);
        n.release(Tres::new(124, 1_000, 0, 1), Timestamp(12));
        n.release(Tres::new(4, 8_192, 0, 1), Timestamp(13));
        assert_eq!(n.state(), NodeState::Idle);
        assert_eq!(n.last_busy, Timestamp(13));
    }

    #[test]
    fn admin_flags_override() {
        let mut n = node();
        n.admin_flag = AdminFlag::Drain;
        assert_eq!(n.state(), NodeState::Drained);
        assert!(!n.can_fit(Tres::new(1, 1, 0, 1)));
        n.admin_flag = AdminFlag::Down;
        assert_eq!(n.state(), NodeState::Down);
        assert!(!n.state().online());
        n.admin_flag = AdminFlag::Maint;
        assert_eq!(n.state(), NodeState::Maint);
    }

    #[test]
    fn fit_checks_all_dimensions() {
        let mut n = Node::new("g001", 64, 512_000, 4);
        assert!(n.can_fit(Tres::new(64, 512_000, 4, 1)));
        assert!(!n.can_fit(Tres::new(65, 1, 0, 1)));
        assert!(!n.can_fit(Tres::new(1, 512_001, 0, 1)));
        assert!(!n.can_fit(Tres::new(1, 1, 5, 1)));
        n.allocate(Tres::new(32, 256_000, 2, 1), Timestamp(1));
        assert!(n.can_fit(Tres::new(32, 256_000, 2, 1)));
        assert!(!n.can_fit(Tres::new(33, 1, 0, 1)));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn over_allocation_panics() {
        let mut n = node();
        n.allocate(Tres::new(200, 1, 0, 1), Timestamp(1));
    }

    #[test]
    fn utilization_fractions() {
        let mut n = node();
        assert_eq!(n.cpu_utilization(), 0.0);
        n.allocate(Tres::new(64, 128_500, 0, 1), Timestamp(1));
        assert!((n.cpu_utilization() - 0.5).abs() < 1e-9);
        assert!((n.mem_utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn state_tokens_roundtrip() {
        for s in [
            NodeState::Idle,
            NodeState::Mixed,
            NodeState::Allocated,
            NodeState::Drained,
            NodeState::Maint,
            NodeState::Down,
        ] {
            assert_eq!(NodeState::parse(s.to_slurm()), Some(s));
        }
        assert_eq!(NodeState::parse("IDLE*"), Some(NodeState::Idle));
        assert_eq!(NodeState::parse("bogus"), None);
    }

    #[test]
    fn free_resources() {
        let mut n = Node::new("g001", 64, 512_000, 4);
        assert_eq!(n.free(), Tres::new(64, 512_000, 4, 1));
        n.allocate(Tres::new(16, 100_000, 1, 1), Timestamp(1));
        assert_eq!(n.free(), Tres::new(48, 412_000, 3, 0));
    }
}
