//! System Status widget API (paper §3.3): per-partition utilization with
//! the 70/90% colour thresholds, from `sinfo`.

use crate::auth::CurrentUser;
use crate::colors::utilization_color;
use crate::ctx::DashboardContext;
use hpcdash_http::{Request, Response, Router};
use hpcdash_slurmcli::{parse_sinfo_usage, sinfo_usage};
use serde_json::json;

pub const FEATURE: &str = "System Status widget";
pub const ROUTES: &[&str] = &["/api/system_status"];
pub const SOURCES: &[&str] = &["sinfo (slurmctld)"];

pub fn register(router: &mut Router, ctx: DashboardContext) {
    let keyctx = ctx.clone();
    router.get_cached(
        ROUTES[0],
        move |req| {
            let ttl = keyctx.cfg.cache.system_status;
            super::render_decision(&keyctx, req, ROUTES[0], ttl)
        },
        move |req| handle(&ctx, req),
    );
}

fn handle(ctx: &DashboardContext, req: &Request) -> Response {
    if let Err(resp) = CurrentUser::from_request(ctx, req) {
        return resp;
    }
    let outcome = ctx.cached_resilient("system_status", ctx.cfg.cache.system_status, || {
        ctx.note_source(FEATURE, "sinfo (slurmctld)");
        let text = sinfo_usage(&ctx.ctld)?;
        let rows = parse_sinfo_usage(&text).map_err(|e| format!("sinfo parse: {e}"))?;
        Ok(json!({
            "partitions": rows
                .iter()
                .map(|p| {
                    let cpu_frac = p.cpu_utilization();
                    let gpu_frac = p.gpu_utilization();
                    json!({
                        "name": p.partition,
                        "status": p.avail.to_uppercase(),
                        "cpus": {
                            "alloc": p.cpus_alloc,
                            "idle": p.cpus_idle,
                            "other": p.cpus_other,
                            "total": p.cpus_total,
                            "percent": (cpu_frac * 1000.0).round() / 10.0,
                            "color": utilization_color(cpu_frac),
                        },
                        "gpus": if p.gpus_total > 0 {
                            json!({
                                "alloc": p.gpus_alloc,
                                "total": p.gpus_total,
                                "percent": (gpu_frac * 1000.0).round() / 10.0,
                                "color": utilization_color(gpu_frac),
                            })
                        } else {
                            serde_json::Value::Null
                        },
                        "nodes": {"in_use": p.nodes_in_use, "total": p.nodes_total},
                    })
                })
                .collect::<Vec<_>>(),
            "details_url": "/clusterstatus",
        }))
    });
    super::respond(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::tests::test_ctx;
    use hpcdash_http::Method;
    use hpcdash_slurm::job::JobRequest;

    fn request() -> Request {
        Request::new(Method::Get, "/api/system_status").with_header("X-Remote-User", "alice")
    }

    #[test]
    fn reports_partition_utilization() {
        let ctx = test_ctx();
        // Fill 16/16 CPUs -> red.
        ctx.ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 16))
            .unwrap();
        ctx.ctld.tick();
        let resp = handle(&ctx, &request());
        assert_eq!(resp.status, 200);
        let parts = resp.body_json().unwrap()["partitions"]
            .as_array()
            .unwrap()
            .to_vec();
        assert_eq!(parts.len(), 1);
        let cpu = &parts[0];
        assert_eq!(cpu["name"], "cpu");
        assert_eq!(cpu["status"], "UP");
        assert_eq!(cpu["cpus"]["alloc"], 16);
        assert_eq!(cpu["cpus"]["percent"], 100.0);
        assert_eq!(cpu["cpus"]["color"], "red");
        assert!(cpu["gpus"].is_null(), "no GPUs in this partition");
        assert_eq!(cpu["nodes"]["in_use"], 1);
    }

    #[test]
    fn idle_cluster_is_green() {
        let ctx = test_ctx();
        let resp = handle(&ctx, &request());
        let parts = resp.body_json().unwrap()["partitions"]
            .as_array()
            .unwrap()
            .to_vec();
        assert_eq!(parts[0]["cpus"]["color"], "green");
        assert_eq!(parts[0]["cpus"]["percent"], 0.0);
    }

    #[test]
    fn shared_cache_across_users() {
        let ctx = test_ctx();
        handle(&ctx, &request());
        let other =
            Request::new(Method::Get, "/api/system_status").with_header("X-Remote-User", "bob");
        handle(&ctx, &other);
        assert_eq!(
            ctx.ctld.stats().count_of("sinfo"),
            1,
            "system-wide data cached once for all users"
        );
    }
}
