//! Latency collection with percentile summaries.
//!
//! The implementation moved to `hpcdash-obs` (the shared observability
//! crate); this module keeps the historical path for existing callers.

pub use hpcdash_obs::recorder::{LatencyRecorder, LatencySummary};
