//! `slurmdbd`: the accounting daemon. Archives every job that ever ran and
//! mirrors active jobs, so `sacct`-style queries (the dashboard's My Jobs
//! and Job Performance Metrics backends) see the full picture without
//! touching slurmctld.

use crate::durable::{DurableStore, RecoveryReport, Wal};
use crate::job::{Job, JobId, JobState};
use crate::loadmodel::{RpcCostModel, RpcStats};
use hpcdash_faults::{FaultFailure, FaultHost, RestartToken};
use hpcdash_obs::{PhaseProfiler, Span};
use hpcdash_simtime::Timestamp;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Checkpoint the archive every N accepted `record_finished` batches.
const CHECKPOINT_EVERY_BATCHES: u64 = 8;

/// Filter for accounting queries, mirroring the sacct flags the dashboard
/// uses (`-u`, `-A`, `-S`, `-E`, `--state`, `-j`).
#[derive(Debug, Clone, Default)]
pub struct JobFilter {
    /// Visibility: match jobs submitted by this user...
    pub user: Option<String>,
    /// ...or charged to any of these accounts. Both empty = no visibility
    /// restriction (admin view).
    pub accounts: Vec<String>,
    pub states: Option<Vec<JobState>>,
    /// Only jobs still relevant after this instant (active, or ended later).
    pub since: Option<Timestamp>,
    /// Only jobs submitted at or before this instant.
    pub until: Option<Timestamp>,
    pub job_ids: Option<Vec<JobId>>,
}

impl JobFilter {
    pub fn for_user(user: &str, accounts: Vec<String>) -> JobFilter {
        JobFilter {
            user: Some(user.to_string()),
            accounts,
            ..JobFilter::default()
        }
    }

    fn matches(&self, job: &Job) -> bool {
        if self.user.is_some() || !self.accounts.is_empty() {
            let by_user = self.user.as_deref() == Some(job.req.user.as_str());
            let by_account = self.accounts.contains(&job.req.account);
            if !by_user && !by_account {
                return false;
            }
        }
        if let Some(states) = &self.states {
            if !states.contains(&job.state) {
                return false;
            }
        }
        if let Some(since) = self.since {
            let ended_before = job.end_time.map(|e| e < since).unwrap_or(false);
            if ended_before {
                return false;
            }
        }
        if let Some(until) = self.until {
            if job.submit_time > until {
                return false;
            }
        }
        if let Some(ids) = &self.job_ids {
            let in_list = ids.contains(&job.id)
                || job
                    .array
                    .map(|a| ids.contains(&a.array_job_id))
                    .unwrap_or(false);
            if !in_list {
                return false;
            }
        }
        true
    }
}

/// The accounting daemon. Rows are `Arc<Job>` so slurmctld can feed it the
/// shared rows of its published snapshot (refcount bumps, not deep clones).
pub struct Slurmdbd {
    archived: RwLock<BTreeMap<JobId, Arc<Job>>>,
    active_mirror: RwLock<BTreeMap<JobId, Arc<Job>>>,
    cost: RpcCostModel,
    stats: RpcStats,
    /// Injected-fault hook. Latency faults burn inside the query RPCs; a
    /// `Lag` fault on `sync_active` freezes the active mirror (accounting
    /// answers from stale data, exactly like a lagging production dbd);
    /// error/garble faults are enforced at the `sacct`/`seff` render
    /// boundary in `hpcdash-slurmcli`.
    faults: FaultHost,
    /// Per-phase wall time on the ingest side (archive writes, mirror
    /// syncs) — the dbd half of the tick-phase profile.
    phases: PhaseProfiler,
    /// Write-ahead log of archived rows since the last checkpoint,
    /// flushed per accepted batch (each archive write IS the commit).
    wal: Wal<Arc<Job>>,
    /// Latest serialized archive checkpoint.
    durable: DurableStore,
    /// Accepted archive batches (drives the checkpoint cadence).
    archive_batches: AtomicU64,
    restarts: AtomicU64,
    last_recovery: Mutex<Option<RecoveryReport>>,
}

impl Slurmdbd {
    pub fn new() -> Slurmdbd {
        Slurmdbd::with_cost(RpcCostModel::dbd_default())
    }

    pub fn with_cost(cost: RpcCostModel) -> Slurmdbd {
        // Checkpoint 0 (empty archive): a crash before the first periodic
        // checkpoint still has an image to recover from.
        let durable = DurableStore::new();
        durable.save(
            serde_json::to_vec(&Vec::<Job>::new()).expect("checkpoint serializes"),
            Timestamp(0),
            0,
        );
        Slurmdbd {
            archived: RwLock::new(BTreeMap::new()),
            active_mirror: RwLock::new(BTreeMap::new()),
            cost,
            stats: RpcStats::new(),
            faults: FaultHost::new("slurmdbd"),
            phases: PhaseProfiler::new(),
            wal: Wal::new(65_536),
            durable,
            archive_batches: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            last_recovery: Mutex::new(None),
        }
    }

    /// The daemon's fault-injection hook (install a `FaultPlan` here).
    pub fn faults(&self) -> &FaultHost {
        &self.faults
    }

    /// Per-phase wall-time accounting for the ingest path.
    pub fn phase_profile(&self) -> &PhaseProfiler {
        &self.phases
    }

    /// Archive finished jobs (called by slurmctld). Accepts owned `Job`s or
    /// shared `Arc<Job>` rows. Returns false if the daemon is down (a crash
    /// fault is active): the batch was refused and the caller must retain
    /// it for retry — archival upserts by job id, so retries are safe.
    pub fn record_finished<J: Into<Arc<Job>>>(&self, jobs: impl IntoIterator<Item = J>) -> bool {
        self.try_recover();
        let check = self.faults.check("record_finished");
        check.burn();
        if self.faults.is_down() {
            return false;
        }
        self.phases.time("archive", || {
            let mut archived = self.archived.write();
            for job in jobs {
                let job = job.into();
                self.wal.append(job.clone());
                archived.insert(job.id, job);
            }
        });
        // Each accepted batch commits immediately: slurmctld treats a
        // `true` return as durable and drops the batch from its spool.
        self.wal.flush();
        let batches = self.archive_batches.fetch_add(1, Ordering::Relaxed) + 1;
        if batches.is_multiple_of(CHECKPOINT_EVERY_BATCHES) {
            self.checkpoint_now();
        }
        true
    }

    /// Replace the mirror of currently active jobs (called by slurmctld on
    /// every tick, handing over the snapshot's shared rows).
    pub fn sync_active<J: Into<Arc<Job>>>(&self, jobs: impl IntoIterator<Item = J>) {
        self.try_recover();
        self.phases.time("mirror_sync", || {
            let check = self.faults.check("sync_active");
            check.burn();
            if self.faults.is_down() {
                // Crashed: the sync never arrives. The mirror is rebuilt by
                // the first sync after recovery; nothing is retried.
                return;
            }
            if matches!(check.failure, Some(FaultFailure::Lag)) {
                // The accounting daemon has fallen behind: drop this sync and
                // keep answering queries from the last mirror it applied.
                return;
            }
            let mut mirror = self.active_mirror.write();
            mirror.clear();
            for job in jobs {
                let job = job.into();
                mirror.insert(job.id, job);
            }
        });
    }

    /// Lazy crash recovery: the dbd has no tick loop, so the first RPC to
    /// arrive after the restart time performs the rebuild.
    fn try_recover(&self) {
        if let Some(token) = self.faults.take_restart() {
            self.recover(token);
        }
    }

    /// Rebuild the archive as checkpoint + durable WAL suffix. The active
    /// mirror died with the daemon and is NOT restored — it repopulates on
    /// the next slurmctld sync; until then accounting honestly serves
    /// archives only (the same observable gap a real dbd restart has).
    #[cold]
    fn recover(&self, token: RestartToken) {
        let rebuild_start = Instant::now();
        let wal_lost = self.wal.unflushed_len();
        self.wal.drop_unflushed();
        let cp = self
            .durable
            .latest()
            .expect("construction always writes checkpoint 0");
        let rows: Vec<Job> = serde_json::from_slice(&cp.bytes).expect("checkpoint decodes");
        let mut rebuilt: BTreeMap<JobId, Arc<Job>> =
            rows.into_iter().map(|j| (j.id, Arc::new(j))).collect();
        let (records, truncated) = self.wal.replay_from(cp.wal_seq);
        debug_assert!(!truncated, "checkpoints only trim the WAL they cover");
        let wal_replayed = records.len() as u64;
        for (_seq, job) in records {
            rebuilt.insert(job.id, job);
        }
        *self.archived.write() = rebuilt;
        self.active_mirror.write().clear();
        self.restarts.fetch_add(1, Ordering::Relaxed);
        *self.last_recovery.lock() = Some(RecoveryReport {
            crashed_at: token.crashed_at,
            recovered_at: token.down_until,
            checkpoint_at: cp.at,
            wal_replayed,
            wal_lost,
            // The dbd publishes no snapshot epoch; these stay 0.
            epoch_before: 0,
            epoch_after: 0,
            duration_micros: rebuild_start.elapsed().as_micros() as u64,
        });
    }

    /// Checkpoint the archive now and compact the covered WAL prefix. The
    /// image's timestamp is the newest end time it contains (accounting
    /// data carries its own time; the dbd holds no clock).
    pub fn checkpoint_now(&self) {
        let archived = self.archived.read();
        let wal_seq = self.wal.flushed_seq();
        let rows: Vec<Job> = archived.values().map(|j| Job::clone(j)).collect();
        let at = rows
            .iter()
            .filter_map(|j| j.end_time)
            .max()
            .unwrap_or(Timestamp(0));
        self.durable.save(
            serde_json::to_vec(&rows).expect("checkpoint serializes"),
            at,
            wal_seq,
        );
        self.wal.trim_through(wal_seq);
    }

    /// `sacct`-style query across active + archived jobs, newest first.
    pub fn query_jobs(&self, filter: &JobFilter) -> Vec<Job> {
        let _span = Span::enter("dbd").attr("kind", "sacct_query");
        let start = Instant::now();
        self.try_recover();
        self.faults.check("sacct_query").burn();
        let mut out: Vec<Job> = Vec::new();
        let scanned;
        {
            let active = self.active_mirror.read();
            let archived = self.archived.read();
            scanned = active.len() + archived.len();
            out.extend(
                active
                    .values()
                    .filter(|j| filter.matches(j))
                    .map(|j| Job::clone(j)),
            );
            // A job can momentarily exist in both maps between ticks; the
            // archived (final) record wins.
            for job in archived.values().filter(|j| filter.matches(j)) {
                if let Some(existing) = out.iter_mut().find(|j| j.id == job.id) {
                    *existing = Job::clone(job);
                } else {
                    out.push(Job::clone(job));
                }
            }
        }
        self.cost.burn(scanned);
        out.sort_by_key(|j| (std::cmp::Reverse(j.submit_time), std::cmp::Reverse(j.id)));
        self.stats.record("sacct_query", start.elapsed());
        out
    }

    /// Look up one job anywhere in accounting.
    pub fn job(&self, id: JobId) -> Option<Job> {
        let _span = Span::enter("dbd").attr("kind", "job_lookup");
        let start = Instant::now();
        self.try_recover();
        self.faults.check("job_lookup").burn();
        let result = self
            .archived
            .read()
            .get(&id)
            .map(|j| Job::clone(j))
            .or_else(|| self.active_mirror.read().get(&id).map(|j| Job::clone(j)));
        self.cost.burn(1);
        self.stats.record("job_lookup", start.elapsed());
        result
    }

    /// All sibling tasks of a job array, task order.
    pub fn array_tasks(&self, array_job_id: JobId) -> Vec<Job> {
        let _span = Span::enter("dbd").attr("kind", "array_lookup");
        let start = Instant::now();
        self.try_recover();
        self.faults.check("array_lookup").burn();
        let mut out: Vec<Job> = Vec::new();
        {
            let active = self.active_mirror.read();
            let archived = self.archived.read();
            let pick = |j: &Job| {
                j.array
                    .map(|a| a.array_job_id == array_job_id)
                    .unwrap_or(false)
            };
            out.extend(active.values().filter(|j| pick(j)).map(|j| Job::clone(j)));
            for job in archived.values().filter(|j| pick(j)) {
                if !out.iter().any(|j| j.id == job.id) {
                    out.push(Job::clone(job));
                }
            }
        }
        self.cost.burn(out.len().max(1));
        out.sort_by_key(|j| j.array.map(|a| a.task_id).unwrap_or(0));
        self.stats.record("array_lookup", start.elapsed());
        out
    }

    pub fn archived_count(&self) -> usize {
        self.archived.read().len()
    }

    pub fn stats(&self) -> &RpcStats {
        &self.stats
    }

    /// True while a crash fault holds the daemon down.
    pub fn is_down(&self) -> bool {
        self.faults.is_down()
    }

    /// Completed crash recoveries.
    pub fn restart_count(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    pub fn last_recovery(&self) -> Option<RecoveryReport> {
        *self.last_recovery.lock()
    }

    /// Checkpoints written so far (including checkpoint 0 at construction).
    pub fn checkpoint_count(&self) -> u64 {
        self.durable.save_count()
    }

    /// Jobs currently in the active mirror (observability: it empties on a
    /// dbd restart and refills on the next slurmctld sync).
    pub fn mirror_len(&self) -> usize {
        self.active_mirror.read().len()
    }
}

impl Default for Slurmdbd {
    fn default() -> Slurmdbd {
        Slurmdbd::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobRequest;

    fn job(
        id: u32,
        user: &str,
        account: &str,
        state: JobState,
        submit: u64,
        end: Option<u64>,
    ) -> Job {
        let req = JobRequest::simple(user, account, "cpu", 1);
        Job {
            id: JobId(id),
            array: None,
            req,
            state,
            reason: None,
            priority: 0,
            submit_time: Timestamp(submit),
            eligible_time: Timestamp(submit),
            start_time: end.map(|_| Timestamp(submit + 10)),
            end_time: end.map(Timestamp),
            nodes: Vec::new(),
            exit_code: None,
            stats: None,
            stdout_path: String::new(),
            stderr_path: String::new(),
        }
    }

    fn dbd() -> Slurmdbd {
        let d = Slurmdbd::with_cost(RpcCostModel::free());
        d.record_finished(vec![
            job(1, "alice", "physics", JobState::Completed, 100, Some(200)),
            job(2, "alice", "physics", JobState::Failed, 150, Some(250)),
            job(3, "bob", "physics", JobState::Completed, 180, Some(400)),
            job(4, "carol", "bio", JobState::Completed, 190, Some(500)),
        ]);
        d.sync_active(vec![
            job(5, "alice", "physics", JobState::Running, 300, None),
            job(6, "bob", "physics", JobState::Pending, 350, None),
        ]);
        d
    }

    #[test]
    fn user_visibility_or_accounts() {
        let d = dbd();
        let mine = d.query_jobs(&JobFilter::for_user("alice", vec![]));
        assert_eq!(
            mine.iter().map(|j| j.id.0).collect::<Vec<_>>(),
            vec![5, 2, 1]
        );

        // Group visibility: alice sees bob's physics jobs too.
        let group = d.query_jobs(&JobFilter::for_user("alice", vec!["physics".to_string()]));
        assert_eq!(group.len(), 5);
        assert!(group.iter().all(|j| j.req.account == "physics"));

        // Unrestricted (admin) sees everything.
        let all = d.query_jobs(&JobFilter::default());
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn state_filter() {
        let d = dbd();
        let failed = d.query_jobs(&JobFilter {
            states: Some(vec![JobState::Failed]),
            ..JobFilter::default()
        });
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].id, JobId(2));
    }

    #[test]
    fn time_window() {
        let d = dbd();
        // since=300: jobs ended before 300 drop out; active jobs stay.
        let recent = d.query_jobs(&JobFilter {
            since: Some(Timestamp(300)),
            ..JobFilter::default()
        });
        let ids: Vec<u32> = recent.iter().map(|j| j.id.0).collect();
        assert!(!ids.contains(&1) && !ids.contains(&2));
        assert!(ids.contains(&3) && ids.contains(&5) && ids.contains(&6));

        let older = d.query_jobs(&JobFilter {
            until: Some(Timestamp(200)),
            ..JobFilter::default()
        });
        assert_eq!(older.len(), 4, "submitted at or before 200");
    }

    #[test]
    fn job_id_filter_and_lookup() {
        let d = dbd();
        let two = d.query_jobs(&JobFilter {
            job_ids: Some(vec![JobId(2), JobId(5)]),
            ..JobFilter::default()
        });
        assert_eq!(two.len(), 2);
        assert_eq!(d.job(JobId(4)).unwrap().req.user, "carol");
        assert_eq!(d.job(JobId(5)).unwrap().state, JobState::Running);
        assert!(d.job(JobId(99)).is_none());
    }

    #[test]
    fn newest_first_ordering() {
        let d = dbd();
        let all = d.query_jobs(&JobFilter::default());
        let submits: Vec<u64> = all.iter().map(|j| j.submit_time.as_secs()).collect();
        let mut sorted = submits.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(submits, sorted);
    }

    #[test]
    fn archived_record_wins_over_mirror() {
        let d = Slurmdbd::with_cost(RpcCostModel::free());
        d.sync_active(vec![job(
            7,
            "alice",
            "physics",
            JobState::Running,
            100,
            None,
        )]);
        d.record_finished(vec![job(
            7,
            "alice",
            "physics",
            JobState::Completed,
            100,
            Some(300),
        )]);
        let got = d.query_jobs(&JobFilter::default());
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].state, JobState::Completed);
    }

    #[test]
    fn array_tasks_sorted() {
        use crate::job::ArrayMeta;
        let d = Slurmdbd::with_cost(RpcCostModel::free());
        let mut t2 = job(12, "alice", "physics", JobState::Completed, 100, Some(200));
        t2.array = Some(ArrayMeta {
            array_job_id: JobId(10),
            task_id: 2,
            max_concurrent: None,
        });
        let mut t0 = job(10, "alice", "physics", JobState::Completed, 100, Some(150));
        t0.array = Some(ArrayMeta {
            array_job_id: JobId(10),
            task_id: 0,
            max_concurrent: None,
        });
        d.record_finished(vec![t2, t0]);
        let mut t1 = job(11, "alice", "physics", JobState::Running, 100, None);
        t1.array = Some(ArrayMeta {
            array_job_id: JobId(10),
            task_id: 1,
            max_concurrent: None,
        });
        d.sync_active(vec![t1]);
        let tasks = d.array_tasks(JobId(10));
        assert_eq!(
            tasks
                .iter()
                .map(|t| t.array.unwrap().task_id)
                .collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn stats_recorded() {
        let d = dbd();
        d.query_jobs(&JobFilter::default());
        assert!(d.stats().count_of("sacct_query") >= 1);
    }
}
