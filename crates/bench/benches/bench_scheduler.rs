//! Substrate benchmark S1a — the Slurm simulator's scheduler: submission
//! throughput and scheduling-pass latency at campus scale. (Not a paper
//! figure; this validates that the substrate is fast enough to host the
//! dashboard experiments without becoming the bottleneck.)

use criterion::{BenchmarkId, Criterion};
use hpcdash_bench::banner;
use hpcdash_simtime::Timestamp;
use hpcdash_slurm::cluster::{ClusterSpec, ClusterState};
use hpcdash_slurm::job::JobRequest;
use hpcdash_workload::{Population, PopulationConfig, ScenarioConfig, TraceGenerator};

fn campus_cluster() -> ClusterState {
    let scenario = hpcdash_workload::Scenario::build(ScenarioConfig {
        free_daemons: true,
        ..ScenarioConfig::campus()
    });
    // Pull a bare ClusterState shaped like the campus scenario.
    let nodes = scenario.ctld.query_nodes().to_vec();
    let partitions = scenario.ctld.query_partitions().to_vec();
    ClusterState::new(ClusterSpec {
        name: "bench".to_string(),
        nodes,
        partitions,
        qos: hpcdash_slurm::qos::Qos::standard_set(),
        assoc: scenario.population.assoc.clone(),
    })
}

fn trace(n: usize) -> Vec<JobRequest> {
    let pop = Population::generate(&PopulationConfig {
        accounts: 10,
        users_per_account_min: 3,
        users_per_account_max: 8,
        ..PopulationConfig::default()
    });
    let mut gen = TraceGenerator::new(11, Default::default(), "cpu", Some("gpu"));
    gen.generate(&pop, Timestamp(0), 24 * 3_600)
        .into_iter()
        .map(|(_, r)| r)
        .take(n)
        .collect()
}

fn main() {
    banner(
        "S1a",
        "scheduler substrate: submit + backfill pass at campus scale",
    );
    let mut c = Criterion::default().configure_from_args().sample_size(20);

    {
        let mut group = c.benchmark_group("scheduler");
        for queue_depth in [50usize, 200, 800] {
            group.bench_with_input(
                BenchmarkId::new("schedule_pass", queue_depth),
                &queue_depth,
                |b, &depth| {
                    b.iter_batched(
                        || {
                            let mut cluster = campus_cluster();
                            for req in trace(depth) {
                                let _ = cluster.submit(req, Timestamp(0));
                            }
                            cluster
                        },
                        |mut cluster| {
                            cluster.tick(Timestamp(1));
                            cluster
                        },
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
        group.bench_function("submit_one", |b| {
            let mut cluster = campus_cluster();
            let reqs = trace(1);
            let mut t = 0;
            b.iter(|| {
                t += 1;
                cluster
                    .submit(reqs[0].clone(), Timestamp(t))
                    .expect("submit")
            })
        });
        group.bench_function("simulated_hour_small_site", |b| {
            b.iter_batched(
                || hpcdash_workload::Scenario::build(ScenarioConfig::small()),
                |scenario| {
                    let mut driver = scenario.driver(3_600);
                    driver.advance(3_600);
                    scenario
                },
                criterion::BatchSize::LargeInput,
            )
        });
        group.finish();
    }
    c.final_summary();
}
