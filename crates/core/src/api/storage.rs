//! Storage widget API (paper §3.5): the user's directories with usage and
//! file-count bars, from the ZFS/GPFS quota database.

use crate::auth::CurrentUser;
use crate::colors::utilization_color;
use crate::ctx::DashboardContext;
use hpcdash_http::{Request, Response, Router};
use serde_json::json;

pub const FEATURE: &str = "Storage widget";
pub const ROUTES: &[&str] = &["/api/storage"];
pub const SOURCES: &[&str] = &["ZFS and GPFS storage database"];

pub fn register(router: &mut Router, ctx: DashboardContext) {
    router.get(ROUTES[0], move |req| handle(&ctx, req));
}

fn handle(ctx: &DashboardContext, req: &Request) -> Response {
    let user = match CurrentUser::from_request(ctx, req) {
        Ok(u) => u,
        Err(resp) => return resp,
    };
    let key = format!("storage:{}", user.username);
    let outcome = ctx.cached_resilient(&key, ctx.cfg.cache.storage, || {
        ctx.note_source(FEATURE, "ZFS and GPFS storage database");
        let groups = user.visible_accounts(ctx);
        let dirs = ctx
            .storage
            .dirs_for_user(&user.username, groups)
            .map_err(|e| e.to_string())?;
        Ok(json!({
            "disks": dirs
                .iter()
                .map(|d| {
                    json!({
                        "path": d.path,
                        "filesystem": d.filesystem.label(),
                        "bytes_used": d.bytes_used,
                        "bytes_quota": d.bytes_quota,
                        "bytes_percent": (d.bytes_fraction() * 1000.0).round() / 10.0,
                        "bytes_color": utilization_color(d.bytes_fraction()),
                        "files_used": d.files_used,
                        "files_quota": d.files_quota,
                        "files_percent": (d.files_fraction() * 1000.0).round() / 10.0,
                        "files_color": utilization_color(d.files_fraction()),
                        // Link into the Open OnDemand files app (paper §3.5).
                        "files_app_url": format!("/pun/sys/files/fs{}", d.path),
                        "scanned_at": d.scanned_at.to_slurm(),
                    })
                })
                .collect::<Vec<_>>(),
        }))
    });
    super::respond(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::tests::test_ctx;
    use hpcdash_http::Method;
    use hpcdash_simtime::Timestamp;
    use hpcdash_storage::GB;

    fn request(user: &str) -> Request {
        Request::new(Method::Get, "/api/storage").with_header("X-Remote-User", user)
    }

    #[test]
    fn lists_home_scratch_and_depot() {
        let ctx = test_ctx();
        ctx.storage.provision_user("alice", Timestamp(0));
        ctx.storage
            .provision_group("physics", 100 * GB, Timestamp(0));
        ctx.storage
            .set_usage("/home/alice", 24 * GB, 390_000, Timestamp(10));
        let resp = handle(&ctx, &request("alice"));
        assert_eq!(resp.status, 200);
        let disks = resp.body_json().unwrap()["disks"]
            .as_array()
            .unwrap()
            .to_vec();
        let paths: Vec<&str> = disks.iter().map(|d| d["path"].as_str().unwrap()).collect();
        assert_eq!(
            paths,
            vec!["/home/alice", "/scratch/alice", "/depot/physics"]
        );
        let home = &disks[0];
        assert_eq!(home["filesystem"], "zfs-home");
        assert_eq!(home["bytes_color"], "red", "24/25 GB is over 90%");
        assert_eq!(home["files_color"], "red");
        assert_eq!(home["files_app_url"], "/pun/sys/files/fs/home/alice");
    }

    #[test]
    fn privacy_excludes_other_users_dirs() {
        let ctx = test_ctx();
        ctx.storage.provision_user("alice", Timestamp(0));
        ctx.storage.provision_user("bob", Timestamp(0));
        let resp = handle(&ctx, &request("bob"));
        let disks = resp.body_json().unwrap()["disks"]
            .as_array()
            .unwrap()
            .to_vec();
        assert!(disks
            .iter()
            .all(|d| d["path"].as_str().unwrap().contains("bob")));
    }

    #[test]
    fn storage_db_outage_degrades() {
        let ctx = test_ctx();
        ctx.storage.set_available(false);
        assert_eq!(handle(&ctx, &request("alice")).status, 503);
        ctx.storage.set_available(true);
        assert_eq!(handle(&ctx, &request("alice")).status, 200);
    }
}
