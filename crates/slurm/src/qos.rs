//! Quality-of-Service levels: priority boosts plus per-user limits.

use serde::{Deserialize, Serialize};

/// A QoS definition. The dashboard surfaces the QoS name in the My Jobs
/// table (paper §4.1); the scheduler uses priority and the per-user caps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Qos {
    pub name: String,
    /// Additive priority contribution.
    pub priority: u32,
    /// Cap on simultaneously running jobs per user, if any.
    pub max_jobs_per_user: Option<u32>,
    /// Cap on simultaneously submitted (pending+running) jobs per user.
    pub max_submit_per_user: Option<u32>,
    /// Usage multiplier applied when charging the association
    /// (e.g. a "standby" QoS bills at 0).
    pub usage_factor: f64,
}

impl Qos {
    pub fn new(name: impl Into<String>, priority: u32) -> Qos {
        Qos {
            name: name.into(),
            priority,
            max_jobs_per_user: None,
            max_submit_per_user: None,
            usage_factor: 1.0,
        }
    }

    pub fn with_max_jobs_per_user(mut self, n: u32) -> Qos {
        self.max_jobs_per_user = Some(n);
        self
    }

    pub fn with_max_submit_per_user(mut self, n: u32) -> Qos {
        self.max_submit_per_user = Some(n);
        self
    }

    /// The standard trio most clusters configure.
    pub fn standard_set() -> Vec<Qos> {
        vec![
            Qos::new("normal", 0),
            Qos::new("high", 10_000).with_max_jobs_per_user(8),
            Qos {
                usage_factor: 0.0,
                ..Qos::new("standby", 0).with_max_jobs_per_user(4)
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let q = Qos::new("high", 10_000)
            .with_max_jobs_per_user(8)
            .with_max_submit_per_user(100);
        assert_eq!(q.priority, 10_000);
        assert_eq!(q.max_jobs_per_user, Some(8));
        assert_eq!(q.max_submit_per_user, Some(100));
        assert_eq!(q.usage_factor, 1.0);
    }

    #[test]
    fn standard_set_contains_normal() {
        let set = Qos::standard_set();
        assert!(set.iter().any(|q| q.name == "normal"));
        let standby = set.iter().find(|q| q.name == "standby").unwrap();
        assert_eq!(standby.usage_factor, 0.0);
    }
}
