//! Request tracing: spans, trace-ID propagation, and a global trace sink.
//!
//! A trace follows one logical request across layers. The headless browser
//! generates a [`TraceId`], sends it as the `X-Trace-Id` header, and the
//! HTTP layer re-establishes it (via [`TraceScope`]) on whichever worker
//! thread handles the request. Every instrumented layer then opens a
//! [`Span`] guard; on drop the span's record lands in the process-wide
//! [`TraceSink`] ring buffer, from which per-request hop breakdowns are
//! read back (`records_for` / `format_trace`).
//!
//! All timing is monotonic (`Instant`) and expressed as nanoseconds since
//! a process-local epoch, so records from different threads order
//! correctly.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A 64-bit trace identifier, rendered as 16 lowercase hex digits — the
/// wire format of the `X-Trace-Id` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Generate a fresh process-unique id (mixed counter, never zero).
    pub fn generate() -> TraceId {
        static SEED: OnceLock<u64> = OnceLock::new();
        static COUNTER: AtomicU64 = AtomicU64::new(1);
        let seed = *SEED.get_or_init(|| {
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x9e37_79b9_7f4a_7c15)
        });
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let mut z = seed.wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        TraceId(z.max(1))
    }

    /// Parse the header wire format (16 hex digits, case-insensitive).
    /// Strictly hex: `from_str_radix` alone would also accept a `+`/`-`
    /// sign prefix, which is not a valid `X-Trace-Id`.
    pub fn from_hex(s: &str) -> Option<TraceId> {
        let s = s.trim();
        if s.is_empty() || s.len() > 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }

    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

thread_local! {
    static CURRENT: std::cell::Cell<Option<TraceId>> = const { std::cell::Cell::new(None) };
    static DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// The trace id active on this thread, if any.
pub fn current_trace() -> Option<TraceId> {
    CURRENT.with(|c| c.get())
}

/// Installs `id` as the current trace for this thread until dropped,
/// restoring whatever was active before (scopes nest).
pub struct TraceScope {
    prev: Option<TraceId>,
}

impl TraceScope {
    pub fn enter(id: TraceId) -> TraceScope {
        let prev = CURRENT.with(|c| c.replace(Some(id)));
        TraceScope { prev }
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

static SEQ: AtomicU64 = AtomicU64::new(0);

/// A timing guard. Opened at the start of a hop, it captures the current
/// trace id, a global start-order sequence number, and this thread's span
/// nesting depth; on drop it records its duration into the global sink.
#[must_use = "a span measures the scope it is alive in"]
pub struct Span {
    name: &'static str,
    attrs: Vec<(&'static str, String)>,
    trace: Option<TraceId>,
    start: Instant,
    start_ns: u64,
    seq: u64,
    depth: u32,
}

impl Span {
    pub fn enter(name: &'static str) -> Span {
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        Span {
            name,
            attrs: Vec::new(),
            trace: current_trace(),
            start: Instant::now(),
            start_ns: now_ns(),
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
            depth,
        }
    }

    /// Attach a key/value attribute (builder style).
    pub fn attr(mut self, key: &'static str, value: impl Into<String>) -> Span {
        self.attrs.push((key, value.into()));
        self
    }

    pub fn trace_id(&self) -> Option<TraceId> {
        self.trace
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        // Clamp to >= 1ns so "this hop happened" is always distinguishable
        // from "never recorded", even for sub-resolution scopes.
        let dur_ns = (self.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64).max(1);
        let rec = SpanRecord {
            trace: self.trace,
            name: self.name,
            attrs: std::mem::take(&mut self.attrs),
            start_ns: self.start_ns,
            dur_ns,
            seq: self.seq,
            depth: self.depth,
        };
        // The tail-sampling store sees every completed span first (it keeps
        // its own copies for retained traces); the flat ring gets the
        // original record regardless.
        crate::tracestore::store().observe(&rec);
        sink().push(rec);
    }
}

/// One completed span, as stored in the sink.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    pub trace: Option<TraceId>,
    pub name: &'static str,
    pub attrs: Vec<(&'static str, String)>,
    pub start_ns: u64,
    pub dur_ns: u64,
    pub seq: u64,
    pub depth: u32,
}

impl SpanRecord {
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Default ring capacity: enough for hundreds of multi-hop requests.
pub const DEFAULT_SINK_CAPACITY: usize = 4096;

/// A bounded ring buffer of completed spans.
pub struct TraceSink {
    ring: Mutex<VecDeque<SpanRecord>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl TraceSink {
    pub fn with_capacity(capacity: usize) -> TraceSink {
        TraceSink {
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    pub fn push(&self, rec: SpanRecord) {
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(rec);
    }

    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Spans evicted from the ring to make room — the overflow that used to
    /// be silent.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// Every span recorded for `trace`, in start order (root hop first).
    pub fn records_for(&self, trace: TraceId) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = self
            .ring
            .lock()
            .iter()
            .filter(|r| r.trace == Some(trace))
            .cloned()
            .collect();
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Render the per-hop breakdown of one trace as an indented tree.
    pub fn format_trace(&self, trace: TraceId) -> String {
        let records = self.records_for(trace);
        if records.is_empty() {
            return format!("trace {trace}: no spans recorded\n");
        }
        let t0 = records.iter().map(|r| r.start_ns).min().unwrap_or(0);
        let mut out = format!("trace {trace} ({} span(s)):\n", records.len());
        for r in &records {
            let indent = "  ".repeat(r.depth as usize + 1);
            let attrs = if r.attrs.is_empty() {
                String::new()
            } else {
                let kv: Vec<String> = r.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!(" [{}]", kv.join(" "))
            };
            out.push_str(&format!(
                "{indent}{name:<12} +{offset:>9} {dur:>11}{attrs}\n",
                name = r.name,
                offset = fmt_ns(r.start_ns.saturating_sub(t0)),
                dur = fmt_ns(r.dur_ns),
            ));
        }
        out
    }
}

/// Human-friendly nanosecond rendering (`412ns`, `3.2µs`, `1.8ms`, `2.4s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// The process-wide sink that [`Span`] guards record into.
pub fn sink() -> &'static TraceSink {
    static SINK: OnceLock<TraceSink> = OnceLock::new();
    SINK.get_or_init(|| TraceSink::with_capacity(DEFAULT_SINK_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_id_hex_roundtrip() {
        let id = TraceId::generate();
        assert_ne!(id.0, 0);
        let hex = id.to_hex();
        assert_eq!(hex.len(), 16);
        assert_eq!(TraceId::from_hex(&hex), Some(id));
        assert_eq!(TraceId::from_hex("00000000000000ff"), Some(TraceId(255)));
        assert_eq!(TraceId::from_hex(""), None);
        assert_eq!(TraceId::from_hex("not-hex"), None);
        assert_eq!(TraceId::from_hex("112233445566778899"), None, "too long");
    }

    #[test]
    fn from_hex_rejects_sign_prefixes_and_whitespace_padding_tricks() {
        // `u64::from_str_radix` accepts a leading sign; the header format
        // must not.
        assert_eq!(TraceId::from_hex("+1f"), None);
        assert_eq!(TraceId::from_hex("-1"), None);
        assert_eq!(TraceId::from_hex("+0000000000000001"), None);
        assert_eq!(TraceId::from_hex("1 f"), None, "inner whitespace");
        assert_eq!(TraceId::from_hex("0x1f"), None, "radix prefix");
        // Surrounding whitespace is still trimmed, as before.
        assert_eq!(TraceId::from_hex("  1f  "), Some(TraceId(0x1f)));
        assert_eq!(TraceId::from_hex("AB"), Some(TraceId(0xab)), "upper hex");
    }

    #[test]
    fn generated_ids_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1_000 {
            assert!(seen.insert(TraceId::generate()));
        }
    }

    #[test]
    fn scope_nests_and_restores() {
        assert_eq!(current_trace(), None);
        let a = TraceId(0xa);
        let b = TraceId(0xb);
        {
            let _outer = TraceScope::enter(a);
            assert_eq!(current_trace(), Some(a));
            {
                let _inner = TraceScope::enter(b);
                assert_eq!(current_trace(), Some(b));
            }
            assert_eq!(current_trace(), Some(a));
        }
        assert_eq!(current_trace(), None);
    }

    #[test]
    fn spans_record_in_start_order_with_depth() {
        let id = TraceId::generate();
        {
            let _scope = TraceScope::enter(id);
            let _root = Span::enter("http").attr("route", "/api/x");
            std::thread::sleep(std::time::Duration::from_micros(50));
            {
                let _child = Span::enter("slurmcli");
                let _grandchild = Span::enter("ctld");
            }
        }
        let records = sink().records_for(id);
        let names: Vec<&str> = records.iter().map(|r| r.name).collect();
        assert_eq!(names, ["http", "slurmcli", "ctld"]);
        let depths: Vec<u32> = records.iter().map(|r| r.depth).collect();
        assert_eq!(depths, [0, 1, 2]);
        assert!(records.iter().all(|r| r.dur_ns >= 1));
        assert!(records[0].dur_ns >= 50_000, "root span spans its children");
        assert_eq!(records[0].attr("route"), Some("/api/x"));
        let dump = sink().format_trace(id);
        assert!(dump.contains("http"), "dump:\n{dump}");
        assert!(dump.contains("route=/api/x"), "dump:\n{dump}");
    }

    #[test]
    fn spans_without_a_scope_carry_no_trace() {
        let before = sink().len();
        drop(Span::enter("orphan"));
        assert!(sink().len() >= before.min(DEFAULT_SINK_CAPACITY - 1));
        // An orphan span never shows up under a real trace id.
        let id = TraceId::generate();
        assert!(sink().records_for(id).is_empty());
    }

    #[test]
    fn sink_ring_evicts_oldest() {
        let sink = TraceSink::with_capacity(4);
        let id = TraceId(0x77);
        for seq in 0..6u64 {
            sink.push(SpanRecord {
                trace: Some(id),
                name: "x",
                attrs: Vec::new(),
                start_ns: seq,
                dur_ns: 1,
                seq,
                depth: 0,
            });
        }
        let records = sink.records_for(id);
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].seq, 2, "oldest two evicted");
        assert_eq!(sink.dropped(), 2, "evictions are counted, not silent");
        assert_eq!(sink.capacity(), 4);
        assert_eq!(sink.len(), 4);
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(412), "412ns");
        assert_eq!(fmt_ns(3_200), "3.2µs");
        assert_eq!(fmt_ns(1_800_000), "1.8ms");
        assert_eq!(fmt_ns(2_400_000_000), "2.40s");
    }
}
