//! Long-poll support: the park budget, and the event-loop park protocol.
//!
//! Two generations coexist here. [`ParkBudget`]/[`ParkPermit`] are the
//! thread-era cap: a blocking handler reserves a slot before occupying a
//! worker and sheds with `503 + Retry-After` past the cap. On the event
//! loop the same budget still gates *parked connections*, but no thread
//! waits: a handler that would block instead returns a [`ParkDirective`]
//! (via `Response::with_park`) and the reactor keeps the connection in a
//! `Parked` state. When data arrives, whoever produced it fires the
//! directive's [`ParkWaker`]; the reactor re-dispatches the original
//! request with a `x-hpcdash-park-final` marker and the handler answers
//! immediately with whatever is there — park-at-most-once, so the exchange
//! always terminates.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A cap on concurrently parked workers.
#[derive(Debug)]
pub struct ParkBudget {
    max: usize,
    parked: AtomicUsize,
}

impl ParkBudget {
    /// Allow at most `max` workers to park at once (at least one).
    pub fn new(max: usize) -> ParkBudget {
        ParkBudget {
            max: max.max(1),
            parked: AtomicUsize::new(0),
        }
    }

    /// Try to reserve a parking slot; `None` means the handler must shed.
    pub fn try_acquire(self: &Arc<Self>) -> Option<ParkPermit> {
        let acquired = self
            .parked
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.max).then_some(n + 1)
            })
            .is_ok();
        acquired.then(|| ParkPermit {
            budget: self.clone(),
        })
    }

    /// Workers currently parked.
    pub fn parked(&self) -> usize {
        self.parked.load(Ordering::Acquire)
    }

    pub fn max(&self) -> usize {
        self.max
    }
}

/// RAII parking slot: dropping it (on response, panic, or timeout) frees
/// the slot for the next long-poller.
#[derive(Debug)]
pub struct ParkPermit {
    budget: Arc<ParkBudget>,
}

impl Drop for ParkPermit {
    fn drop(&mut self) {
        self.budget.parked.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Inserted (forcibly, overwriting anything the client sent) into every
/// request dispatched from the event loop. Handlers that see it may return
/// a [`ParkDirective`] instead of blocking; handlers dispatched any other
/// way (tests, in-process benches) fall back to blocking waits.
pub const CONN_PARK_HEADER: &str = "x-hpcdash-conn-park";

/// Marks the re-dispatch of a previously parked request (wake or deadline).
/// The handler must answer immediately with whatever is available — a park
/// happens at most once per exchange.
pub const PARK_FINAL_HEADER: &str = "x-hpcdash-park-final";

/// A one-shot, edge-coalescing wake signal connecting a data producer (the
/// push hub) to whatever owns the parked connection (a reactor). `wake` is
/// idempotent; if it fires before the owner installs its hook, the hook
/// runs immediately on installation — no lost wakeup either way.
#[derive(Default)]
pub struct ParkWaker {
    inner: Mutex<WakerState>,
}

#[derive(Default)]
struct WakerState {
    fired: bool,
    hook: Option<Box<dyn FnOnce() + Send>>,
}

impl ParkWaker {
    pub fn new() -> Arc<ParkWaker> {
        Arc::new(ParkWaker::default())
    }

    /// Signal that data is ready. The first call runs the hook (if any);
    /// later calls are no-ops until the owner re-parks with a fresh waker.
    pub fn wake(&self) {
        let hook = {
            let mut st = self.inner.lock();
            if st.fired {
                return;
            }
            st.fired = true;
            st.hook.take()
        };
        if let Some(hook) = hook {
            hook();
        }
    }

    /// Install the owner's callback. Runs it on the spot when the waker
    /// already fired (the producer won the race).
    pub fn set_hook(&self, hook: impl FnOnce() + Send + 'static) {
        let mut st = self.inner.lock();
        if st.fired {
            drop(st);
            hook();
        } else {
            st.hook = Some(Box::new(hook));
        }
    }

    pub fn fired(&self) -> bool {
        self.inner.lock().fired
    }
}

impl std::fmt::Debug for ParkWaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParkWaker")
            .field("fired", &self.fired())
            .finish()
    }
}

/// A handler's instruction to the event loop: hold this connection open
/// for up to `max_wait`, re-dispatch when `waker` fires (or the deadline
/// lapses). The permit keeps the park accounted against [`ParkBudget`]
/// until the exchange completes, so shed semantics are identical to the
/// thread era — only the unit changed from worker to connection.
#[derive(Clone)]
pub struct ParkDirective {
    pub waker: Arc<ParkWaker>,
    pub max_wait: Duration,
    pub permit: Option<Arc<ParkPermit>>,
}

impl std::fmt::Debug for ParkDirective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParkDirective")
            .field("max_wait", &self.max_wait)
            .field("fired", &self.waker.fired())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waker_hook_runs_once_whoever_wins() {
        // Hook installed first, then wake.
        let w = ParkWaker::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        w.set_hook(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        w.wake();
        w.wake();
        assert_eq!(hits.load(Ordering::SeqCst), 1, "double wake coalesced");

        // Wake first, then hook: runs immediately.
        let w = ParkWaker::new();
        w.wake();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        w.set_hook(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1, "late hook fires on install");
        assert!(w.fired());
    }

    #[test]
    fn directive_releases_permit_on_drop() {
        let budget = Arc::new(ParkBudget::new(1));
        let permit = budget.try_acquire().unwrap();
        let d = ParkDirective {
            waker: ParkWaker::new(),
            max_wait: Duration::from_secs(1),
            permit: Some(Arc::new(permit)),
        };
        let d2 = d.clone();
        assert_eq!(budget.parked(), 1, "clones share one slot");
        drop(d);
        assert_eq!(budget.parked(), 1);
        drop(d2);
        assert_eq!(budget.parked(), 0, "last clone frees the slot");
    }

    #[test]
    fn budget_caps_and_releases() {
        let budget = Arc::new(ParkBudget::new(2));
        let a = budget.try_acquire().expect("slot 1");
        let _b = budget.try_acquire().expect("slot 2");
        assert_eq!(budget.parked(), 2);
        assert!(budget.try_acquire().is_none(), "third parker is shed");
        drop(a);
        assert_eq!(budget.parked(), 1);
        assert!(budget.try_acquire().is_some(), "freed slot is reusable");
    }

    #[test]
    fn zero_budget_clamped_to_one() {
        let budget = Arc::new(ParkBudget::new(0));
        let _a = budget.try_acquire().expect("at least one slot");
        assert!(budget.try_acquire().is_none());
    }

    #[test]
    fn concurrent_acquires_never_exceed_cap() {
        let budget = Arc::new(ParkBudget::new(4));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let budget = budget.clone();
            let peak = peak.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    if let Some(permit) = budget.try_acquire() {
                        peak.fetch_max(budget.parked(), Ordering::AcqRel);
                        drop(permit);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::Acquire) <= 4, "cap never exceeded");
        assert_eq!(budget.parked(), 0, "all permits returned");
    }
}
