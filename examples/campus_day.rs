//! A morning on a campus-scale cluster (Figures 2 and 3 of the paper,
//! regenerated): run two simulated hours of production-like traffic, then
//! print what the homepage widgets and the My Jobs page show.
//!
//! ```sh
//! cargo run --release --example campus_day
//! ```

use hpcdash::SimSite;
use hpcdash_core::pages;
use hpcdash_http::HttpClient;
use hpcdash_workload::ScenarioConfig;

fn main() {
    let mut cfg = ScenarioConfig::campus();
    cfg.free_daemons = true; // fast daemons: we're inspecting content, not latency
    let site = SimSite::build(cfg);
    println!(
        "simulating {}: {} nodes, {} users, {} accounts",
        site.scenario.ctld.cluster_name(),
        site.scenario.ctld.query_nodes().len(),
        site.scenario.population.users.len(),
        site.scenario.population.accounts.len()
    );
    print!("running 2h of cluster traffic... ");
    site.warm_up(2 * 3_600);
    println!(
        "done ({} jobs archived, {} active)",
        site.scenario.dbd.archived_count(),
        site.scenario
            .ctld
            .query_jobs(&hpcdash_slurm::ctld::JobQuery::all())
            .len()
    );

    let server = site.serve().expect("serve");
    let client = HttpClient::new();
    let user = site.scenario.population.users[0].clone();
    let get = |path: &str| -> serde_json::Value {
        client
            .get(
                &format!("{}{path}", server.base_url()),
                &[("X-Remote-User", &user)],
            )
            .expect("request")
            .json()
            .expect("json")
    };

    // ---- Figure 2: the homepage -------------------------------------------
    println!("\n=== Homepage (Figure 2) for {user} ===");
    let status = get("/api/system_status");
    println!("System Status:");
    for p in status["partitions"].as_array().unwrap() {
        println!(
            "  {:<6} {:>5} CPU {:>6}/{:<6} ({:>5}% {}){}",
            p["name"].as_str().unwrap(),
            p["status"].as_str().unwrap(),
            p["cpus"]["alloc"],
            p["cpus"]["total"],
            p["cpus"]["percent"],
            p["cpus"]["color"].as_str().unwrap(),
            if p["gpus"].is_null() {
                String::new()
            } else {
                format!(
                    "  GPU {}/{} ({}%)",
                    p["gpus"]["alloc"], p["gpus"]["total"], p["gpus"]["percent"]
                )
            }
        );
    }

    let news = get("/api/announcements");
    println!("Announcements:");
    for a in news["items"].as_array().unwrap() {
        println!(
            "  [{:<11}] {} ({}, {})",
            a["category"].as_str().unwrap(),
            a["title"].as_str().unwrap(),
            a["color"].as_str().unwrap(),
            a["relevance"].as_str().unwrap(),
        );
    }

    let accounts = get("/api/accounts");
    println!("Accounts:");
    for a in accounts["accounts"].as_array().unwrap() {
        println!(
            "  {:<10} CPUs in use {:>4}, queued {:>4}, limit {:>5}  GPU hours {:>8}",
            a["name"].as_str().unwrap(),
            a["cpus_in_use"],
            a["cpus_queued"],
            a["cpu_limit"],
            a["gpu_hours_used"],
        );
    }

    let storage = get("/api/storage");
    println!("Storage:");
    for d in storage["disks"].as_array().unwrap() {
        println!(
            "  {:<20} {:>6}% bytes ({}), {:>6}% files",
            d["path"].as_str().unwrap(),
            d["bytes_percent"],
            d["bytes_color"].as_str().unwrap(),
            d["files_percent"],
        );
    }

    // ---- Figure 3: My Jobs -------------------------------------------------
    println!("\n=== My Jobs (Figure 3) for {user}'s group ===");
    let myjobs = get("/api/myjobs?range=all");
    let jobs = myjobs["jobs"].as_array().unwrap();
    println!(
        "{:<9} {:<22} {:<9} {:<11} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "JOBID", "NAME", "QOS", "STATE", "WAIT(s)", "ELAPSED", "TIME_EFF", "CPU_EFF", "MEM_EFF"
    );
    let pct = |v: &serde_json::Value| match v.as_f64() {
        Some(f) => format!("{:.0}%", f * 100.0),
        None => "—".to_string(),
    };
    for j in jobs.iter().take(18) {
        println!(
            "{:<9} {:<22} {:<9} {:<11} {:>9} {:>9} {:>8} {:>8} {:>8}",
            j["id"].as_str().unwrap_or("?"),
            j["name"]
                .as_str()
                .unwrap_or("?")
                .chars()
                .take(22)
                .collect::<String>(),
            j["qos"].as_str().unwrap_or("?"),
            j["state"].as_str().unwrap_or("?"),
            j["wait_secs"]
                .as_u64()
                .map(|w| w.to_string())
                .unwrap_or_else(|| "—".into()),
            j["elapsed_secs"],
            pct(&j["efficiency"]["time"]),
            pct(&j["efficiency"]["cpu"]),
            pct(&j["efficiency"]["memory"]),
        );
        if let Some(msg) = j["reason"]["message"].as_str() {
            println!(
                "          └─ {} — {msg}",
                j["reason"]["code"].as_str().unwrap_or("")
            );
        }
        for w in j["efficiency"]["warnings"]
            .as_array()
            .map(Vec::as_slice)
            .unwrap_or(&[])
        {
            println!("          ⚠ {}", w.as_str().unwrap_or(""));
        }
    }
    println!("({} jobs total)", jobs.len());

    println!("\nJob state distribution chart (per user):");
    let chart = &myjobs["charts"]["state_distribution"];
    let labels = chart["labels"].as_array().unwrap();
    for ds in chart["datasets"].as_array().unwrap() {
        let total: u64 = ds["data"]
            .as_array()
            .unwrap()
            .iter()
            .filter_map(|v| v.as_u64())
            .sum();
        println!(
            "  {:<12} {:>4} jobs across {} users",
            ds["label"].as_str().unwrap(),
            total,
            labels.len()
        );
    }

    // Render the actual HTML pages to prove the full pipeline works.
    let homepage_payloads: Vec<(&str, Result<serde_json::Value, String>)> =
        pages::homepage::WIDGETS
            .iter()
            .map(|(w, path)| (*w, Ok(get(path))))
            .collect();
    let html = pages::homepage::render_full("Anvil", &user, &homepage_payloads);
    let myjobs_html = pages::myjobs::render_full("Anvil", &user, &myjobs);
    println!(
        "\nrendered homepage: {} bytes of HTML; My Jobs page: {} bytes",
        html.len(),
        myjobs_html.len()
    );
}
