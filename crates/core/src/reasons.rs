//! Friendly pending-reason messages (paper §4.1).
//!
//! Slurm's reason codes ("AssocGrpCpuLimit", "ReqNodeNotAvail", ...) are
//! opaque to beginners; the dashboard shows a plain-English sentence next to
//! each. The AssocGrpCpuLimit wording is the paper's own example.

use hpcdash_slurm::job::PendingReason;

/// The plain-English explanation shown next to a reason code.
pub fn friendly_reason(reason: PendingReason) -> &'static str {
    match reason {
        PendingReason::Priority => {
            "It means other queued jobs currently have higher priority; your job will move up as it waits."
        }
        PendingReason::Resources => {
            "It means your job is at the front of the queue and is waiting for enough CPUs, memory, or GPUs to free up."
        }
        PendingReason::Dependency => {
            "It means this job is waiting for another job it depends on to finish first."
        }
        PendingReason::BeginTime => {
            "It means you asked this job not to start before a specific time, which has not arrived yet."
        }
        PendingReason::AssocGrpCpuLimit => {
            "It means this job's association has reached its aggregate group CPU limit."
        }
        PendingReason::AssocGrpGresMinutes => {
            "It means your group has used up its allocated GPU time for this period; the job will wait until the allocation is renewed."
        }
        PendingReason::QosMaxJobsPerUser => {
            "It means you already have the maximum number of running jobs allowed by this quality of service; the job will start as your other jobs finish."
        }
        PendingReason::QosMaxSubmitJobPerUser => {
            "It means you have reached the maximum number of submitted jobs allowed by this quality of service."
        }
        PendingReason::PartitionDown => {
            "It means the partition this job targets is currently down or drained, often for maintenance; check the announcements."
        }
        PendingReason::PartitionTimeLimit => {
            "It means the time limit you requested is longer than this partition allows; resubmit with a shorter limit or a different partition."
        }
        PendingReason::BadConstraints => {
            "It means no node can ever satisfy the resources or features this job requests; it will not start as submitted."
        }
        PendingReason::ReqNodeNotAvail => {
            "It means a specific node this job requires is unavailable (down or drained)."
        }
        PendingReason::JobArrayTaskLimit => {
            "It means this array task is waiting because the array's concurrent-task throttle has been reached."
        }
        PendingReason::JobHeldUser => {
            "It means you placed this job on hold; release it to let it run."
        }
        PendingReason::JobHeldAdmin => {
            "It means an administrator placed this job on hold; contact support if this is unexpected."
        }
    }
}

/// Code + message pair as the job table renders it.
pub fn describe(reason: PendingReason) -> String {
    format!("{} — {}", reason.to_slurm(), friendly_reason(reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn papers_example_wording() {
        assert_eq!(
            friendly_reason(PendingReason::AssocGrpCpuLimit),
            "It means this job's association has reached its aggregate group CPU limit."
        );
    }

    #[test]
    fn every_reason_has_a_nonempty_sentence() {
        for r in PendingReason::ALL {
            let msg = friendly_reason(r);
            assert!(msg.len() > 20, "{r:?} message too short");
            assert!(
                msg.starts_with("It means"),
                "{r:?} should follow the paper's phrasing"
            );
        }
    }

    #[test]
    fn describe_includes_code() {
        let d = describe(PendingReason::QosMaxJobsPerUser);
        assert!(d.starts_with("QOSMaxJobsPerUserLimit — "));
    }

    #[test]
    fn messages_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for r in PendingReason::ALL {
            assert!(
                seen.insert(friendly_reason(r)),
                "duplicate message for {r:?}"
            );
        }
    }
}
