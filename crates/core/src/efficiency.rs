//! The job-efficiency engine (paper §4.1, §4.3).
//!
//! Three metrics from sacct fields:
//! * time efficiency   = Elapsed / Timelimit
//! * CPU efficiency    = TotalCPU / (Elapsed × AllocCPUS)
//! * memory efficiency = MaxRSS / ReqMem
//!
//! plus the efficiency *warnings* that tell users they requested far more
//! than they used. GPU efficiency is behind the `gpu_efficiency` feature
//! flag (the paper lists it as in-progress work).

use hpcdash_simtime::TimeLimit;
use hpcdash_slurmcli::SacctRecord;
use serde::Serialize;

/// Thresholds for warnings. A job must have run a while before we judge it.
pub const MIN_ELAPSED_FOR_WARNING: u64 = 300;
pub const CPU_WARN_BELOW: f64 = 0.25;
pub const MEM_WARN_BELOW: f64 = 0.25;
pub const TIME_WARN_BELOW: f64 = 0.30;

/// A job's efficiency report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EfficiencyReport {
    /// `None` when the underlying usage data is not (yet) available.
    pub cpu: Option<f64>,
    pub memory: Option<f64>,
    pub time: Option<f64>,
    /// Only set when the GPU-efficiency feature flag is on and the job used
    /// GPUs. Measured from the telemetry collector's GPU-utilization series
    /// when one exists ([`EfficiencyReport::from_record_with_gpu`]); the
    /// old CPU-activity approximation remains as the fallback for jobs that
    /// predate the collectors or whose series has aged out of retention.
    pub gpu: Option<f64>,
    pub warnings: Vec<String>,
}

impl EfficiencyReport {
    /// Compute from an accounting record alone (no collector samples; GPU
    /// efficiency, if enabled, falls back to the CPU approximation).
    pub fn from_record(rec: &SacctRecord, gpu_flag: bool) -> EfficiencyReport {
        EfficiencyReport::from_record_with_gpu(rec, gpu_flag, None)
    }

    /// Compute from an accounting record plus, when available, the mean of
    /// the telemetry collector's GPU-utilization series for this job.
    /// Collector samples win over the approximation — and unlike it they
    /// work for still-running jobs, since the series exists from the first
    /// tick.
    pub fn from_record_with_gpu(
        rec: &SacctRecord,
        gpu_flag: bool,
        collector_gpu: Option<f64>,
    ) -> EfficiencyReport {
        let elapsed = rec.elapsed_secs;
        let cpu = match (rec.total_cpu_secs, elapsed, rec.alloc_cpus) {
            (Some(total), e, cpus) if e > 0 && cpus > 0 => {
                Some((total as f64 / (e as f64 * cpus as f64)).min(1.0))
            }
            _ => None,
        };
        let memory = match (rec.max_rss_mb, rec.req_mem_mb) {
            (Some(rss), req) if req > 0 => Some((rss as f64 / req as f64).min(1.0)),
            _ => None,
        };
        let time = match rec.timelimit {
            TimeLimit::Limited(limit) if limit > 0 && elapsed > 0 => {
                Some((elapsed as f64 / limit as f64).min(1.0))
            }
            _ => None,
        };
        let gpu = if gpu_flag && has_gpus(rec) {
            match collector_gpu {
                Some(g) => Some(g.clamp(0.0, 1.0)),
                // Fallback proxy when no series exists: GPU jobs in this
                // simulator drive GPUs roughly in proportion to their CPU
                // activity. Only meaningful once the job has finished.
                None if rec.state.is_finished() => cpu.map(|c| (c * 0.9).min(1.0)),
                None => None,
            }
        } else {
            None
        };

        let mut warnings = Vec::new();
        if rec.state.is_finished() && elapsed >= MIN_ELAPSED_FOR_WARNING {
            if let Some(c) = cpu {
                if c < CPU_WARN_BELOW {
                    warnings.push(format!(
                        "This job used only {:.0}% of the {} CPUs it requested. Requesting fewer CPUs will reduce your queue wait times and leave more resources for others.",
                        c * 100.0,
                        rec.alloc_cpus
                    ));
                }
            }
            if let Some(m) = memory {
                if m < MEM_WARN_BELOW {
                    warnings.push(format!(
                        "This job used only {:.0}% of its requested memory. Requesting less memory will reduce your queue wait times and leave more resources for others.",
                        m * 100.0
                    ));
                }
            }
            if let Some(t) = time {
                if t < TIME_WARN_BELOW {
                    warnings.push(format!(
                        "This job used only {:.0}% of its requested time limit. A shorter limit helps the scheduler start your jobs sooner.",
                        t * 100.0
                    ));
                }
            }
        }

        EfficiencyReport {
            cpu,
            memory,
            time,
            gpu,
            warnings,
        }
    }
}

fn has_gpus(rec: &SacctRecord) -> bool {
    // GPU jobs in this stack run on the gpu partition.
    rec.partition == "gpu"
}

/// Format a fraction as the table shows it.
pub fn percent(f: Option<f64>) -> String {
    match f {
        Some(v) => format!("{:.1}%", v * 100.0),
        None => "—".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcdash_simtime::Timestamp;
    use hpcdash_slurm::job::JobState;

    fn rec(
        elapsed: u64,
        limit: u64,
        cpus: u32,
        total_cpu: Option<u64>,
        rss: Option<u64>,
        req_mem: u64,
    ) -> SacctRecord {
        SacctRecord {
            job_id: "1".into(),
            job_name: "j".into(),
            user: "alice".into(),
            account: "physics".into(),
            partition: "cpu".into(),
            qos: "normal".into(),
            state: JobState::Completed,
            submit: Some(Timestamp(0)),
            start: Some(Timestamp(10)),
            end: Some(Timestamp(10 + elapsed)),
            elapsed_secs: elapsed,
            timelimit: TimeLimit::Limited(limit),
            alloc_cpus: cpus,
            alloc_nodes: 1,
            alloc_tres: hpcdash_slurm::tres::Tres::new(cpus, req_mem, 0, 1),
            req_mem_mb: req_mem,
            max_rss_mb: rss,
            total_cpu_secs: total_cpu,
            exit_code: "0:0".into(),
            nodelist: "a001".into(),
            comment: String::new(),
        }
    }

    #[test]
    fn metrics_computed() {
        // 1h elapsed of 2h limit, 8 cpus with 4 cpu-hours burned, half memory.
        let r = rec(3_600, 7_200, 8, Some(4 * 3_600), Some(8_192), 16_384);
        let e = EfficiencyReport::from_record(&r, false);
        assert!((e.cpu.unwrap() - 0.5).abs() < 1e-9);
        assert!((e.memory.unwrap() - 0.5).abs() < 1e-9);
        assert!((e.time.unwrap() - 0.5).abs() < 1e-9);
        assert!(e.gpu.is_none());
        assert!(
            e.warnings.is_empty(),
            "50% everywhere is fine: {:?}",
            e.warnings
        );
    }

    #[test]
    fn missing_usage_gives_none() {
        let r = rec(0, 7_200, 8, None, None, 16_384);
        let e = EfficiencyReport::from_record(&r, false);
        assert_eq!(e.cpu, None);
        assert_eq!(e.memory, None);
        assert_eq!(e.time, None, "no elapsed time yet");
    }

    #[test]
    fn wasteful_job_warns_on_all_three() {
        // 10% cpu, 5% memory, 10% of time limit.
        let r = rec(
            3_600,
            36_000,
            16,
            Some((3_600.0 * 16.0 * 0.1) as u64),
            Some(819),
            16_384,
        );
        let e = EfficiencyReport::from_record(&r, false);
        assert_eq!(e.warnings.len(), 3, "{:?}", e.warnings);
        assert!(e.warnings[0].contains("CPUs it requested"));
        assert!(e.warnings[1].contains("requested memory"));
        assert!(e.warnings[2].contains("time limit"));
    }

    #[test]
    fn short_jobs_do_not_warn() {
        let r = rec(60, 36_000, 16, Some(60), Some(100), 16_384);
        let e = EfficiencyReport::from_record(&r, false);
        assert!(e.warnings.is_empty(), "under MIN_ELAPSED_FOR_WARNING");
    }

    #[test]
    fn running_jobs_do_not_warn() {
        let mut r = rec(3_600, 36_000, 16, Some(360), Some(100), 16_384);
        r.state = JobState::Running;
        let e = EfficiencyReport::from_record(&r, false);
        assert!(e.warnings.is_empty());
    }

    #[test]
    fn efficiency_capped_at_one() {
        // Overcommitted: more cpu-seconds than wall*cpus (hyperthread noise).
        let r = rec(100, 200, 1, Some(150), Some(99_999), 1_024);
        let e = EfficiencyReport::from_record(&r, false);
        assert_eq!(e.cpu, Some(1.0));
        assert_eq!(e.memory, Some(1.0));
    }

    #[test]
    fn gpu_flag_gates_gpu_metric() {
        let mut r = rec(3_600, 7_200, 8, Some(4 * 3_600), Some(8_192), 16_384);
        r.partition = "gpu".into();
        let off = EfficiencyReport::from_record(&r, false);
        assert!(off.gpu.is_none());
        let on = EfficiencyReport::from_record(&r, true);
        assert!(on.gpu.is_some());
        r.partition = "cpu".into();
        let cpu_job = EfficiencyReport::from_record(&r, true);
        assert!(cpu_job.gpu.is_none(), "non-gpu jobs get no gpu metric");
    }

    #[test]
    fn collector_samples_beat_the_approximation() {
        let mut r = rec(3_600, 7_200, 8, Some(4 * 3_600), Some(8_192), 16_384);
        r.partition = "gpu".into();
        let measured = EfficiencyReport::from_record_with_gpu(&r, true, Some(0.83));
        assert_eq!(measured.gpu, Some(0.83));
        // Out-of-range collector values are clamped, not propagated.
        let clamped = EfficiencyReport::from_record_with_gpu(&r, true, Some(1.7));
        assert_eq!(clamped.gpu, Some(1.0));
        // Flag off: collector samples do not leak the metric in.
        let off = EfficiencyReport::from_record_with_gpu(&r, false, Some(0.83));
        assert!(off.gpu.is_none());
        // Non-GPU job: samples for it are ignored.
        r.partition = "cpu".into();
        let cpu_job = EfficiencyReport::from_record_with_gpu(&r, true, Some(0.83));
        assert!(cpu_job.gpu.is_none());
    }

    #[test]
    fn collector_samples_cover_running_jobs() {
        let mut r = rec(3_600, 7_200, 8, Some(4 * 3_600), Some(8_192), 16_384);
        r.partition = "gpu".into();
        r.state = JobState::Running;
        // The approximation needs a finished job...
        assert!(EfficiencyReport::from_record(&r, true).gpu.is_none());
        // ...but collector samples exist from the first tick.
        let live = EfficiencyReport::from_record_with_gpu(&r, true, Some(0.6));
        assert_eq!(live.gpu, Some(0.6));
    }

    #[test]
    fn unlimited_timelimit_has_no_time_eff() {
        let mut r = rec(3_600, 7_200, 8, Some(100), Some(100), 1_024);
        r.timelimit = TimeLimit::Unlimited;
        let e = EfficiencyReport::from_record(&r, false);
        assert_eq!(e.time, None);
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(Some(0.5)), "50.0%");
        assert_eq!(percent(Some(0.018)), "1.8%");
        assert_eq!(percent(None), "—");
    }
}
