//! `slurmctld`: the central management daemon.
//!
//! All live-state queries (`squeue`, `sinfo`, `scontrol show ...`) and all
//! mutations (submit/cancel) go through one big daemon lock, exactly like
//! the single-threaded RPC loop in real slurmctld — and, critically for the
//! paper's §3.2 argument, so does the scheduling tick. Dashboard query
//! storms therefore *measurably* delay scheduling unless they are absorbed
//! by the dashboard's caches.

use crate::assoc::{Account, AccountUsage};
use crate::cluster::{ClusterError, ClusterSpec, ClusterState};
use crate::job::{Job, JobId, JobRequest};
use crate::joblog::JobLogFs;
use crate::loadmodel::{RpcCostModel, RpcStats};
use crate::node::{AdminFlag, Node};
use crate::partition::{Partition, PartitionState};
use hpcdash_obs::Span;
use hpcdash_simtime::{SharedClock, Timestamp};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// Visibility/filtering for live job queries (`squeue` flags).
#[derive(Debug, Clone, Default)]
pub struct JobQuery {
    /// Match jobs submitted by this user...
    pub user: Option<String>,
    /// ...or charged to any of these accounts (OR-combined with `user`).
    pub accounts: Vec<String>,
    pub partition: Option<String>,
    /// Jobs currently running on this node.
    pub node: Option<String>,
}

impl JobQuery {
    pub fn all() -> JobQuery {
        JobQuery::default()
    }

    pub fn for_user(user: &str) -> JobQuery {
        JobQuery {
            user: Some(user.to_string()),
            ..JobQuery::default()
        }
    }

    fn matches(&self, job: &Job) -> bool {
        if self.user.is_some() || !self.accounts.is_empty() {
            let by_user = self.user.as_deref() == Some(job.req.user.as_str());
            let by_account = self.accounts.contains(&job.req.account);
            if !by_user && !by_account {
                return false;
            }
        }
        if let Some(p) = &self.partition {
            if job.req.partition != *p {
                return false;
            }
        }
        if let Some(n) = &self.node {
            if !job.nodes.iter().any(|x| x == n) {
                return false;
            }
        }
        true
    }
}

/// One account row from `scontrol show assoc`-style queries.
#[derive(Debug, Clone)]
pub struct AssocRecord {
    pub account: Account,
    pub usage: AccountUsage,
    pub members: Vec<String>,
}

/// The central management daemon.
pub struct Slurmctld {
    state: Mutex<ClusterState>,
    clock: SharedClock,
    cost: RpcCostModel,
    stats: RpcStats,
    dbd: Arc<crate::dbd::Slurmdbd>,
    logs: Arc<JobLogFs>,
}

impl Slurmctld {
    pub fn new(
        spec: ClusterSpec,
        clock: SharedClock,
        dbd: Arc<crate::dbd::Slurmdbd>,
        logs: Arc<JobLogFs>,
    ) -> Slurmctld {
        Slurmctld::with_cost(spec, clock, dbd, logs, RpcCostModel::ctld_default())
    }

    pub fn with_cost(
        spec: ClusterSpec,
        clock: SharedClock,
        dbd: Arc<crate::dbd::Slurmdbd>,
        logs: Arc<JobLogFs>,
        cost: RpcCostModel,
    ) -> Slurmctld {
        Slurmctld {
            state: Mutex::new(ClusterState::new(spec)),
            clock,
            cost,
            stats: RpcStats::new(),
            dbd,
            logs,
        }
    }

    /// Advance the simulation to the clock's current instant: run the
    /// scheduler, stream finished jobs to accounting, refresh job logs.
    pub fn tick(&self) {
        let _span = Span::enter("ctld").attr("kind", "sched_tick");
        let start = Instant::now();
        let now = self.clock.now();
        let (finished, active_snapshot, running_logs) = {
            let mut state = self.state.lock();
            self.stats.record_lock_wait(start.elapsed());
            state.tick(now);
            let finished = state.drain_finished();
            let active: Vec<Job> = state.active_jobs().cloned().collect();
            // Running jobs keep their stdout fresh: one progress line per
            // elapsed minute, so the Job Overview output tab has content.
            let running_logs: Vec<(String, String, Vec<String>)> = state
                .active_jobs()
                .filter(|j| j.state == crate::job::JobState::Running)
                .map(|j| {
                    let mut lines = vec![format!(
                        "=== job {} ({}) starting on {} ===",
                        j.id,
                        j.req.name,
                        j.nodes.join(",")
                    )];
                    let minutes = j.elapsed_secs(now) / 60;
                    for i in 0..minutes.min(200) {
                        lines.push(format!("step {i}: processed batch {i} ok"));
                    }
                    (j.stdout_path.clone(), j.req.user.clone(), lines)
                })
                .collect();
            self.cost.burn(active.len());
            let pending = active
                .iter()
                .filter(|j| j.state == crate::job::JobState::Pending)
                .count() as u64;
            self.stats.set_sched_queue_depth(pending);
            (finished, active, running_logs)
        };
        for (path, user, lines) in running_logs {
            self.logs.write(&path, &user, lines);
        }
        for f in &finished {
            self.logs
                .write(&f.job.stdout_path, &f.job.req.user, f.stdout_lines.clone());
            self.logs
                .write(&f.job.stderr_path, &f.job.req.user, f.stderr_lines.clone());
        }
        self.dbd
            .record_finished(finished.into_iter().map(|f| f.job));
        self.dbd.sync_active(active_snapshot);
        self.stats.record("sched_tick", start.elapsed());
    }

    /// Submit a job or array (`sbatch`).
    pub fn submit(&self, req: JobRequest) -> Result<Vec<JobId>, ClusterError> {
        let _span = Span::enter("ctld").attr("kind", "submit");
        let start = Instant::now();
        let now = self.clock.now();
        let result = {
            let mut state = self.state.lock();
            self.stats.record_lock_wait(start.elapsed());
            self.cost.burn(1);
            state.submit(req, now)
        };
        self.stats.record("submit", start.elapsed());
        result
    }

    /// Cancel a job (`scancel`).
    pub fn cancel(&self, id: JobId, user: &str) -> Result<(), ClusterError> {
        let _span = Span::enter("ctld").attr("kind", "cancel");
        let start = Instant::now();
        let now = self.clock.now();
        let result = {
            let mut state = self.state.lock();
            self.stats.record_lock_wait(start.elapsed());
            self.cost.burn(1);
            state.cancel(id, user, now)
        };
        self.stats.record("cancel", start.elapsed());
        result
    }

    /// Live job listing (`squeue`). This is the expensive, schedule-blocking
    /// query the dashboard must cache.
    pub fn query_jobs(&self, query: &JobQuery) -> Vec<Job> {
        let _span = Span::enter("ctld").attr("kind", "squeue");
        let start = Instant::now();
        let out = {
            let state = self.state.lock();
            self.stats.record_lock_wait(start.elapsed());
            let all: Vec<&Job> = state.active_jobs().collect();
            self.cost.burn(all.len());
            all.into_iter()
                .filter(|j| query.matches(j))
                .cloned()
                .collect()
        };
        self.stats.record("squeue", start.elapsed());
        out
    }

    /// One live job (`scontrol show job`).
    pub fn query_job(&self, id: JobId) -> Option<Job> {
        let _span = Span::enter("ctld").attr("kind", "scontrol_job");
        let start = Instant::now();
        let out = {
            let state = self.state.lock();
            self.stats.record_lock_wait(start.elapsed());
            self.cost.burn(1);
            state.job(id).cloned()
        };
        self.stats.record("scontrol_job", start.elapsed());
        out
    }

    /// Node inventory (`scontrol show node` / `sinfo` substrate).
    pub fn query_nodes(&self) -> Vec<Node> {
        let _span = Span::enter("ctld").attr("kind", "scontrol_node");
        let start = Instant::now();
        let out = {
            let state = self.state.lock();
            self.stats.record_lock_wait(start.elapsed());
            let nodes: Vec<Node> = state.nodes.values().cloned().collect();
            self.cost.burn(nodes.len());
            nodes
        };
        self.stats.record("scontrol_node", start.elapsed());
        out
    }

    pub fn query_node(&self, name: &str) -> Option<Node> {
        let _span = Span::enter("ctld").attr("kind", "scontrol_node");
        let start = Instant::now();
        let out = {
            let state = self.state.lock();
            self.stats.record_lock_wait(start.elapsed());
            self.cost.burn(1);
            state.node(name).cloned()
        };
        self.stats.record("scontrol_node", start.elapsed());
        out
    }

    /// Partition definitions (`scontrol show partition` / `sinfo`).
    pub fn query_partitions(&self) -> Vec<Partition> {
        let _span = Span::enter("ctld").attr("kind", "sinfo");
        let start = Instant::now();
        let out = {
            let state = self.state.lock();
            self.stats.record_lock_wait(start.elapsed());
            let parts: Vec<Partition> = state.partitions.values().cloned().collect();
            self.cost.burn(parts.len());
            parts
        };
        self.stats.record("sinfo", start.elapsed());
        out
    }

    /// Association dump (`scontrol show assoc_mgr`): accounts with live
    /// usage, restricted to those `user` belongs to unless `user` is None.
    pub fn query_assoc(&self, user: Option<&str>) -> Vec<AssocRecord> {
        let _span = Span::enter("ctld").attr("kind", "scontrol_assoc");
        let start = Instant::now();
        let out = {
            let state = self.state.lock();
            self.stats.record_lock_wait(start.elapsed());
            let records: Vec<AssocRecord> = state
                .assoc
                .accounts()
                .filter(|a| match user {
                    Some(u) => state.assoc.is_member(&a.name, u),
                    None => true,
                })
                .map(|a| AssocRecord {
                    account: a.clone(),
                    usage: state.assoc.usage(&a.name).cloned().unwrap_or_default(),
                    members: state.assoc.users_of_account(&a.name).to_vec(),
                })
                .collect();
            self.cost.burn(records.len().max(1));
            records
        };
        self.stats.record("scontrol_assoc", start.elapsed());
        out
    }

    /// Cluster name (cheap, cached by callers).
    pub fn cluster_name(&self) -> String {
        self.state.lock().name.clone()
    }

    // ---- admin operations (fault injection, maintenance) ------------------

    pub fn set_node_flag(&self, name: &str, flag: AdminFlag, reason: Option<String>) -> bool {
        let mut state = self.state.lock();
        match state.node_mut(name) {
            Some(n) => {
                n.admin_flag = flag;
                n.reason = reason;
                true
            }
            None => false,
        }
    }

    pub fn set_partition_state(&self, name: &str, pstate: PartitionState) -> bool {
        let mut state = self.state.lock();
        match state.partition_mut(name) {
            Some(p) => {
                p.state = pstate;
                true
            }
            None => false,
        }
    }

    pub fn hold(&self, id: JobId, by_admin: bool) -> Result<(), ClusterError> {
        self.state.lock().hold(id, by_admin)
    }

    pub fn release(&self, id: JobId) -> Result<(), ClusterError> {
        self.state.lock().release(id)
    }

    // ---- introspection -----------------------------------------------------

    pub fn stats(&self) -> &RpcStats {
        &self.stats
    }

    pub fn clock_now(&self) -> Timestamp {
        self.clock.now()
    }

    pub fn logs(&self) -> &Arc<JobLogFs> {
        &self.logs
    }

    /// The cluster's job-event log (real-time monitoring feed).
    pub fn events(&self) -> Arc<crate::events::EventLog> {
        self.state.lock().events()
    }

    pub fn dbd(&self) -> &Arc<crate::dbd::Slurmdbd> {
        &self.dbd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assoc::AssocStore;
    use crate::job::{JobState, UsageProfile};
    use crate::qos::Qos;
    use hpcdash_simtime::SimClock;

    fn spec() -> ClusterSpec {
        let mut assoc = AssocStore::new();
        assoc.add_account(Account::new("physics"));
        assoc.add_user("physics", "alice");
        assoc.add_user("physics", "bob");
        let nodes: Vec<Node> = (1..=2)
            .map(|i| Node::new(format!("a{i:03}"), 16, 64_000, 0))
            .collect();
        let names: Vec<String> = nodes.iter().map(|n| n.name.clone()).collect();
        ClusterSpec {
            name: "test".to_string(),
            nodes,
            partitions: vec![Partition::new("cpu").with_nodes(names).default_partition()],
            qos: Qos::standard_set(),
            assoc,
        }
    }

    fn daemon() -> (Arc<Slurmctld>, SimClock) {
        let clock = SimClock::new(Timestamp(0));
        let dbd = Arc::new(crate::dbd::Slurmdbd::with_cost(RpcCostModel::free()));
        let logs = Arc::new(JobLogFs::new());
        let ctld = Arc::new(Slurmctld::with_cost(
            spec(),
            clock.shared(),
            dbd,
            logs,
            RpcCostModel::free(),
        ));
        (ctld, clock)
    }

    fn req(user: &str, cpus: u32, runtime: u64) -> JobRequest {
        let mut r = JobRequest::simple(user, "physics", "cpu", cpus);
        r.mem_mb_per_node = 1_000;
        r.usage = UsageProfile::batch(runtime);
        r
    }

    #[test]
    fn end_to_end_lifecycle_through_daemons() {
        let (ctld, clock) = daemon();
        let id = ctld.submit(req("alice", 4, 120)).unwrap()[0];
        clock.advance(1);
        ctld.tick();
        assert_eq!(ctld.query_job(id).unwrap().state, JobState::Running);
        // Active mirror reached dbd.
        assert_eq!(ctld.dbd().job(id).unwrap().state, JobState::Running);

        clock.advance(200);
        ctld.tick();
        assert!(ctld.query_job(id).is_none(), "left live state");
        let archived = ctld.dbd().job(id).unwrap();
        assert_eq!(archived.state, JobState::Completed);
        // Logs were written and are owner-readable.
        let tail = ctld
            .logs()
            .tail_default(&archived.stdout_path, "alice")
            .unwrap();
        assert!(!tail.lines.is_empty());
        assert!(ctld
            .logs()
            .tail_default(&archived.stdout_path, "bob")
            .is_err());
    }

    #[test]
    fn query_filters() {
        let (ctld, clock) = daemon();
        ctld.submit(req("alice", 2, 600)).unwrap();
        ctld.submit(req("bob", 2, 600)).unwrap();
        clock.advance(1);
        ctld.tick();
        assert_eq!(ctld.query_jobs(&JobQuery::all()).len(), 2);
        assert_eq!(ctld.query_jobs(&JobQuery::for_user("alice")).len(), 1);
        let by_account = ctld.query_jobs(&JobQuery {
            accounts: vec!["physics".to_string()],
            ..JobQuery::default()
        });
        assert_eq!(by_account.len(), 2);
        let node = ctld.query_jobs(&JobQuery::all())[0].nodes[0].clone();
        let on_node = ctld.query_jobs(&JobQuery {
            node: Some(node),
            ..JobQuery::default()
        });
        assert!(!on_node.is_empty());
    }

    #[test]
    fn assoc_visibility() {
        let (ctld, _clock) = daemon();
        let mine = ctld.query_assoc(Some("alice"));
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].account.name, "physics");
        assert!(ctld.query_assoc(Some("stranger")).is_empty());
        assert_eq!(ctld.query_assoc(None).len(), 1);
    }

    #[test]
    fn admin_flags_via_daemon() {
        let (ctld, clock) = daemon();
        assert!(ctld.set_node_flag("a001", AdminFlag::Drain, Some("bad DIMM".into())));
        assert!(!ctld.set_node_flag("zzz", AdminFlag::Drain, None));
        clock.advance(1);
        ctld.tick();
        let nodes = ctld.query_nodes();
        let a001 = nodes.iter().find(|n| n.name == "a001").unwrap();
        assert_eq!(a001.state(), crate::node::NodeState::Drained);
        assert_eq!(a001.reason.as_deref(), Some("bad DIMM"));

        assert!(ctld.set_partition_state("cpu", PartitionState::Down));
        let parts = ctld.query_partitions();
        assert_eq!(parts[0].state, PartitionState::Down);
    }

    #[test]
    fn rpc_stats_count_queries() {
        let (ctld, clock) = daemon();
        ctld.submit(req("alice", 1, 60)).unwrap();
        clock.advance(1);
        ctld.tick();
        for _ in 0..5 {
            ctld.query_jobs(&JobQuery::all());
        }
        ctld.query_nodes();
        assert_eq!(ctld.stats().count_of("squeue"), 5);
        assert_eq!(ctld.stats().count_of("scontrol_node"), 1);
        assert!(ctld.stats().count_of("sched_tick") >= 1);
    }

    #[test]
    fn concurrent_queries_and_ticks() {
        let (ctld, clock) = daemon();
        for i in 0..20 {
            ctld.submit(req(if i % 2 == 0 { "alice" } else { "bob" }, 1, 50 + i))
                .unwrap();
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = ctld.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let _ = c.query_jobs(&JobQuery::all());
                }
            }));
        }
        for _ in 0..10 {
            clock.advance(10);
            ctld.tick();
        }
        for h in handles {
            h.join().unwrap();
        }
        // No deadlocks, and stats saw all the traffic.
        assert_eq!(ctld.stats().count_of("squeue"), 200);
    }
}
