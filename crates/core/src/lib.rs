//! The hpcdash dashboard — the paper's contribution, in Rust.
//!
//! Structure mirrors the paper's code-structure rule (§2.3): every feature
//! is one backend API route module under [`api`] paired with one frontend
//! renderer under [`widgets`] (homepage components) or [`pages`] (full-page
//! apps). Routes return JSON; pages are HTML shells whose data arrives from
//! those routes, so the dashboard paints instantly and refreshes per
//! component.
//!
//! Cross-cutting services live at the top level: per-source cache policy
//! ([`config`]), identity + privacy ([`auth`]), the efficiency engine
//! ([`efficiency`]), friendly pending-reason translation ([`reasons`]),
//! colour-coding rules ([`colors`]), chart data preparation ([`charts`]),
//! aggregate job metrics ([`metrics`]), and a small ERB-style template
//! engine ([`template`]).

pub mod api;
pub mod app;
pub mod auth;
pub mod charts;
pub mod colors;
pub mod config;
pub mod ctx;
pub mod efficiency;
pub mod metrics;
pub mod pages;
pub mod reasons;
pub mod template;
pub mod widgets;

pub use app::Dashboard;
pub use config::{CachePolicy, DashboardConfig, FeatureFlags, ResiliencePolicy};
pub use ctx::DashboardContext;
