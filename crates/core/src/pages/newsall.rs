//! The "view all news" page (paper §3.1: the widget's button "lets users
//! navigate to a list of all cluster-related articles").

use crate::pages::layout::{shell, widget_placeholder};
use crate::template::escape_html;
use crate::widgets::components::badge;
use serde_json::Value;

pub fn render_shell(cluster: &str, user: &str) -> String {
    let mut body = String::from("<h1>Cluster news</h1>");
    body.push_str(&widget_placeholder(
        "newsall",
        "/api/announcements?scope=all",
    ));
    shell("All news", "newsall", cluster, user, &body)
}

/// Render from the `/api/announcements?scope=all` payload.
pub fn render_full(cluster: &str, user: &str, payload: &Value) -> String {
    let mut body = String::from("<h1>Cluster news</h1><div class=\"accordion news-list\">");
    for item in payload["items"]
        .as_array()
        .map(Vec::as_slice)
        .unwrap_or(&[])
    {
        let color = item["color"].as_str().unwrap_or("gray");
        let faded = item["faded"].as_bool().unwrap_or(false);
        body.push_str(&format!(
            "<article class=\"announcement announcement-{} {}\">\
             <h2>{} {}</h2><time>{}</time>{}<p>{}</p></article>",
            color,
            if faded {
                "announcement-past"
            } else {
                "announcement-current"
            },
            badge(color, item["category"].as_str().unwrap_or("news")),
            escape_html(item["title"].as_str().unwrap_or("")),
            escape_html(item["posted_at"].as_str().unwrap_or("")),
            match (item["starts_at"].as_str(), item["ends_at"].as_str()) {
                (Some(s), Some(e)) => format!(
                    "<div class=\"window\">Window: {} — {}</div>",
                    escape_html(s),
                    escape_html(e)
                ),
                _ => String::new(),
            },
            escape_html(item["body"].as_str().unwrap_or("")),
        ));
    }
    body.push_str("</div>");
    shell("All news", "newsall", cluster, user, &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn lists_every_article_with_windows() {
        let payload = json!({"items": [
            {"title": "Maintenance", "body": "b", "category": "maintenance", "color": "yellow",
             "faded": false, "posted_at": "2026-07-01T00:00:00",
             "starts_at": "2026-07-06T08:00:00", "ends_at": "2026-07-06T16:00:00"},
            {"title": "Old outage", "body": "b", "category": "outage", "color": "red",
             "faded": true, "posted_at": "2026-06-01T00:00:00",
             "starts_at": null, "ends_at": null},
        ]});
        let html = render_full("Anvil", "alice", &payload);
        assert_eq!(html.matches("<article").count(), 2);
        assert!(html.contains("Window: 2026-07-06T08:00:00 — 2026-07-06T16:00:00"));
        assert!(html.contains("announcement-past"));
        assert!(html.contains("announcement-yellow"));
    }

    #[test]
    fn shell_points_at_scope_all() {
        let html = render_shell("Anvil", "alice");
        assert!(html.contains("/api/announcements?scope=all"));
    }
}
