//! Ablation — request coalescing (DESIGN.md design choice):
//! the TTL cache alone does not protect the backend at the moment of
//! expiry: every thread that misses starts its own backend query (the
//! thundering herd). Single-flight collapses the herd to one query.

use criterion::Criterion;
use hpcdash_bench::banner;
use hpcdash_cache::{CachedFetcher, TtlCache};
use hpcdash_simtime::{SimClock, Timestamp};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Simulate an expensive backend query.
fn backend_query(loads: &AtomicU64) -> u64 {
    loads.fetch_add(1, Ordering::SeqCst);
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_millis(2) {
        std::hint::spin_loop();
    }
    42
}

/// Herd of `threads` all missing the same key at once, WITHOUT coalescing.
fn herd_plain(threads: usize) -> (u64, Duration) {
    let clock = SimClock::new(Timestamp(0));
    let cache = Arc::new(TtlCache::<u64>::new(clock.shared()));
    let loads = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(threads));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let cache = cache.clone();
            let loads = loads.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                if let Some(v) = cache.get("k") {
                    return v;
                }
                let v = backend_query(&loads);
                cache.insert("k", v, 60);
                v
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), 42);
    }
    (loads.load(Ordering::SeqCst), t0.elapsed())
}

/// The same herd WITH single-flight (the shipped `CachedFetcher`).
fn herd_coalesced(threads: usize) -> (u64, Duration) {
    let clock = SimClock::new(Timestamp(0));
    let fetcher = Arc::new(CachedFetcher::<u64>::new(clock.shared()));
    let loads = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(threads));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let fetcher = fetcher.clone();
            let loads = loads.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                fetcher.get_or_fetch("k", 60, || backend_query(&loads))
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), 42);
    }
    (loads.load(Ordering::SeqCst), t0.elapsed())
}

fn main() {
    banner(
        "ABL-1",
        "single-flight ablation: thundering herd on a cold cache key (2ms backend)",
    );
    println!(
        "{:>8} | {:>18} {:>12} | {:>18} {:>12}",
        "threads", "plain: backend", "wall", "coalesced: backend", "wall"
    );
    println!("{}", "-".repeat(78));
    for threads in [2usize, 8, 32] {
        // Average over a few rounds; thread scheduling is noisy.
        let mut plain_loads = 0;
        let mut co_loads = 0;
        let mut plain_wall = Duration::ZERO;
        let mut co_wall = Duration::ZERO;
        const ROUNDS: u64 = 5;
        for _ in 0..ROUNDS {
            let (l, w) = herd_plain(threads);
            plain_loads += l;
            plain_wall += w;
            let (l, w) = herd_coalesced(threads);
            co_loads += l;
            co_wall += w;
        }
        println!(
            "{threads:>8} | {:>18.1} {:>12.1?} | {:>18.1} {:>12.1?}",
            plain_loads as f64 / ROUNDS as f64,
            plain_wall / ROUNDS as u32,
            co_loads as f64 / ROUNDS as f64,
            co_wall / ROUNDS as u32,
        );
        assert_eq!(
            co_loads, ROUNDS,
            "coalesced herd runs exactly one load per round"
        );
    }
    println!("\nshape: without coalescing the backend absorbs up to one query per");
    println!("concurrent browser at every expiry; with it, exactly one — the property");
    println!("the paper relies on to keep slurmctld healthy when many users share a TTL.");

    let mut c = Criterion::default().configure_from_args().sample_size(30);
    {
        let clock = SimClock::new(Timestamp(0));
        let fetcher = CachedFetcher::<u64>::new(clock.shared());
        fetcher.get_or_fetch("hot", 3_600, || 7);
        let mut group = c.benchmark_group("singleflight_overhead");
        group.bench_function("hit_via_fetcher", |b| {
            b.iter(|| fetcher.get_or_fetch("hot", 3_600, || unreachable!()))
        });
        let cache = TtlCache::<u64>::new(SimClock::new(Timestamp(0)).shared());
        cache.insert("hot", 7, 3_600);
        group.bench_function("hit_via_plain_cache", |b| b.iter(|| cache.get("hot")));
        group.finish();
    }
    c.final_summary();
}
