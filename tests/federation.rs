//! Experiment P13: federated degradation — one site of a 4-cluster
//! federation blacks out, and the portal's aggregate view keeps answering
//! with the dead site's slice honestly marked stale while live sites stay
//! fresh. Same-seed chaos replays to the same federation-wide trace.

use hpcdash::FedSite;
use hpcdash_faults::{FaultPlan, FaultRule};
use hpcdash_http::HttpClient;
use hpcdash_workload::FederationConfig;
use std::collections::BTreeMap;
use std::sync::Arc;

fn fetch(client: &HttpClient, base: &str, path: &str, user: &str) -> (u16, serde_json::Value) {
    let resp = client
        .get(&format!("{base}{path}"), &[("X-Remote-User", user)])
        .unwrap();
    let body = resp.json().unwrap_or(serde_json::Value::Null);
    (resp.status, body)
}

/// Per-site health as reported by `/api/federation/status`.
fn site_health(body: &serde_json::Value) -> BTreeMap<String, String> {
    body["sites"]
        .as_array()
        .unwrap()
        .iter()
        .map(|s| {
            (
                s["cluster"].as_str().unwrap().to_string(),
                s["health"].as_str().unwrap().to_string(),
            )
        })
        .collect()
}

#[test]
fn blackout_darkens_one_slice_and_the_aggregate_stays_available() {
    let fed = FedSite::build(FederationConfig::quad(41));
    fed.warm_up(1_800);
    let server = fed.serve().unwrap();
    let base = server.base_url();
    let client = HttpClient::new();
    let user = fed.federation.sites[0].population.users[0].clone();

    // Pre-blackout: every slice live, nothing degraded, and the fan-out
    // caches each site's last good snapshot.
    let (status, body) = fetch(&client, &base, "/api/federation/status", &user);
    assert_eq!(status, 200);
    assert_eq!(body["degraded"], false, "{body}");
    assert_eq!(body["live"], 4);
    let healthy_totals = body["totals"].clone();

    // Gamma's link goes down hard: every slurmctld RPC (including the
    // federation fan-out probe) errors from now on.
    let gamma = fed.federation.site("gamma").unwrap();
    gamma.ctld.faults().install(
        Arc::new(FaultPlan::new(77).rule(FaultRule::error(
            "slurmctld",
            "*",
            "gamma: site link down",
        ))),
        gamma.clock.shared(),
    );
    fed.federation.driver(120).advance(60);

    // Aggregate availability holds at 100%: every federation route still
    // answers 200 through the blackout, round after round.
    for _ in 0..5 {
        fed.federation.sites[0].clock.advance(16); // the honest age keeps growing
        for path in [
            "/api/federation/status",
            "/api/federation/jobs",
            "/api/federation/nodes",
        ] {
            let (status, body) = fetch(&client, &base, path, &user);
            assert_eq!(status, 200, "{path} must answer during the blackout");
            assert_eq!(body["degraded"], true, "{path}: the outage is not hidden");
        }
    }

    // The dead site's slice is marked stale with an honest age notice; the
    // three live sites still report live.
    let (_, body) = fetch(&client, &base, "/api/federation/status", &user);
    let health = site_health(&body);
    assert_eq!(health["gamma"], "stale", "{body}");
    for site in ["alpha", "beta", "delta"] {
        assert_eq!(health[site], "live", "{site} is unaffected: {body}");
    }
    assert_eq!(body["live"], 3);
    assert_eq!(body["stale"], 1);
    let notices: Vec<&str> = body["notices"]
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|n| n.as_str())
        .collect();
    assert_eq!(notices.len(), 1);
    assert!(
        notices[0].starts_with("site gamma: data from "),
        "honest age notice, got {notices:?}"
    );
    // Totals still include gamma's last-known slice: the aggregate degrades
    // to stale data, never to a missing slice.
    assert_eq!(body["totals"]["nodes"], healthy_totals["nodes"]);

    // Row-level annotations: gamma rows say stale, live-site rows say live.
    let (_, body) = fetch(&client, &base, "/api/federation/nodes", &user);
    for row in body["nodes"].as_array().unwrap() {
        let expected = if row["cluster"] == "gamma" {
            "stale"
        } else {
            "live"
        };
        assert_eq!(row["slice_health"], expected, "{row}");
    }

    // Recovery: the fault clears, the breaker's open interval lapses, and
    // the next fan-out probe reclaims the slice as live.
    gamma.ctld.faults().clear();
    fed.federation.sites[0].clock.advance(31);
    let (_, body) = fetch(&client, &base, "/api/federation/status", &user);
    assert_eq!(body["degraded"], false, "{body}");
    assert_eq!(site_health(&body)["gamma"], "live");
}

#[test]
fn live_sites_keep_publishing_fresh_data_through_a_peer_outage() {
    let fed = FedSite::build(FederationConfig::quad(43));
    fed.warm_up(900);
    let server = fed.serve().unwrap();
    let base = server.base_url();
    let client = HttpClient::new();
    let user = fed.federation.sites[0].population.users[0].clone();

    let (_, before) = fetch(&client, &base, "/api/federation/status", &user);
    let seq_of = |body: &serde_json::Value, cluster: &str| {
        body["sites"]
            .as_array()
            .unwrap()
            .iter()
            .find(|s| s["cluster"] == cluster)
            .unwrap()["snapshot_seq"]
            .as_u64()
            .unwrap()
    };

    let beta = fed.federation.site("beta").unwrap();
    beta.ctld.faults().install(
        Arc::new(FaultPlan::new(5).rule(FaultRule::error("slurmctld", "*", "beta dark"))),
        beta.clock.shared(),
    );
    fed.federation.driver(600).advance(300);

    let (_, after) = fetch(&client, &base, "/api/federation/status", &user);
    // Live sites moved forward — their slices are genuinely fresh, not a
    // federation-wide freeze.
    for site in ["alpha", "gamma", "delta"] {
        assert!(
            seq_of(&after, site) > seq_of(&before, site),
            "{site} kept publishing: {} -> {}",
            seq_of(&before, site),
            seq_of(&after, site)
        );
    }
    // Beta's slice is pinned at its last good snapshot and says so.
    assert_eq!(site_health(&after)["beta"], "stale");
    let beta_site = after["sites"]
        .as_array()
        .unwrap()
        .iter()
        .find(|s| s["cluster"] == "beta")
        .unwrap();
    assert!(
        beta_site["stale_age_secs"].as_u64().unwrap() >= 300,
        "{beta_site}"
    );
}

#[test]
fn same_seed_yields_the_same_federation_trace() {
    // Seeded chaos against a whole federation replays exactly: per-site
    // health, job totals, and breaker behavior are a pure function of the
    // seed across all four clusters.
    fn trace(seed: u64) -> Vec<String> {
        let plan = FaultPlan::new(seed)
            .rule(FaultRule::error("slurmctld", "*", "flaky gamma").with_probability(0.5));
        let fed = FedSite::build(FederationConfig::quad(17).fault_site("gamma", plan));
        let server = fed.serve().unwrap();
        let base = server.base_url();
        let client = HttpClient::new();
        let user = fed.federation.sites[0].population.users[0].clone();
        let mut driver = fed.federation.driver(3_600);
        let mut out = Vec::new();
        for _ in 0..12 {
            driver.advance(61);
            let (status, body) = fetch(&client, &base, "/api/federation/status", &user);
            assert_eq!(status, 200);
            for (cluster, health) in site_health(&body) {
                out.push(format!("{cluster}:{health}"));
            }
            out.push(format!(
                "pending:{} running:{}",
                body["totals"]["jobs_pending"], body["totals"]["jobs_running"]
            ));
        }
        out
    }
    let a = trace(2024);
    let b = trace(2024);
    let c = trace(2025);
    assert_eq!(a, b, "same seed, same federation-wide trace");
    assert_ne!(a, c, "different seed, different schedule");
    // The chaos actually bit gamma at least once, and never the others.
    assert!(a
        .iter()
        .any(|row| row == "gamma:stale" || row == "gamma:dark"));
    assert!(
        a.iter()
            .all(|row| !row.starts_with("alpha:") || row == "alpha:live"),
        "the chaos is confined to gamma"
    );
}
