//! Bounded MPMC channels (the `crossbeam::channel` API subset).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// The error returned by [`Sender::send`] when every receiver is gone; the
/// unsent value is handed back.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// The error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// [`Receiver::try_recv`] outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Create a bounded channel holding at most `capacity` in-flight messages.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity.min(1024)),
            senders: 1,
            receivers: 1,
        }),
        capacity: capacity.max(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// The sending half. Cloning adds another producer.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Block until there is room (backpressure), then enqueue. Errors if all
    /// receivers are gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            if state.queue.len() < self.shared.capacity {
                state.queue.push_back(value);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).unwrap();
        }
    }

    /// How many messages are waiting.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.shared.state.lock().unwrap().senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut state = self.shared.state.lock().unwrap();
            state.senders -= 1;
            state.senders
        };
        if remaining == 0 {
            self.shared.not_empty.notify_all();
        }
    }
}

/// The receiving half. Cloning adds another consumer (work-sharing, not
/// broadcast: each message is delivered once).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Block until a message arrives. Errors once the queue is drained and
    /// every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).unwrap();
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().unwrap();
        match state.queue.pop_front() {
            Some(v) => {
                drop(state);
                self.shared.not_full.notify_one();
                Ok(v)
            }
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.shared.state.lock().unwrap().receivers += 1;
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut state = self.shared.state.lock().unwrap();
            state.receivers -= 1;
            state.receivers
        };
        if remaining == 0 {
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpmc_delivers_each_message_once() {
        let (tx, rx) = bounded::<u64>(8);
        let mut consumers = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || {
                let mut sum = 0u64;
                while let Ok(v) = rx.recv() {
                    sum += v;
                }
                sum
            }));
        }
        drop(rx);
        for i in 1..=100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 5_050);
    }

    #[test]
    fn bounded_send_blocks_until_room() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).map_err(|_| ()));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn disconnects_propagate() {
        let (tx, rx) = bounded::<u32>(4);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = bounded::<u32>(4);
        drop(rx);
        assert!(tx.send(9).is_err());
    }
}
