//! Accessibility spot-checks — the paper's title promises an *accessible*
//! dashboard. The HTML renderers must carry the structural affordances
//! assistive tech needs: ARIA roles/values on progress bars and spinners,
//! language and viewport declarations, alt-free semantic markup, and
//! machine-readable timestamps.

use hpcdash::SimSite;
use hpcdash_core::pages;
use hpcdash_core::widgets::components::progress_bar;
use hpcdash_http::HttpClient;
use hpcdash_workload::ScenarioConfig;

#[test]
fn progress_bars_expose_aria_values() {
    let html = progress_bar(73.2, "yellow", "CPU 94/128");
    assert!(html.contains("role=\"progressbar\""));
    assert!(html.contains("aria-valuenow=\"73.2\""));
    assert!(html.contains("aria-valuemin=\"0\""));
    assert!(html.contains("aria-valuemax=\"100\""));
}

#[test]
fn page_shells_declare_language_viewport_and_labelled_spinners() {
    let html = pages::homepage::render_shell("Anvil", "alice");
    assert!(html.contains("<html lang=\"en\">"));
    assert!(
        html.contains("name=\"viewport\""),
        "responsive meta tag present"
    );
    assert!(
        html.contains("role=\"status\""),
        "loading spinners are announced"
    );
    assert!(html.contains("aria-label=\"Loading"));
}

#[test]
fn rendered_pages_use_semantic_structure() {
    let site = SimSite::build(ScenarioConfig::small());
    site.warm_up(600);
    let server = site.serve().unwrap();
    let client = HttpClient::new();
    let user = site.scenario.population.users[0].clone();
    let payload = client
        .get(
            &format!("{}/api/myjobs?range=all", server.base_url()),
            &[("X-Remote-User", &user)],
        )
        .unwrap()
        .json()
        .unwrap();
    let html = pages::myjobs::render_full("Anvil", &user, &payload);
    assert!(html.contains("<thead>"), "tables have header groups");
    assert!(html.contains("<h1>"), "pages lead with a heading");
    // Job Overview timeline uses <time> elements carrying the UTC value.
    let overview = serde_json::json!({
        "header": {"id": "1", "name": "x", "state": "RUNNING", "state_color": "green",
                   "reason": null, "reason_message": null},
        "timeline": {"submitted": "2026-07-04T08:00:00", "eligible": "2026-07-04T08:00:00",
                     "started": "2026-07-04T08:01:00", "ended": null},
        "cards": {"job_information": {}, "resources": {"node_links": []},
                  "time": {}, "efficiency": {}},
        "session": null, "has_array": false, "array_url": null,
        "logs": {}, "exit_code": null,
    });
    let html = pages::joboverview::render_full("Anvil", &user, &overview, None, None);
    assert!(html.contains("<time data-utc=\"2026-07-04T08:01:00\">"));
}
