//! A Slurm workload-manager simulator.
//!
//! This crate is the substrate beneath the hpcdash dashboard: a from-scratch
//! model of the pieces of Slurm the paper's dashboard talks to.
//!
//! * Cluster entities: [`node::Node`]s, [`partition::Partition`]s,
//!   [`qos::Qos`] levels and an account/association tree
//!   ([`assoc::AssocStore`]) with `GrpTRES` limits.
//! * A job lifecycle ([`job::Job`]) driven by a multifactor-priority,
//!   EASY-backfill scheduler ([`sched`]).
//! * Two daemons mirroring the real deployment: [`ctld::Slurmctld`] (live
//!   cluster state; the daemon `squeue`/`scontrol`/`sinfo` talk to, and the
//!   one whose load the dashboard must protect) and [`dbd::Slurmdbd`]
//!   (accounting history; what `sacct` queries). Both carry an RPC cost
//!   model so cache experiments measure real contention.
//! * A job-log filesystem ([`joblog::JobLogFs`]) with owner-only permissions
//!   for the Job Overview output/error tabs.
//!
//! Determinism: all time flows through `hpcdash_simtime::Clock`; nothing in
//! this crate reads the wall clock or an unseeded RNG.

pub mod assoc;
pub mod cluster;
pub mod ctld;
pub mod dbd;
pub mod durable;
pub mod events;
pub mod job;
pub mod joblog;
pub mod loadmodel;
pub mod node;
pub mod partition;
pub mod qos;
pub mod sched;
pub mod snapshot;
pub mod tres;

pub use cluster::{ClusterError, ClusterSpec, ClusterState};
pub use ctld::Slurmctld;
pub use dbd::Slurmdbd;
pub use job::{Job, JobId, JobRequest, JobState, PendingReason, UsageProfile};
pub use node::{Node, NodeState};
pub use snapshot::{ClusterSnapshot, EpochCell};
pub use tres::Tres;
