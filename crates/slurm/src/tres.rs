//! Trackable resources (TRES): the `cpu=4,mem=16G,gres/gpu=2,node=1` strings
//! that appear throughout Slurm's command output, plus a structured form.

use serde::{Deserialize, Serialize};

/// A bundle of trackable resources. Memory is in megabytes, matching
/// slurmctld's internal unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Tres {
    pub cpus: u32,
    pub mem_mb: u64,
    pub gpus: u32,
    pub nodes: u32,
}

impl Tres {
    pub fn new(cpus: u32, mem_mb: u64, gpus: u32, nodes: u32) -> Tres {
        Tres {
            cpus,
            mem_mb,
            gpus,
            nodes,
        }
    }

    /// Component-wise sum.
    pub fn plus(self, other: Tres) -> Tres {
        Tres {
            cpus: self.cpus + other.cpus,
            mem_mb: self.mem_mb + other.mem_mb,
            gpus: self.gpus + other.gpus,
            nodes: self.nodes + other.nodes,
        }
    }

    /// Component-wise saturating subtraction.
    pub fn minus(self, other: Tres) -> Tres {
        Tres {
            cpus: self.cpus.saturating_sub(other.cpus),
            mem_mb: self.mem_mb.saturating_sub(other.mem_mb),
            gpus: self.gpus.saturating_sub(other.gpus),
            nodes: self.nodes.saturating_sub(other.nodes),
        }
    }

    /// True when every component of `self` fits within `avail`.
    pub fn fits_in(self, avail: Tres) -> bool {
        self.cpus <= avail.cpus
            && self.mem_mb <= avail.mem_mb
            && self.gpus <= avail.gpus
            && self.nodes <= avail.nodes
    }

    /// Render as Slurm's comma-separated TRES string. Zero components other
    /// than `cpu` are omitted, as slurmctld does.
    pub fn to_slurm(self) -> String {
        let mut parts = vec![format!("cpu={}", self.cpus)];
        if self.mem_mb > 0 {
            parts.push(format!("mem={}", format_mem_mb(self.mem_mb)));
        }
        if self.nodes > 0 {
            parts.push(format!("node={}", self.nodes));
        }
        if self.gpus > 0 {
            parts.push(format!("gres/gpu={}", self.gpus));
        }
        parts.join(",")
    }

    /// Parse a Slurm TRES string. Unknown keys are ignored (real TRES strings
    /// carry `billing=`, `energy=` and similar components the dashboard does
    /// not use).
    pub fn parse(s: &str) -> Option<Tres> {
        let mut t = Tres::default();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part.split_once('=')?;
            match key {
                "cpu" => t.cpus = value.parse().ok()?,
                "mem" => t.mem_mb = parse_mem_mb(value)?,
                "node" => t.nodes = value.parse().ok()?,
                "gres/gpu" | "gpu" => t.gpus = value.parse().ok()?,
                _ => {}
            }
        }
        Some(t)
    }
}

impl std::fmt::Display for Tres {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_slurm())
    }
}

/// Format megabytes the way Slurm does: `512M`, `16G`, `1.50T`.
pub fn format_mem_mb(mem_mb: u64) -> String {
    const G: u64 = 1_024;
    const T: u64 = 1_024 * 1_024;
    if mem_mb >= T && mem_mb.is_multiple_of(T) {
        format!("{}T", mem_mb / T)
    } else if mem_mb >= G && mem_mb.is_multiple_of(G) {
        format!("{}G", mem_mb / G)
    } else {
        format!("{mem_mb}M")
    }
}

/// Parse a Slurm memory string (`4000M`, `16G`, `2T`, bare `4096` = MB,
/// fractional `1.5G`). Returns megabytes.
pub fn parse_mem_mb(s: &str) -> Option<u64> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    let (num, mult) = match s.as_bytes()[s.len() - 1].to_ascii_uppercase() {
        b'K' => (&s[..s.len() - 1], 0.001),
        b'M' => (&s[..s.len() - 1], 1.0),
        b'G' => (&s[..s.len() - 1], 1_024.0),
        b'T' => (&s[..s.len() - 1], 1_024.0 * 1_024.0),
        b'0'..=b'9' => (s, 1.0),
        _ => return None,
    };
    let value: f64 = num.parse().ok()?;
    if value.is_nan() || value < 0.0 {
        return None;
    }
    Some((value * mult).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn arithmetic() {
        let a = Tres::new(4, 8_192, 1, 1);
        let b = Tres::new(2, 4_096, 0, 1);
        assert_eq!(a.plus(b), Tres::new(6, 12_288, 1, 2));
        assert_eq!(a.minus(b), Tres::new(2, 4_096, 1, 0));
        assert_eq!(b.minus(a), Tres::new(0, 0, 0, 0), "minus saturates");
    }

    #[test]
    fn fits() {
        let avail = Tres::new(8, 16_384, 2, 1);
        assert!(Tres::new(8, 16_384, 2, 1).fits_in(avail));
        assert!(Tres::new(1, 1, 0, 0).fits_in(avail));
        assert!(!Tres::new(9, 1, 0, 0).fits_in(avail));
        assert!(!Tres::new(1, 16_385, 0, 0).fits_in(avail));
        assert!(!Tres::new(1, 1, 3, 0).fits_in(avail));
    }

    #[test]
    fn to_slurm_string() {
        assert_eq!(
            Tres::new(4, 16_384, 0, 1).to_slurm(),
            "cpu=4,mem=16G,node=1"
        );
        assert_eq!(
            Tres::new(128, 257_000, 4, 2).to_slurm(),
            "cpu=128,mem=257000M,node=2,gres/gpu=4"
        );
        assert_eq!(Tres::new(1, 0, 0, 0).to_slurm(), "cpu=1");
    }

    #[test]
    fn parse_tres_string() {
        assert_eq!(
            Tres::parse("cpu=4,mem=16G,node=1"),
            Some(Tres::new(4, 16_384, 0, 1))
        );
        assert_eq!(
            Tres::parse("cpu=128,mem=257000M,node=2,gres/gpu=4,billing=128"),
            Some(Tres::new(128, 257_000, 4, 2))
        );
        assert_eq!(Tres::parse(""), Some(Tres::default()));
        assert_eq!(Tres::parse("cpu"), None);
        assert_eq!(Tres::parse("cpu=x"), None);
    }

    #[test]
    fn mem_formats() {
        assert_eq!(format_mem_mb(512), "512M");
        assert_eq!(format_mem_mb(16_384), "16G");
        assert_eq!(format_mem_mb(1_024 * 1_024), "1T");
        assert_eq!(format_mem_mb(1_500), "1500M");
    }

    #[test]
    fn mem_parses() {
        assert_eq!(parse_mem_mb("4096"), Some(4_096));
        assert_eq!(parse_mem_mb("4096M"), Some(4_096));
        assert_eq!(parse_mem_mb("16G"), Some(16_384));
        assert_eq!(parse_mem_mb("1.5G"), Some(1_536));
        assert_eq!(parse_mem_mb("2T"), Some(2 * 1_024 * 1_024));
        assert_eq!(parse_mem_mb("1024K"), Some(1));
        assert_eq!(parse_mem_mb(""), None);
        assert_eq!(parse_mem_mb("abc"), None);
        assert_eq!(parse_mem_mb("-5G"), None);
    }

    proptest! {
        #[test]
        fn tres_roundtrip(cpus in 0u32..100_000, mem in 0u64..10_000_000, gpus in 0u32..1_000, nodes in 0u32..10_000) {
            let t = Tres::new(cpus, mem, gpus, nodes);
            prop_assert_eq!(Tres::parse(&t.to_slurm()), Some(t));
        }

        #[test]
        fn mem_roundtrip(mem in 0u64..100_000_000) {
            prop_assert_eq!(parse_mem_mb(&format_mem_mb(mem)), Some(mem));
        }

        #[test]
        fn plus_minus_inverse(a_c in 0u32..1000, a_m in 0u64..10_000, b_c in 0u32..1000, b_m in 0u64..10_000) {
            let a = Tres::new(a_c, a_m, 0, 0);
            let b = Tres::new(b_c, b_m, 0, 0);
            prop_assert_eq!(a.plus(b).minus(b), a);
        }
    }
}
