//! The dual-caching behaviour (paper §2.4, §3.2) across the whole stack:
//! per-source TTLs, daemon protection, single-flight under request storms,
//! and the client cache's instant warm loads.

use hpcdash::SimSite;
use hpcdash_client::FetchOutcome;
use hpcdash_core::{CachePolicy, DashboardConfig};
use hpcdash_http::HttpClient;
use hpcdash_workload::ScenarioConfig;

#[test]
fn server_cache_expires_on_simulated_time() {
    let site = SimSite::build(ScenarioConfig::small());
    let server = site.serve().unwrap();
    let base = server.base_url();
    let client = HttpClient::new();
    let user = site.scenario.population.users[0].clone();
    let get = |path: &str| {
        client
            .get(&format!("{base}{path}"), &[("X-Remote-User", &user)])
            .unwrap()
    };

    // recent_jobs TTL is 30 simulated seconds.
    get("/api/recent_jobs");
    get("/api/recent_jobs");
    assert_eq!(site.scenario.ctld.stats().count_of("squeue"), 1);
    site.scenario.clock.advance(31);
    get("/api/recent_jobs");
    assert_eq!(
        site.scenario.ctld.stats().count_of("squeue"),
        2,
        "TTL expiry refetches"
    );
}

#[test]
fn per_source_ttls_differ() {
    let site = SimSite::build(ScenarioConfig::small());
    let server = site.serve().unwrap();
    let base = server.base_url();
    let client = HttpClient::new();
    let user = site.scenario.population.users[0].clone();
    let get = |path: &str| {
        client
            .get(&format!("{base}{path}"), &[("X-Remote-User", &user)])
            .unwrap()
    };

    get("/api/recent_jobs"); // 30s TTL -> squeue
    get("/api/system_status"); // 60s TTL -> sinfo
                               // +45s: recent_jobs expired, system_status still fresh.
    site.scenario.clock.advance(45);
    get("/api/recent_jobs");
    get("/api/system_status");
    assert_eq!(site.scenario.ctld.stats().count_of("squeue"), 2);
    assert_eq!(site.scenario.ctld.stats().count_of("sinfo"), 1);
}

#[test]
fn query_storm_is_coalesced_to_one_backend_call() {
    let site = SimSite::build(ScenarioConfig::small());
    let server = site.serve().unwrap();
    let base = server.base_url();
    let user = site.scenario.population.users[0].clone();

    // 16 concurrent cold requests for the same system-wide payload.
    let mut handles = Vec::new();
    for _ in 0..16 {
        let base = base.clone();
        let user = user.clone();
        handles.push(std::thread::spawn(move || {
            let client = HttpClient::new();
            client
                .get(
                    &format!("{base}/api/clusterstatus"),
                    &[("X-Remote-User", &user)],
                )
                .unwrap()
                .status
        }));
    }
    for h in handles {
        assert_eq!(h.join().unwrap(), 200);
    }
    let scontrol_calls = site.scenario.ctld.stats().count_of("scontrol_node");
    assert!(
        scontrol_calls <= 2,
        "single-flight should coalesce the storm, saw {scontrol_calls} backend calls"
    );
}

#[test]
fn disabling_the_server_cache_forwards_every_request() {
    let mut cfg = DashboardConfig::purdue_like();
    cfg.cache = CachePolicy::disabled();
    let site = SimSite::build_with(ScenarioConfig::small(), cfg);
    let server = site.serve().unwrap();
    let base = server.base_url();
    let client = HttpClient::new();
    let user = site.scenario.population.users[0].clone();
    for _ in 0..5 {
        client
            .get(
                &format!("{base}/api/system_status"),
                &[("X-Remote-User", &user)],
            )
            .unwrap();
    }
    assert_eq!(site.scenario.ctld.stats().count_of("sinfo"), 5);
}

#[test]
fn client_cache_makes_warm_homepage_loads_nearly_free() {
    let site = SimSite::build(ScenarioConfig::small());
    site.warm_up(900);
    let server = site.serve().unwrap();
    let user = site.scenario.population.users[0].clone();
    let browser = site.browser(&server.base_url(), &user);

    let cold = browser.load_homepage().unwrap();
    let after_cold = browser.network_fetch_count();
    assert!(after_cold >= 5, "cold load hits every widget route");

    let warm = browser.load_homepage().unwrap();
    for (name, result) in &warm.widgets {
        assert_eq!(
            result.as_ref().unwrap().outcome,
            FetchOutcome::CacheFresh,
            "{name} should come from the client cache"
        );
    }
    assert_eq!(
        browser.network_fetch_count(),
        after_cold,
        "no new API traffic"
    );
    // Perceived widget latency on the warm load is cache-read time.
    let warm_p: Vec<_> = warm
        .widgets
        .iter()
        .map(|(_, r)| r.as_ref().unwrap().perceived)
        .collect();
    let cold_p: Vec<_> = cold
        .widgets
        .iter()
        .map(|(_, r)| r.as_ref().unwrap().perceived)
        .collect();
    let warm_max = warm_p.iter().max().unwrap();
    let cold_max = cold_p.iter().max().unwrap();
    assert!(
        warm_max < cold_max,
        "warm perceived latency {warm_max:?} should beat cold {cold_max:?}"
    );
}

#[test]
fn stale_client_entries_render_then_revalidate() {
    let site = SimSite::build(ScenarioConfig::small());
    let server = site.serve().unwrap();
    let user = site.scenario.population.users[0].clone();
    let browser = site.browser(&server.base_url(), &user);

    browser.fetch_api("/api/system_status").unwrap();
    // Cross the client freshness horizon (30s default).
    site.scenario
        .clock
        .advance(site.ctx().cfg.cache.client_fresh + 1);
    let r = browser.fetch_api("/api/system_status").unwrap();
    assert_eq!(r.outcome, FetchOutcome::StaleRevalidated);
    assert!(
        r.perceived < r.network,
        "stale render did not wait for the network"
    );
}
