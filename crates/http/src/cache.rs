//! The render-bytes cache: pre-serialized hot-route responses.
//!
//! PR 7's `RestCache` proved the pattern for `/slurm/v0`: key serialized
//! bytes on the snapshot publication sequence and a repeat request becomes
//! a hash lookup plus an `Arc` clone. This generalizes it to any route the
//! router marks cacheable. An entry stores the body as `Arc<[u8]>` and a
//! strong ETag derived from the *content* (FNV-64 of the bytes) — content-
//! derived on purpose, so when a new epoch renders byte-identical JSON the
//! ETag survives and `If-None-Match` still collapses to a 304. Validity is
//! the intersection of two signals: the publisher's version (snapshot seq;
//! mismatch = the world changed) and a TTL on the *simulation* clock that
//! mirrors the widget cache's TTL, so the render cache can never serve
//! longer than the data layer beneath it would have.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A route's answer to "may this request be served from rendered bytes?"
/// Produced per-request by the key function registered with the route.
#[derive(Debug, Clone)]
pub struct CacheDecision {
    /// Full identity of the rendered view: route | subject | scope
    /// fingerprint (anything that changes the bytes must be in here).
    pub key: String,
    /// Publisher version (cluster snapshot seq) the entry must match.
    pub version: u64,
    /// Max age on the sim clock; `0` is handled upstream (no decision).
    pub ttl_secs: u64,
    /// Current sim time, for the age check.
    pub now_secs: u64,
}

/// One cached render.
#[derive(Clone)]
pub struct CachedRender {
    pub etag: Arc<str>,
    pub body: Arc<[u8]>,
    pub content_type: String,
    version: u64,
    born_secs: u64,
}

/// Render-bytes store. Entries are overwritten in place per key, so memory
/// is bounded by the number of distinct (route, subject, scope) views.
#[derive(Default)]
pub struct RenderCache {
    entries: Mutex<HashMap<String, CachedRender>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl RenderCache {
    pub fn new() -> RenderCache {
        RenderCache::default()
    }

    /// The entry for `d.key`, if it is still valid under `d` (same
    /// publisher version *and* younger than the TTL).
    pub fn get(&self, d: &CacheDecision) -> Option<CachedRender> {
        let entries = self.entries.lock();
        match entries.get(&d.key) {
            Some(e)
                if e.version == d.version
                    && d.now_secs.saturating_sub(e.born_secs) < d.ttl_secs =>
            {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.clone())
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store freshly rendered bytes for `d.key` and return the entry
    /// (so the very response that populated the cache can share its body).
    pub fn put(&self, d: &CacheDecision, body: Arc<[u8]>, content_type: &str) -> CachedRender {
        let entry = CachedRender {
            etag: Arc::from(etag_for(&body).as_str()),
            body,
            content_type: content_type.to_string(),
            version: d.version,
            born_secs: d.now_secs,
        };
        self.entries.lock().insert(d.key.clone(), entry.clone());
        entry
    }

    /// Drop every render built from a publisher version below `version`.
    /// Called after a daemon crash-recovery: pre-crash epochs are dead and
    /// their bytes may describe rolled-back state. Returns how many entries
    /// were purged.
    pub fn purge_version_below(&self, version: u64) -> usize {
        let mut entries = self.entries.lock();
        let before = entries.len();
        entries.retain(|_, e| e.version >= version);
        before - entries.len()
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Strong ETag for a body: quoted FNV-1a/64 of the content. Content-hashed
/// (not seq-prefixed) so byte-identical renders across epochs revalidate.
pub fn etag_for(body: &[u8]) -> String {
    format!("\"{:016x}\"", fnv64(body))
}

/// FNV-1a, 64-bit — tiny, dependency-free, and plenty for cache validators
/// (collisions only risk an extra render, never wrong bytes).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(key: &str, version: u64, now: u64) -> CacheDecision {
        CacheDecision {
            key: key.to_string(),
            version,
            ttl_secs: 30,
            now_secs: now,
        }
    }

    #[test]
    fn version_and_ttl_both_gate_validity() {
        let cache = RenderCache::new();
        let decision = d("jobs|alice", 5, 100);
        assert!(cache.get(&decision).is_none());
        cache.put(&decision, Arc::from(&b"{\"a\":1}"[..]), "application/json");

        // Same version, inside TTL: hit.
        let hit = cache.get(&d("jobs|alice", 5, 129)).unwrap();
        assert_eq!(&*hit.body, b"{\"a\":1}");

        // Same version, TTL lapsed: miss (the data layer would refetch).
        assert!(cache.get(&d("jobs|alice", 5, 130)).is_none());

        // New version inside TTL: miss (the world changed).
        assert!(cache.get(&d("jobs|alice", 6, 101)).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn purge_drops_dead_epoch_renders() {
        let cache = RenderCache::new();
        cache.put(&d("old", 5, 0), Arc::from(&b"dead"[..]), "text/plain");
        cache.put(&d("new", 9, 0), Arc::from(&b"live"[..]), "text/plain");
        assert_eq!(cache.purge_version_below(9), 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&d("new", 9, 10)).is_some());
    }

    #[test]
    fn etags_are_content_derived() {
        let cache = RenderCache::new();
        let v5 = cache.put(&d("k", 5, 0), Arc::from(&b"same-bytes"[..]), "text/plain");
        let v6 = cache.put(&d("k", 6, 40), Arc::from(&b"same-bytes"[..]), "text/plain");
        assert_eq!(
            v5.etag, v6.etag,
            "identical bytes across epochs keep the ETag (cross-epoch 304s)"
        );
        let other = cache.put(&d("k", 7, 80), Arc::from(&b"other"[..]), "text/plain");
        assert_ne!(v5.etag, other.etag);
        assert!(
            v5.etag.starts_with('"') && v5.etag.ends_with('"'),
            "strong quoted ETag"
        );
    }
}
