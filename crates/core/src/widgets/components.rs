//! Shared HTML building blocks: cards, badges, progress bars.

use crate::template::escape_html;

/// A colour-coded progress bar with a text label, the visual primitive the
/// System Status / Accounts / Storage widgets share (paper §3.3-§3.5).
pub fn progress_bar(percent: f64, color: &str, label: &str) -> String {
    let clamped = percent.clamp(0.0, 100.0);
    format!(
        "<div class=\"progress\"><div class=\"progress-bar bg-{}\" style=\"width:{:.1}%\" \
         role=\"progressbar\" aria-valuenow=\"{:.1}\" aria-valuemin=\"0\" aria-valuemax=\"100\">{}</div></div>",
        color,
        clamped,
        clamped,
        escape_html(label),
    )
}

/// A Bootstrap-style card with a header.
pub fn card(widget_id: &str, title: &str, body_html: &str) -> String {
    format!(
        "<div class=\"card widget\" data-widget=\"{}\"><div class=\"card-header\">{}</div>\
         <div class=\"card-body\">{}</div></div>",
        escape_html(widget_id),
        escape_html(title),
        body_html,
    )
}

/// A state/urgency badge.
pub fn badge(color: &str, text: &str) -> String {
    format!(
        "<span class=\"badge badge-{}\">{}</span>",
        color,
        escape_html(text)
    )
}

/// A hoverable tooltip wrapper (the Recent Jobs status descriptions).
pub fn tooltip(visible: &str, tip: &str) -> String {
    format!(
        "<span class=\"has-tooltip\" title=\"{}\">{}</span>",
        escape_html(tip),
        escape_html(visible)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_bar_clamps_and_colors() {
        let html = progress_bar(142.0, "red", "100%");
        assert!(html.contains("width:100.0%"));
        assert!(html.contains("bg-red"));
        let html = progress_bar(-5.0, "green", "0%");
        assert!(html.contains("width:0.0%"));
    }

    #[test]
    fn card_structure() {
        let html = card("storage", "Storage", "<p>body</p>");
        assert!(html.contains("data-widget=\"storage\""));
        assert!(html.contains("<p>body</p>"), "body html passes through raw");
        assert!(html.contains("Storage"));
    }

    #[test]
    fn badge_and_tooltip_escape() {
        assert!(badge("red", "<x>").contains("&lt;x&gt;"));
        let t = tooltip("PD", "waiting \"patiently\"");
        assert!(t.contains("title=\"waiting &quot;patiently&quot;\""));
    }
}
