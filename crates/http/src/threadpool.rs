//! A fixed worker pool over crossbeam channels (the server's request
//! executors).

use crossbeam::channel::{bounded, Sender};
use hpcdash_obs::Gauge;
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size thread pool. Dropping it joins all workers.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    /// Optional gauge tracking jobs submitted but not yet picked up by a
    /// worker (the accept-queue backlog the paper's load experiments watch).
    queue_gauge: Option<Arc<Gauge>>,
}

impl ThreadPool {
    /// Spawn `size` workers (at least one).
    pub fn new(size: usize) -> ThreadPool {
        let size = size.max(1);
        let (sender, receiver) = bounded::<Job>(size * 64);
        let mut workers = Vec::with_capacity(size);
        for i in 0..size {
            let rx = receiver.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("http-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn worker"),
            );
        }
        ThreadPool {
            sender: Some(sender),
            workers,
            queue_gauge: None,
        }
    }

    /// Report queue depth (jobs submitted, not yet started) to `gauge`.
    pub fn set_queue_gauge(&mut self, gauge: Arc<Gauge>) {
        self.queue_gauge = Some(gauge);
    }

    /// Queue a job; blocks if the queue is full (natural backpressure).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let job: Job = match &self.queue_gauge {
            Some(gauge) => {
                gauge.inc();
                let gauge = gauge.clone();
                Box::new(move || {
                    gauge.dec();
                    job();
                })
            }
            None => Box::new(job),
        };
        self.sender
            .as_ref()
            .expect("pool is live")
            .send(job)
            .expect("workers alive");
    }

    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the channel so workers drain and exit.
        self.sender.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = counter.clone();
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // joins
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn zero_size_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.worker_count(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = done.clone();
        pool.execute(move || {
            d.store(1, Ordering::SeqCst);
        });
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn jobs_run_concurrently() {
        let pool = ThreadPool::new(4);
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let go = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let b = barrier.clone();
            let g = go.clone();
            pool.execute(move || {
                // All four must be in flight at once for the barrier to open.
                b.wait();
                g.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(go.load(Ordering::SeqCst), 4);
    }
}
