//! Vendored stand-in for the `rand` crate (API subset used by the
//! workspace: `StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `gen`, `gen_bool`, `gen_range`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, decent
//! statistical quality, and deterministic per seed, which is all the
//! workload simulator needs.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    /// Seed from OS-ish entropy: wall clock + a counter. Good enough for
    /// non-cryptographic simulation defaults.
    fn from_entropy() -> Self {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        let c = COUNTER.fetch_add(0x632b_e593_26bf_e191, std::sync::atomic::Ordering::Relaxed);
        Self::seed_from_u64(t ^ c)
    }
}

/// Types that can be sampled uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    fn sample_standard(rng: &mut impl RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard(rng: &mut impl RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard(rng: &mut impl RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard(rng: &mut impl RngCore) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard(rng: &mut impl RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types that can be sampled uniformly from a sub-range (`gen_range`).
pub trait SampleUniform: Sized {
    fn sample_between(rng: &mut impl RngCore, start: Self, end: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(
                rng: &mut impl RngCore,
                start: $t,
                end: $t,
                inclusive: bool,
            ) -> $t {
                let extra = u128::from(inclusive);
                if inclusive {
                    assert!(start <= end, "gen_range: empty range");
                } else {
                    assert!(start < end, "gen_range: empty range");
                }
                let span = (end as i128 - start as i128) as u128 + extra;
                let v = uniform_u128(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between(rng: &mut impl RngCore, start: f64, end: f64, _inclusive: bool) -> f64 {
        assert!(start < end, "gen_range: empty range");
        start + f64::sample_standard(rng) * (end - start)
    }
}

impl SampleUniform for f32 {
    fn sample_between(rng: &mut impl RngCore, start: f32, end: f32, _inclusive: bool) -> f32 {
        assert!(start < end, "gen_range: empty range");
        start + f32::sample_standard(rng) * (end - start)
    }
}

/// Ranges usable with `gen_range`. The single blanket impl per range shape
/// ties the output type to the range's element type, which is what lets
/// integer-literal inference flow through `gen_range(0..4)` like real rand.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut impl RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        let (start, end) = self.into_inner();
        T::sample_between(rng, start, end, true)
    }
}

/// Debiased bounded sampling (widening-multiply with rejection).
fn uniform_u128(rng: &mut impl RngCore, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        // Lemire's debiased widening-multiply method.
        let span = span as u64;
        let threshold = span.wrapping_neg() % span;
        loop {
            let x = rng.next_u64();
            let m = (x as u128) * (span as u128);
            if (m as u64) >= threshold {
                return m >> 64;
            }
        }
    }
    let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    v % span
}

/// High-level sampling helpers (auto-implemented for every `RngCore`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A convenience thread-local generator (`rand::thread_rng()` analog).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
