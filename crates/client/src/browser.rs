//! One simulated browser tab.

use hpcdash_cache::IndexedDb;
use hpcdash_http::{HttpClient, TRACE_HEADER};
use hpcdash_obs::trace::TraceScope;
use hpcdash_obs::{Span, TraceId};
use hpcdash_simtime::SharedClock;
use parking_lot::Mutex;
use serde_json::Value;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Where the rendered data came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchOutcome {
    /// Served from the client cache, still fresh — no network traffic.
    CacheFresh,
    /// Stale cache rendered instantly, then revalidated over the network.
    StaleRevalidated,
    /// Cache miss: the user waited for the network.
    Network,
    /// A conditional request (`If-None-Match` from the last seen ETag) the
    /// server answered `304 Not Modified`: a round trip happened, but no
    /// body crossed the wire — the validator-cached copy rendered.
    NotModified,
    /// The revalidation failed (network error, 5xx, or a server payload
    /// already marked degraded): the client kept rendering its own
    /// last-known-good copy instead of going blank.
    StaleOnError,
}

/// One component fetch as the user experienced it.
#[derive(Debug, Clone)]
pub struct FetchResult {
    pub value: Value,
    pub outcome: FetchOutcome,
    /// Time until the component had data to render.
    pub perceived: Duration,
    /// Time spent on the network (zero for fresh cache hits).
    pub network: Duration,
    /// The end-to-end trace id, when a network request was made (`None` for
    /// fresh cache hits — no request, no trace). Look the hops up in
    /// `hpcdash_obs::trace::sink()`.
    pub trace: Option<TraceId>,
}

/// A full homepage load.
#[derive(Debug)]
pub struct PageLoad {
    /// Time to receive the HTML shell.
    pub ttfb: Duration,
    /// Per-widget results, in render order.
    pub widgets: Vec<(String, Result<FetchResult, String>)>,
    /// Time until every widget had data.
    pub total: Duration,
}

impl PageLoad {
    /// How many widgets rendered successfully.
    pub fn healthy_widgets(&self) -> usize {
        self.widgets.iter().filter(|(_, r)| r.is_ok()).count()
    }
}

/// True when the server annotated this payload as a stale fallback
/// (`"degraded": true`, from the resilience layer's serve-stale-on-error).
fn is_degraded(value: &Value) -> bool {
    value.get("degraded") == Some(&Value::Bool(true))
}

/// A headless dashboard client for one user.
pub struct DashboardClient {
    http: HttpClient,
    base_url: String,
    user: String,
    db: IndexedDb,
    clock: SharedClock,
    /// Client-cache freshness horizon (seconds); `None` disables the client
    /// cache entirely (the no-client-cache ablation).
    fresh_secs: Option<u64>,
    /// API token secret sent as `Authorization: Bearer` on every API
    /// request; the `/slurm/v0` family authenticates with this instead of
    /// `X-Remote-User`.
    bearer: Option<String>,
    network_fetches: std::sync::atomic::AtomicU64,
    /// Last seen strong validator per path: `(etag, body)`. Requests send
    /// `If-None-Match: <etag>`; a `304 Not Modified` renders the stored
    /// body without a byte of payload crossing the wire.
    validators: Mutex<HashMap<String, (String, Value)>>,
    not_modified: std::sync::atomic::AtomicU64,
}

impl DashboardClient {
    pub fn new(
        base_url: &str,
        user: &str,
        clock: SharedClock,
        fresh_secs: Option<u64>,
    ) -> DashboardClient {
        DashboardClient {
            http: HttpClient::new(),
            base_url: base_url.trim_end_matches('/').to_string(),
            user: user.to_string(),
            db: IndexedDb::new(),
            clock,
            fresh_secs,
            bearer: None,
            network_fetches: std::sync::atomic::AtomicU64::new(0),
            validators: Mutex::new(HashMap::new()),
            not_modified: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Attach an API token: subsequent requests carry
    /// `Authorization: Bearer <secret>` alongside the proxy identity.
    pub fn with_bearer(mut self, secret: &str) -> DashboardClient {
        self.bearer = Some(secret.to_string());
        self
    }

    /// Reuse one TCP connection across requests (HTTP/1.1 keep-alive)
    /// instead of a fresh connect per fetch — how a real browser behaves.
    pub fn with_keep_alive(mut self) -> DashboardClient {
        self.http = HttpClient::keep_alive();
        self
    }

    pub fn user(&self) -> &str {
        &self.user
    }

    /// Total requests that actually reached the backend.
    pub fn network_fetch_count(&self) -> u64 {
        self.network_fetches
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// How many of those requests the server answered `304 Not Modified`
    /// (a round trip with no body — the ETag revalidation fast path).
    pub fn not_modified_count(&self) -> u64 {
        self.not_modified.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// `(connections opened, requests served over a reused connection)` for
    /// this client's transport. Both zero for a one-shot (non-keep-alive)
    /// client.
    pub fn connection_stats(&self) -> (u64, u64) {
        self.http.connection_stats()
    }

    /// Fetch an API route through the client cache, mirroring the frontend
    /// logic in `assets/cachedb.js`.
    pub fn fetch_api(&self, path: &str) -> Result<FetchResult, String> {
        let now = self.clock.now();
        if let Some(fresh_secs) = self.fresh_secs {
            if let Some(rec) = self.db.get("api", path) {
                let start = Instant::now();
                let value = rec.value.clone();
                let perceived = start.elapsed();
                if rec.fresh(now, fresh_secs) {
                    return Ok(FetchResult {
                        value,
                        outcome: FetchOutcome::CacheFresh,
                        perceived,
                        network: Duration::ZERO,
                        trace: None,
                    });
                }
                // Stale: the user already sees the cached data; refresh in
                // the "background" (synchronously here, but not counted
                // toward perceived latency). A failed refresh — or one the
                // server itself marked degraded — keeps our copy on screen
                // and in the store: serve-stale-on-error, client edition.
                return Ok(match self.network_get(path) {
                    Ok((fresh_value, network, trace, _not_modified))
                        if !is_degraded(&fresh_value) =>
                    {
                        self.db.put("api", path, fresh_value, now);
                        FetchResult {
                            value,
                            outcome: FetchOutcome::StaleRevalidated,
                            perceived,
                            network,
                            trace: Some(trace),
                        }
                    }
                    Ok((_degraded, network, trace, _)) => FetchResult {
                        value,
                        outcome: FetchOutcome::StaleOnError,
                        perceived,
                        network,
                        trace: Some(trace),
                    },
                    Err(_) => FetchResult {
                        value,
                        outcome: FetchOutcome::StaleOnError,
                        perceived,
                        network: Duration::ZERO,
                        trace: None,
                    },
                });
            }
        }
        let start = Instant::now();
        let (value, network, trace, not_modified) = self.network_get(path)?;
        let perceived = start.elapsed();
        // Degraded payloads render but are never stored: adopting the
        // server's stale fallback would launder old data into a "fresh"
        // client entry.
        if self.fresh_secs.is_some() && !is_degraded(&value) {
            self.db.put("api", path, value.clone(), now);
        }
        Ok(FetchResult {
            value,
            outcome: if not_modified {
                FetchOutcome::NotModified
            } else {
                FetchOutcome::Network
            },
            perceived,
            network,
            trace: Some(trace),
        })
    }

    /// One wire request. Each request starts a fresh trace: the id rides the
    /// `X-Trace-Id` header to the server, so the "client" span recorded here
    /// and the server-side hops land under the same trace in the span sink.
    fn network_get(&self, path: &str) -> Result<(Value, Duration, TraceId, bool), String> {
        let trace = TraceId::generate();
        let _scope = TraceScope::enter(trace);
        let _span = Span::enter("client").attr("path", path.to_string());
        let trace_hex = trace.to_hex();
        let start = Instant::now();
        self.network_fetches
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let validator = self.validators.lock().get(path).cloned();
        let mut headers: Vec<(&str, &str)> =
            vec![("X-Remote-User", &self.user), (TRACE_HEADER, &trace_hex)];
        let auth = self.bearer.as_ref().map(|s| format!("Bearer {s}"));
        if let Some(auth) = &auth {
            headers.push(("Authorization", auth));
        }
        if let Some((etag, _)) = &validator {
            headers.push(("If-None-Match", etag));
        }
        let resp = self
            .http
            .get(&format!("{}{}", self.base_url, path), &headers)
            .map_err(|e| e.to_string())?;
        let elapsed = start.elapsed();
        if resp.status == 304 {
            // Our copy is still current; render it without reparsing.
            if let Some((_, body)) = validator {
                self.not_modified
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return Ok((body, elapsed, trace, true));
            }
            return Err(format!("{path} -> HTTP 304 without a stored validator"));
        }
        if !resp.is_success() {
            return Err(format!("{} -> HTTP {}", path, resp.status));
        }
        let value = resp.json().map_err(|e| format!("{path}: bad json: {e}"))?;
        match resp.header("etag") {
            Some(etag) => {
                self.validators
                    .lock()
                    .insert(path.to_string(), (etag.to_string(), value.clone()));
            }
            None => {
                self.validators.lock().remove(path);
            }
        }
        Ok((value, elapsed, trace, false))
    }

    /// Fetch a page shell (HTML), returning time-to-first-byte.
    pub fn fetch_shell(&self, path: &str) -> Result<(String, Duration), String> {
        let start = Instant::now();
        let resp = self
            .http
            .get(
                &format!("{}{}", self.base_url, path),
                &[("X-Remote-User", &self.user)],
            )
            .map_err(|e| e.to_string())?;
        let ttfb = start.elapsed();
        if !resp.is_success() {
            return Err(format!("{} -> HTTP {}", path, resp.status));
        }
        Ok((resp.body_string(), ttfb))
    }

    /// Load the homepage the way a browser does: shell first, then every
    /// widget's API route.
    pub fn load_homepage(&self) -> Result<PageLoad, String> {
        let start = Instant::now();
        let (_shell, ttfb) = self.fetch_shell("/")?;
        let widget_routes = [
            ("announcements", "/api/announcements"),
            ("recent_jobs", "/api/recent_jobs"),
            ("system_status", "/api/system_status"),
            ("accounts", "/api/accounts"),
            ("storage", "/api/storage"),
        ];
        let widgets = widget_routes
            .iter()
            .map(|(name, path)| (name.to_string(), self.fetch_api(path)))
            .collect();
        Ok(PageLoad {
            ttfb,
            widgets,
            total: start.elapsed(),
        })
    }

    /// Drop the client cache (a "new browser session").
    pub fn clear_cache(&self) {
        self.db.clear_store("api");
    }

    /// Export / import the cache (persistence across "sessions").
    pub fn export_cache(&self) -> String {
        self.db.export_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcdash_core::{Dashboard, DashboardConfig, DashboardContext};
    use hpcdash_news::NewsFeed;
    use hpcdash_simtime::{SimClock, Timestamp};
    use hpcdash_slurm::assoc::{Account, AssocStore};
    use hpcdash_slurm::cluster::ClusterSpec;
    use hpcdash_slurm::ctld::Slurmctld;
    use hpcdash_slurm::dbd::Slurmdbd;
    use hpcdash_slurm::joblog::JobLogFs;
    use hpcdash_slurm::loadmodel::RpcCostModel;
    use hpcdash_slurm::node::Node;
    use hpcdash_slurm::partition::Partition;
    use hpcdash_slurm::qos::Qos;
    use hpcdash_storage::StorageDb;
    use std::sync::Arc;

    fn test_site() -> (hpcdash_http::Server, SimClock, Arc<StorageDb>) {
        let clock = SimClock::new(Timestamp(1_000));
        let mut assoc = AssocStore::new();
        assoc.add_account(Account::new("physics"));
        assoc.add_user("physics", "alice");
        let nodes = vec![Node::new("a001", 16, 64_000, 0)];
        let spec = ClusterSpec {
            name: "t".to_string(),
            nodes,
            partitions: vec![Partition::new("cpu").with_nodes(vec!["a001".to_string()])],
            qos: Qos::standard_set(),
            assoc,
        };
        let dbd = Arc::new(Slurmdbd::with_cost(RpcCostModel::free()));
        let logs = Arc::new(JobLogFs::new());
        let ctld = Arc::new(Slurmctld::with_cost(
            spec,
            clock.shared(),
            dbd.clone(),
            logs.clone(),
            RpcCostModel::free(),
        ));
        let storage = Arc::new(StorageDb::with_cost(std::time::Duration::ZERO));
        storage.provision_user("alice", Timestamp(1_000));
        let ctx = DashboardContext::new(
            DashboardConfig::generic("Test"),
            clock.shared(),
            ctld,
            dbd,
            logs,
            storage.clone(),
            Arc::new(NewsFeed::new()),
        );
        let dash = Dashboard::new(ctx);
        let server = dash.serve("127.0.0.1:0", 4).unwrap();
        // Keep the dashboard alive as long as the server: leak it (tests).
        std::mem::forget(dash);
        (server, clock, storage)
    }

    #[test]
    fn cold_load_then_warm_load() {
        let (server, _clock, _storage) = test_site();
        let clock2 = SimClock::new(Timestamp(1_000));
        let client = DashboardClient::new(&server.base_url(), "alice", clock2.shared(), Some(30));
        let cold = client.load_homepage().unwrap();
        assert_eq!(cold.healthy_widgets(), 5);
        assert!(cold
            .widgets
            .iter()
            .all(|(_, r)| r.as_ref().unwrap().outcome == FetchOutcome::Network));
        let cold_fetches = client.network_fetch_count();

        let warm = client.load_homepage().unwrap();
        assert!(warm
            .widgets
            .iter()
            .all(|(_, r)| r.as_ref().unwrap().outcome == FetchOutcome::CacheFresh));
        // No new API traffic, only the shell.
        assert_eq!(client.network_fetch_count(), cold_fetches);
        assert!(
            warm.total < cold.total * 10,
            "warm load not absurdly slower"
        );
    }

    #[test]
    fn stale_entries_revalidate() {
        let (server, _server_clock, _storage) = test_site();
        let clock = SimClock::new(Timestamp(1_000));
        let client = DashboardClient::new(&server.base_url(), "alice", clock.shared(), Some(30));
        client.fetch_api("/api/system_status").unwrap();
        clock.advance(31);
        let r = client.fetch_api("/api/system_status").unwrap();
        assert_eq!(r.outcome, FetchOutcome::StaleRevalidated);
        assert!(r.network > Duration::ZERO);
        // Now fresh again.
        let r = client.fetch_api("/api/system_status").unwrap();
        assert_eq!(r.outcome, FetchOutcome::CacheFresh);
    }

    #[test]
    fn disabled_cache_always_hits_network() {
        let (server, _clock, _storage) = test_site();
        let clock = SimClock::new(Timestamp(1_000));
        let client = DashboardClient::new(&server.base_url(), "alice", clock.shared(), None);
        // First fetch pays for the body and learns the ETag; repeats still
        // hit the network but come back 304 from the render-bytes cache.
        let r = client.fetch_api("/api/system_status").unwrap();
        assert_eq!(r.outcome, FetchOutcome::Network);
        let first = r.value;
        for _ in 0..2 {
            let r = client.fetch_api("/api/system_status").unwrap();
            assert_eq!(r.outcome, FetchOutcome::NotModified);
            assert_eq!(r.value, first, "validator copy renders on 304");
        }
        assert_eq!(client.network_fetch_count(), 3);
        assert_eq!(client.not_modified_count(), 2);
    }

    #[test]
    fn keep_alive_client_reuses_its_connection() {
        let (server, _clock, _storage) = test_site();
        let clock = SimClock::new(Timestamp(1_000));
        let client = DashboardClient::new(&server.base_url(), "alice", clock.shared(), None)
            .with_keep_alive();
        for _ in 0..4 {
            client.fetch_api("/api/system_status").unwrap();
        }
        let (opened, reused) = client.connection_stats();
        assert_eq!(opened, 1, "one TCP connection for the whole session");
        assert_eq!(reused, 3);
    }

    #[test]
    fn errors_are_reported_not_cached() {
        let (server, _clock, _storage) = test_site();
        let clock = SimClock::new(Timestamp(1_000));
        let client = DashboardClient::new(&server.base_url(), "alice", clock.shared(), Some(30));
        let err = client.fetch_api("/api/nodes/zzz").unwrap_err();
        assert!(err.contains("404"), "{err}");
        // A 404 was not cached as data.
        assert!(client.db.get("api", "/api/nodes/zzz").is_none());
    }

    #[test]
    fn unreachable_server_serves_the_client_copy() {
        let (server, _clock, _storage) = test_site();
        let clock = SimClock::new(Timestamp(1_000));
        let client = DashboardClient::new(&server.base_url(), "alice", clock.shared(), Some(30));
        let first = client.fetch_api("/api/storage").unwrap();
        clock.advance(31);
        drop(server);
        let r = client.fetch_api("/api/storage").unwrap();
        assert_eq!(r.outcome, FetchOutcome::StaleOnError);
        assert_eq!(r.value, first.value, "last-known-good copy rendered");
        // The copy survives for the next outage-era fetch too.
        let r = client.fetch_api("/api/storage").unwrap();
        assert_eq!(r.outcome, FetchOutcome::StaleOnError);
    }

    #[test]
    fn degraded_server_payloads_render_but_are_never_stored() {
        let (server, server_clock, storage) = test_site();
        let clock = SimClock::new(Timestamp(1_000));
        let client = DashboardClient::new(&server.base_url(), "alice", clock.shared(), Some(30));
        client.fetch_api("/api/storage").unwrap();
        // Both clocks pass the TTLs; then the backend dies. The server falls
        // back to its last-known-good copy, annotated "degraded".
        server_clock.advance(601);
        clock.advance(31);
        storage.set_available(false);
        let r = client.fetch_api("/api/storage").unwrap();
        assert_eq!(r.outcome, FetchOutcome::StaleOnError);
        let stored = client.db.get("api", "/api/storage").unwrap();
        assert!(
            stored.value.get("degraded").is_none(),
            "the degraded payload must not overwrite the client's own copy"
        );
    }

    #[test]
    fn clear_cache_forces_network() {
        let (server, _clock, _storage) = test_site();
        let clock = SimClock::new(Timestamp(1_000));
        let client = DashboardClient::new(&server.base_url(), "alice", clock.shared(), Some(300));
        client.fetch_api("/api/storage").unwrap();
        client.clear_cache();
        let r = client.fetch_api("/api/storage").unwrap();
        assert_eq!(r.outcome, FetchOutcome::Network);
        assert!(client.export_cache().contains("storage"));
    }
}
