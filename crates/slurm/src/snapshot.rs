//! Epoch-published cluster snapshots: the lock-free read path.
//!
//! Every mutation and every scheduler tick publishes an immutable
//! [`ClusterSnapshot`] — jobs, nodes, partitions, associations, plus
//! precomputed per-user / per-account / per-partition indexes — into an
//! [`EpochCell`]. Read RPCs (`squeue`, `sinfo`, `scontrol show ...`) load
//! the current snapshot with two atomic ops and never touch the state
//! mutex, so dashboard query storms cannot delay scheduling. This is the
//! in-process analogue of the RCU / arc-swap pattern, hand-rolled because
//! the workspace is vendor-free (cf. `vendor/parking_lot`).

use crate::ctld::AssocRecord;
use crate::job::{Job, JobId, JobState};
use crate::node::Node;
use crate::partition::Partition;
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// EpochCell: an atomic Arc<T> swap cell
// ---------------------------------------------------------------------------

struct Slot<T> {
    /// Readers currently pinned to this slot (between fetch_add and
    /// fetch_sub in `load`). A writer may only overwrite a slot whose
    /// reader count is zero *and* which `current` no longer points at.
    readers: AtomicUsize,
    value: UnsafeCell<Option<Arc<T>>>,
}

/// A two-slot epoch cell: readers clone the current `Arc<T>` wait-free in
/// the common case; writers (serialized by a mutex) prepare the spare slot
/// and flip one atomic index. Readers never block writers for longer than
/// the two atomic ops around the `Arc` clone, and writers never block
/// readers at all — a reader that races a flip simply retries.
pub struct EpochCell<T> {
    slots: [Slot<T>; 2],
    /// Index (0 or 1) of the slot readers should load from.
    current: AtomicUsize,
    /// Serializes writers; readers never take it.
    write_lock: Mutex<()>,
}

// Safety: the value is only ever accessed as `Arc<T>` clones handed out by
// `load`; the reader-count protocol below guarantees a slot is never
// written while a reader dereferences it.
unsafe impl<T: Send + Sync> Send for EpochCell<T> {}
unsafe impl<T: Send + Sync> Sync for EpochCell<T> {}

impl<T> EpochCell<T> {
    pub fn new(initial: Arc<T>) -> EpochCell<T> {
        EpochCell {
            slots: [
                Slot {
                    readers: AtomicUsize::new(0),
                    value: UnsafeCell::new(Some(initial)),
                },
                Slot {
                    readers: AtomicUsize::new(0),
                    value: UnsafeCell::new(None),
                },
            ],
            current: AtomicUsize::new(0),
            write_lock: Mutex::new(()),
        }
    }

    /// Clone the currently published value. Lock-free: retries only while
    /// racing a concurrent flip, and a flip is two atomic stores.
    ///
    /// Memory ordering: the pin (`readers.fetch_add`) followed by the
    /// `current` re-check, against the writer's `current` flip followed by
    /// its `readers` drain check, is a store-buffering (Dekker) pattern.
    /// Acquire/Release is not enough — both sides could observe stale
    /// values on weakly-ordered hardware and the writer would overwrite a
    /// slot a pinned reader is dereferencing. All four operations are
    /// SeqCst so they take part in the single total order: either the
    /// reader's re-check sees the flip (and retreats), or the writer's
    /// drain check sees the pin (and waits).
    pub fn load(&self) -> Arc<T> {
        let mut spins = 0u32;
        loop {
            let idx = self.current.load(Ordering::SeqCst);
            let slot = &self.slots[idx];
            slot.readers.fetch_add(1, Ordering::SeqCst);
            // Re-check: if a writer flipped `current` between our load and
            // the pin, this slot may be about to be overwritten — unpin and
            // retry. If it still matches, the pin is visible (SeqCst) to any
            // writer that would target this slot, so the value is stable.
            if self.current.load(Ordering::SeqCst) != idx {
                slot.readers.fetch_sub(1, Ordering::Release);
                spins += 1;
                if spins > 64 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
                continue;
            }
            // Safety: pinned + current == idx means no writer mutates this
            // slot until our fetch_sub below.
            let value = unsafe {
                (*slot.value.get())
                    .as_ref()
                    .expect("current slot is always populated")
                    .clone()
            };
            slot.readers.fetch_sub(1, Ordering::Release);
            return value;
        }
    }

    /// Publish a new value. Writers are serialized; each waits for readers
    /// still pinned to the spare slot (stragglers from before the previous
    /// flip) to drain, then installs the value and flips `current`.
    pub fn store(&self, value: Arc<T>) {
        let _guard = self.write_lock.lock();
        let spare = 1 - self.current.load(Ordering::Relaxed);
        let slot = &self.slots[spare];
        // SeqCst pairs with the reader's pin/re-check (see `load`); it also
        // carries the Acquire edge against a straggler's `fetch_sub`, so the
        // overwrite below cannot race its `Arc` clone. Yield after a short
        // spin: a reader preempted between pin and unpin must get scheduled
        // for this loop to exit, and `publish_locked` calls us while holding
        // the daemon state mutex.
        let mut spins = 0u32;
        while slot.readers.load(Ordering::SeqCst) != 0 {
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        // Safety: `current` does not point at `spare` and its reader count
        // is zero; late pinners re-check `current` and retreat without
        // touching the value.
        unsafe {
            *slot.value.get() = Some(value);
        }
        self.current.store(spare, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------------
// ClusterSnapshot
// ---------------------------------------------------------------------------

/// Active-job counts by state, precomputed at publish time so `sinfo`-style
/// summaries and the scheduler-depth gauge never re-walk the job table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateCounts {
    pub pending: u32,
    pub running: u32,
    pub suspended: u32,
}

/// An immutable, internally consistent view of the whole cluster at one
/// publication epoch. Jobs are shared (`Arc<Job>`), so handing a row to a
/// caller is a refcount bump, not a deep clone.
#[derive(Debug)]
pub struct ClusterSnapshot {
    /// Monotonic publication sequence number (strictly increasing).
    pub seq: u64,
    /// Simulation timestamp at publish.
    pub now: hpcdash_simtime::Timestamp,
    pub name: Arc<str>,
    /// Active jobs in ascending id order (the `squeue` presentation order).
    pub jobs: Arc<[Arc<Job>]>,
    /// Nodes in name order (BTreeMap iteration order of the live state).
    pub nodes: Arc<[Node]>,
    /// Partitions in name order.
    pub partitions: Arc<[Partition]>,
    /// All association records, in `AssocStore::accounts()` order.
    pub assoc: Arc<[AssocRecord]>,
    /// user -> ascending positions into `jobs`.
    pub by_user: HashMap<String, Vec<u32>>,
    /// account -> ascending positions into `jobs`.
    pub by_account: HashMap<String, Vec<u32>>,
    /// partition -> ascending positions into `jobs`.
    pub by_partition: HashMap<String, Vec<u32>>,
    /// Per-partition node groups: `partition_nodes[i]` holds positions into
    /// `nodes` for `partitions[i].nodes`, in the partition's declared node
    /// order (unknown node names are skipped, matching the old lookup).
    pub partition_nodes: Vec<Vec<u32>>,
    pub counts: StateCounts,
}

impl ClusterSnapshot {
    /// An empty snapshot (sequence 0) for daemon construction.
    pub fn empty(name: &str) -> ClusterSnapshot {
        ClusterSnapshot {
            seq: 0,
            now: hpcdash_simtime::Timestamp(0),
            name: Arc::from(name),
            jobs: Arc::from(Vec::new()),
            nodes: Arc::from(Vec::new()),
            partitions: Arc::from(Vec::new()),
            assoc: Arc::from(Vec::new()),
            by_user: HashMap::new(),
            by_account: HashMap::new(),
            by_partition: HashMap::new(),
            partition_nodes: Vec::new(),
            counts: StateCounts::default(),
        }
    }

    /// Build a snapshot from presorted components, deriving every index.
    pub fn build(
        seq: u64,
        now: hpcdash_simtime::Timestamp,
        name: Arc<str>,
        jobs: Vec<Arc<Job>>,
        nodes: Vec<Node>,
        partitions: Vec<Partition>,
        assoc: Vec<AssocRecord>,
    ) -> ClusterSnapshot {
        let mut by_user: HashMap<String, Vec<u32>> = HashMap::new();
        let mut by_account: HashMap<String, Vec<u32>> = HashMap::new();
        let mut by_partition: HashMap<String, Vec<u32>> = HashMap::new();
        let mut counts = StateCounts::default();
        for (pos, job) in jobs.iter().enumerate() {
            let pos = pos as u32;
            by_user.entry(job.req.user.clone()).or_default().push(pos);
            by_account
                .entry(job.req.account.clone())
                .or_default()
                .push(pos);
            by_partition
                .entry(job.req.partition.clone())
                .or_default()
                .push(pos);
            match job.state {
                JobState::Pending => counts.pending += 1,
                JobState::Running => counts.running += 1,
                JobState::Suspended => counts.suspended += 1,
                _ => {}
            }
        }
        let node_pos: HashMap<&str, u32> = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.name.as_str(), i as u32))
            .collect();
        let partition_nodes = partitions
            .iter()
            .map(|p| {
                p.nodes
                    .iter()
                    .filter_map(|n| node_pos.get(n.as_str()).copied())
                    .collect()
            })
            .collect();
        ClusterSnapshot {
            seq,
            now,
            name,
            jobs: jobs.into(),
            nodes: nodes.into(),
            partitions: partitions.into(),
            assoc: assoc.into(),
            by_user,
            by_account,
            by_partition,
            partition_nodes,
            counts,
        }
    }

    /// Binary-search one job by id (`jobs` is id-ascending).
    pub fn job(&self, id: JobId) -> Option<&Arc<Job>> {
        self.jobs
            .binary_search_by_key(&id, |j| j.id)
            .ok()
            .map(|i| &self.jobs[i])
    }

    /// The nodes of `partitions[idx]`, in the partition's declared order.
    pub fn nodes_of_partition(&self, idx: usize) -> impl Iterator<Item = &Node> {
        self.partition_nodes[idx]
            .iter()
            .map(|&i| &self.nodes[i as usize])
    }
}

// ---------------------------------------------------------------------------
// SnapshotStats
// ---------------------------------------------------------------------------

/// Reader-lag buckets: how many publications behind the latest epoch a
/// reader's loaded snapshot was. With publish-inside-the-lock this is
/// almost always 0; the histogram exists to prove it.
pub const LAG_BUCKET_LABELS: [&str; 4] = ["0", "1", "2-7", "8+"];

/// Publication / freshness telemetry for the snapshot path, exported as
/// `hpcdash_ctld_snapshot_*` metrics.
#[derive(Debug)]
pub struct SnapshotStats {
    /// Latest published sequence number.
    latest_seq: AtomicU64,
    /// Total publications.
    publishes: AtomicU64,
    /// Nanoseconds from `origin` to the most recent publication, for the
    /// snapshot-age gauge.
    last_publish_ns: AtomicU64,
    origin: Instant,
    /// Reader-observed epoch lag, bucketed: 0, 1, 2-7, 8+.
    lag: [AtomicU64; 4],
}

impl Default for SnapshotStats {
    fn default() -> SnapshotStats {
        SnapshotStats {
            latest_seq: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            last_publish_ns: AtomicU64::new(0),
            origin: Instant::now(),
            lag: Default::default(),
        }
    }
}

impl SnapshotStats {
    pub fn new() -> SnapshotStats {
        SnapshotStats::default()
    }

    /// Reserve the next publication sequence number (starts at 1; the
    /// empty constructor snapshot is seq 0).
    pub fn next_seq(&self) -> u64 {
        self.latest_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub fn note_publish(&self) {
        self.publishes.fetch_add(1, Ordering::Relaxed);
        self.last_publish_ns.store(
            self.origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    /// Record the epoch lag of one reader load.
    pub fn note_read(&self, read_seq: u64) {
        let lag = self
            .latest_seq
            .load(Ordering::Relaxed)
            .saturating_sub(read_seq);
        let bucket = match lag {
            0 => 0,
            1 => 1,
            2..=7 => 2,
            _ => 3,
        };
        self.lag[bucket].fetch_add(1, Ordering::Relaxed);
    }

    pub fn latest_seq(&self) -> u64 {
        self.latest_seq.load(Ordering::Relaxed)
    }

    pub fn publishes(&self) -> u64 {
        self.publishes.load(Ordering::Relaxed)
    }

    /// Time since the last publication (zero before the first).
    pub fn age(&self) -> std::time::Duration {
        let last = self.last_publish_ns.load(Ordering::Relaxed);
        self.origin
            .elapsed()
            .saturating_sub(std::time::Duration::from_nanos(last))
    }

    /// Reader-lag counters in `LAG_BUCKET_LABELS` order.
    pub fn lag_buckets(&self) -> [u64; 4] {
        [
            self.lag[0].load(Ordering::Relaxed),
            self.lag[1].load(Ordering::Relaxed),
            self.lag[2].load(Ordering::Relaxed),
            self.lag[3].load(Ordering::Relaxed),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn epoch_cell_load_store_roundtrip() {
        let cell = EpochCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        cell.store(Arc::new(3));
        cell.store(Arc::new(4));
        assert_eq!(*cell.load(), 4);
    }

    #[test]
    fn epoch_cell_concurrent_readers_never_tear() {
        // Published values are (n, n): a torn read would surface a pair
        // whose halves disagree.
        let cell = Arc::new(EpochCell::new(Arc::new((0u64, 0u64))));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = cell.clone();
                let stop = stop.clone();
                thread::spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let v = cell.load();
                        assert_eq!(v.0, v.1, "torn snapshot");
                        assert!(v.0 >= last, "epoch went backwards");
                        last = v.0;
                    }
                })
            })
            .collect();
        for n in 1..=20_000u64 {
            cell.store(Arc::new((n, n)));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.load().0, 20_000);
    }

    #[test]
    fn epoch_cell_drops_old_values() {
        let first = Arc::new(7u64);
        let cell = EpochCell::new(first.clone());
        cell.store(Arc::new(8));
        cell.store(Arc::new(9));
        // Both slots have been rewritten; only our local handle remains.
        assert_eq!(Arc::strong_count(&first), 1);
    }

    #[test]
    fn snapshot_stats_lag_buckets() {
        let stats = SnapshotStats::new();
        for _ in 0..10 {
            stats.next_seq();
        }
        stats.note_publish();
        stats.note_read(10); // lag 0
        stats.note_read(9); // lag 1
        stats.note_read(5); // lag 5 -> 2-7
        stats.note_read(1); // lag 9 -> 8+
        assert_eq!(stats.lag_buckets(), [1, 1, 1, 1]);
        assert_eq!(stats.latest_seq(), 10);
        assert_eq!(stats.publishes(), 1);
    }
}
