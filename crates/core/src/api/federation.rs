//! Federated views: cross-cluster aggregates with honest per-site
//! degradation.
//!
//! Every route fans out through [`hpcdash_federation::ClusterRegistry`],
//! which consults this context's `BreakerBoard` per site (`fed@<cluster>`
//! keys) and serves a dark site's slice from its last-known-good snapshot
//! with an age annotation. The aggregates therefore *always* answer — one
//! unreachable cluster degrades only its own rows — and the aggregate
//! routes deliberately skip the render-bytes cache: freezing the payload
//! would freeze the "site beta: data from 40s ago" notices these routes
//! exist to keep honest. The cluster-scoped route does render-cache, keyed
//! by path (the cluster dimension) and versioned by that site's own
//! published snapshot seq.

use crate::auth::CurrentUser;
use crate::ctx::DashboardContext;
use hpcdash_federation::{FederatedSnapshot, SiteHealth, SiteStatus};
use hpcdash_http::{CacheDecision, Request, Response, Router};
use serde_json::{json, Value};

pub const FEATURE: &str = "Multi-cluster federation (extension)";
pub const ROUTES: &[&str] = &[
    "/api/federation/status",
    "/api/federation/jobs",
    "/api/federation/nodes",
    "/api/federation/clusters/:cluster/status",
];

pub fn register(router: &mut Router, ctx: DashboardContext) {
    let c1 = ctx.clone();
    let c2 = ctx.clone();
    let c3 = ctx.clone();
    let keyctx = ctx.clone();
    router.get(ROUTES[0], move |req| status(&ctx, req));
    router.get(ROUTES[1], move |req| jobs(&c1, req));
    router.get(ROUTES[2], move |req| nodes(&c2, req));
    router.get_cached(
        ROUTES[3],
        move |req| {
            let ttl = keyctx.cfg.cache.federation;
            let decision = super::render_decision(&keyctx, req, ROUTES[3], ttl)?;
            // Version on the *named* site's published epoch, not the local
            // daemon's: the slice re-renders when that cluster ticks.
            let site = keyctx.federation.get(req.param("cluster")?)?;
            Some(CacheDecision {
                version: site.ctld().snapshot().seq,
                ..decision
            })
        },
        move |req| cluster_status(&c3, req),
    );
}

/// One fan-out across every registered site, with per-slice accounting.
/// Label cardinality is bounded: the site list is fixed at build time.
fn fan_out(ctx: &DashboardContext) -> FederatedSnapshot {
    let fed = ctx.federation.snapshot(&ctx.breakers);
    ctx.obs
        .counter("hpcdash_federation_fanouts_total", &[])
        .inc();
    for s in &fed.sites {
        ctx.obs
            .counter(
                "hpcdash_federation_slices_total",
                &[
                    ("cluster", s.cluster.as_ref()),
                    ("health", s.health.as_str()),
                ],
            )
            .inc();
    }
    fed
}

/// One site's summary entry (shared by the aggregate and scoped routes).
fn site_entry(s: &SiteStatus) -> Value {
    let mut entry = json!({
        "cluster": s.cluster.as_ref(),
        "health": s.health.as_str(),
        "snapshot_seq": s.seq(),
    });
    if let Some(snap) = &s.snapshot {
        entry["jobs"] = json!({
            "pending": snap.counts.pending,
            "running": snap.counts.running,
            "suspended": snap.counts.suspended,
        });
        entry["nodes"] = json!(snap.nodes.len());
        entry["partitions"] = json!(snap.partitions.len());
    }
    if let SiteHealth::Stale { age_secs, .. } = &s.health {
        entry["stale_age_secs"] = json!(age_secs);
    }
    if let Some(notice) = s.notice() {
        entry["notice"] = json!(notice);
    }
    entry
}

/// `GET /api/federation/status`: the federation overview widget — per-site
/// health, cross-site job totals, and the degradation notices.
fn status(ctx: &DashboardContext, req: &Request) -> Response {
    if let Err(resp) = CurrentUser::from_request(ctx, req) {
        return resp;
    }
    let fed = fan_out(ctx);
    let counts = fed.counts();
    Response::json(&json!({
        "degraded": fed.is_degraded(),
        "clusters": fed.sites.len(),
        "live": fed.live_sites(),
        "stale": fed.stale_sites(),
        "dark": fed.dark_sites(),
        "totals": {
            "jobs_pending": counts.pending,
            "jobs_running": counts.running,
            "jobs_suspended": counts.suspended,
            "nodes": fed.nodes().count(),
        },
        "notices": fed.sites.iter().filter_map(|s| s.notice()).collect::<Vec<_>>(),
        "sites": fed.sites.iter().map(site_entry).collect::<Vec<_>>(),
        "generated_at": fed.at.0,
    }))
}

/// `GET /api/federation/jobs`: the viewer's jobs across every cluster, each
/// row tagged with its cluster and its slice's freshness.
fn jobs(ctx: &DashboardContext, req: &Request) -> Response {
    let user = match CurrentUser::from_request(ctx, req) {
        Ok(u) => u,
        Err(resp) => return resp,
    };
    let fed = fan_out(ctx);
    let rows: Vec<Value> = fed
        .jobs_of_user(&user.username)
        .into_iter()
        .map(|(site, job)| {
            json!({
                "cluster": site.cluster.as_ref(),
                "slice_health": site.health.as_str(),
                "id": job.id.0,
                "name": job.req.name,
                "user": job.req.user,
                "account": job.req.account,
                "partition": job.req.partition,
                "state": job.state.to_slurm(),
            })
        })
        .collect();
    Response::json(&json!({
        "degraded": fed.is_degraded(),
        "notices": fed.sites.iter().filter_map(|s| s.notice()).collect::<Vec<_>>(),
        "jobs": rows,
        "generated_at": fed.at.0,
    }))
}

/// `GET /api/federation/nodes`: every node across the federation, tagged by
/// cluster — the data behind a federated cluster-status grid.
fn nodes(ctx: &DashboardContext, req: &Request) -> Response {
    if let Err(resp) = CurrentUser::from_request(ctx, req) {
        return resp;
    }
    let fed = fan_out(ctx);
    let rows: Vec<Value> = fed
        .nodes()
        .map(|(site, node)| {
            json!({
                "cluster": site.cluster.as_ref(),
                "slice_health": site.health.as_str(),
                "name": node.name,
                "cpus": node.cpus,
                "mem_mb": node.real_memory_mb,
                "gpus": node.gpus,
            })
        })
        .collect();
    Response::json(&json!({
        "degraded": fed.is_degraded(),
        "notices": fed.sites.iter().filter_map(|s| s.notice()).collect::<Vec<_>>(),
        "nodes": rows,
        "generated_at": fed.at.0,
    }))
}

/// `GET /api/federation/clusters/:cluster/status`: one site's slice through
/// the same breaker/staleness path as the full fan-out.
fn cluster_status(ctx: &DashboardContext, req: &Request) -> Response {
    if let Err(resp) = CurrentUser::from_request(ctx, req) {
        return resp;
    }
    let Some(cluster) = req.param("cluster") else {
        return Response::bad_request("missing cluster");
    };
    let Some(slice) = ctx.federation.site_status(cluster, &ctx.breakers) else {
        return Response::not_found("unknown cluster");
    };
    let resp = Response::json(&site_entry(&slice));
    // Only a live slice's bytes may be revalidated with 304s; degraded
    // slices must keep re-reporting their growing age.
    if slice.health.is_live() {
        resp.mark_cacheable()
    } else {
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DashboardConfig;
    use crate::ctx::tests::{test_ctx, test_ctx_with};
    use hpcdash_faults::{FaultPlan, FaultRule};
    use hpcdash_http::Method;
    use hpcdash_simtime::Timestamp;
    use hpcdash_slurm::job::JobRequest;
    use std::sync::Arc;

    fn get(path: &str) -> Request {
        Request::new(Method::Get, path).with_header("X-Remote-User", "alice")
    }

    #[test]
    fn routes_require_auth() {
        let ctx = test_ctx();
        let req = Request::new(Method::Get, ROUTES[0]);
        assert_eq!(status(&ctx, &req).status, 401);
        assert_eq!(jobs(&ctx, &req).status, 401);
        assert_eq!(nodes(&ctx, &req).status, 401);
    }

    #[test]
    fn single_site_context_federates_itself() {
        // `DashboardContext::new` registers its own ctld, so the federated
        // routes answer out of the box with one live site.
        let ctx = test_ctx();
        ctx.ctld.tick();
        let body = status(&ctx, &get(ROUTES[0])).body_json().unwrap();
        assert_eq!(body["clusters"], 1);
        assert_eq!(body["live"], 1);
        assert_eq!(body["degraded"], false);
        assert_eq!(body["sites"][0]["cluster"], "t");
        assert_eq!(body["sites"][0]["health"], "live");
        assert!(body["notices"].as_array().unwrap().is_empty());
    }

    #[test]
    fn jobs_are_tagged_with_their_cluster() {
        let ctx = test_ctx();
        ctx.ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 1))
            .unwrap();
        ctx.ctld.tick();
        let body = jobs(&ctx, &get(ROUTES[1])).body_json().unwrap();
        let rows = body["jobs"].as_array().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["cluster"], "t");
        assert_eq!(rows[0]["user"], "alice");
        assert_eq!(rows[0]["slice_health"], "live");
    }

    #[test]
    fn unreachable_site_degrades_with_an_honest_notice() {
        let ctx = test_ctx();
        ctx.ctld.tick();
        // Warm the last-known-good cell, then black the site out.
        assert_eq!(
            status(&ctx, &get(ROUTES[0])).body_json().unwrap()["live"],
            1
        );
        ctx.ctld.faults().install(
            Arc::new(FaultPlan::new(3).rule(FaultRule::error("slurmctld", "*", "site link down"))),
            ctx.clock.clone(),
        );
        let body = status(&ctx, &get(ROUTES[0])).body_json().unwrap();
        assert_eq!(body["degraded"], true);
        assert_eq!(body["stale"], 1);
        assert_eq!(body["sites"][0]["health"], "stale");
        let notice = body["notices"][0].as_str().unwrap();
        assert!(notice.starts_with("site t: data from"), "{notice}");
        // The stale slice still contributes its rows.
        let body = nodes(&ctx, &get(ROUTES[2])).body_json().unwrap();
        assert_eq!(body["nodes"].as_array().unwrap().len(), 1);
        assert_eq!(body["nodes"][0]["slice_health"], "stale");
        ctx.ctld.faults().clear();
    }

    #[test]
    fn cluster_scoped_route_answers_and_404s() {
        let ctx = test_ctx();
        ctx.ctld.tick();
        let req = get("/api/federation/clusters/t/status");
        let mut req = req;
        req.params.insert("cluster".to_string(), "t".to_string());
        let resp = cluster_status(&ctx, &req);
        assert_eq!(resp.status, 200);
        let body = resp.body_json().unwrap();
        assert_eq!(body["cluster"], "t");
        assert_eq!(body["health"], "live");
        assert!(body["snapshot_seq"].as_u64().unwrap() >= 1);
        req.params
            .insert("cluster".to_string(), "nosuch".to_string());
        assert_eq!(cluster_status(&ctx, &req).status, 404);
    }

    #[test]
    fn fanout_metrics_count_slices_by_health() {
        let ctx = test_ctx_with(DashboardConfig::generic("Test"));
        ctx.ctld.tick();
        status(&ctx, &get(ROUTES[0]));
        assert_eq!(
            ctx.obs
                .counter("hpcdash_federation_fanouts_total", &[])
                .get(),
            1
        );
        assert_eq!(
            ctx.obs
                .counter(
                    "hpcdash_federation_slices_total",
                    &[("cluster", "t"), ("health", "live")]
                )
                .get(),
            1
        );
    }

    #[test]
    fn aggregate_payload_totals_match_the_site_slice() {
        let ctx = test_ctx();
        ctx.ctld
            .submit(JobRequest::simple("alice", "physics", "cpu", 1))
            .unwrap();
        ctx.ctld.tick();
        let body = status(&ctx, &get(ROUTES[0])).body_json().unwrap();
        let totals = &body["totals"];
        let running = totals["jobs_running"].as_u64().unwrap();
        let pending = totals["jobs_pending"].as_u64().unwrap();
        assert_eq!(running + pending, 1, "{totals}");
        assert_eq!(totals["nodes"], 1);
        assert!(body["generated_at"].as_u64().unwrap() >= Timestamp(1_000).0);
    }
}
