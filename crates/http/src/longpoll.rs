//! Long-poll support for the thread-pool server.
//!
//! The server runs one request per worker thread, so a long-poll route that
//! parks until data arrives occupies a worker for its whole wait. That is
//! fine up to a point — parked workers cost nothing but a thread — but past
//! a cap the pool would starve regular requests. [`ParkBudget`] is that cap:
//! a handler acquires a [`ParkPermit`] before parking and sheds load with
//! `503 + Retry-After` when none is available, instead of silently eating
//! the last worker.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A cap on concurrently parked workers.
#[derive(Debug)]
pub struct ParkBudget {
    max: usize,
    parked: AtomicUsize,
}

impl ParkBudget {
    /// Allow at most `max` workers to park at once (at least one).
    pub fn new(max: usize) -> ParkBudget {
        ParkBudget {
            max: max.max(1),
            parked: AtomicUsize::new(0),
        }
    }

    /// Try to reserve a parking slot; `None` means the handler must shed.
    pub fn try_acquire(self: &Arc<Self>) -> Option<ParkPermit> {
        let acquired = self
            .parked
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.max).then_some(n + 1)
            })
            .is_ok();
        acquired.then(|| ParkPermit {
            budget: self.clone(),
        })
    }

    /// Workers currently parked.
    pub fn parked(&self) -> usize {
        self.parked.load(Ordering::Acquire)
    }

    pub fn max(&self) -> usize {
        self.max
    }
}

/// RAII parking slot: dropping it (on response, panic, or timeout) frees
/// the slot for the next long-poller.
#[derive(Debug)]
pub struct ParkPermit {
    budget: Arc<ParkBudget>,
}

impl Drop for ParkPermit {
    fn drop(&mut self) {
        self.budget.parked.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_caps_and_releases() {
        let budget = Arc::new(ParkBudget::new(2));
        let a = budget.try_acquire().expect("slot 1");
        let _b = budget.try_acquire().expect("slot 2");
        assert_eq!(budget.parked(), 2);
        assert!(budget.try_acquire().is_none(), "third parker is shed");
        drop(a);
        assert_eq!(budget.parked(), 1);
        assert!(budget.try_acquire().is_some(), "freed slot is reusable");
    }

    #[test]
    fn zero_budget_clamped_to_one() {
        let budget = Arc::new(ParkBudget::new(0));
        let _a = budget.try_acquire().expect("at least one slot");
        assert!(budget.try_acquire().is_none());
    }

    #[test]
    fn concurrent_acquires_never_exceed_cap() {
        let budget = Arc::new(ParkBudget::new(4));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let budget = budget.clone();
            let peak = peak.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    if let Some(permit) = budget.try_acquire() {
                        peak.fetch_max(budget.parked(), Ordering::AcqRel);
                        drop(permit);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::Acquire) <= 4, "cap never exceeded");
        assert_eq!(budget.parked(), 0, "all permits returned");
    }
}
