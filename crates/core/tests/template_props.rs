//! Property tests for the ERB-style template engine and HTML escaping —
//! the rendering layer under every page, so it must never emit raw
//! interpolated markup or panic on adversarial input.

use hpcdash_core::template::{escape_html, render, vars};
use proptest::prelude::*;

proptest! {
    #[test]
    fn escaped_output_never_contains_active_markup(s in "\\PC{0,200}") {
        let escaped = escape_html(&s);
        prop_assert!(!escaped.contains('<'));
        prop_assert!(!escaped.contains('>'));
        prop_assert!(!escaped.contains('"'));
        // Ampersands only appear as entity starts we produced.
        for (i, _) in escaped.match_indices('&') {
            let rest = &escaped[i..];
            prop_assert!(
                rest.starts_with("&amp;")
                    || rest.starts_with("&lt;")
                    || rest.starts_with("&gt;")
                    || rest.starts_with("&quot;")
                    || rest.starts_with("&#39;"),
                "stray ampersand in {escaped:?}"
            );
        }
    }

    #[test]
    fn interpolation_is_injection_safe(payload in "\\PC{0,100}") {
        let v = vars([("user", payload.clone())]);
        let html = render("<p>Hello <%= user %>!</p>", &v).unwrap();
        prop_assert!(html.starts_with("<p>Hello "));
        prop_assert!(html.ends_with("!</p>"));
        // Whatever the payload, no new tags appear.
        prop_assert_eq!(html.matches('<').count(), 2, "{}", html);
    }

    #[test]
    fn render_never_panics(template in "\\PC{0,120}", value in "\\PC{0,40}") {
        let v = vars([("k", value)]);
        // Any outcome is fine as long as it is a Result, not a panic.
        let _ = render(&template, &v);
    }

    #[test]
    fn plain_templates_are_identity(template in "[^<%]{0,200}") {
        let v = vars([("k", "v".to_string())]);
        prop_assert_eq!(render(&template, &v).unwrap(), template);
    }
}
