//! The real-time monitoring extension (paper §9 future work): clients poll
//! the updates feed — or subscribe to its push-mode stream — and see job
//! transitions as the cluster evolves, without refetching tables.

use hpcdash::SimSite;
use hpcdash_client::{LiveSubscriber, PollOutcome};
use hpcdash_core::DashboardConfig;
use hpcdash_http::HttpClient;
use hpcdash_workload::ScenarioConfig;

fn poll(client: &HttpClient, base: &str, user: &str, since: u64) -> serde_json::Value {
    let resp = client
        .get(
            &format!("{base}/api/updates?since={since}"),
            &[("X-Remote-User", user)],
        )
        .unwrap();
    assert_eq!(resp.status, 200);
    resp.json().unwrap()
}

#[test]
fn polling_sees_the_cluster_evolve() {
    let site = SimSite::build(ScenarioConfig::small());
    let server = site.serve().unwrap();
    let base = server.base_url();
    let client = HttpClient::new();
    let user = site.scenario.population.users[0].clone();

    // Initial cursor.
    let body = poll(&client, &base, &user, 0);
    let mut cursor = body["latest_seq"].as_u64().unwrap();

    // Run half an hour of traffic; poll incrementally and accumulate.
    let mut driver = site.driver(1_800);
    let mut seen = Vec::new();
    for _ in 0..6 {
        driver.advance(300);
        let body = poll(&client, &base, &user, cursor);
        cursor = body["latest_seq"].as_u64().unwrap();
        for e in body["events"].as_array().unwrap() {
            seen.push(e.clone());
        }
        assert_eq!(body["resync_required"], false, "cursor kept up");
    }

    // The user's own submissions must appear, with transitions in order
    // per job (PENDING before RUNNING before terminal).
    assert!(
        !seen.is_empty(),
        "an active cluster produced no visible events for {user}"
    );
    let mut per_job: std::collections::BTreeMap<String, Vec<String>> = Default::default();
    for e in &seen {
        per_job
            .entry(e["job"].as_str().unwrap().to_string())
            .or_default()
            .push(e["to"].as_str().unwrap().to_string());
    }
    for (job, transitions) in &per_job {
        if let Some(run_idx) = transitions.iter().position(|t| t == "RUNNING") {
            if let Some(pend_idx) = transitions.iter().position(|t| t == "PENDING") {
                assert!(pend_idx < run_idx, "job {job}: RUNNING before PENDING");
            }
        }
    }

    // Sequence numbers strictly increase.
    let seqs: Vec<u64> = seen.iter().map(|e| e["seq"].as_u64().unwrap()).collect();
    for w in seqs.windows(2) {
        assert!(w[0] < w[1], "event sequence regressed");
    }

    // Privacy: every event belongs to the user or their accounts.
    let accounts = site.scenario.population.accounts_of(&user);
    for e in &seen {
        let event_user = e["user"].as_str().unwrap();
        let event_account = e["account"].as_str().unwrap();
        assert!(
            event_user == user || accounts.iter().any(|a| a == event_account),
            "leaked event for {event_user}/{event_account}"
        );
    }
}

#[test]
fn streaming_matches_polling_at_equivalent_freshness() {
    // A push subscriber anchored at the same cursor as a legacy poller must
    // see exactly the same deltas — the fan-out hub changes delivery cost,
    // not content. Queue capacity is raised so a busy round cannot
    // legitimately coalesce into a resync and void the comparison.
    let mut cfg = DashboardConfig::purdue_like();
    cfg.push.queue_capacity = 8_192;
    let site = SimSite::build_with(ScenarioConfig::small(), cfg);
    let server = site.serve().unwrap();
    let base = server.base_url();
    let client = HttpClient::new();
    let user = site.scenario.population.users[0].clone();

    // Anchor both modes at the current head.
    let body = poll(&client, &base, &user, 0);
    let mut cursor = body["latest_seq"].as_u64().unwrap();
    let sub = LiveSubscriber::new(&base, &user, "e2e", site.scenario.clock.shared());
    sub.anchor_at(cursor);

    let mut driver = site.driver(1_800);
    let mut polled = 0usize;
    let mut last_state: std::collections::BTreeMap<String, String> = Default::default();
    for _ in 0..6 {
        driver.advance(300);
        let body = poll(&client, &base, &user, cursor);
        cursor = body["latest_seq"].as_u64().unwrap();
        for e in body["events"].as_array().unwrap() {
            polled += 1;
            last_state.insert(
                e["job"].as_str().unwrap().to_string(),
                e["to"].as_str().unwrap().to_string(),
            );
        }
        match sub.poll(0).unwrap() {
            PollOutcome::Events(_) | PollOutcome::Empty => {}
            other => panic!("stream should never degrade here: {other:?}"),
        }
    }

    assert!(polled > 0, "an active cluster produced no visible events");
    assert_eq!(
        sub.events_applied(),
        polled as u64,
        "push delivered a different number of deltas than polling"
    );
    assert_eq!(sub.cursor(), cursor, "both modes anchored at the same head");
    for (job, state) in &last_state {
        assert_eq!(
            sub.job_state(job).as_deref(),
            Some(state.as_str()),
            "job {job} diverged between poll and push"
        );
    }
}

#[test]
fn streaming_subscriber_recovers_from_overflow() {
    // A tab that stops draining overflows its bounded queue; on the next
    // poll it learns it must resync, drops local state, and keeps streaming.
    let mut cfg = DashboardConfig::purdue_like();
    cfg.push.queue_capacity = 8;
    let site = SimSite::build_with(ScenarioConfig::small(), cfg);
    let server = site.serve().unwrap();
    let base = server.base_url();
    let user = site.scenario.population.users[0].clone();
    let account = site.scenario.population.accounts_of(&user)[0].clone();

    let sub = LiveSubscriber::new(&base, &user, "lazy", site.scenario.clock.shared());
    assert!(matches!(sub.poll(0).unwrap(), PollOutcome::Empty));

    // 32 visible events against a queue of 8 while the tab is not polling.
    for _ in 0..16 {
        let mut req = hpcdash_slurm::job::JobRequest::simple(&user, &account, "cpu", 1);
        req.usage.planned_runtime_secs = 1;
        site.scenario.ctld.submit(req).unwrap();
        site.scenario.clock.advance(2);
        site.scenario.ctld.tick();
    }
    assert!(matches!(sub.poll(0).unwrap(), PollOutcome::Resync));
    assert_eq!(sub.tracked_jobs(), 0, "local state dropped on resync");

    // Back to normal streaming afterwards.
    let mut req = hpcdash_slurm::job::JobRequest::simple(&user, &account, "cpu", 1);
    req.usage.planned_runtime_secs = 1;
    site.scenario.ctld.submit(req).unwrap();
    match sub.poll(0).unwrap() {
        PollOutcome::Events(n) => assert!(n >= 1),
        other => panic!("expected events after resync, got {other:?}"),
    }
}

#[test]
fn stale_cursor_requests_resync() {
    let site = SimSite::build(ScenarioConfig::small());
    let server = site.serve().unwrap();
    let base = server.base_url();
    let client = HttpClient::new();
    let user = site.scenario.population.users[0].clone();

    // Generate far more events than the log retains (4096), with a stale
    // cursor pointing at evicted history.
    let account = site.scenario.population.accounts_of(&user)[0].clone();
    for _ in 0..2_200 {
        let mut req = hpcdash_slurm::job::JobRequest::simple(&user, &account, "cpu", 1);
        req.usage.planned_runtime_secs = 1;
        site.scenario.ctld.submit(req).unwrap();
        site.scenario.clock.advance(2);
        site.scenario.ctld.tick();
    }
    let body = poll(&client, &base, &user, 1);
    assert_eq!(body["resync_required"], true, "client must refetch tables");
}
