//! Table 1, regenerated: dashboard features with associated data sources —
//! but *measured*, by exercising every feature cache-cold and recording
//! which simulated data sources its route actually touched.
//!
//! ```sh
//! cargo run --example table1
//! ```

use hpcdash::SimSite;
use hpcdash_core::api;
use hpcdash_http::HttpClient;
use hpcdash_slurm::job::{ArraySpec, JobRequest};
use hpcdash_workload::ScenarioConfig;

fn main() {
    let site = SimSite::build(ScenarioConfig::small());
    site.warm_up(600);
    let server = site.serve().expect("serve");
    let client = HttpClient::new();
    let user = site.scenario.population.users[0].clone();
    let account = site.scenario.population.accounts_of(&user)[0].clone();

    // Seed a job with an array so Job Overview's tabs have targets.
    let mut req = JobRequest::simple(&user, &account, "cpu", 1);
    req.array = Some(ArraySpec {
        first: 0,
        last: 1,
        max_concurrent: None,
    });
    let job_id = site.scenario.ctld.submit(req).expect("submit")[0];
    site.scenario.ctld.tick();
    let node = site.scenario.ctld.query_nodes()[0].name.clone();

    site.ctx().clear_observed_sources();
    site.ctx().cache.clear();

    let calls = [
        "/api/announcements".to_string(),
        "/api/recent_jobs".to_string(),
        "/api/system_status".to_string(),
        "/api/accounts".to_string(),
        "/api/storage".to_string(),
        "/api/myjobs?range=all".to_string(),
        "/api/jobmetrics?range=all".to_string(),
        "/api/clusterstatus".to_string(),
        format!("/api/jobs/{job_id}"),
        format!("/api/jobs/{job_id}/logs?stream=out"),
        format!("/api/nodes/{node}"),
    ];
    for path in &calls {
        let resp = client
            .get(
                &format!("{}{path}", server.base_url()),
                &[("X-Remote-User", &user)],
            )
            .expect("request");
        assert_eq!(resp.status, 200, "{path}");
    }

    let observed = site.ctx().observed_sources();
    println!("Table 1: Dashboard features with associated data sources (measured)\n");
    println!(
        "{:<26} | {:<55} | match",
        "Feature", "Data Source(s), observed"
    );
    println!("{}", "-".repeat(95));
    for row in api::feature_table() {
        let got = observed.get(row.feature).cloned().unwrap_or_default();
        let got_list = got.iter().cloned().collect::<Vec<_>>().join(", ");
        let declared: std::collections::BTreeSet<String> =
            row.sources.iter().map(|s| s.to_string()).collect();
        let matches = if got == declared { "OK" } else { "MISMATCH" };
        println!("{:<26} | {:<55} | {}", row.feature, got_list, matches);
    }
}
