//! Path routing with `:param` captures and panic isolation.

use crate::request::{Method, Request};
use crate::response::Response;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Seg {
    Literal(String),
    Param(String),
}

struct Route {
    method: Method,
    segments: Vec<Seg>,
    handler: Handler,
}

/// The route table. Each dashboard component registers exactly one route
/// here — the paper's "one component, one API route" modularity rule.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl Router {
    pub fn new() -> Router {
        Router::default()
    }

    pub fn get(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> &mut Router {
        self.add(Method::Get, pattern, handler)
    }

    pub fn post(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> &mut Router {
        self.add(Method::Post, pattern, handler)
    }

    pub fn add(
        &mut self,
        method: Method,
        pattern: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> &mut Router {
        self.routes.push(Route {
            method,
            segments: parse_pattern(pattern),
            handler: Arc::new(handler),
        });
        self
    }

    /// Registered `(method, pattern)` pairs, for the Table-1 harness.
    pub fn route_patterns(&self) -> Vec<(Method, String)> {
        self.routes
            .iter()
            .map(|r| {
                let pattern: Vec<String> = r
                    .segments
                    .iter()
                    .map(|s| match s {
                        Seg::Literal(l) => l.clone(),
                        Seg::Param(p) => format!(":{p}"),
                    })
                    .collect();
                (r.method, format!("/{}", pattern.join("/")))
            })
            .collect()
    }

    /// Dispatch a request. Unmatched paths get 404; a panicking handler is
    /// contained and answered with 500, so one broken component cannot take
    /// the dashboard down.
    pub fn handle(&self, req: &Request) -> Response {
        let path_segs: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        for route in &self.routes {
            if route.method != req.method {
                continue;
            }
            if let Some(params) = match_segments(&route.segments, &path_segs) {
                let mut req = req.clone();
                req.params = params;
                let handler = route.handler.clone();
                return match catch_unwind(AssertUnwindSafe(move || handler(&req))) {
                    Ok(resp) => resp,
                    Err(_) => Response::internal_error("component failed"),
                };
            }
        }
        Response::not_found(&format!("no route for {} {}", req.method.as_str(), req.path))
    }
}

fn parse_pattern(pattern: &str) -> Vec<Seg> {
    pattern
        .split('/')
        .filter(|s| !s.is_empty())
        .map(|s| match s.strip_prefix(':') {
            Some(name) => Seg::Param(name.to_string()),
            None => Seg::Literal(s.to_string()),
        })
        .collect()
}

fn match_segments(
    pattern: &[Seg],
    path: &[&str],
) -> Option<std::collections::BTreeMap<String, String>> {
    if pattern.len() != path.len() {
        return None;
    }
    let mut params = std::collections::BTreeMap::new();
    for (seg, part) in pattern.iter().zip(path) {
        match seg {
            Seg::Literal(l) if l == part => {}
            Seg::Literal(_) => return None,
            Seg::Param(name) => {
                params.insert(name.clone(), crate::request::urldecode(part));
            }
        }
    }
    Some(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn router() -> Router {
        let mut r = Router::new();
        r.get("/api/jobs", |_| Response::json(&json!({"route": "jobs"})));
        r.get("/api/jobs/:id", |req| {
            Response::json(&json!({"id": req.param("id").unwrap()}))
        });
        r.get("/api/nodes/:name/jobs", |req| {
            Response::json(&json!({"node": req.param("name").unwrap()}))
        });
        r.post("/api/jobs", |_| Response::new(201));
        r.get("/api/broken", |_| panic!("widget exploded"));
        r
    }

    #[test]
    fn literal_match() {
        let r = router();
        let resp = r.handle(&Request::new(Method::Get, "/api/jobs"));
        assert_eq!(resp.body_json().unwrap()["route"], "jobs");
    }

    #[test]
    fn param_capture() {
        let r = router();
        let resp = r.handle(&Request::new(Method::Get, "/api/jobs/1234"));
        assert_eq!(resp.body_json().unwrap()["id"], "1234");
        let resp = r.handle(&Request::new(Method::Get, "/api/nodes/a001/jobs"));
        assert_eq!(resp.body_json().unwrap()["node"], "a001");
    }

    #[test]
    fn method_disambiguates() {
        let r = router();
        assert_eq!(r.handle(&Request::new(Method::Post, "/api/jobs")).status, 201);
        assert_eq!(r.handle(&Request::new(Method::Put, "/api/jobs")).status, 404);
    }

    #[test]
    fn no_match_is_404() {
        let r = router();
        assert_eq!(r.handle(&Request::new(Method::Get, "/api/nope")).status, 404);
        assert_eq!(r.handle(&Request::new(Method::Get, "/api/jobs/1/extra")).status, 404);
        assert_eq!(r.handle(&Request::new(Method::Get, "/")).status, 404);
    }

    #[test]
    fn panicking_handler_contained() {
        let r = router();
        let resp = r.handle(&Request::new(Method::Get, "/api/broken"));
        assert_eq!(resp.status, 500);
        // The router still works afterwards.
        assert_eq!(r.handle(&Request::new(Method::Get, "/api/jobs")).status, 200);
    }

    #[test]
    fn trailing_slash_equivalence() {
        let r = router();
        assert_eq!(r.handle(&Request::new(Method::Get, "/api/jobs/")).status, 200);
    }

    #[test]
    fn params_are_urldecoded() {
        let r = router();
        let resp = r.handle(&Request::new(Method::Get, "/api/nodes/a%20b/jobs"));
        assert_eq!(resp.body_json().unwrap()["node"], "a b");
    }

    #[test]
    fn route_patterns_listed() {
        let r = router();
        let patterns = r.route_patterns();
        assert!(patterns.contains(&(Method::Get, "/api/jobs/:id".to_string())));
        assert_eq!(patterns.len(), 5);
    }
}
