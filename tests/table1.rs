//! Experiment T1: regenerate the paper's Table 1 (dashboard features with
//! associated data sources) by *measuring* which sources each feature's
//! route actually touches, and check it against the declared table.

use hpcdash::SimSite;
use hpcdash_core::api;
use hpcdash_http::HttpClient;
use hpcdash_slurm::job::{ArraySpec, JobRequest};
use hpcdash_workload::ScenarioConfig;
use std::collections::BTreeSet;

#[test]
fn observed_sources_match_declared_table() {
    let site = SimSite::build(ScenarioConfig::small());
    site.warm_up(600);
    let server = site.serve().unwrap();
    let base = server.base_url();
    let client = HttpClient::new();
    let user = site.scenario.population.users[0].clone();
    let account = site.scenario.population.accounts_of(&user)[0].clone();

    // Give Job Overview a target with logs and an array sibling.
    let mut req = JobRequest::simple(&user, &account, "cpu", 1);
    req.array = Some(ArraySpec {
        first: 0,
        last: 1,
        max_concurrent: None,
    });
    let ids = site.scenario.ctld.submit(req).unwrap();
    site.scenario.ctld.tick();
    let job_id = ids[0];

    site.ctx().clear_observed_sources();
    site.ctx().cache.clear();

    // Exercise every feature cache-cold.
    let node = site.scenario.ctld.query_nodes()[0].name.clone();
    let calls = [
        "/api/announcements".to_string(),
        "/api/recent_jobs".to_string(),
        "/api/system_status".to_string(),
        "/api/accounts".to_string(),
        format!("/api/accounts/{account}/export"),
        "/api/storage".to_string(),
        "/api/myjobs?range=all".to_string(),
        "/api/jobmetrics?range=all".to_string(),
        "/api/clusterstatus".to_string(),
        format!("/api/nodes/{node}"),
        format!("/api/jobs/{job_id}"),
        format!("/api/jobs/{job_id}/logs?stream=out"),
        format!("/api/jobs/{job_id}/array"),
    ];
    for path in &calls {
        let resp = client
            .get(&format!("{base}{path}"), &[("X-Remote-User", &user)])
            .unwrap();
        assert_eq!(resp.status, 200, "{path}: {}", resp.body_string());
    }

    let observed = site.ctx().observed_sources();
    let declared = api::feature_table();
    assert_eq!(declared.len(), 10, "the paper's Table 1 has ten rows");

    for row in &declared {
        let got = observed.get(row.feature).unwrap_or_else(|| {
            panic!(
                "feature {:?} was never observed; observed: {observed:?}",
                row.feature
            )
        });
        let want: BTreeSet<String> = row.sources.iter().map(|s| s.to_string()).collect();
        assert_eq!(
            got, &want,
            "feature {:?}: observed sources diverge from declared Table 1 row",
            row.feature
        );
    }
    // And nothing outside the declared table touched a data source.
    assert_eq!(observed.len(), declared.len());
}

#[test]
fn printed_table_matches_paper_shape() {
    // The harness the `table1` example uses: feature + sources, one row per
    // feature, exactly like the paper's Table 1.
    let table = api::feature_table();
    let rendered: Vec<String> = table
        .iter()
        .map(|r| format!("{} | {}", r.feature, r.sources.join(", ")))
        .collect();
    let expect_fragments = [
        ("Announcements widget", "news API"),
        ("Recent Jobs widget", "squeue (slurmctld)"),
        ("System Status widget", "sinfo (slurmctld)"),
        ("Accounts widget", "scontrol show assoc (slurmctld)"),
        ("Storage widget", "ZFS and GPFS storage database"),
        ("My Jobs", "sacct (slurmdbd)"),
        ("Job Performance Metrics", "sacct (slurmdbd)"),
        ("Cluster Status", "scontrol show node (slurmctld)"),
        ("Job Overview", "scontrol show job (slurmctld)"),
        ("Node Overview", "scontrol show node (slurmctld)"),
    ];
    for (feature, source) in expect_fragments {
        assert!(
            rendered
                .iter()
                .any(|row| row.starts_with(feature) && row.contains(source)),
            "missing Table 1 row {feature} -> {source}: {rendered:#?}"
        );
    }
}
