//! `hpcdash-push` — the real-time event fan-out hub.
//!
//! The legacy updates feed is a stateless poll: every `/api/updates` request
//! scans the whole `EventLog` and re-resolves the viewer's account set, so N
//! users cost N scans + N `scontrol show assoc` RPCs per refresh interval —
//! the same shape as the squeue storms the paper's caching exists to prevent
//! (§3.2). This crate inverts the data flow: `slurmctld` publishes each job
//! transition once into a [`Hub`], which fans it out to pre-filtered,
//! bounded per-subscriber queues. A long-poll route then parks a server
//! worker on the subscriber's condvar until events arrive or a deadline
//! passes; delivery cost no longer touches the daemons at all.
//!
//! Design points (see DESIGN.md §3):
//! - **Sharded registry** — subscribers are spread over shards so subscribe
//!   and fan-out contend on a fraction of the registry, not all of it.
//! - **Pre-filtered visibility** — the subscriber's account set is resolved
//!   once at subscribe time and refreshed on a TTL, so fan-out does an O(1)
//!   set-membership check per event instead of a per-poll daemon query.
//! - **Coalesce-to-resync overflow** — a subscriber that stops draining is
//!   never allowed to block the publisher: when its bounded queue fills,
//!   the queue is dropped wholesale and the subscriber is marked
//!   `resync_required` (it refetches tables, like a truncated poll cursor).
//! - **Condvar wakeups** — `wait` parks until the queue is non-empty, a
//!   resync is pending, or the deadline passes, so a long-poll route holds
//!   a worker without burning CPU.

mod hub;

pub use hub::{AccountResolver, Delivery, Hub, HubConfig, SubscriberHandle};
