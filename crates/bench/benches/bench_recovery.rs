//! Experiment P14 — crash recovery: how fast a restarted daemon gets the
//! dashboard back to fresh data, and what the durability machinery costs.
//!
//! Three measurements:
//!
//! 1. **Time-to-first-fresh-snapshot.** The controller crashes mid-run and
//!    stays down for five simulated minutes while a user keeps refreshing
//!    the homepage. Every outage round must serve (stale, honestly
//!    labelled) — availability through the crash is 100% or the bench
//!    fails. After the restart tick the first all-fresh round must land
//!    within one polling round of `down_until`: recovery is replay, not a
//!    slow warm-up.
//!
//! 2. **Rebuild cost.** The in-line state rebuild (decode checkpoint +
//!    replay WAL suffix + republish snapshot) runs inside the restart tick;
//!    its wall time comes straight off the `RecoveryReport` and is bounded.
//!
//! 3. **Checkpoint cost.** The periodic checkpoint serializes the full
//!    cluster state; it runs on the tick path, so it must stay cheap enough
//!    to hide inside a scheduling pass.

use hpcdash_bench::{banner, BenchSite};
use hpcdash_core::pages::homepage::WIDGETS;
use hpcdash_core::DashboardConfig;
use hpcdash_faults::{FaultPlan, FaultRule};
use hpcdash_simtime::{Clock, Timestamp};
use hpcdash_workload::ScenarioConfig;
use std::sync::Arc;
use std::time::Instant;

const DOWN_SECS: u64 = 300;
const ROUND_SECS: u64 = 61;

fn main() {
    banner(
        "P14",
        "crash recovery: 5-minute controller outage, serve-stale bridge, replay rebuild",
    );

    let site = BenchSite::build(ScenarioConfig::small(), DashboardConfig::purdue_like());
    site.warm_up(600);
    let user = site.user();
    for (_, path) in WIDGETS {
        assert_eq!(site.get(path, &user).status, 200, "warm fetch of {path}");
    }

    // Crash at the next tick, down for DOWN_SECS of sim time.
    let ctld = &site.scenario.ctld;
    let clock = &site.scenario.clock;
    let crash_after = clock.now();
    ctld.faults().install(
        Arc::new(
            FaultPlan::new(0x14).rule(FaultRule::crash("slurmctld", DOWN_SECS).during(
                Timestamp(crash_after.0 + 1),
                Timestamp(crash_after.0 + 1 + ROUND_SECS),
            )),
        ),
        clock.shared(),
    );

    let (mut fresh, mut degraded, mut failed) = (0u64, 0u64, 0u64);
    let mut crashed_at: Option<u64> = None;
    let mut first_fresh_after: Option<u64> = None;
    for _ in 0..10 {
        clock.advance(ROUND_SECS);
        ctld.tick();
        if ctld.is_down() && crashed_at.is_none() {
            crashed_at = Some(clock.now().as_secs());
        }
        let mut round_fresh = true;
        for (_, path) in WIDGETS {
            let resp = site.get(path, &user);
            let body = resp.body_json().unwrap_or(serde_json::Value::Null);
            match (resp.status, body["degraded"].as_bool().unwrap_or(false)) {
                (200, false) => fresh += 1,
                (200, true) => {
                    degraded += 1;
                    round_fresh = false;
                }
                _ => {
                    failed += 1;
                    round_fresh = false;
                }
            }
        }
        if round_fresh && crashed_at.is_some() && first_fresh_after.is_none() {
            first_fresh_after = Some(clock.now().as_secs());
        }
    }

    let crashed_at = crashed_at.expect("the scripted crash fired");
    let report = ctld.last_recovery().expect("the controller recovered");
    let down_until = report.recovered_at.as_secs();
    let first_fresh = first_fresh_after.expect("a fresh round after recovery");
    let fresh_lag = first_fresh.saturating_sub(down_until);

    // Checkpoint cost: serialize the recovered cluster state repeatedly.
    let reps = 20u32;
    let cp_start = Instant::now();
    for _ in 0..reps {
        ctld.checkpoint_now();
    }
    let cp_micros = cp_start.elapsed().as_micros() as u64 / reps as u64;

    println!("{:>38} | {:>12}", "measure", "value");
    println!("{}", "-".repeat(55));
    for (name, value) in [
        (
            "outage rounds fresh/degraded/failed",
            format!("{fresh}/{degraded}/{failed}"),
        ),
        ("crash observed at (sim s)", format!("{crashed_at}")),
        ("restart due at (sim s)", format!("{down_until}")),
        ("first all-fresh round (sim s)", format!("{first_fresh}")),
        ("fresh lag past restart (sim s)", format!("{fresh_lag}")),
        (
            "wal replayed / lost (records)",
            format!("{}/{}", report.wal_replayed, report.wal_lost),
        ),
        (
            "epoch before -> after",
            format!("{} -> {}", report.epoch_before, report.epoch_after),
        ),
        (
            "state rebuild (wall µs)",
            format!("{}", report.duration_micros),
        ),
        ("checkpoint (wall µs, mean of 20)", format!("{cp_micros}")),
    ] {
        println!("{name:>38} | {value:>12}");
    }

    assert_eq!(
        failed, 0,
        "serve-stale must keep every widget available through the outage"
    );
    assert!(
        degraded > 0,
        "the crash never bit — the bench measured nothing"
    );
    assert!(
        fresh_lag <= ROUND_SECS + 1,
        "first fresh round came {fresh_lag}s after restart; recovery must \
         complete within one polling round"
    );
    assert!(
        report.epoch_after > report.epoch_before,
        "recovery must republish at a strictly newer epoch"
    );
    assert!(
        report.duration_micros < 500_000,
        "state rebuild took {}µs; replaying checkpoint+WAL must stay well \
         under a second",
        report.duration_micros
    );
    assert!(
        cp_micros < 250_000,
        "checkpoint took {cp_micros}µs; it runs on the tick path and must \
         hide inside a scheduling pass"
    );
    println!("\nok: 100% widget availability through the crash; fresh within one round of restart");
}
