//! Job Overview API (paper §7): a single job in depth — header, timeline,
//! overview cards, the interactive-session tab, output/error log tabs, and
//! the job-array tab.
//!
//! Live jobs come from `scontrol show job` (slurmctld); finished jobs fall
//! back to accounting (slurmdbd); logs come from the filesystem with
//! inherited permissions.

use crate::auth::CurrentUser;
use crate::colors::job_state_color;
use crate::ctx::DashboardContext;
use crate::efficiency::EfficiencyReport;
use crate::reasons::friendly_reason;
use hpcdash_http::{Request, Response, Router};
use hpcdash_simtime::format_duration;
use hpcdash_slurm::job::{Job, JobId};
use hpcdash_slurmcli::{parse_sacct, sacct, SacctArgs};
use serde_json::json;

pub const FEATURE: &str = "Job Overview";
pub const ROUTES: &[&str] = &["/api/jobs/:id", "/api/jobs/:id/logs", "/api/jobs/:id/array"];
pub const SOURCES: &[&str] = &[
    "scontrol show job (slurmctld)",
    "sacct (slurmdbd)",
    "filesystem (job logs)",
    "telemetryd (metrics collector)",
];

pub fn register(router: &mut Router, ctx: DashboardContext) {
    let ctx_logs = ctx.clone();
    let ctx_array = ctx.clone();
    let keyctx = ctx.clone();
    router.get_cached(
        ROUTES[0],
        move |req| {
            let ttl = keyctx.cfg.cache.job_overview;
            super::render_decision(&keyctx, req, ROUTES[0], ttl)
        },
        move |req| handle_overview(&ctx, req),
    );
    router.get(ROUTES[1], move |req| handle_logs(&ctx_logs, req));
    router.get(ROUTES[2], move |req| handle_array(&ctx_array, req));
}

/// Resolve a display id (`1234` or `1234_7`) to a job record, looking in
/// live state first, then accounting.
fn resolve_job(ctx: &DashboardContext, display_id: &str) -> Option<Job> {
    match display_id.split_once('_') {
        None => {
            let id = JobId(display_id.parse().ok()?);
            ctx.note_source(FEATURE, "scontrol show job (slurmctld)");
            if let Some(job) = ctx.ctld.query_job(id) {
                return Some(Job::clone(&job));
            }
            ctx.note_source(FEATURE, "sacct (slurmdbd)");
            ctx.dbd.job(id)
        }
        Some((array_id, task)) => {
            let array_job_id = JobId(array_id.parse().ok()?);
            let task_id: u32 = task.parse().ok()?;
            ctx.note_source(FEATURE, "sacct (slurmdbd)");
            ctx.dbd
                .array_tasks(array_job_id)
                .into_iter()
                .find(|j| j.array.map(|a| a.task_id) == Some(task_id))
        }
    }
}

fn authorize(ctx: &DashboardContext, req: &Request) -> Result<(CurrentUser, Job), Response> {
    let user = CurrentUser::from_request(ctx, req)?;
    let Some(id) = req.param("id") else {
        return Err(Response::bad_request("missing job id"));
    };
    let Some(job) = resolve_job(ctx, id) else {
        return Err(Response::not_found(&format!("job {id} not found")));
    };
    if !user.may_view_job_of(&job.req.user, &job.req.account, ctx) {
        return Err(Response::forbidden("this job belongs to another group"));
    }
    Ok((user, job))
}

fn handle_overview(ctx: &DashboardContext, req: &Request) -> Response {
    let (user, job) = match authorize(ctx, req) {
        Ok(x) => x,
        Err(resp) => return resp,
    };
    let _ = user;
    let now = ctx.now();
    let gpu_flag = ctx.cfg.features.gpu_efficiency;

    // Efficiency via the accounting record (has TotalCPU/MaxRSS), with the
    // GPU column measured from the collector's series when one exists.
    let efficiency = {
        ctx.note_source(FEATURE, "sacct (slurmdbd)");
        let text = sacct(
            &ctx.dbd,
            &SacctArgs {
                job_ids: Some(vec![job.id]),
                ..SacctArgs::default()
            },
            now,
        )
        // Efficiency is a bonus column: if accounting is down the overview
        // still renders, just without it.
        .unwrap_or_default();
        let collector_gpu = if gpu_flag {
            crate::api::jobtelemetry::collector_gpu_mean(ctx, &job)
        } else {
            None
        };
        parse_sacct(&text)
            .ok()
            .and_then(|records| records.into_iter().next())
            .map(|rec| EfficiencyReport::from_record_with_gpu(&rec, gpu_flag, collector_gpu))
    };
    // Sparkline series for the telemetry card.
    let telemetry = crate::api::jobtelemetry::job_series_payload(ctx, FEATURE, &job);

    let elapsed = job.elapsed_secs(now);
    let session = job.req.comment.as_deref().and_then(parse_ood_session);
    let body = json!({
        "header": {
            "id": job.display_id(),
            "name": job.req.name,
            "state": job.state.to_slurm(),
            "state_color": job_state_color(job.state),
            "reason": job.reason.map(|r| r.to_slurm()),
            "reason_message": job.reason.map(friendly_reason),
        },
        "timeline": {
            "submitted": job.submit_time.to_slurm(),
            "eligible": job.eligible_time.to_slurm(),
            "started": job.start_time.map(|t| t.to_slurm()),
            "ended": job.end_time.map(|t| t.to_slurm()),
        },
        "cards": {
            "job_information": {
                "name": job.req.name,
                "user": job.req.user,
                "account": job.req.account,
                "partition": job.req.partition,
                "qos": job.req.qos,
            },
            "resources": {
                "cpus": job.alloc_cpus(),
                "nodes": job.req.nodes,
                "mem_mb_per_node": job.req.mem_mb_per_node,
                "gpus": job.req.gpus_per_node * job.req.nodes,
                "node_links": job.nodes.iter().map(|n| json!({
                    "name": n,
                    "overview_url": format!("/nodes/{n}"),
                })).collect::<Vec<_>>(),
            },
            "time": {
                "elapsed": format_duration(elapsed),
                "elapsed_secs": elapsed,
                "limit": job.req.time_limit.to_slurm(),
                "remaining_secs": job.remaining_secs(now),
                "cpu_time_secs": job.stats.map(|s| s.total_cpu_secs),
            },
            "efficiency": efficiency,
        },
        "telemetry": telemetry,
        "session": session,
        "has_array": job.array.is_some(),
        "array_url": job.array.map(|a| format!("/api/jobs/{}/array", a.array_job_id)),
        "logs": {
            "stdout_url": format!("/api/jobs/{}/logs?stream=out", job.display_id()),
            "stderr_url": format!("/api/jobs/{}/logs?stream=err", job.display_id()),
        },
        "exit_code": job.exit_code.map(|(c, s)| format!("{c}:{s}")),
    });
    // The overview rebuilds from backends every call, so the render cache
    // (keyed per job, invalidated each scheduler epoch) is its only cache.
    Response::json(&body).mark_cacheable()
}

/// The session tab payload parsed from the OOD comment
/// (`ood:<app>:<session_id>:<workdir>`).
fn parse_ood_session(comment: &str) -> Option<serde_json::Value> {
    let rest = comment.strip_prefix("ood:")?;
    let mut parts = rest.splitn(3, ':');
    let app = parts.next()?;
    let session_id = parts.next()?;
    let workdir = parts.next()?;
    Some(json!({
        "app": app,
        "session_id": session_id,
        "workdir": workdir,
        "workdir_url": format!("/pun/sys/files/fs{workdir}"),
        "relaunch_url": format!("/pun/sys/dashboard/batch_connect/sys/{app}/session_contexts/new"),
    }))
}

fn handle_logs(ctx: &DashboardContext, req: &Request) -> Response {
    let (user, job) = match authorize(ctx, req) {
        Ok(x) => x,
        Err(resp) => return resp,
    };
    let stream = req.query_param("stream").unwrap_or("out");
    let path = match stream {
        "out" => &job.stdout_path,
        "err" => &job.stderr_path,
        _ => return Response::bad_request("stream must be 'out' or 'err'"),
    };
    ctx.note_source(FEATURE, "filesystem (job logs)");
    // Log access inherits filesystem ownership: group visibility is NOT
    // enough here (paper §2.4: only the submitting user reads logs).
    match ctx.logs.tail_default(path, &user.username) {
        Ok(tail) => Response::json(&json!({
            "path": tail.path,
            "total_lines": tail.total_lines,
            "truncated": tail.truncated,
            "lines": tail.lines,
            "full_file_url": format!("/pun/sys/files/fs{}", tail.path),
        })),
        Err(hpcdash_slurm::joblog::LogError::PermissionDenied { .. }) => {
            Response::forbidden("log files are only viewable by the job owner")
        }
        Err(hpcdash_slurm::joblog::LogError::NotFound(_)) => Response::json(&json!({
            "path": path,
            "total_lines": 0,
            "truncated": false,
            "lines": [],
            "note": "no output yet",
        })),
    }
}

fn handle_array(ctx: &DashboardContext, req: &Request) -> Response {
    let (_user, job) = match authorize(ctx, req) {
        Ok(x) => x,
        Err(resp) => return resp,
    };
    let Some(array) = job.array else {
        return Response::not_found("job is not part of an array");
    };
    ctx.note_source(FEATURE, "sacct (slurmdbd)");
    let tasks = ctx.dbd.array_tasks(array.array_job_id);
    Response::json(&json!({
        "array_job_id": array.array_job_id.to_string(),
        "tasks": tasks
            .iter()
            .map(|t| json!({
                "id": t.display_id(),
                "task_id": t.array.map(|a| a.task_id),
                "state": t.state.to_slurm(),
                "state_color": job_state_color(t.state),
                "submitted": t.submit_time.to_slurm(),
                "started": t.start_time.map(|x| x.to_slurm()),
                "ended": t.end_time.map(|x| x.to_slurm()),
                "nodelist": t.nodes.join(","),
                "overview_url": format!("/jobs/{}", t.display_id()),
            }))
            .collect::<Vec<_>>(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::tests::test_ctx;
    use hpcdash_http::Method;
    use hpcdash_slurm::job::{ArraySpec, JobRequest, UsageProfile};

    fn request(path: &str, id: &str, user: &str) -> Request {
        let mut r = Request::new(Method::Get, path).with_header("X-Remote-User", user);
        r.params.insert("id".to_string(), id.to_string());
        r
    }

    fn submit_ood_job(ctx: &crate::ctx::DashboardContext) -> String {
        let mut req = JobRequest::simple("alice", "physics", "cpu", 4);
        req.comment = Some("ood:jupyter:sess9:/home/alice/ondemand/output/sess9".to_string());
        req.usage = UsageProfile::interactive(600);
        let ids = ctx.ctld.submit(req).unwrap();
        ctx.ctld.tick();
        ids[0].to_string()
    }

    #[test]
    fn overview_has_header_timeline_cards_session() {
        let ctx = test_ctx();
        let id = submit_ood_job(&ctx);
        let resp = handle_overview(&ctx, &request(&format!("/api/jobs/{id}"), &id, "alice"));
        assert_eq!(resp.status, 200, "{}", resp.body_string());
        let body = resp.body_json().unwrap();
        assert_eq!(body["header"]["state"], "RUNNING");
        assert_eq!(body["header"]["state_color"], "green");
        assert!(body["timeline"]["started"].is_string());
        assert!(body["timeline"]["ended"].is_null());
        assert_eq!(body["cards"]["resources"]["cpus"], 4);
        assert_eq!(body["cards"]["job_information"]["account"], "physics");
        assert_eq!(body["session"]["app"], "jupyter");
        assert_eq!(body["session"]["session_id"], "sess9");
        assert!(body["session"]["workdir_url"]
            .as_str()
            .unwrap()
            .contains("/files/fs/home/alice"));
        assert_eq!(body["has_array"], false);
        assert!(body["cards"]["time"]["remaining_secs"].is_u64());
        assert!(
            body["telemetry"]["cpu"].is_array(),
            "running job carries a telemetry block: {}",
            body["telemetry"]
        );
    }

    #[test]
    fn group_member_may_view_but_not_read_logs() {
        let ctx = test_ctx();
        // bob joins physics so he can see alice's job overview.
        // (test_ctx has only alice; use admin-less group check via dbd path.)
        let id = submit_ood_job(&ctx);
        // mallory (no shared account) is forbidden entirely.
        let resp = handle_overview(&ctx, &request(&format!("/api/jobs/{id}"), &id, "mallory"));
        assert_eq!(resp.status, 403);
        // alice reads her own logs.
        let resp = handle_logs(
            &ctx,
            &request(&format!("/api/jobs/{id}/logs?stream=out"), &id, "alice"),
        );
        assert_eq!(resp.status, 200);
        let body = resp.body_json().unwrap();
        assert!(!body["lines"].as_array().unwrap().is_empty());
    }

    #[test]
    fn missing_job_is_404_and_bad_stream_400() {
        let ctx = test_ctx();
        let resp = handle_overview(&ctx, &request("/api/jobs/999", "999", "alice"));
        assert_eq!(resp.status, 404);
        let id = submit_ood_job(&ctx);
        let resp = handle_logs(
            &ctx,
            &request(&format!("/api/jobs/{id}/logs?stream=both"), &id, "alice"),
        );
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn array_tab_lists_tasks() {
        let ctx = test_ctx();
        let mut req = JobRequest::simple("alice", "physics", "cpu", 1);
        req.array = Some(ArraySpec {
            first: 0,
            last: 3,
            max_concurrent: None,
        });
        let ids = ctx.ctld.submit(req).unwrap();
        ctx.ctld.tick();
        let first = ids[0].to_string();
        let resp = handle_array(
            &ctx,
            &request(&format!("/api/jobs/{first}/array"), &first, "alice"),
        );
        assert_eq!(resp.status, 200, "{}", resp.body_string());
        let tasks = resp.body_json().unwrap()["tasks"]
            .as_array()
            .unwrap()
            .to_vec();
        assert_eq!(tasks.len(), 4);
        assert_eq!(tasks[0]["id"], format!("{first}_0"));
        // Non-array job 404s on the array tab.
        let plain = submit_ood_job(&ctx);
        let resp = handle_array(
            &ctx,
            &request(&format!("/api/jobs/{plain}/array"), &plain, "alice"),
        );
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn array_task_display_id_resolves() {
        let ctx = test_ctx();
        let mut req = JobRequest::simple("alice", "physics", "cpu", 1);
        req.array = Some(ArraySpec {
            first: 0,
            last: 2,
            max_concurrent: None,
        });
        let ids = ctx.ctld.submit(req).unwrap();
        ctx.ctld.tick();
        let task1 = format!("{}_1", ids[0]);
        let resp = handle_overview(
            &ctx,
            &request(&format!("/api/jobs/{task1}"), &task1, "alice"),
        );
        assert_eq!(resp.status, 200, "{}", resp.body_string());
        assert_eq!(resp.body_json().unwrap()["header"]["id"], task1);
    }

    #[test]
    fn ood_session_parser() {
        let s = parse_ood_session("ood:rstudio:abc:/home/u/dir").unwrap();
        assert_eq!(s["app"], "rstudio");
        assert_eq!(s["session_id"], "abc");
        assert_eq!(s["workdir"], "/home/u/dir");
        assert!(parse_ood_session("not-ood").is_none());
        assert!(parse_ood_session("ood:app").is_none());
    }
}
