//! Experiment P7 — the lock-free snapshot read path: reader throughput and
//! state-mutex pressure while slurmctld keeps scheduling.
//!
//! The legacy read path takes the cluster-state mutex for every query, so N
//! dashboard readers serialize against each other *and* against the
//! scheduler tick, and each request deep-clones every matching job. The
//! snapshot path loads an epoch-published `Arc<ClusterSnapshot>` without
//! touching the mutex, walks precomputed per-user/per-partition indexes, and
//! hands back shared `Arc<Job>` rows. This bench pins the claim: with a
//! writer ticking continuously, snapshot readers sustain >=5x the locked
//! path's throughput, and the read side adds zero state-mutex acquisitions.

use criterion::Criterion;
use hpcdash_bench::banner;
use hpcdash_slurm::ctld::JobQuery;
use hpcdash_slurm::job::JobRequest;
use hpcdash_workload::{Scenario, ScenarioConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const READERS: usize = 8;

fn site() -> Scenario {
    let scenario = Scenario::build(ScenarioConfig {
        free_daemons: true,
        ..ScenarioConfig::small()
    });
    // Populate a realistic mix of running/pending/finished jobs.
    let mut driver = scenario.driver(900);
    driver.advance(900);
    scenario
}

struct ModeResult {
    reads: u64,
    reads_per_sec: f64,
    state_locks: u64,
    lock_wait: Duration,
    publishes: u64,
}

/// N reader threads hammer `squeue`-shaped queries while one writer thread
/// keeps the scheduler ticking and submitting; returns reader throughput
/// and the state-mutex pressure the readers generated.
fn run_mode(scenario: &Scenario, locked: bool, window: Duration) -> ModeResult {
    scenario.ctld.stats().reset();
    let publishes0 = scenario.ctld.snapshot_stats().publishes();
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));

    let writer = {
        let ctld = scenario.ctld.clone();
        let clock = scenario.clock.clone();
        let stop = stop.clone();
        let user = scenario.population.user(0).to_string();
        let account = scenario.population.accounts_of(&user)[0].clone();
        std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                clock.advance(1);
                ctld.tick();
                n += 1;
                if n.is_multiple_of(16) {
                    let _ = ctld.submit(JobRequest::simple(&user, &account, "cpu", 1));
                }
            }
            n
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|i| {
            let ctld = scenario.ctld.clone();
            let stop = stop.clone();
            let total = total.clone();
            let user = scenario
                .population
                .user(i % scenario.population.users.len())
                .to_string();
            std::thread::spawn(move || {
                let all = JobQuery::all();
                let mine = JobQuery::for_user(&user);
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Alternate fleet-wide and per-user queries, like a mix
                    // of admin dashboards and My Jobs tabs.
                    let q = if n.is_multiple_of(2) { &all } else { &mine };
                    if locked {
                        let _ = ctld.query_jobs_locked(q);
                    } else {
                        let _ = ctld.query_jobs(q);
                    }
                    n += 1;
                }
                total.fetch_add(n, Ordering::Relaxed);
            })
        })
        .collect();

    let start = std::time::Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let elapsed = start.elapsed();
    let ticks = writer.join().expect("writer");
    for r in readers {
        r.join().expect("reader");
    }

    let snap = scenario.ctld.stats().snapshot();
    let reads = total.load(Ordering::Relaxed);
    ModeResult {
        reads,
        reads_per_sec: reads as f64 / elapsed.as_secs_f64(),
        // Subtract the writer's own acquisitions (one per tick, one per
        // submit) so the column shows what the *readers* added.
        state_locks: scenario
            .ctld
            .stats()
            .state_lock_count()
            .saturating_sub(ticks + ticks / 16),
        lock_wait: snap.total_lock_wait,
        publishes: scenario.ctld.snapshot_stats().publishes() - publishes0,
    }
}

fn main() {
    banner(
        "P7",
        &format!("snapshot read path: {READERS} readers vs a continuously ticking slurmctld"),
    );
    let smoke = std::env::args().any(|a| a == "--test");
    let window = if smoke {
        Duration::from_millis(60)
    } else {
        Duration::from_millis(1500)
    };

    let scenario = site();
    let locked = run_mode(&scenario, true, window);
    let snapshot = run_mode(&scenario, false, window);

    println!(
        "{:>9} | {:>10} {:>12} {:>14} {:>14} {:>9}",
        "mode", "reads", "reads/sec", "reader locks", "lock wait", "publishes"
    );
    println!("{}", "-".repeat(78));
    for (name, m) in [("locked", &locked), ("snapshot", &snapshot)] {
        println!(
            "{:>9} | {:>10} {:>12.0} {:>14} {:>14?} {:>9}",
            name, m.reads, m.reads_per_sec, m.state_locks, m.lock_wait, m.publishes
        );
    }
    let speedup = snapshot.reads_per_sec / locked.reads_per_sec.max(1.0);
    println!("\nsnapshot/locked reader throughput: {speedup:.1}x");

    // The claims this bench exists to hold. Skipped in --test smoke mode,
    // where the measurement window is too short to be meaningful.
    if !smoke {
        assert!(
            speedup >= 5.0,
            "snapshot readers must sustain >=5x locked throughput (got {speedup:.1}x)"
        );
    }
    assert_eq!(
        snapshot.state_locks, 0,
        "snapshot reads must not acquire the state mutex"
    );

    // Criterion: uncontended single-query latency for the two paths, fleet-
    // wide and per-user. The per-user snapshot query walks the by_user
    // index; the locked query scans every job either way.
    let mut c = Criterion::default().configure_from_args().sample_size(40);
    {
        let user = scenario.population.user(0).to_string();
        let all = JobQuery::all();
        let mine = JobQuery::for_user(&user);
        let ctld = scenario.ctld.clone();
        let mut group = c.benchmark_group("ctld_snapshot");
        group.bench_function("squeue_all_snapshot", |b| b.iter(|| ctld.query_jobs(&all)));
        group.bench_function("squeue_all_locked", |b| {
            b.iter(|| ctld.query_jobs_locked(&all))
        });
        group.bench_function("squeue_user_snapshot", |b| {
            b.iter(|| ctld.query_jobs(&mine))
        });
        group.bench_function("squeue_user_locked", |b| {
            b.iter(|| ctld.query_jobs_locked(&mine))
        });
        group.bench_function("sinfo_snapshot", |b| {
            b.iter(|| hpcdash_slurmcli::sinfo::sinfo_usage(&ctld).expect("sinfo"))
        });
        group.finish();
    }
    c.final_summary();
}
