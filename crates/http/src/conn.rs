//! Per-connection state for the event loop.

use crate::longpoll::ParkDirective;
use crate::request::Request;
use std::net::TcpStream;
use std::time::Instant;

/// Where a connection is in its request/response lifecycle. Exactly one
/// party drives it at a time: the reactor in every state except
/// `Dispatching`, where a worker owns the exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Keep-alive, no bytes pending; armed for read with the idle timeout.
    Idle,
    /// A partial request is buffered; armed for read with the read timeout.
    Reading,
    /// A worker is routing the parsed request(s); not armed.
    Dispatching,
    /// Response bytes remain; armed for write with the write timeout.
    Writing,
    /// A long-poll holds the connection open (no thread); armed for read
    /// so a client hangup is noticed, deadline = the poll's max wait.
    Parked,
}

impl ConnState {
    /// The metrics label for `hpcdash_http_connections{state=...}`.
    pub fn label(self) -> &'static str {
        match self {
            ConnState::Idle => "idle",
            ConnState::Reading => "reading",
            ConnState::Dispatching => "dispatching",
            ConnState::Writing => "writing",
            ConnState::Parked => "parked",
        }
    }
}

/// A parked long-poll: the original request (re-dispatched on wake) and
/// the handler's directive (whose drop releases the park-budget permit).
pub(crate) struct ParkedExchange {
    pub req: Request,
    pub directive: ParkDirective,
}

pub(crate) struct Conn {
    pub stream: TcpStream,
    pub state: ConnState,
    pub read_buf: Vec<u8>,
    pub write_buf: Vec<u8>,
    pub write_pos: usize,
    /// Current deadline; the heap may hold stale earlier entries, the
    /// reactor validates against this field before acting.
    pub deadline: Option<Instant>,
    pub close_after_write: bool,
    pub parked: Option<ParkedExchange>,
}

impl Conn {
    pub fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            state: ConnState::Idle,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            deadline: None,
            close_after_write: false,
            parked: None,
        }
    }
}
