//! The cluster event log: every job state transition, timestamped.
//!
//! This powers the dashboard's real-time job monitoring (listed as future
//! work in the paper's §9 and implemented here): clients poll
//! `/api/updates?since=<seq>` and receive only the transitions they have
//! not seen, instead of refetching whole tables.

use crate::job::{JobId, JobState, PendingReason};
use hpcdash_simtime::Timestamp;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One job state transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobEvent {
    /// Monotonic sequence number (cluster-wide).
    pub seq: u64,
    pub at: Timestamp,
    pub job: JobId,
    pub user: String,
    pub account: String,
    pub from: Option<JobState>,
    pub to: JobState,
    /// Pending reason attached at the transition, if any.
    pub reason: Option<PendingReason>,
}

/// A bounded, append-only event log.
#[derive(Debug)]
pub struct EventLog {
    events: RwLock<VecDeque<JobEvent>>,
    capacity: usize,
    next_seq: RwLock<u64>,
}

impl EventLog {
    pub fn new(capacity: usize) -> EventLog {
        EventLog {
            events: RwLock::new(VecDeque::new()),
            capacity: capacity.max(1),
            next_seq: RwLock::new(1),
        }
    }

    /// Append a transition; returns its sequence number.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &self,
        at: Timestamp,
        job: JobId,
        user: &str,
        account: &str,
        from: Option<JobState>,
        to: JobState,
        reason: Option<PendingReason>,
    ) -> u64 {
        let mut next = self.next_seq.write();
        let seq = *next;
        *next += 1;
        let mut events = self.events.write();
        if events.len() >= self.capacity {
            events.pop_front();
        }
        events.push_back(JobEvent {
            seq,
            at,
            job,
            user: user.to_string(),
            account: account.to_string(),
            from,
            to,
            reason,
        });
        seq
    }

    /// Events with `seq > since`, oldest first. `truncated` is true when
    /// older matching events have already been evicted (the client should
    /// do a full refresh).
    pub fn since(&self, since: u64) -> (Vec<JobEvent>, bool) {
        let events = self.events.read();
        let truncated = events
            .front()
            .map(|e| e.seq > since + 1 && since > 0)
            .unwrap_or(false);
        (
            events.iter().filter(|e| e.seq > since).cloned().collect(),
            truncated,
        )
    }

    /// The newest sequence number issued (0 when empty).
    pub fn latest_seq(&self) -> u64 {
        *self.next_seq.read() - 1
    }

    pub fn len(&self) -> usize {
        self.events.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.read().is_empty()
    }
}

impl Default for EventLog {
    fn default() -> EventLog {
        EventLog::new(4_096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_n(log: &EventLog, n: u64) {
        for i in 0..n {
            log.push(
                Timestamp(i),
                JobId(i as u32 + 1),
                "alice",
                "physics",
                Some(JobState::Pending),
                JobState::Running,
                None,
            );
        }
    }

    #[test]
    fn sequence_is_monotonic() {
        let log = EventLog::new(100);
        push_n(&log, 5);
        let (events, truncated) = log.since(0);
        assert_eq!(events.len(), 5);
        assert!(!truncated);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        assert_eq!(log.latest_seq(), 5);
    }

    #[test]
    fn since_filters() {
        let log = EventLog::new(100);
        push_n(&log, 10);
        let (events, truncated) = log.since(7);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![8, 9, 10]
        );
        assert!(!truncated);
        let (events, _) = log.since(10);
        assert!(events.is_empty());
    }

    #[test]
    fn capacity_evicts_and_flags_truncation() {
        let log = EventLog::new(4);
        push_n(&log, 10);
        assert_eq!(log.len(), 4);
        // Client last saw seq 2, but the log now starts at 7.
        let (events, truncated) = log.since(2);
        assert!(truncated, "client is told to do a full refresh");
        assert_eq!(events.first().unwrap().seq, 7);
        // A client that is up to date is not truncated.
        let (_, truncated) = log.since(9);
        assert!(!truncated);
    }

    #[test]
    fn fresh_client_is_never_truncated_from_zero_on_small_logs() {
        let log = EventLog::new(100);
        push_n(&log, 3);
        let (events, truncated) = log.since(0);
        assert_eq!(events.len(), 3);
        assert!(!truncated);
    }

    #[test]
    fn concurrent_pushes_keep_unique_seqs() {
        let log = std::sync::Arc::new(EventLog::new(10_000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    log.push(
                        Timestamp(0),
                        JobId(1),
                        "u",
                        "a",
                        None,
                        JobState::Pending,
                        None,
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (events, _) = log.since(0);
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        let before = seqs.len();
        seqs.dedup();
        assert_eq!(seqs.len(), before, "no duplicate sequence numbers");
        assert_eq!(log.latest_seq(), 4_000);
    }
}
