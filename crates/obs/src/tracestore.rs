//! Tail-sampled trace retention: assemble [`SpanRecord`]s into complete
//! traces at root-span close, then decide — with the whole trace in hand —
//! whether it is worth keeping.
//!
//! Head sampling throws traces away before knowing how they end; the flat
//! [`TraceSink`](crate::trace::TraceSink) ring keeps everything but evicts
//! blindly. The store sits between: every trace that **errored** or served
//! **degraded** (stale) data is retained, every trace **slower** than a
//! per-route latency threshold learned from recent traffic is retained,
//! and the healthy rest is thinned to a deterministic 1-in-N sample. Each
//! retention cause keeps its own counter, and both the pending-assembly
//! and retained sets are bounded.
//!
//! Retention is also where histogram **exemplars** are written: the root
//! duration of a kept trace is stamped into the matching bucket of the
//! route-latency histogram, so a non-zero exemplar always resolves to a
//! trace the store actually holds (an observe-time exemplar would almost
//! always point at a discarded trace).

use crate::registry::Registry;
use crate::trace::{current_trace, SpanRecord, TraceId};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// The histogram family exemplars are written into — the per-route request
/// latency recorded by the HTTP router.
pub const ROUTE_LATENCY_METRIC: &str = "hpcdash_http_request_latency";

/// Why a trace was kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RetainCause {
    /// The request errored (5xx status, or the source load failed outright).
    Error,
    /// The request was served degraded/stale data.
    Degraded,
    /// Slower than the learned per-route latency threshold.
    Slow,
    /// The deterministic 1-in-N sample of the healthy rest.
    Sampled,
}

impl RetainCause {
    pub const ALL: [RetainCause; 4] = [
        RetainCause::Error,
        RetainCause::Degraded,
        RetainCause::Slow,
        RetainCause::Sampled,
    ];

    pub fn label(self) -> &'static str {
        match self {
            RetainCause::Error => "error",
            RetainCause::Degraded => "degraded",
            RetainCause::Slow => "slow",
            RetainCause::Sampled => "sampled",
        }
    }

    pub fn index(self) -> usize {
        match self {
            RetainCause::Error => 0,
            RetainCause::Degraded => 1,
            RetainCause::Slow => 2,
            RetainCause::Sampled => 3,
        }
    }
}

/// Retention policy knobs. Defaults bound memory to a few hundred traces.
#[derive(Debug, Clone)]
pub struct TraceStoreConfig {
    /// Retained traces kept (FIFO eviction beyond this).
    pub capacity: usize,
    /// In-flight (unfinished) traces assembled at once.
    pub max_pending: usize,
    /// Spans kept per trace; extras mark the trace truncated.
    pub max_spans_per_trace: usize,
    /// Healthy traces kept at 1-in-N. 0 disables healthy sampling.
    pub healthy_sample_rate: u64,
    /// Quantile of recent per-route latency that defines "slow".
    pub slow_quantile: f64,
    /// Per-route samples required before the slow threshold activates.
    pub slow_min_samples: usize,
    /// The slow threshold never drops below this (ns), so routes with
    /// uniformly fast traffic don't retain everything.
    pub slow_floor_ns: u64,
    /// Per-route sample window: the slow threshold is recomputed (and the
    /// window drained) each time it fills, so the threshold tracks *recent*
    /// traffic, memory stays bounded, and the span record path never sorts —
    /// the percentile cost is amortized over the whole window.
    pub threshold_window: usize,
    /// Offsets the healthy-sample phase; same seed + same stream ⇒ same
    /// retained set.
    pub seed: u64,
}

impl Default for TraceStoreConfig {
    fn default() -> TraceStoreConfig {
        TraceStoreConfig {
            capacity: 512,
            max_pending: 256,
            max_spans_per_trace: 64,
            healthy_sample_rate: 16,
            slow_quantile: 0.99,
            slow_min_samples: 64,
            slow_floor_ns: 50_000_000,
            threshold_window: 512,
            seed: 0x5eed,
        }
    }
}

/// A fully assembled, retained trace.
#[derive(Debug, Clone)]
pub struct StoredTrace {
    pub id: TraceId,
    pub cause: RetainCause,
    /// Spans in start (seq) order: root hop first.
    pub spans: Vec<SpanRecord>,
    /// Request-level annotations (`status`, `route`, `outcome`, ...).
    pub notes: Vec<(String, String)>,
    /// Duration of the root span that closed the trace.
    pub root_dur_ns: u64,
    pub route: Option<String>,
    /// Spans beyond `max_spans_per_trace` were dropped.
    pub truncated: bool,
}

impl StoredTrace {
    pub fn note(&self, key: &str) -> Option<&str> {
        self.notes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Running totals; all monotonic except the two `_current` sizes.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceStoreStats {
    /// Traces whose root span closed (retained + discarded).
    pub finalized: u64,
    /// Retentions by cause, indexed by [`RetainCause::index`].
    pub retained_by_cause: [u64; 4],
    /// Healthy traces dropped by the 1-in-N sampler.
    pub discarded: u64,
    /// Retained traces evicted FIFO to stay within capacity.
    pub evicted: u64,
    /// In-flight traces dropped because assembly overflowed.
    pub pending_evicted: u64,
    /// Spans that arrived after their trace was already finalized.
    pub late_spans: u64,
    pub retained_current: usize,
    pub pending_current: usize,
}

impl TraceStoreStats {
    pub fn retained_total(&self) -> u64 {
        self.retained_by_cause.iter().sum()
    }
}

#[derive(Default)]
struct Pending {
    spans: Vec<SpanRecord>,
    notes: Vec<(String, String)>,
    truncated: bool,
}

impl Pending {
    fn note(&self, key: &str) -> Option<&str> {
        self.notes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Per-route slow-threshold state. The threshold is a *cached* quantile:
/// recomputed when the window first reaches `slow_min_samples` and then each
/// time it fills `threshold_window` (which drains the window), never on the
/// per-span path — a root close only pushes one sample and reads the cache.
#[derive(Default)]
struct RouteLat {
    window: Vec<u64>,
    thr: Option<u64>,
}

#[derive(Default)]
struct Inner {
    pending: HashMap<u64, Pending>,
    pending_order: VecDeque<u64>,
    retained: HashMap<u64, StoredTrace>,
    retained_order: VecDeque<u64>,
    /// Recently finalized-and-discarded ids: late spans for them (the
    /// in-process client's root closes after the server's) are dropped
    /// rather than re-assembled into a one-span ghost trace.
    discarded_recent: HashSet<u64>,
    discarded_order: VecDeque<u64>,
    /// Per-route recent latencies feeding the slow threshold.
    route_lat: HashMap<String, RouteLat>,
    healthy_seen: u64,
}

/// The tail-sampling store. One global instance (see [`store`]) observes
/// every span close; local instances back deterministic tests.
pub struct TraceStore {
    cfg: TraceStoreConfig,
    enabled: AtomicBool,
    inner: Mutex<Inner>,
    /// Exemplar target; attached by the dashboard context at startup.
    registry: Mutex<Option<Arc<Registry>>>,
    finalized: AtomicU64,
    retained_counts: [AtomicU64; 4],
    discarded: AtomicU64,
    evicted: AtomicU64,
    pending_evicted: AtomicU64,
    late_spans: AtomicU64,
}

impl Default for TraceStore {
    fn default() -> TraceStore {
        TraceStore::new(TraceStoreConfig::default())
    }
}

impl TraceStore {
    pub fn new(cfg: TraceStoreConfig) -> TraceStore {
        TraceStore {
            cfg,
            enabled: AtomicBool::new(true),
            inner: Mutex::new(Inner::default()),
            registry: Mutex::new(None),
            finalized: AtomicU64::new(0),
            retained_counts: std::array::from_fn(|_| AtomicU64::new(0)),
            discarded: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            pending_evicted: AtomicU64::new(0),
            late_spans: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> &TraceStoreConfig {
        &self.cfg
    }

    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn span observation on/off (benches measure both sides).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Attach the registry that retained traces stamp exemplars into.
    pub fn set_registry(&self, registry: &Arc<Registry>) {
        *self.registry.lock() = Some(registry.clone());
    }

    /// Observe one completed span. Called from `Span::drop` for the global
    /// instance; tests feed synthetic records directly.
    pub fn observe(&self, rec: &SpanRecord) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let Some(id) = rec.trace else { return };
        let exemplar = {
            let mut inner = self.inner.lock();
            // Late span for an already-retained trace: append in place.
            if let Some(t) = inner.retained.get_mut(&id.0) {
                if t.spans.len() < self.cfg.max_spans_per_trace {
                    t.spans.push(rec.clone());
                    t.spans.sort_by_key(|r| r.seq);
                } else {
                    t.truncated = true;
                }
                self.late_spans.fetch_add(1, Ordering::Relaxed);
                return;
            }
            // Late span for a trace already finalized and discarded.
            if inner.discarded_recent.contains(&id.0) {
                self.late_spans.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if rec.depth == 0 {
                // Root close: the trace is complete. The single-span case
                // (no children, no annotations) decides retention straight
                // from the borrowed record — no clone unless it is kept —
                // which is the overwhelmingly common healthy-traffic path.
                match inner.pending.remove(&id.0) {
                    Some(mut p) => {
                        if p.spans.len() < self.cfg.max_spans_per_trace {
                            p.spans.push(rec.clone());
                        } else {
                            p.truncated = true;
                        }
                        self.finalize_locked(&mut inner, id, p, rec.dur_ns)
                    }
                    None => self.finalize_single_locked(&mut inner, id, rec),
                }
            } else {
                let p = Self::pending_entry(
                    &mut inner,
                    id.0,
                    self.cfg.max_pending,
                    &self.pending_evicted,
                );
                if p.spans.len() < self.cfg.max_spans_per_trace {
                    p.spans.push(rec.clone());
                } else {
                    p.truncated = true;
                }
                None
            }
        };
        // Exemplars are written outside the store lock.
        if let Some((route, dur_ns)) = exemplar {
            if let Some(reg) = self.registry.lock().clone() {
                reg.histogram(ROUTE_LATENCY_METRIC, &[("route", &route)])
                    .set_exemplar(dur_ns, id);
            }
        }
    }

    /// Attach a request-level note to the trace active on this thread.
    pub fn annotate_current(&self, key: &str, value: impl Into<String>) {
        if let Some(id) = current_trace() {
            self.annotate_trace(id, key, value);
        }
    }

    /// Attach a request-level note to `id` (pending or retained).
    pub fn annotate_trace(&self, id: TraceId, key: &str, value: impl Into<String>) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some(t) = inner.retained.get_mut(&id.0) {
            t.notes.push((key.to_string(), value.into()));
            return;
        }
        if inner.discarded_recent.contains(&id.0) {
            return;
        }
        let p = Self::pending_entry(
            &mut inner,
            id.0,
            self.cfg.max_pending,
            &self.pending_evicted,
        );
        p.notes.push((key.to_string(), value.into()));
    }

    fn pending_entry<'a>(
        inner: &'a mut Inner,
        id: u64,
        max_pending: usize,
        pending_evicted: &AtomicU64,
    ) -> &'a mut Pending {
        if !inner.pending.contains_key(&id) {
            while inner.pending.len() >= max_pending {
                match inner.pending_order.pop_front() {
                    Some(old) => {
                        if inner.pending.remove(&old).is_some() {
                            pending_evicted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    None => break,
                }
            }
            inner.pending_order.push_back(id);
        }
        inner.pending.entry(id).or_default()
    }

    /// Decide the trace's fate. Returns the `(route, root_dur_ns)` exemplar
    /// write to perform after the lock is released, if the trace was kept
    /// on a route.
    fn finalize_locked(
        &self,
        inner: &mut Inner,
        id: TraceId,
        pending: Pending,
        root_dur_ns: u64,
    ) -> Option<(String, u64)> {
        self.finalized.fetch_add(1, Ordering::Relaxed);
        let route = pending.note("route").map(str::to_string).or_else(|| {
            pending
                .spans
                .iter()
                .find_map(|s| s.attr("route").map(str::to_string))
        });
        let errored = pending
            .note("status")
            .and_then(|s| s.parse::<u16>().ok())
            .is_some_and(|s| s >= 500)
            || pending.note("outcome") == Some("failed");
        let degraded = pending.note("outcome") == Some("degraded");
        let slow = route
            .as_deref()
            .and_then(|r| inner.route_lat.get(r).and_then(|rl| rl.thr))
            .is_some_and(|thr| root_dur_ns > thr);
        let cause = if errored {
            Some(RetainCause::Error)
        } else if degraded {
            Some(RetainCause::Degraded)
        } else if slow {
            Some(RetainCause::Slow)
        } else {
            self.sample_healthy_locked(inner)
        };
        // Feed the route window *after* deciding, so the threshold only
        // ever reflects traffic that came before this trace — a property
        // the determinism tests rely on.
        if let Some(r) = &route {
            self.feed_route_lat_locked(inner, r, root_dur_ns);
        }
        let Some(cause) = cause else {
            self.discarded.fetch_add(1, Ordering::Relaxed);
            Self::remember_discarded(inner, id.0);
            return None;
        };
        let mut spans = pending.spans;
        spans.sort_by_key(|r| r.seq);
        self.retain_locked(
            inner,
            id,
            StoredTrace {
                id,
                cause,
                spans,
                notes: pending.notes,
                root_dur_ns,
                route,
                truncated: pending.truncated,
            },
        )
    }

    /// Finalize a trace whose root closed with nothing pending: exactly one
    /// span and no annotations, so the errored/degraded causes (which only
    /// arrive as notes) cannot apply. The decision is slow-or-sampled, made
    /// on the borrowed record; it is cloned only if actually retained.
    fn finalize_single_locked(
        &self,
        inner: &mut Inner,
        id: TraceId,
        rec: &SpanRecord,
    ) -> Option<(String, u64)> {
        self.finalized.fetch_add(1, Ordering::Relaxed);
        let route = rec.attr("route");
        let root_dur_ns = rec.dur_ns;
        let slow = route
            .and_then(|r| inner.route_lat.get(r).and_then(|rl| rl.thr))
            .is_some_and(|thr| root_dur_ns > thr);
        let cause = if slow {
            Some(RetainCause::Slow)
        } else {
            self.sample_healthy_locked(inner)
        };
        if let Some(r) = route {
            self.feed_route_lat_locked(inner, r, root_dur_ns);
        }
        let Some(cause) = cause else {
            self.discarded.fetch_add(1, Ordering::Relaxed);
            Self::remember_discarded(inner, id.0);
            return None;
        };
        self.retain_locked(
            inner,
            id,
            StoredTrace {
                id,
                cause,
                spans: vec![rec.clone()],
                notes: Vec::new(),
                root_dur_ns,
                route: route.map(str::to_string),
                truncated: false,
            },
        )
    }

    /// The deterministic 1-in-N healthy sample; advances the phase counter.
    fn sample_healthy_locked(&self, inner: &mut Inner) -> Option<RetainCause> {
        if self.cfg.healthy_sample_rate == 0 {
            return None;
        }
        inner.healthy_seen += 1;
        inner
            .healthy_seen
            .wrapping_add(self.cfg.seed)
            .is_multiple_of(self.cfg.healthy_sample_rate)
            .then_some(RetainCause::Sampled)
    }

    /// Insert a retained trace, evict FIFO beyond capacity, and hand back
    /// the exemplar write to perform once the lock is released.
    fn retain_locked(
        &self,
        inner: &mut Inner,
        id: TraceId,
        trace: StoredTrace,
    ) -> Option<(String, u64)> {
        self.retained_counts[trace.cause.index()].fetch_add(1, Ordering::Relaxed);
        let exemplar = trace.route.clone().map(|r| (r, trace.root_dur_ns));
        inner.retained.insert(id.0, trace);
        inner.retained_order.push_back(id.0);
        while inner.retained_order.len() > self.cfg.capacity {
            if let Some(old) = inner.retained_order.pop_front() {
                if inner.retained.remove(&old).is_some() {
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                    Self::remember_discarded(inner, old);
                }
            }
        }
        exemplar
    }

    /// Push one root duration into `route`'s window and refresh the cached
    /// threshold only at the amortization boundaries: when the window first
    /// reaches `slow_min_samples`, and each time it fills `threshold_window`
    /// (draining it so the threshold tracks recent traffic). The per-span
    /// cost is a push and a cache read — never a sort.
    fn feed_route_lat_locked(&self, inner: &mut Inner, route: &str, root_dur_ns: u64) {
        if !inner.route_lat.contains_key(route) {
            inner
                .route_lat
                .insert(route.to_string(), RouteLat::default());
        }
        let rl = inner.route_lat.get_mut(route).expect("just inserted");
        rl.window.push(root_dur_ns);
        let full = rl.window.len() >= self.cfg.threshold_window;
        if full || (rl.thr.is_none() && rl.window.len() >= self.cfg.slow_min_samples) {
            let mut sorted = rl.window.clone();
            sorted.sort_unstable();
            let idx = ((sorted.len() - 1) as f64 * self.cfg.slow_quantile.clamp(0.0, 1.0)).round()
                as usize;
            rl.thr = Some(sorted[idx.min(sorted.len() - 1)].max(self.cfg.slow_floor_ns));
            if full {
                rl.window.clear();
            }
        }
    }

    fn remember_discarded(inner: &mut Inner, id: u64) {
        if inner.discarded_recent.insert(id) {
            inner.discarded_order.push_back(id);
            while inner.discarded_order.len() > 2048 {
                if let Some(old) = inner.discarded_order.pop_front() {
                    inner.discarded_recent.remove(&old);
                }
            }
        }
    }

    /// The current "slower than this is retained" bound for `route`, once
    /// enough samples exist.
    pub fn slow_threshold_ns(&self, route: &str) -> Option<u64> {
        self.inner.lock().route_lat.get(route).and_then(|rl| rl.thr)
    }

    /// Fetch a retained trace by id.
    pub fn get(&self, id: TraceId) -> Option<StoredTrace> {
        self.inner.lock().retained.get(&id.0).cloned()
    }

    /// The most recently retained traces, newest first.
    pub fn recent(&self, limit: usize) -> Vec<StoredTrace> {
        let inner = self.inner.lock();
        inner
            .retained_order
            .iter()
            .rev()
            .take(limit)
            .filter_map(|id| inner.retained.get(id).cloned())
            .collect()
    }

    pub fn stats(&self) -> TraceStoreStats {
        let (retained_current, pending_current) = {
            let inner = self.inner.lock();
            (inner.retained.len(), inner.pending.len())
        };
        TraceStoreStats {
            finalized: self.finalized.load(Ordering::Relaxed),
            retained_by_cause: std::array::from_fn(|i| {
                self.retained_counts[i].load(Ordering::Relaxed)
            }),
            discarded: self.discarded.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            pending_evicted: self.pending_evicted.load(Ordering::Relaxed),
            late_spans: self.late_spans.load(Ordering::Relaxed),
            retained_current,
            pending_current,
        }
    }

    /// Drop all assembled state (benches isolate runs with this). Counters
    /// keep their totals.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        *inner = Inner::default();
    }
}

/// The process-wide store observed by every [`Span`](crate::trace::Span)
/// close.
pub fn store() -> &'static TraceStore {
    static STORE: OnceLock<TraceStore> = OnceLock::new();
    STORE.get_or_init(TraceStore::default)
}

/// Attach a note to the trace active on this thread, in the global store.
pub fn annotate(key: &str, value: impl Into<String>) {
    store().annotate_current(key, value);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace: u64, name: &'static str, seq: u64, depth: u32, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            trace: Some(TraceId(trace)),
            name,
            attrs: Vec::new(),
            start_ns: seq,
            dur_ns,
            seq,
            depth,
        }
    }

    fn routed(trace: u64, seq: u64, dur_ns: u64, route: &str) -> SpanRecord {
        let mut r = rec(trace, "route", seq, 0, dur_ns);
        r.attrs.push(("route", route.to_string()));
        r
    }

    #[test]
    fn errored_and_degraded_traces_are_always_retained() {
        let store = TraceStore::new(TraceStoreConfig::default());
        store.annotate_trace(TraceId(1), "status", "503");
        store.observe(&rec(1, "http", 0, 0, 1_000));
        store.annotate_trace(TraceId(2), "outcome", "degraded");
        store.observe(&rec(2, "http", 1, 0, 1_000));
        assert_eq!(store.get(TraceId(1)).unwrap().cause, RetainCause::Error);
        assert_eq!(store.get(TraceId(2)).unwrap().cause, RetainCause::Degraded);
        let stats = store.stats();
        assert_eq!(stats.retained_by_cause[RetainCause::Error.index()], 1);
        assert_eq!(stats.retained_by_cause[RetainCause::Degraded.index()], 1);
    }

    #[test]
    fn multi_span_traces_assemble_root_first() {
        let store = TraceStore::new(TraceStoreConfig::default());
        // Children close before the root, so they arrive first.
        store.observe(&rec(9, "ctld", 3, 2, 50));
        store.observe(&rec(9, "slurmcli", 2, 1, 80));
        store.annotate_trace(TraceId(9), "status", "500");
        store.observe(&rec(9, "http", 1, 0, 200));
        let t = store.get(TraceId(9)).expect("retained");
        let names: Vec<&str> = t.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, ["http", "slurmcli", "ctld"], "seq order, root first");
        assert_eq!(t.spans[0].depth, 0);
        assert_eq!(t.root_dur_ns, 200);
    }

    #[test]
    fn slow_traces_retained_once_threshold_learned() {
        let cfg = TraceStoreConfig {
            slow_min_samples: 8,
            slow_floor_ns: 1_000,
            healthy_sample_rate: 0, // isolate the slow cause
            ..TraceStoreConfig::default()
        };
        let store = TraceStore::new(cfg);
        for i in 0..10u64 {
            store.observe(&routed(100 + i, i, 10_000, "/api/x"));
        }
        let thr = store.slow_threshold_ns("/api/x").expect("learned");
        assert!(thr >= 10_000, "threshold {thr} tracks observed latency");
        store.observe(&routed(200, 20, thr * 10, "/api/x"));
        let t = store.get(TraceId(200)).expect("slow trace retained");
        assert_eq!(t.cause, RetainCause::Slow);
        assert_eq!(t.route.as_deref(), Some("/api/x"));
        // The fast healthy ones were all discarded (sampling off).
        assert_eq!(store.stats().discarded, 10);
    }

    #[test]
    fn healthy_sampling_is_deterministic_across_runs() {
        let run = |seed: u64| -> Vec<u64> {
            let store = TraceStore::new(TraceStoreConfig {
                seed,
                healthy_sample_rate: 4,
                ..TraceStoreConfig::default()
            });
            for i in 0..64u64 {
                // Mix healthy traffic with errors: causes must not disturb
                // the healthy sampling phase.
                if i % 10 == 0 {
                    store.annotate_trace(TraceId(i + 1), "status", "500");
                }
                store.observe(&rec(i + 1, "http", i, 0, 1_000));
            }
            let mut ids: Vec<u64> = store.recent(usize::MAX).iter().map(|t| t.id.0).collect();
            ids.sort_unstable();
            ids
        };
        assert_eq!(run(7), run(7), "same seed + same stream ⇒ same set");
        assert_ne!(run(7), run(8), "seed shifts the sample phase");
        // And the sampled portion is exactly the 1-in-4 phase of the
        // healthy traffic, undisturbed by the interleaved errors.
        let kept = run(7);
        let errors = (0..64u64).filter(|i| i % 10 == 0).count();
        let healthy = 64 - errors as u64;
        let sampled = (1..=healthy).filter(|h| (h + 7) % 4 == 0).count();
        assert_eq!(kept.len(), errors + sampled);
    }

    #[test]
    fn exemplar_links_back_to_a_stored_trace() {
        let store = TraceStore::new(TraceStoreConfig::default());
        let reg = Arc::new(Registry::new());
        store.set_registry(&reg);
        store.annotate_trace(TraceId(42), "status", "500");
        store.annotate_trace(TraceId(42), "route", "/api/jobs");
        store.observe(&rec(42, "http", 0, 0, 3_000_000));
        let h = reg.histogram(ROUTE_LATENCY_METRIC, &[("route", "/api/jobs")]);
        let ex = h.quantile_exemplar(0.99).expect("exemplar written");
        let t = store.get(ex).expect("exemplar resolves in the store");
        assert_eq!(t.id, TraceId(42));
        assert_eq!(t.root_dur_ns, 3_000_000);
    }

    #[test]
    fn memory_stays_bounded_and_evictions_are_counted() {
        let cfg = TraceStoreConfig {
            capacity: 8,
            max_pending: 4,
            max_spans_per_trace: 2,
            ..TraceStoreConfig::default()
        };
        let store = TraceStore::new(cfg);
        // Overflow pending assembly with never-closing traces.
        for i in 0..10u64 {
            store.observe(&rec(1000 + i, "child", i, 1, 10));
        }
        assert_eq!(store.stats().pending_current, 4);
        assert_eq!(store.stats().pending_evicted, 6);
        // Overflow the retained set with errors (always kept).
        for i in 0..20u64 {
            store.annotate_trace(TraceId(2000 + i), "status", "500");
            store.observe(&rec(2000 + i, "http", 100 + i, 0, 10));
        }
        let stats = store.stats();
        assert_eq!(stats.retained_current, 8);
        assert_eq!(stats.evicted, 12);
        // Span cap marks truncation.
        for s in 0..5u64 {
            store.observe(&rec(3000, "child", 200 + s, 1, 10));
        }
        store.annotate_trace(TraceId(3000), "status", "500");
        store.observe(&rec(3000, "http", 300, 0, 10));
        assert!(store.get(TraceId(3000)).unwrap().truncated);
    }

    #[test]
    fn late_root_span_appends_to_retained_trace() {
        let store = TraceStore::new(TraceStoreConfig::default());
        store.annotate_trace(TraceId(5), "status", "500");
        // Server root (seq 2) closes first; the client's root (seq 1)
        // closes later on its own thread.
        store.observe(&rec(5, "http", 2, 0, 100));
        store.observe(&rec(5, "client", 1, 0, 150));
        let t = store.get(TraceId(5)).expect("retained");
        let names: Vec<&str> = t.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, ["client", "http"], "late span re-sorted by seq");
        assert_eq!(store.stats().late_spans, 1);
    }

    #[test]
    fn late_spans_for_discarded_traces_are_dropped() {
        let store = TraceStore::new(TraceStoreConfig {
            healthy_sample_rate: 0,
            ..TraceStoreConfig::default()
        });
        store.observe(&rec(6, "http", 2, 0, 100)); // healthy → discarded
        store.observe(&rec(6, "client", 1, 0, 150)); // late root
        assert!(store.get(TraceId(6)).is_none(), "stays discarded");
        assert_eq!(store.stats().finalized, 1, "not re-finalized");
        assert_eq!(store.stats().late_spans, 1);
    }

    #[test]
    fn disabled_store_observes_nothing() {
        let store = TraceStore::new(TraceStoreConfig::default());
        store.set_enabled(false);
        store.annotate_trace(TraceId(7), "status", "500");
        store.observe(&rec(7, "http", 0, 0, 100));
        assert!(store.get(TraceId(7)).is_none());
        assert_eq!(store.stats().finalized, 0);
        store.set_enabled(true);
    }
}
