//! The admin observatory API: stored tail-sampled traces, the dashboard's
//! own metrics history, and the SLO/breaker/profiler summary behind the
//! `/observatory` page.
//!
//! All four routes are operator surface, gated exactly like the admin job
//! controls: callers outside the configured admin list get 403 regardless
//! of what they ask for. The trace routes serve straight from the
//! in-memory [`TraceStore`](hpcdash_obs::tracestore::TraceStore) — caching
//! a debugging view of "what just failed" would only hide the failure.

use crate::auth::CurrentUser;
use crate::ctx::DashboardContext;
use hpcdash_http::{Request, Response, Router};
use hpcdash_obs::trace::TraceId;
use hpcdash_obs::tracestore::{self, RetainCause, StoredTrace};
use hpcdash_obs::SampleValue;
use serde_json::{json, Value};

pub const FEATURE: &str = "Observatory (admin observability)";
pub const ROUTES: &[&str] = &[
    "/api/observatory",
    "/api/traces",
    "/api/traces/:id",
    "/api/obs/series",
];

/// Default `/api/traces` page size; `?limit=` is capped at the store size.
const DEFAULT_TRACE_LIMIT: usize = 50;
/// Default `/api/obs/series` window (seconds) and step when unspecified.
const DEFAULT_SERIES_WINDOW: i64 = 1_800;
const DEFAULT_SERIES_RESOLUTION: i64 = 30;
/// The availability objective the error-budget summary is computed against.
const SLO_AVAILABILITY: f64 = 0.999;

pub fn register(router: &mut Router, ctx: DashboardContext) {
    let c1 = ctx.clone();
    let c2 = ctx.clone();
    let c3 = ctx.clone();
    router.get(ROUTES[0], move |req| handle_summary(&ctx, req));
    router.get(ROUTES[1], move |req| handle_traces(&c1, req));
    router.get(ROUTES[2], move |req| handle_trace(&c2, req));
    router.get(ROUTES[3], move |req| handle_series(&c3, req));
}

fn require_admin(ctx: &DashboardContext, req: &Request) -> Result<(), Response> {
    let user = CurrentUser::from_request(ctx, req)?;
    if !user.is_admin {
        return Err(Response::forbidden("administrator access required"));
    }
    Ok(())
}

/// Per-route request/error totals and latency read back out of the metrics
/// registry — the SLO board's raw material.
fn slo_rows(ctx: &DashboardContext) -> Vec<Value> {
    let mut requests: std::collections::BTreeMap<String, (u64, u64)> =
        std::collections::BTreeMap::new();
    let mut latency: std::collections::BTreeMap<String, Value> = std::collections::BTreeMap::new();
    for s in ctx.obs.gather() {
        let route = s
            .labels
            .iter()
            .find(|(k, _)| k == "route")
            .map(|(_, v)| v.clone());
        let Some(route) = route else { continue };
        match (s.name.as_str(), s.value) {
            ("hpcdash_http_responses_total", SampleValue::Counter(v)) => {
                let class = s.labels.iter().find(|(k, _)| k == "class");
                let e = requests.entry(route).or_default();
                e.0 += v;
                if class.map(|(_, c)| c == "5xx").unwrap_or(false) {
                    e.1 += v;
                }
            }
            ("hpcdash_http_request_latency", SampleValue::Summary(h)) => {
                latency.insert(
                    route,
                    json!({
                        "count": h.count,
                        "p50_ns": h.p50_ns,
                        "p99_ns": h.p99_ns,
                        "max_ns": h.max_ns,
                        "p99_exemplar": s.exemplar.map(|t| t.to_hex()),
                    }),
                );
            }
            _ => {}
        }
    }
    requests
        .into_iter()
        .map(|(route, (total, errors))| {
            let availability = if total == 0 {
                1.0
            } else {
                1.0 - errors as f64 / total as f64
            };
            // Fraction of the error budget burned: 1.0 means the objective
            // is exactly exhausted, >1.0 means the route is out of budget.
            let budget = (total as f64 * (1.0 - SLO_AVAILABILITY)).max(f64::MIN_POSITIVE);
            json!({
                "route": route,
                "requests": total,
                "errors": errors,
                "availability": availability,
                "objective": SLO_AVAILABILITY,
                "budget_burned": errors as f64 / budget,
                "latency": latency.get(&route).cloned().unwrap_or(Value::Null),
            })
        })
        .collect()
}

fn phase_rows(profile: &hpcdash_obs::PhaseProfiler) -> Vec<Value> {
    profile
        .snapshot()
        .into_iter()
        .map(|(phase, agg)| {
            json!({
                "phase": phase,
                "count": agg.count,
                "total_ns": agg.total_ns,
                "mean_ns": agg.mean_ns(),
                "max_ns": agg.max_ns,
            })
        })
        .collect()
}

/// The act-as audit table: every admin→target identity switch recorded by
/// `hpcdash_act_as_total`, whether it came through the `X-Act-As` header or
/// an `admin-act-as` token on `/slurm/v0`.
fn act_as_rows(ctx: &DashboardContext) -> Vec<Value> {
    let mut rows = Vec::new();
    for s in ctx.obs.gather() {
        if s.name != "hpcdash_act_as_total" {
            continue;
        }
        let SampleValue::Counter(v) = s.value else {
            continue;
        };
        let label = |key: &str| {
            s.labels
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_default()
        };
        rows.push(json!({
            "admin": label("admin"),
            "target": label("target"),
            "count": v,
        }));
    }
    rows
}

/// The event-loop frontend panel: connection counts by state, shed and
/// 304-revalidation totals, and per-reactor loop lag, read back out of the
/// registry the HTTP server writes into.
fn http_rows(ctx: &DashboardContext) -> Value {
    let mut connections = serde_json::Map::new();
    let mut reactor_lag = serde_json::Map::new();
    let mut sheds = 0u64;
    let mut not_modified = 0u64;
    for s in ctx.obs.gather() {
        let label = |key: &str| {
            s.labels
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_default()
        };
        match (s.name.as_str(), &s.value) {
            ("hpcdash_http_connections", SampleValue::Gauge(v)) => {
                connections.insert(label("state"), json!(v));
            }
            ("hpcdash_http_reactor_loop_lag_us", SampleValue::Gauge(v)) => {
                reactor_lag.insert(label("reactor"), json!(v));
            }
            ("hpcdash_http_sheds_total", SampleValue::Counter(v)) => sheds += v,
            ("hpcdash_http_304_total", SampleValue::Counter(v)) => not_modified += v,
            _ => {}
        }
    }
    json!({
        "connections": Value::Object(connections),
        "sheds": sheds,
        "not_modified": not_modified,
        "reactor_lag_us": Value::Object(reactor_lag),
    })
}

/// The `/api/observatory` payload: everything the page's widgets need in
/// one round trip.
pub(crate) fn summary_payload(ctx: &DashboardContext) -> Value {
    let store = tracestore::store();
    let stats = store.stats();
    let sink = hpcdash_obs::trace::sink();
    let breakers: Vec<Value> = ctx
        .breakers
        .snapshots()
        .into_iter()
        .map(|s| {
            json!({
                "source": s.source,
                "cluster": s.cluster,
                "state": s.state.as_str(),
                "consecutive_failures": s.consecutive_failures,
                "opens": s.opens,
            })
        })
        .collect();
    let mut phases = serde_json::Map::new();
    phases.insert(
        "slurmctld".to_string(),
        Value::Array(phase_rows(ctx.ctld.phase_profile())),
    );
    phases.insert(
        "slurmdbd".to_string(),
        Value::Array(phase_rows(ctx.dbd.phase_profile())),
    );
    phases.insert(
        "telemetryd".to_string(),
        Value::Array(phase_rows(ctx.telemetry.phase_profile())),
    );
    let by_cause: serde_json::Map = RetainCause::ALL
        .iter()
        .map(|c| {
            (
                c.label().to_string(),
                json!(stats.retained_by_cause[c.index()]),
            )
        })
        .collect();
    json!({
        "slo": slo_rows(ctx),
        "act_as": act_as_rows(ctx),
        "http": http_rows(ctx),
        "daemons": crate::api::daemons_payload(ctx),
        "breakers": breakers,
        "phases": Value::Object(phases),
        "traces": {
            "finalized": stats.finalized,
            "retained": stats.retained_total(),
            "retained_current": stats.retained_current,
            "by_cause": Value::Object(by_cause),
            "discarded": stats.discarded,
            "evicted": stats.evicted,
            "late_spans": stats.late_spans,
        },
        "trace_sink": {
            "depth": sink.len(),
            "capacity": sink.capacity(),
            "dropped_spans": sink.dropped(),
        },
    })
}

fn handle_summary(ctx: &DashboardContext, req: &Request) -> Response {
    if let Err(resp) = require_admin(ctx, req) {
        return resp;
    }
    let outcome = ctx.cached_resilient("observatory:summary", ctx.cfg.cache.observatory, || {
        Ok(summary_payload(ctx))
    });
    super::respond(outcome)
}

/// One row of the slowest/errored-traces table.
fn trace_row(t: &StoredTrace) -> Value {
    json!({
        "id": t.id.to_hex(),
        "cause": t.cause.label(),
        "route": t.route,
        "status": t.note("status"),
        "outcome": t.note("outcome"),
        "root_dur_ns": t.root_dur_ns,
        "spans": t.spans.len(),
        "truncated": t.truncated,
    })
}

fn handle_traces(ctx: &DashboardContext, req: &Request) -> Response {
    if let Err(resp) = require_admin(ctx, req) {
        return resp;
    }
    let limit = req
        .query_param("limit")
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_TRACE_LIMIT);
    let store = tracestore::store();
    let traces: Vec<Value> = store.recent(limit).iter().map(trace_row).collect();
    let stats = store.stats();
    Response::json(&json!({
        "traces": traces,
        "retained_current": stats.retained_current,
        "finalized": stats.finalized,
    }))
}

/// The accessible waterfall payload: spans root-first, each with its offset
/// from the trace's first span, so the page can render proportional bars
/// and a plain table from the same rows.
fn waterfall(t: &StoredTrace) -> Vec<Value> {
    let t0 = t.spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
    t.spans
        .iter()
        .map(|s| {
            json!({
                "name": s.name,
                "depth": s.depth,
                "start_offset_ns": s.start_ns.saturating_sub(t0),
                "dur_ns": s.dur_ns,
                "attrs": s.attrs.iter().map(|(k, v)| ((*k).to_string(), json!(v)))
                    .collect::<serde_json::Map>(),
            })
        })
        .collect()
}

fn handle_trace(ctx: &DashboardContext, req: &Request) -> Response {
    if let Err(resp) = require_admin(ctx, req) {
        return resp;
    }
    let Some(id) = req.param("id").and_then(TraceId::from_hex) else {
        return Response::bad_request("invalid trace id");
    };
    let Some(t) = tracestore::store().get(id) else {
        return Response::not_found("no stored trace with that id");
    };
    Response::json(&json!({
        "id": t.id.to_hex(),
        "cause": t.cause.label(),
        "route": t.route,
        "root_dur_ns": t.root_dur_ns,
        "notes": t.notes.iter().cloned().collect::<std::collections::BTreeMap<String, String>>(),
        "truncated": t.truncated,
        "spans": waterfall(&t),
    }))
}

fn handle_series(ctx: &DashboardContext, req: &Request) -> Response {
    if let Err(resp) = require_admin(ctx, req) {
        return resp;
    }
    let Some(name) = req.query_param("name") else {
        return Response::bad_request("missing series name");
    };
    // Only the dashboard's own scraped metrics are served here; job/node
    // series stay behind the privacy-filtered telemetry routes.
    if !name.starts_with("self:") {
        return Response::bad_request("series name must start with self:");
    }
    let name = name.to_string();
    let now = ctx.now().as_secs() as i64;
    let end = req
        .query_param("end")
        .and_then(|s| s.parse().ok())
        .unwrap_or(now + 1);
    let start = req
        .query_param("start")
        .and_then(|s| s.parse().ok())
        .unwrap_or(end - DEFAULT_SERIES_WINDOW);
    let resolution = req
        .query_param("resolution")
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SERIES_RESOLUTION)
        .max(1);
    let (points, tier) = ctx.telemetry.query_range(&name, start, end, resolution);
    Response::json(&json!({
        "name": name,
        "start": start,
        "end": end,
        "resolution_secs": resolution,
        "tier": tier.label(),
        "points": points.iter().map(|p| json!([p.t, p.mean])).collect::<Vec<_>>(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::admin::tests::admin_ctx;
    use hpcdash_http::Method;

    fn get(path: &str, user: &str) -> Request {
        Request::new(Method::Get, path).with_header("X-Remote-User", user)
    }

    #[test]
    fn all_routes_are_admin_gated() {
        let ctx = admin_ctx();
        for route in ROUTES {
            let resp = match *route {
                "/api/traces/:id" => {
                    let mut r = get("/api/traces/1f", "alice");
                    r.params.insert("id".to_string(), "1f".to_string());
                    handle_trace(&ctx, &r)
                }
                "/api/observatory" => handle_summary(&ctx, &get(route, "alice")),
                "/api/traces" => handle_traces(&ctx, &get(route, "alice")),
                _ => handle_series(&ctx, &get(route, "alice")),
            };
            assert_eq!(resp.status, 403, "{route} must be admin-only");
        }
    }

    #[test]
    fn summary_reports_slo_breakers_and_phases() {
        let ctx = admin_ctx();
        // Give the SLO board some traffic to summarize.
        ctx.obs
            .counter(
                "hpcdash_http_responses_total",
                &[("route", "/api/myjobs"), ("class", "2xx")],
            )
            .add(99);
        ctx.obs
            .counter(
                "hpcdash_http_responses_total",
                &[("route", "/api/myjobs"), ("class", "5xx")],
            )
            .inc();
        ctx.obs
            .histogram("hpcdash_http_request_latency", &[("route", "/api/myjobs")])
            .observe_ns(1_000_000);
        ctx.ctld.tick();
        let resp = handle_summary(&ctx, &get("/api/observatory", "root"));
        assert_eq!(resp.status, 200, "{}", resp.body_string());
        let body = resp.body_json().unwrap();
        let slo = body["slo"].as_array().unwrap();
        let row = slo
            .iter()
            .find(|r| r["route"] == "/api/myjobs")
            .expect("myjobs SLO row");
        assert_eq!(row["requests"], 100);
        assert_eq!(row["errors"], 1);
        assert!((row["availability"].as_f64().unwrap() - 0.99).abs() < 1e-9);
        assert!(row["budget_burned"].as_f64().unwrap() > 1.0, "over budget");
        let phases = body["phases"]["slurmctld"].as_array().unwrap();
        assert!(
            phases.iter().any(|p| p["phase"] == "sched_pass"),
            "tick profiled: {phases:?}"
        );
        assert!(body["trace_sink"]["capacity"].as_u64().unwrap() > 0);
    }

    #[test]
    fn summary_surfaces_act_as_audit() {
        let ctx = admin_ctx();
        crate::auth::note_act_as(&ctx, "root", "alice");
        crate::auth::note_act_as(&ctx, "root", "alice");
        crate::auth::note_act_as(&ctx, "root", "bob");
        let body = handle_summary(&ctx, &get("/api/observatory", "root"))
            .body_json()
            .unwrap();
        let rows = body["act_as"].as_array().unwrap().clone();
        assert_eq!(rows.len(), 2, "{rows:?}");
        let alice = rows
            .iter()
            .find(|r| r["target"] == "alice")
            .expect("alice row");
        assert_eq!(alice["admin"], "root");
        assert_eq!(alice["count"], 2);
    }

    #[test]
    fn series_route_validates_name_and_serves_self_series() {
        let ctx = admin_ctx();
        let resp = handle_series(&ctx, &get("/api/obs/series", "root"));
        assert_eq!(resp.status, 400, "name is required");
        let resp = handle_series(&ctx, &get("/api/obs/series?name=job:1:cpu", "root"));
        assert_eq!(resp.status, 400, "job series are not served here");
        // Scrape the registry once so a self: series exists.
        ctx.obs.gauge("hpcdash_sched_queue_depth", &[]).set(3);
        ctx.telemetry.collect_now();
        let resp = handle_series(
            &ctx,
            &get(
                "/api/obs/series?name=self:hpcdash_sched_queue_depth&resolution=30",
                "root",
            ),
        );
        assert_eq!(resp.status, 200, "{}", resp.body_string());
        let body = resp.body_json().unwrap();
        assert_eq!(body["name"], "self:hpcdash_sched_queue_depth");
        assert_eq!(
            body["points"].as_array().unwrap().len(),
            1,
            "one collection pass, one point: {body}"
        );
    }

    #[test]
    fn unknown_or_invalid_trace_ids() {
        let ctx = admin_ctx();
        let mut r = get("/api/traces/zz", "root");
        r.params.insert("id".to_string(), "zz".to_string());
        assert_eq!(handle_trace(&ctx, &r).status, 400);
        let mut r = get("/api/traces/deadbeef99", "root");
        r.params.insert("id".to_string(), "deadbeef99".to_string());
        assert_eq!(handle_trace(&ctx, &r).status, 404);
    }
}
