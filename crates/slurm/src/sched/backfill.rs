//! EASY backfill scheduling over a snapshot of cluster state.
//!
//! The planner never mutates live state: it works on clones and returns a
//! [`SchedulePlan`] of decisions, which `ClusterState::tick` applies. Each
//! partition has its own "blocker" (the highest-priority job that cannot
//! start); lower-priority jobs in that partition may backfill only if they
//! cannot delay the blocker's reservation.

use crate::assoc::{AssocStore, LimitViolation};
use crate::job::{Job, JobId, PendingReason};
use crate::node::Node;
use crate::partition::{Partition, PartitionState};
use crate::qos::Qos;
use crate::sched::fit::{could_ever_fit, select_nodes};
use crate::tres::Tres;
use hpcdash_simtime::{TimeLimit, Timestamp};
use std::collections::{BTreeMap, HashMap, HashSet};

/// What the planner decided for one pending job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleDecision {
    Start {
        job: JobId,
        nodes: Vec<String>,
        backfilled: bool,
    },
    Pend {
        job: JobId,
        reason: PendingReason,
    },
}

/// The full plan for one scheduling pass.
#[derive(Debug, Clone, Default)]
pub struct SchedulePlan {
    pub decisions: Vec<ScheduleDecision>,
    /// Per-partition shadow times computed for blockers (diagnostics).
    pub shadow_times: BTreeMap<String, Timestamp>,
}

/// A running job's footprint, for reservation computation.
#[derive(Debug, Clone)]
pub struct RunningJobInfo {
    pub nodes: Vec<String>,
    pub per_node: Tres,
    pub expected_end: Timestamp,
}

struct Reservation {
    shadow: Timestamp,
    reserved_nodes: HashSet<String>,
}

/// Inputs to one scheduling pass.
pub struct PlanInputs<'a> {
    pub nodes: &'a BTreeMap<String, Node>,
    pub partitions: &'a BTreeMap<String, Partition>,
    pub qos: &'a BTreeMap<String, Qos>,
    pub assoc: &'a AssocStore,
    pub running: &'a [RunningJobInfo],
    /// Eligible pending jobs, highest priority first.
    pub pending: &'a [&'a Job],
    /// (user, qos) -> currently running job count.
    pub run_counts: &'a HashMap<(String, String), u32>,
    /// array_job_id -> currently running task count.
    pub array_running: &'a HashMap<JobId, u32>,
    pub now: Timestamp,
}

/// Compute a schedule plan. Pure with respect to the inputs.
pub fn plan_schedule(inputs: PlanInputs<'_>) -> SchedulePlan {
    let PlanInputs {
        nodes,
        partitions,
        qos,
        assoc,
        running,
        pending,
        run_counts,
        array_running,
        now,
    } = inputs;

    let mut plan = SchedulePlan::default();
    let mut sim_nodes = nodes.clone();
    let mut sim_assoc = assoc.clone();
    let mut sim_run_counts = run_counts.clone();
    let mut sim_array_running = array_running.clone();
    let mut blockers: HashMap<String, Reservation> = HashMap::new();

    for job in pending {
        let Some(partition) = partitions.get(&job.req.partition) else {
            plan.decisions.push(ScheduleDecision::Pend {
                job: job.id,
                reason: PendingReason::BadConstraints,
            });
            continue;
        };

        if let Some(reason) = limit_reason(
            job,
            partition,
            qos,
            &sim_assoc,
            &sim_run_counts,
            &sim_array_running,
        ) {
            plan.decisions.push(ScheduleDecision::Pend {
                job: job.id,
                reason,
            });
            continue;
        }

        if !could_ever_fit(&sim_nodes, partition, &job.req) {
            plan.decisions.push(ScheduleDecision::Pend {
                job: job.id,
                reason: PendingReason::BadConstraints,
            });
            continue;
        }

        let blocked = blockers.contains_key(&partition.name);
        let placement = if !blocked {
            select_nodes(&sim_nodes, partition, &job.req)
        } else {
            try_backfill(&sim_nodes, partition, job, &blockers[&partition.name], now)
        };

        match placement {
            Some(chosen) => {
                apply_start(&mut sim_nodes, &chosen, job, now);
                sim_assoc.note_start(&job.req.account, job.alloc_cpus());
                *sim_run_counts
                    .entry((job.req.user.clone(), job.req.qos.clone()))
                    .or_insert(0) += 1;
                if let Some(a) = &job.array {
                    *sim_array_running.entry(a.array_job_id).or_insert(0) += 1;
                }
                plan.decisions.push(ScheduleDecision::Start {
                    job: job.id,
                    nodes: chosen,
                    backfilled: blocked,
                });
            }
            None if !blocked => {
                // This job becomes the partition's blocker; compute its
                // reservation so later jobs can only harmlessly backfill.
                let reservation = compute_reservation(&sim_nodes, partition, job, running, now);
                if let Some(r) = &reservation {
                    plan.shadow_times.insert(partition.name.clone(), r.shadow);
                }
                blockers.insert(
                    partition.name.clone(),
                    reservation.unwrap_or(Reservation {
                        shadow: Timestamp(u64::MAX),
                        reserved_nodes: HashSet::new(),
                    }),
                );
                plan.decisions.push(ScheduleDecision::Pend {
                    job: job.id,
                    reason: PendingReason::Resources,
                });
            }
            None => {
                plan.decisions.push(ScheduleDecision::Pend {
                    job: job.id,
                    reason: PendingReason::Priority,
                });
            }
        }
    }

    plan
}

/// First limit the job trips, if any — in the order slurmctld reports them.
fn limit_reason(
    job: &Job,
    partition: &Partition,
    qos: &BTreeMap<String, Qos>,
    assoc: &AssocStore,
    run_counts: &HashMap<(String, String), u32>,
    array_running: &HashMap<JobId, u32>,
) -> Option<PendingReason> {
    if partition.state != PartitionState::Up {
        return Some(PendingReason::PartitionDown);
    }
    if !partition.allows_time(job.req.time_limit) {
        return Some(PendingReason::PartitionTimeLimit);
    }
    if let Some(max_nodes) = partition.max_nodes_per_job {
        if job.req.nodes > max_nodes {
            return Some(PendingReason::BadConstraints);
        }
    }
    let total = job.req.total_tres();
    match assoc.check_start(&job.req.account, total.cpus, total.gpus) {
        Err(LimitViolation::GrpCpuLimit) => return Some(PendingReason::AssocGrpCpuLimit),
        Err(LimitViolation::GrpGpuMinsLimit) => return Some(PendingReason::AssocGrpGresMinutes),
        Ok(()) => {}
    }
    if let Some(q) = qos.get(&job.req.qos) {
        if let Some(cap) = q.max_jobs_per_user {
            let running = run_counts
                .get(&(job.req.user.clone(), job.req.qos.clone()))
                .copied()
                .unwrap_or(0);
            if running >= cap {
                return Some(PendingReason::QosMaxJobsPerUser);
            }
        }
    }
    if let Some(a) = &job.array {
        if let Some(throttle) = a.max_concurrent {
            let running = array_running.get(&a.array_job_id).copied().unwrap_or(0);
            if running >= throttle {
                return Some(PendingReason::JobArrayTaskLimit);
            }
        }
    }
    None
}

fn apply_start(nodes: &mut BTreeMap<String, Node>, chosen: &[String], job: &Job, now: Timestamp) {
    let per_node = job.req.per_node_tres();
    for name in chosen {
        nodes
            .get_mut(name)
            .expect("scheduler chose an unknown node")
            .allocate(per_node, now);
    }
}

/// When (and on which nodes) could the blocker start, assuming running jobs
/// end exactly at their time limits? Walks job endings in order, releasing
/// resources on a scratch copy until the blocker fits.
fn compute_reservation(
    nodes: &BTreeMap<String, Node>,
    partition: &Partition,
    blocker: &Job,
    running: &[RunningJobInfo],
    now: Timestamp,
) -> Option<Reservation> {
    let mut scratch = nodes.clone();
    let mut endings: Vec<&RunningJobInfo> = running.iter().collect();
    endings.sort_by_key(|r| r.expected_end);

    for info in endings {
        for name in &info.nodes {
            if let Some(n) = scratch.get_mut(name) {
                n.release(info.per_node, now);
            }
        }
        if let Some(chosen) = select_nodes(&scratch, partition, &blocker.req) {
            return Some(Reservation {
                shadow: info.expected_end,
                reserved_nodes: chosen.into_iter().collect(),
            });
        }
    }
    None
}

/// Can `job` start now without delaying the blocker? Either it finishes
/// before the shadow time (then any nodes are fine), or it avoids the
/// reserved nodes entirely.
fn try_backfill(
    nodes: &BTreeMap<String, Node>,
    partition: &Partition,
    job: &Job,
    reservation: &Reservation,
    now: Timestamp,
) -> Option<Vec<String>> {
    let guaranteed_end = match job.req.time_limit {
        TimeLimit::Limited(secs) => Timestamp(now.as_secs().saturating_add(secs)),
        TimeLimit::Unlimited => Timestamp(u64::MAX),
    };
    if guaranteed_end <= reservation.shadow {
        return select_nodes(nodes, partition, &job.req);
    }
    // Must stay off the reserved nodes.
    let restricted = Partition {
        nodes: partition
            .nodes
            .iter()
            .filter(|n| !reservation.reserved_nodes.contains(*n))
            .cloned()
            .collect(),
        ..partition.clone()
    };
    select_nodes(nodes, &restricted, &job.req)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assoc::Account;
    use crate::job::{JobRequest, JobState, UsageProfile};

    fn mk_job(id: u32, cpus: u32, nodes: u32, limit_secs: u64) -> Job {
        let mut req = JobRequest::simple("alice", "physics", "cpu", cpus);
        req.nodes = nodes;
        req.mem_mb_per_node = 1_000;
        req.time_limit = TimeLimit::Limited(limit_secs);
        req.usage = UsageProfile::batch(limit_secs / 2);
        Job {
            id: JobId(id),
            array: None,
            req,
            state: JobState::Pending,
            reason: None,
            priority: 0,
            submit_time: Timestamp(0),
            eligible_time: Timestamp(0),
            start_time: None,
            end_time: None,
            nodes: Vec::new(),
            exit_code: None,
            stats: None,
            stdout_path: String::new(),
            stderr_path: String::new(),
        }
    }

    struct Fixture {
        nodes: BTreeMap<String, Node>,
        partitions: BTreeMap<String, Partition>,
        qos: BTreeMap<String, Qos>,
        assoc: AssocStore,
    }

    fn fixture(node_count: usize, cpus_per_node: u32) -> Fixture {
        let mut nodes = BTreeMap::new();
        for i in 1..=node_count {
            let n = Node::new(format!("a{i:03}"), cpus_per_node, 64_000, 0);
            nodes.insert(n.name.clone(), n);
        }
        let part = Partition::new("cpu").with_nodes(nodes.keys().cloned().collect());
        let mut partitions = BTreeMap::new();
        partitions.insert("cpu".to_string(), part);
        let mut qos = BTreeMap::new();
        qos.insert("normal".to_string(), Qos::new("normal", 0));
        let mut assoc = AssocStore::new();
        assoc.add_account(Account::new("physics"));
        assoc.add_user("physics", "alice");
        Fixture {
            nodes,
            partitions,
            qos,
            assoc,
        }
    }

    fn plan(fix: &Fixture, running: &[RunningJobInfo], pending: &[&Job], now: u64) -> SchedulePlan {
        plan_schedule(PlanInputs {
            nodes: &fix.nodes,
            partitions: &fix.partitions,
            qos: &fix.qos,
            assoc: &fix.assoc,
            running,
            pending,
            run_counts: &HashMap::new(),
            array_running: &HashMap::new(),
            now: Timestamp(now),
        })
    }

    #[test]
    fn starts_jobs_that_fit() {
        let fix = fixture(2, 16);
        let j1 = mk_job(1, 16, 1, 3_600);
        let j2 = mk_job(2, 16, 1, 3_600);
        let p = plan(&fix, &[], &[&j1, &j2], 0);
        assert!(matches!(
            p.decisions[0],
            ScheduleDecision::Start {
                backfilled: false,
                ..
            }
        ));
        assert!(matches!(
            p.decisions[1],
            ScheduleDecision::Start {
                backfilled: false,
                ..
            }
        ));
    }

    #[test]
    fn first_unfittable_becomes_resources_blocker() {
        let fix = fixture(2, 16);
        let wide = mk_job(1, 16, 2, 3_600); // needs both nodes
        let filler = mk_job(2, 16, 2, 3_600);
        let p = plan(&fix, &[], &[&wide, &filler], 0);
        // wide starts (fits on empty cluster); filler blocked.
        assert!(matches!(p.decisions[0], ScheduleDecision::Start { .. }));
        assert_eq!(
            p.decisions[1],
            ScheduleDecision::Pend {
                job: JobId(2),
                reason: PendingReason::Resources
            }
        );
    }

    #[test]
    fn backfill_short_job_behind_blocker() {
        // One node busy until t=1000 (its limit); blocker wants 2 nodes.
        let mut fix = fixture(2, 16);
        fix.nodes
            .get_mut("a001")
            .unwrap()
            .allocate(Tres::new(16, 1_000, 0, 1), Timestamp(0));
        let running = vec![RunningJobInfo {
            nodes: vec!["a001".to_string()],
            per_node: Tres::new(16, 1_000, 0, 1),
            expected_end: Timestamp(1_000),
        }];
        let blocker = mk_job(1, 16, 2, 3_600);
        let short = mk_job(2, 8, 1, 900); // ends before shadow (1000)
        let long = mk_job(3, 8, 1, 7_200); // would outlive shadow AND needs a002 (reserved)
        let p = plan(&fix, &running, &[&blocker, &short, &long], 0);
        assert_eq!(
            p.decisions[0],
            ScheduleDecision::Pend {
                job: JobId(1),
                reason: PendingReason::Resources
            }
        );
        assert!(
            matches!(
                p.decisions[1],
                ScheduleDecision::Start {
                    backfilled: true,
                    ..
                }
            ),
            "short job should backfill: {:?}",
            p.decisions[1]
        );
        assert_eq!(p.shadow_times["cpu"], Timestamp(1_000));
        // The long job must not delay the blocker; a002 is reserved, a001 is
        // full, so it pends with Priority.
        assert_eq!(
            p.decisions[2],
            ScheduleDecision::Pend {
                job: JobId(3),
                reason: PendingReason::Priority
            }
        );
    }

    #[test]
    fn assoc_limit_reason() {
        let mut fix = fixture(2, 16);
        fix.assoc
            .add_account(Account::new("tiny").with_cpu_limit(8));
        fix.assoc.add_user("tiny", "alice");
        let mut j = mk_job(1, 16, 1, 3_600);
        j.req.account = "tiny".to_string();
        let p = plan(&fix, &[], &[&j], 0);
        assert_eq!(
            p.decisions[0],
            ScheduleDecision::Pend {
                job: JobId(1),
                reason: PendingReason::AssocGrpCpuLimit
            }
        );
    }

    #[test]
    fn assoc_limit_counts_planned_starts() {
        // Account capped at 16 CPUs: first job takes all of it, second must
        // pend even though the plan has not been applied to live state yet.
        let mut fix = fixture(2, 16);
        fix.assoc
            .add_account(Account::new("capped").with_cpu_limit(16));
        fix.assoc.add_user("capped", "alice");
        let mut j1 = mk_job(1, 16, 1, 3_600);
        j1.req.account = "capped".to_string();
        let mut j2 = mk_job(2, 16, 1, 3_600);
        j2.req.account = "capped".to_string();
        let p = plan(&fix, &[], &[&j1, &j2], 0);
        assert!(matches!(p.decisions[0], ScheduleDecision::Start { .. }));
        assert_eq!(
            p.decisions[1],
            ScheduleDecision::Pend {
                job: JobId(2),
                reason: PendingReason::AssocGrpCpuLimit
            }
        );
    }

    #[test]
    fn qos_running_cap() {
        let mut fix = fixture(4, 16);
        fix.qos.insert(
            "high".to_string(),
            Qos::new("high", 100).with_max_jobs_per_user(1),
        );
        let mut j1 = mk_job(1, 1, 1, 600);
        j1.req.qos = "high".to_string();
        let mut j2 = mk_job(2, 1, 1, 600);
        j2.req.qos = "high".to_string();
        let p = plan(&fix, &[], &[&j1, &j2], 0);
        assert!(matches!(p.decisions[0], ScheduleDecision::Start { .. }));
        assert_eq!(
            p.decisions[1],
            ScheduleDecision::Pend {
                job: JobId(2),
                reason: PendingReason::QosMaxJobsPerUser
            }
        );
    }

    #[test]
    fn partition_down_and_timelimit_reasons() {
        let mut fix = fixture(1, 16);
        let j = mk_job(1, 1, 1, 600);
        fix.partitions.get_mut("cpu").unwrap().state = PartitionState::Down;
        let p = plan(&fix, &[], &[&j], 0);
        assert_eq!(
            p.decisions[0],
            ScheduleDecision::Pend {
                job: JobId(1),
                reason: PendingReason::PartitionDown
            }
        );

        fix.partitions.get_mut("cpu").unwrap().state = PartitionState::Up;
        fix.partitions.get_mut("cpu").unwrap().max_time = TimeLimit::Limited(60);
        let p = plan(&fix, &[], &[&j], 0);
        assert_eq!(
            p.decisions[0],
            ScheduleDecision::Pend {
                job: JobId(1),
                reason: PendingReason::PartitionTimeLimit
            }
        );
    }

    #[test]
    fn impossible_request_is_bad_constraints() {
        let fix = fixture(2, 16);
        let giant = mk_job(1, 64, 1, 600);
        let p = plan(&fix, &[], &[&giant], 0);
        assert_eq!(
            p.decisions[0],
            ScheduleDecision::Pend {
                job: JobId(1),
                reason: PendingReason::BadConstraints
            }
        );
    }

    #[test]
    fn array_throttle() {
        use crate::job::ArrayMeta;
        let fix = fixture(4, 16);
        let mut t0 = mk_job(10, 1, 1, 600);
        t0.array = Some(ArrayMeta {
            array_job_id: JobId(10),
            task_id: 0,
            max_concurrent: Some(1),
        });
        let mut t1 = mk_job(11, 1, 1, 600);
        t1.array = Some(ArrayMeta {
            array_job_id: JobId(10),
            task_id: 1,
            max_concurrent: Some(1),
        });
        let p = plan(&fix, &[], &[&t0, &t1], 0);
        assert!(matches!(p.decisions[0], ScheduleDecision::Start { .. }));
        assert_eq!(
            p.decisions[1],
            ScheduleDecision::Pend {
                job: JobId(11),
                reason: PendingReason::JobArrayTaskLimit
            }
        );
    }
}
