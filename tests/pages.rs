//! Figures F2-F4d: render every page of the dashboard from live simulated
//! data and check the paper's described elements are present.

use hpcdash::SimSite;
use hpcdash_core::pages;
use hpcdash_http::HttpClient;
use hpcdash_slurm::job::{JobRequest, UsageProfile};
use hpcdash_workload::ScenarioConfig;

struct Live {
    _server: hpcdash_http::Server,
    base: String,
    client: HttpClient,
    site: SimSite,
    user: String,
}

fn live() -> Live {
    let site = SimSite::build(ScenarioConfig::small());
    site.warm_up(3_600);
    let server = site.serve().unwrap();
    let user = site.scenario.population.users[0].clone();
    Live {
        base: server.base_url(),
        _server: server,
        client: HttpClient::new(),
        site,
        user,
    }
}

impl Live {
    fn json(&self, path: &str) -> serde_json::Value {
        let resp = self
            .client
            .get(
                &format!("{}{path}", self.base),
                &[("X-Remote-User", &self.user)],
            )
            .unwrap();
        assert_eq!(resp.status, 200, "{path}: {}", resp.body_string());
        resp.json().unwrap()
    }
}

#[test]
fn f2_homepage_renders_all_widgets_from_live_data() {
    let l = live();
    let payloads: Vec<(&str, Result<serde_json::Value, String>)> = pages::homepage::WIDGETS
        .iter()
        .map(|(w, path)| (*w, Ok(l.json(path))))
        .collect();
    let html = pages::homepage::render_full("Anvil", &l.user, &payloads);
    assert!(html.contains("Announcements"));
    assert!(html.contains("System Status"));
    assert!(html.contains("progress-bar"));
    assert!(html.contains("accordion"));
    assert!(!html.contains("widget-error"));
}

#[test]
fn f3_myjobs_page_with_efficiency_and_charts() {
    let l = live();
    // Inject a deliberately wasteful finished job so warnings fire.
    let account = l.site.scenario.population.accounts_of(&l.user)[0].clone();
    let mut req = JobRequest::simple(&l.user, &account, "cpu", 8);
    req.usage = UsageProfile {
        cpu_util: 0.05,
        mem_util: 0.04,
        gpu_util: 0.0,
        planned_runtime_secs: 400,
        outcome: hpcdash_slurm::job::PlannedOutcome::Success,
    };
    l.site.scenario.ctld.submit(req).unwrap();
    l.site.scenario.ctld.tick();
    l.site.scenario.clock.advance(500);
    l.site.scenario.ctld.tick();

    let payload = l.json("/api/myjobs?range=all");
    let html = pages::myjobs::render_full("Anvil", &l.user, &payload);
    assert!(html.contains("job-table"));
    assert!(html.contains("data-chart="));
    assert!(
        html.contains("Toggle") || html.contains("eff"),
        "efficiency columns present"
    );
    assert!(
        html.contains("alert-warning"),
        "wasteful job should produce an efficiency warning"
    );
}

#[test]
fn f4a_job_performance_metrics_page() {
    let l = live();
    let payload = l.json("/api/jobmetrics?range=all");
    let html = pages::jobperf::render_full("Anvil", &l.user, &payload);
    assert!(html.contains("metric-card"));
    assert!(html.contains("Total jobs"));
    assert!(html.contains("Average queue wait"));
}

#[test]
fn f4b_cluster_status_grid_and_list() {
    let l = live();
    let payload = l.json("/api/clusterstatus");
    let html = pages::clusterstatus::render_full("Anvil", &l.user, &payload);
    assert!(html.contains("node-grid"));
    assert!(html.contains("node-table"));
    // Grid has one cell per node (5 in the small scenario).
    assert_eq!(html.matches("node-cell").count(), 5);
    // Search filter works on the list view.
    let gpu_only = pages::clusterstatus::render_list(&payload, Some("gpu"));
    assert!(gpu_only.contains("g001"));
    assert!(!gpu_only.contains(">a001<"));
}

#[test]
fn f4c_node_overview_page() {
    let l = live();
    let payload = l.json("/api/nodes/g001");
    let html = pages::nodeoverview::render_full("Anvil", &l.user, &payload);
    assert!(html.contains("Node g001"));
    assert!(html.contains("Resource usage"));
    assert!(html.contains("kv-table"));
}

#[test]
fn f4d_job_overview_page_with_logs() {
    // Use an idle cluster so the injected job starts immediately (a busy
    // cluster would leave it pending with empty logs).
    let site = SimSite::build(ScenarioConfig::small());
    let server = site.serve().unwrap();
    let user = site.scenario.population.users[0].clone();
    let l = Live {
        base: server.base_url(),
        _server: server,
        client: HttpClient::new(),
        site,
        user,
    };
    let account = l.site.scenario.population.accounts_of(&l.user)[0].clone();
    let mut req = JobRequest::simple(&l.user, &account, "cpu", 2);
    req.comment = Some(format!("ood:jupyter:sessX:/home/{}/ondemand", l.user));
    req.usage = UsageProfile::interactive(1_200);
    let id = l.site.scenario.ctld.submit(req).unwrap()[0];
    l.site.scenario.ctld.tick();
    l.site.scenario.clock.advance(120);
    l.site.scenario.ctld.tick();

    let payload = l.json(&format!("/api/jobs/{id}"));
    let stdout = l.json(&format!("/api/jobs/{id}/logs?stream=out"));
    let html = pages::joboverview::render_full("Anvil", &l.user, &payload, Some(&stdout), None);
    assert!(html.contains(&format!("Job {id}")));
    assert!(html.contains("timeline"));
    assert!(html.contains("Job Information"));
    assert!(html.contains("Launch jupyter"), "session tab for OOD job");
    assert!(html.contains("lineno"), "line-numbered log view");
}
