//! Vendored stand-in for the `crossbeam` crate.
//!
//! Provides the subset the workspace uses: `crossbeam::channel` with bounded
//! MPMC channels (clonable senders *and* receivers), built on a
//! `Mutex<VecDeque>` + two condvars. Throughput is far below the real
//! crossbeam, but the semantics — blocking send on full, blocking recv on
//! empty, disconnect on last-handle drop — match.

pub mod channel;
