//! Health exposition: per-data-source up/degraded/down derived from recent
//! loader outcomes, plus an overall verdict (the worst source wins).
//!
//! Distinct from `/healthz` (process liveness): this route reports whether
//! the *data sources* behind the dashboard are answering.

use crate::ctx::DashboardContext;
use hpcdash_http::{Request, Response, Router};
use hpcdash_obs::health::HealthStatus;

pub const ROUTE: &str = "/api/health";

pub fn register(router: &mut Router, ctx: DashboardContext) {
    router.get(ROUTE, move |req| handle(&ctx, req));
}

fn handle(ctx: &DashboardContext, _req: &Request) -> Response {
    // React to any crash-recovery before reporting, so the restart counts
    // and purges below are already reflected in what this body describes.
    ctx.observe_recoveries();
    let report = ctx.health.report();
    let mut body = report.to_json();
    // Daemon liveness and crash-recovery accounting: is each simulated
    // daemon up, how often has it restarted, and what did the last
    // checkpoint+WAL recovery replay vs lose.
    body["daemons"] = super::daemons_payload(ctx);
    // Circuit-breaker states ride along: operators reading /api/health see
    // not just that a source is down but whether the dashboard has stopped
    // asking it (open) or is probing for recovery (half_open).
    body["breakers"] = ctx
        .breakers
        .snapshots()
        .into_iter()
        .map(|s| {
            let mut entry = serde_json::json!({
                "state": s.state.as_str(),
                "consecutive_failures": s.consecutive_failures,
                "opens": s.opens,
            });
            // Federated sources (`fed@<cluster>`) say which site they guard,
            // so a stuck-open breaker is attributable to a cluster.
            if let Some(cluster) = s.cluster {
                entry["cluster"] = cluster.into();
            }
            (s.source, entry)
        })
        .collect::<serde_json::Map>()
        .into();
    // Span-sink pressure: a ring near capacity that is dropping spans means
    // traces are losing hops before the tail sampler ever sees them.
    let sink = hpcdash_obs::trace::sink();
    body["trace_sink"] = serde_json::json!({
        "depth": sink.len(),
        "capacity": sink.capacity(),
        "dropped_spans": sink.dropped(),
    });
    let resp = Response::json(&body);
    match report.overall {
        // A degraded dashboard still answers 200 (it serves stale/partial
        // data); only Down surfaces as an unhealthy status code.
        HealthStatus::Up | HealthStatus::Degraded => resp,
        HealthStatus::Down => Response {
            status: 503,
            ..resp
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::tests::test_ctx;
    use hpcdash_http::Method;

    fn request() -> Request {
        Request::new(Method::Get, "/api/health")
    }

    #[test]
    fn all_up_when_sources_answer() {
        let ctx = test_ctx();
        ctx.health.record_ok("squeue");
        ctx.health.record_ok("sinfo");
        let resp = handle(&ctx, &request());
        assert_eq!(resp.status, 200);
        let body = resp.body_json().unwrap();
        assert_eq!(body["status"], "up");
        assert_eq!(body["sources"]["squeue"]["status"], "up");
    }

    #[test]
    fn down_source_drives_overall_and_status_code() {
        let ctx = test_ctx();
        ctx.health.record_ok("sinfo");
        for _ in 0..3 {
            ctx.health.record_error("squeue");
        }
        let resp = handle(&ctx, &request());
        assert_eq!(resp.status, 503);
        let body = resp.body_json().unwrap();
        assert_eq!(body["status"], "down");
        assert_eq!(body["sources"]["squeue"]["status"], "down");
        assert_eq!(body["sources"]["sinfo"]["status"], "up");
    }

    #[test]
    fn breaker_states_ride_along() {
        let ctx = test_ctx();
        ctx.health.record_ok("sinfo");
        for _ in 0..ctx.breakers.config().failure_threshold {
            ctx.breakers.record_failure("sacct");
        }
        ctx.breakers.record_success("sinfo");
        let resp = handle(&ctx, &request());
        let body = resp.body_json().unwrap();
        assert_eq!(body["breakers"]["sacct"]["state"], "open");
        assert_eq!(body["breakers"]["sacct"]["opens"], 1);
        assert_eq!(body["breakers"]["sinfo"]["state"], "closed");
    }

    #[test]
    fn federated_breakers_carry_their_cluster() {
        let ctx = test_ctx();
        ctx.health.record_ok("sinfo");
        ctx.breakers.record_failure("fed@beta");
        ctx.breakers.record_success("sacct");
        let resp = handle(&ctx, &request());
        let body = resp.body_json().unwrap();
        assert_eq!(body["breakers"]["fed@beta"]["cluster"], "beta");
        assert!(body["breakers"]["sacct"]["cluster"].is_null());
    }

    #[test]
    fn daemon_liveness_rides_along() {
        let ctx = test_ctx();
        ctx.health.record_ok("sinfo");
        let resp = handle(&ctx, &request());
        let body = resp.body_json().unwrap();
        let daemons = &body["daemons"];
        assert_eq!(daemons["slurmctld"]["down"], false);
        assert_eq!(daemons["slurmctld"]["restarts"], 0);
        assert!(
            daemons["slurmctld"]["checkpoints"].as_u64().unwrap() >= 1,
            "checkpoint-0 exists from construction"
        );
        assert!(daemons["slurmctld"]["last_recovery"].is_null());
        assert_eq!(daemons["slurmdbd"]["down"], false);
        assert_eq!(daemons["telemetry_gap_skips"], 0);
    }

    #[test]
    fn trace_sink_pressure_rides_along() {
        let ctx = test_ctx();
        ctx.health.record_ok("sinfo");
        let resp = handle(&ctx, &request());
        let body = resp.body_json().unwrap();
        let sink = &body["trace_sink"];
        assert!(sink["capacity"].as_u64().unwrap() > 0);
        assert!(sink["depth"].as_u64().is_some());
        assert!(sink["dropped_spans"].as_u64().is_some());
    }
}
