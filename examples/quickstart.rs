//! Quickstart: stand up a simulated site, run some traffic, and read the
//! dashboard the way a browser would.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hpcdash::SimSite;
use hpcdash_workload::ScenarioConfig;

fn main() {
    // 1. Build a small simulated site: cluster + slurmctld/slurmdbd +
    //    storage quota DB + news feed + a user population.
    let site = SimSite::build(ScenarioConfig::small());
    println!("cluster: {}", site.scenario.ctld.cluster_name());
    println!("nodes:   {}", site.scenario.ctld.query_nodes().len());
    println!("users:   {:?}", site.scenario.population.users);

    // 2. Run 30 minutes of simulated job traffic.
    site.warm_up(1_800);

    // 3. Serve the dashboard on an ephemeral port.
    let server = site.serve().expect("bind dashboard");
    println!("dashboard at {}\n", server.base_url());

    // 4. Open it with a headless browser as the first simulated user.
    let user = site.scenario.population.users[0].clone();
    let browser = site.browser(&server.base_url(), &user);
    let page = browser.load_homepage().expect("homepage");
    println!(
        "homepage: shell in {:?}, all data in {:?}, {}/5 widgets healthy",
        page.ttfb,
        page.total,
        page.healthy_widgets()
    );
    for (widget, result) in &page.widgets {
        match result {
            Ok(r) => println!("  {widget:<14} {:>9?}  ({:?})", r.perceived, r.outcome),
            Err(e) => println!("  {widget:<14} ERROR: {e}"),
        }
    }

    // 5. Peek at the queue through the same API the widgets use.
    let jobs = browser.fetch_api("/api/recent_jobs").expect("recent jobs");
    println!("\nrecent jobs for {user}:");
    for j in jobs.value["jobs"].as_array().unwrap() {
        println!(
            "  #{} {} [{}] {}",
            j["id"].as_str().unwrap_or("?"),
            j["name"].as_str().unwrap_or("?"),
            j["state"].as_str().unwrap_or("?"),
            j["tooltip"].as_str().unwrap_or("")
        );
    }

    // 6. A warm reload is served from the client cache — no backend traffic.
    let before = browser.network_fetch_count();
    let warm = browser.load_homepage().expect("warm homepage");
    println!(
        "\nwarm reload: all data in {:?} with {} new network requests",
        warm.total,
        browser.network_fetch_count() - before
    );
}
