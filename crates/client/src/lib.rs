//! The headless "browser": what a user's browser tab does in the paper's
//! design, implemented natively so experiments can measure it.
//!
//! Each client keeps an IndexedDB-analog cache of API responses
//! ([`hpcdash_cache::IndexedDb`]). On page load it renders instantly from
//! cache when possible and revalidates stale entries — so *perceived*
//! latency (time until the user sees data) is separated from *network*
//! traffic (requests that actually hit the backend), which is exactly the
//! distinction the paper's dual-caching argument rests on (§2.4).

pub mod browser;
pub mod histogram;
pub mod live;
pub mod loadgen;

pub use browser::{DashboardClient, FetchOutcome, FetchResult, PageLoad};
pub use histogram::{LatencyRecorder, LatencySummary};
pub use live::{LiveSubscriber, PollOutcome, StreamTransport};
pub use loadgen::{admin_observability_paths, federation_paths, LoadConfig, LoadReport};
