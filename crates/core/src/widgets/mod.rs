//! Homepage widget renderers (paper §3) — the frontend half of each
//! feature. Each takes the *same JSON payload its paired API route returns*
//! and renders an HTML fragment, so server-side rendering (tests, examples)
//! and client-side rendering (the headless browser) can never disagree
//! about the data shape.

pub mod accounts;
pub mod announcements;
pub mod components;
pub mod recent_jobs;
pub mod storage;
pub mod system_status;

/// Render a widget's error card — what the frontend shows when the widget's
/// API route fails while the rest of the dashboard keeps working (the
/// modularity story of paper §2.4).
pub fn error_card(widget_name: &str, message: &str) -> String {
    format!(
        "<div class=\"card widget widget-error\" data-widget=\"{}\">\
         <div class=\"card-header\">{}</div>\
         <div class=\"card-body text-muted\">This component is temporarily unavailable: {}</div>\
         </div>",
        crate::template::escape_html(widget_name),
        crate::template::escape_html(widget_name),
        crate::template::escape_html(message),
    )
}

/// The accessible degraded-data notice: when a widget's source is failing
/// and the server fell back to the last-known-good payload, the widget
/// must *say so* rather than present old numbers as current. `role=status`
/// with `aria-live=polite` so screen readers announce the change without
/// stealing focus (the paper's accessibility bar, §6).
pub fn stale_notice(age_secs: u64) -> String {
    let age = if age_secs < 120 {
        format!("{age_secs} seconds")
    } else {
        format!("{} minutes", age_secs / 60)
    };
    format!(
        "<div class=\"widget-stale-notice\" role=\"status\" aria-live=\"polite\">\
         Showing data from {age} ago — the data source is temporarily unreachable.\
         </div>"
    )
}

/// Wrap a rendered widget with its stale notice when the payload carries
/// the server's `"degraded": true` annotation; unannotated payloads pass
/// through untouched.
pub fn with_degradation(html: String, payload: &serde_json::Value) -> String {
    if payload["degraded"] != serde_json::json!(true) {
        return html;
    }
    let age = payload["stale_age_secs"].as_u64().unwrap_or(0);
    format!(
        "<div class=\"widget-degraded\">{}{}</div>",
        stale_notice(age),
        html
    )
}

#[cfg(test)]
mod tests {
    use serde_json::json;

    #[test]
    fn error_card_escapes() {
        let html = super::error_card("Storage", "<boom>");
        assert!(html.contains("widget-error"));
        assert!(html.contains("&lt;boom&gt;"));
        assert!(!html.contains("<boom>"));
    }

    #[test]
    fn stale_notice_is_accessible_and_humane() {
        let n = super::stale_notice(45);
        assert!(n.contains("role=\"status\""));
        assert!(n.contains("aria-live=\"polite\""));
        assert!(n.contains("45 seconds ago"));
        assert!(super::stale_notice(300).contains("5 minutes ago"));
    }

    #[test]
    fn degradation_wrapper_only_fires_on_annotated_payloads() {
        let fresh = json!({"jobs": []});
        assert_eq!(
            super::with_degradation("<div>w</div>".to_string(), &fresh),
            "<div>w</div>"
        );
        let stale = json!({"jobs": [], "degraded": true, "stale_age_secs": 90});
        let html = super::with_degradation("<div>w</div>".to_string(), &stale);
        assert!(html.contains("widget-stale-notice"));
        assert!(html.contains("90 seconds ago"));
        assert!(html.contains("<div>w</div>"));
    }
}
