//! The simulation driver: advances the clock, feeds submissions from the
//! trace, and ticks the scheduler — the "world" around the dashboard.

use hpcdash_simtime::{Clock, SimClock, Timestamp};
use hpcdash_slurm::ctld::Slurmctld;
use hpcdash_slurm::job::{JobId, JobRequest};
use hpcdash_telemetry::TelemetryD;
use std::collections::VecDeque;
use std::sync::Arc;

/// Drives a scenario forward in fixed scheduler-tick steps.
pub struct SimDriver {
    clock: SimClock,
    ctld: Arc<Slurmctld>,
    trace: VecDeque<(Timestamp, JobRequest)>,
    tick_secs: u64,
    submitted: Vec<JobId>,
    /// When set, a metrics collection pass runs after every tick — the
    /// simulated equivalent of node exporters firing on their interval.
    telemetry: Option<Arc<TelemetryD>>,
}

impl SimDriver {
    pub fn new(
        clock: SimClock,
        ctld: Arc<Slurmctld>,
        trace: Vec<(Timestamp, JobRequest)>,
        tick_secs: u64,
    ) -> SimDriver {
        SimDriver {
            clock,
            ctld,
            trace: trace.into(),
            tick_secs: tick_secs.max(1),
            submitted: Vec::new(),
            telemetry: None,
        }
    }

    /// Attach a telemetry daemon; it collects after every scheduler tick.
    pub fn with_telemetry(mut self, telemetry: Arc<TelemetryD>) -> SimDriver {
        self.telemetry = Some(telemetry);
        self
    }

    /// Advance simulated time by `secs`, submitting due jobs and running the
    /// scheduler every tick.
    pub fn advance(&mut self, secs: u64) {
        let target = self.clock.now().plus(secs);
        while self.clock.now() < target {
            let step = self.tick_secs.min(target.since(self.clock.now()));
            self.clock.advance(step);
            let now = self.clock.now();
            while let Some((when, _)) = self.trace.front() {
                if *when > now {
                    break;
                }
                let (_, req) = self.trace.pop_front().expect("front checked");
                if let Ok(ids) = self.ctld.submit(req) {
                    self.submitted.extend(ids);
                }
            }
            self.ctld.tick();
            if let Some(telemetry) = &self.telemetry {
                telemetry.collect_now();
            }
        }
    }

    /// Jobs submitted so far.
    pub fn submitted(&self) -> &[JobId] {
        &self.submitted
    }

    /// Submissions still waiting in the trace.
    pub fn remaining_trace(&self) -> usize {
        self.trace.len()
    }

    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }
}

#[cfg(test)]
mod tests {
    use crate::scenario::{Scenario, ScenarioConfig};
    use hpcdash_simtime::Clock;
    use hpcdash_slurm::job::JobState;

    #[test]
    fn driver_populates_cluster() {
        let s = Scenario::build(ScenarioConfig::small());
        let mut driver = s.driver(2 * 3_600);
        driver.advance(3_600);
        assert!(!driver.submitted().is_empty(), "jobs were submitted");
        let jobs = s.ctld.query_jobs(&hpcdash_slurm::ctld::JobQuery::all());
        let running = jobs.iter().filter(|j| j.state == JobState::Running).count();
        assert!(running > 0, "some jobs running after an hour");
    }

    #[test]
    fn full_window_drains_trace_and_archives_jobs() {
        let s = Scenario::build(ScenarioConfig::small());
        let mut driver = s.driver(3_600);
        driver.advance(3 * 3_600);
        assert_eq!(driver.remaining_trace(), 0);
        assert!(
            s.dbd.archived_count() > 0,
            "finished jobs reached accounting"
        );
        // Accounting has a mix of terminal states thanks to the outcome mix.
        let recs = s.dbd.query_jobs(&hpcdash_slurm::dbd::JobFilter::default());
        let states: std::collections::HashSet<_> = recs.iter().map(|j| j.state).collect();
        assert!(states.contains(&JobState::Completed));
    }

    #[test]
    fn time_advances_in_ticks() {
        let s = Scenario::build(ScenarioConfig::small());
        let start = s.clock.now();
        let mut driver = s.driver(600);
        driver.advance(95);
        assert_eq!(driver.now().since(start), 95, "partial ticks land exactly");
    }
}
