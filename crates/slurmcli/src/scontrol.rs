//! `scontrol show job|node|assoc_mgr`: detailed single-entity dumps.
//!
//! Output uses slurm's `Key=Value` token format, records separated by blank
//! lines. The Node Overview and Job Overview pages (paper §6.1, §7) are fed
//! from these, and the Accounts widget (§3.4) from the assoc dump.

use crate::opt_time;
use hpcdash_obs::Span;
use hpcdash_simtime::{format_duration, parse_timestamp, Timestamp};
use hpcdash_slurm::ctld::Slurmctld;
use hpcdash_slurm::job::{Job, JobId, JobState, PendingReason};
use hpcdash_slurm::node::{Node, NodeState};
use hpcdash_slurm::tres::format_mem_mb;
use std::collections::BTreeMap;

/// A parsed `scontrol show job` record.
#[derive(Debug, Clone, PartialEq)]
pub struct ScontrolJob {
    pub job_id: JobId,
    pub name: String,
    pub user: String,
    pub account: String,
    pub qos: String,
    pub state: JobState,
    pub reason: Option<PendingReason>,
    pub priority: u64,
    pub partition: String,
    pub submit_time: Option<Timestamp>,
    pub eligible_time: Option<Timestamp>,
    pub start_time: Option<Timestamp>,
    pub end_time: Option<Timestamp>,
    pub time_limit: String,
    pub run_time_secs: u64,
    pub num_nodes: u32,
    pub num_cpus: u32,
    pub mem_per_node: String,
    pub gres: Option<String>,
    pub nodelist: Option<String>,
    pub work_dir: String,
    pub std_out: String,
    pub std_err: String,
    pub comment: Option<String>,
    pub array_job_id: Option<JobId>,
    pub array_task_id: Option<u32>,
    pub dependency: Option<JobId>,
    /// Every raw key=value token, for fields the typed view omits.
    pub raw: BTreeMap<String, String>,
}

/// A parsed `scontrol show node` record.
#[derive(Debug, Clone, PartialEq)]
pub struct ScontrolNode {
    pub name: String,
    pub state: NodeState,
    pub cpu_alloc: u32,
    pub cpu_total: u32,
    pub cpu_load: f64,
    pub real_memory_mb: u64,
    pub alloc_memory_mb: u64,
    pub gres: Option<String>,
    pub gres_used: Option<String>,
    pub features: Vec<String>,
    pub partitions: Vec<String>,
    pub os: String,
    pub boot_time: Option<Timestamp>,
    pub last_busy: Option<Timestamp>,
    pub reason: Option<String>,
    pub raw: BTreeMap<String, String>,
}

/// `scontrol show job <id>`: live job details from slurmctld. `Ok(None)`
/// if the job is unknown, `Err` if the command itself fails.
pub fn show_job(ctld: &Slurmctld, id: JobId) -> Result<Option<String>, String> {
    let _span = Span::enter("slurmcli").attr("cmd", "scontrol_show_job");
    match ctld.query_job(id) {
        Some(j) => {
            let text = render_job(&j, ctld.clock_now());
            crate::boundary(ctld.faults(), "scontrol_job", text).map(Some)
        }
        None => crate::boundary(ctld.faults(), "scontrol_job", String::new()).map(|_| None),
    }
}

/// Render one job record.
pub fn render_job(job: &Job, now: Timestamp) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "JobId={} JobName={}\n",
        job.id,
        token(&job.req.name)
    ));
    s.push_str(&format!(
        "   UserId={}(1000) Account={} QOS={} Priority={}\n",
        job.req.user, job.req.account, job.req.qos, job.priority
    ));
    s.push_str(&format!(
        "   JobState={} Reason={} Dependency={}\n",
        job.state.to_slurm(),
        job.reason.map(|r| r.to_slurm()).unwrap_or("None"),
        job.req
            .dependency
            .map(|d| format!("afterok:{d}"))
            .unwrap_or_else(|| "(null)".to_string()),
    ));
    s.push_str(&format!(
        "   SubmitTime={} EligibleTime={}\n",
        job.submit_time.to_slurm(),
        job.eligible_time.to_slurm()
    ));
    s.push_str(&format!(
        "   StartTime={} EndTime={}\n",
        opt_time(job.start_time),
        opt_time(job.end_time)
    ));
    s.push_str(&format!(
        "   TimeLimit={} RunTime={}\n",
        job.req.time_limit.to_slurm(),
        format_duration(job.elapsed_secs(now))
    ));
    s.push_str(&format!(
        "   Partition={} NodeList={}\n",
        job.req.partition,
        if job.nodes.is_empty() {
            "(null)".to_string()
        } else {
            job.nodes.join(",")
        }
    ));
    s.push_str(&format!(
        "   NumNodes={} NumCPUs={} MinMemoryNode={}",
        job.req.nodes,
        job.alloc_cpus(),
        format_mem_mb(job.req.mem_mb_per_node)
    ));
    if job.req.gpus_per_node > 0 {
        s.push_str(&format!(" Gres=gpu:{}", job.req.gpus_per_node));
    }
    s.push('\n');
    s.push_str(&format!("   WorkDir={}\n", token(&job.req.work_dir)));
    s.push_str(&format!(
        "   StdOut={} StdErr={}\n",
        token(&job.stdout_path),
        token(&job.stderr_path)
    ));
    if let Some(c) = &job.req.comment {
        s.push_str(&format!("   Comment={}\n", token(c)));
    }
    if let Some(a) = &job.array {
        s.push_str(&format!(
            "   ArrayJobId={} ArrayTaskId={}\n",
            a.array_job_id, a.task_id
        ));
    }
    s
}

/// Parse a `scontrol show job` dump (one record).
pub fn parse_show_job(text: &str) -> Result<ScontrolJob, String> {
    crate::note_parse();
    let raw = tokenize(text);
    let get = |k: &str| raw.get(k).cloned();
    let req = |k: &str| get(k).ok_or_else(|| format!("missing {k}"));
    Ok(ScontrolJob {
        job_id: JobId(req("JobId")?.parse().map_err(|_| "bad JobId".to_string())?),
        name: req("JobName")?,
        user: req("UserId")?
            .split('(')
            .next()
            .unwrap_or_default()
            .to_string(),
        account: req("Account")?,
        qos: req("QOS")?,
        state: JobState::parse(&req("JobState")?).ok_or("bad JobState")?,
        reason: get("Reason")
            .filter(|r| r != "None")
            .and_then(|r| PendingReason::parse(&r)),
        priority: req("Priority")?
            .parse()
            .map_err(|_| "bad Priority".to_string())?,
        partition: req("Partition")?,
        submit_time: get("SubmitTime").and_then(|v| parse_timestamp(&v)),
        eligible_time: get("EligibleTime").and_then(|v| parse_timestamp(&v)),
        start_time: get("StartTime").and_then(|v| parse_timestamp(&v)),
        end_time: get("EndTime").and_then(|v| parse_timestamp(&v)),
        time_limit: req("TimeLimit")?,
        run_time_secs: hpcdash_simtime::parse_duration(&req("RunTime")?).ok_or("bad RunTime")?,
        num_nodes: req("NumNodes")?
            .parse()
            .map_err(|_| "bad NumNodes".to_string())?,
        num_cpus: req("NumCPUs")?
            .parse()
            .map_err(|_| "bad NumCPUs".to_string())?,
        mem_per_node: req("MinMemoryNode")?,
        gres: get("Gres"),
        nodelist: get("NodeList").filter(|v| v != "(null)"),
        work_dir: req("WorkDir")?,
        std_out: req("StdOut")?,
        std_err: req("StdErr")?,
        comment: get("Comment"),
        array_job_id: get("ArrayJobId").and_then(|v| v.parse().ok()).map(JobId),
        array_task_id: get("ArrayTaskId").and_then(|v| v.parse().ok()),
        dependency: get("Dependency")
            .filter(|v| v != "(null)")
            .and_then(|v| v.strip_prefix("afterok:").and_then(|x| x.parse().ok()))
            .map(JobId),
        raw,
    })
}

/// `scontrol show node [<name>]`: one or all nodes.
pub fn show_node(ctld: &Slurmctld, name: Option<&str>) -> Result<String, String> {
    let _span = Span::enter("slurmcli").attr("cmd", "scontrol_show_node");
    let text = match name {
        Some(n) => ctld
            .query_node(n)
            .map(|node| render_node(&node))
            .unwrap_or_default(),
        None => {
            let nodes = ctld.query_nodes();
            nodes.iter().map(render_node).collect::<Vec<_>>().join("\n")
        }
    };
    crate::boundary(ctld.faults(), "scontrol_node", text)
}

/// Render one node record.
pub fn render_node(node: &Node) -> String {
    let mut s = String::new();
    s.push_str(&format!("NodeName={} Arch=x86_64\n", node.name));
    s.push_str(&format!(
        "   CPUAlloc={} CPUTot={} CPULoad={:.2}\n",
        node.alloc.cpus, node.cpus, node.cpu_load
    ));
    s.push_str(&format!(
        "   AvailableFeatures={}\n",
        if node.features.is_empty() {
            "(null)".to_string()
        } else {
            node.features.join(",")
        }
    ));
    if node.gpus > 0 {
        let ty = node.gpu_type.as_deref().unwrap_or("gpu");
        s.push_str(&format!(
            "   Gres=gpu:{}:{} GresUsed=gpu:{}:{}\n",
            ty, node.gpus, ty, node.alloc.gpus
        ));
    }
    s.push_str(&format!(
        "   RealMemory={} AllocMem={}\n",
        node.real_memory_mb, node.alloc.mem_mb
    ));
    s.push_str(&format!(
        "   State={} Partitions={}\n",
        node.state().to_slurm(),
        if node.partitions.is_empty() {
            "(null)".to_string()
        } else {
            node.partitions.join(",")
        }
    ));
    s.push_str(&format!("   OS={}\n", token(&node.os)));
    s.push_str(&format!(
        "   BootTime={} LastBusyTime={}\n",
        node.boot_time.to_slurm(),
        node.last_busy.to_slurm()
    ));
    if let Some(r) = &node.reason {
        s.push_str(&format!("   Reason={}\n", token(r)));
    }
    s
}

/// The exact `Key=Value` map [`render_node`] emits, built without the text
/// round-trip. The structured Node Overview path uses this for its details
/// tab so the payload stays byte-compatible with the parsed-text path; a
/// test pins it against `tokenize(render_node(n))` to prevent divergence.
pub fn node_fields(node: &Node) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    let mut put = |k: &str, v: String| {
        map.insert(k.to_string(), v);
    };
    put("NodeName", node.name.clone());
    put("Arch", "x86_64".to_string());
    put("CPUAlloc", node.alloc.cpus.to_string());
    put("CPUTot", node.cpus.to_string());
    put("CPULoad", format!("{:.2}", node.cpu_load));
    put(
        "AvailableFeatures",
        if node.features.is_empty() {
            "(null)".to_string()
        } else {
            node.features.join(",")
        },
    );
    if node.gpus > 0 {
        let ty = node.gpu_type.as_deref().unwrap_or("gpu");
        put("Gres", format!("gpu:{}:{}", ty, node.gpus));
        put("GresUsed", format!("gpu:{}:{}", ty, node.alloc.gpus));
    }
    put("RealMemory", node.real_memory_mb.to_string());
    put("AllocMem", node.alloc.mem_mb.to_string());
    put("State", node.state().to_slurm().to_string());
    put(
        "Partitions",
        if node.partitions.is_empty() {
            "(null)".to_string()
        } else {
            node.partitions.join(",")
        },
    );
    put("OS", token(&node.os));
    put("BootTime", node.boot_time.to_slurm());
    put("LastBusyTime", node.last_busy.to_slurm());
    if let Some(r) = &node.reason {
        put("Reason", token(r));
    }
    map
}

/// Parse one or more `scontrol show node` records.
pub fn parse_show_node(text: &str) -> Result<Vec<ScontrolNode>, String> {
    crate::note_parse();
    let mut out = Vec::new();
    for chunk in split_records(text) {
        let raw = tokenize(&chunk);
        let get = |k: &str| raw.get(k).cloned();
        let req = |k: &str| get(k).ok_or_else(|| format!("missing {k}"));
        out.push(ScontrolNode {
            name: req("NodeName")?,
            state: NodeState::parse(&req("State")?).ok_or("bad State")?,
            cpu_alloc: req("CPUAlloc")?
                .parse()
                .map_err(|_| "bad CPUAlloc".to_string())?,
            cpu_total: req("CPUTot")?
                .parse()
                .map_err(|_| "bad CPUTot".to_string())?,
            cpu_load: req("CPULoad")?
                .parse()
                .map_err(|_| "bad CPULoad".to_string())?,
            real_memory_mb: req("RealMemory")?
                .parse()
                .map_err(|_| "bad RealMemory".to_string())?,
            alloc_memory_mb: req("AllocMem")?
                .parse()
                .map_err(|_| "bad AllocMem".to_string())?,
            gres: get("Gres"),
            gres_used: get("GresUsed"),
            features: get("AvailableFeatures")
                .filter(|v| v != "(null)")
                .map(|v| v.split(',').map(str::to_string).collect())
                .unwrap_or_default(),
            partitions: get("Partitions")
                .filter(|v| v != "(null)")
                .map(|v| v.split(',').map(str::to_string).collect())
                .unwrap_or_default(),
            os: req("OS")?,
            boot_time: get("BootTime").and_then(|v| parse_timestamp(&v)),
            last_busy: get("LastBusyTime").and_then(|v| parse_timestamp(&v)),
            reason: get("Reason"),
            raw,
        });
    }
    Ok(out)
}

/// `scontrol show assoc_mgr`-flavoured account dump (simplified format, one
/// line per account).
pub fn show_assoc(ctld: &Slurmctld, user: Option<&str>) -> Result<String, String> {
    let _span = Span::enter("slurmcli").attr("cmd", "scontrol_show_assoc");
    let records = ctld.query_assoc(user);
    let mut s = String::from(
        "Account GrpTRESCpu GrpTRESMinsGpu CPUsInUse CPUsQueued GPUSecondsUsed Users\n",
    );
    for r in records {
        s.push_str(&format!(
            "{} {} {} {} {} {} {}\n",
            r.account.name,
            r.account
                .grp_cpu_limit
                .map(|c| c.to_string())
                .unwrap_or_else(|| "N".to_string()),
            r.account
                .grp_gpu_mins_limit
                .map(|m| m.to_string())
                .unwrap_or_else(|| "N".to_string()),
            r.usage.cpus_running,
            r.usage.cpus_queued,
            r.usage.gpu_seconds,
            if r.members.is_empty() {
                "-".to_string()
            } else {
                r.members.join(",")
            }
        ));
    }
    crate::boundary(ctld.faults(), "scontrol_assoc", s)
}

/// One parsed assoc row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssocRow {
    pub account: String,
    pub grp_cpu_limit: Option<u32>,
    pub grp_gpu_mins_limit: Option<u64>,
    pub cpus_in_use: u32,
    pub cpus_queued: u32,
    pub gpu_seconds_used: u64,
    pub users: Vec<String>,
}

/// Parse the assoc dump.
pub fn parse_show_assoc(text: &str) -> Result<Vec<AssocRow>, String> {
    crate::note_parse();
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if i == 0 || line.trim().is_empty() {
            continue;
        }
        let p: Vec<&str> = line.split_whitespace().collect();
        if p.len() != 7 {
            return Err(format!("malformed assoc line: {line:?}"));
        }
        let opt_num = |s: &str| -> Option<u64> {
            if s == "N" {
                None
            } else {
                s.parse().ok()
            }
        };
        out.push(AssocRow {
            account: p[0].to_string(),
            grp_cpu_limit: opt_num(p[1]).map(|x| x as u32),
            grp_gpu_mins_limit: opt_num(p[2]),
            cpus_in_use: p[3].parse().map_err(|_| "bad cpus_in_use".to_string())?,
            cpus_queued: p[4].parse().map_err(|_| "bad cpus_queued".to_string())?,
            gpu_seconds_used: p[5].parse().map_err(|_| "bad gpu_seconds".to_string())?,
            users: if p[6] == "-" {
                Vec::new()
            } else {
                p[6].split(',').map(str::to_string).collect()
            },
        });
    }
    Ok(out)
}

// ---- shared helpers ---------------------------------------------------------

/// Split a multi-record dump into per-record chunks (records start with a
/// non-indented line).
fn split_records(text: &str) -> Vec<String> {
    let mut records: Vec<String> = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if !line.starts_with(' ') && !records.is_empty() {
            records.push(String::new());
        }
        if records.is_empty() {
            records.push(String::new());
        }
        let last = records.last_mut().expect("pushed above");
        last.push_str(line);
        last.push('\n');
    }
    records.retain(|r| !r.trim().is_empty());
    records
}

/// Tokenize `Key=Value` pairs across the record.
fn tokenize(text: &str) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for tok in text.split_whitespace() {
        if let Some((k, v)) = tok.split_once('=') {
            // First occurrence wins (JobId before ArrayJobId etc. are
            // distinct keys, so this only matters for malformed input).
            map.entry(k.to_string()).or_insert_with(|| v.to_string());
        }
    }
    map
}

/// scontrol values cannot contain whitespace.
fn token(v: &str) -> String {
    let t: String = v
        .chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect();
    if t.is_empty() {
        "(null)".to_string()
    } else {
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcdash_simtime::TimeLimit;
    use hpcdash_slurm::job::{ArrayMeta, JobRequest, UsageProfile};
    use hpcdash_slurm::tres::Tres;

    fn running_job() -> Job {
        let mut req = JobRequest::simple("alice", "physics", "cpu", 8);
        req.nodes = 2;
        req.gpus_per_node = 1;
        req.time_limit = TimeLimit::Limited(7_200);
        req.usage = UsageProfile::batch(3_600);
        req.comment = Some("ood:rstudio:sess9:/home/alice/ondemand".to_string());
        Job {
            id: JobId(55),
            array: Some(ArrayMeta {
                array_job_id: JobId(55),
                task_id: 3,
                max_concurrent: None,
            }),
            req,
            state: JobState::Running,
            reason: None,
            priority: 12_345,
            submit_time: Timestamp(100),
            eligible_time: Timestamp(100),
            start_time: Some(Timestamp(400)),
            end_time: None,
            nodes: vec!["a001".to_string(), "a002".to_string()],
            exit_code: None,
            stats: None,
            stdout_path: "/home/alice/slurm-55.out".to_string(),
            stderr_path: "/home/alice/slurm-55.err".to_string(),
        }
    }

    #[test]
    fn job_roundtrip() {
        let j = running_job();
        let text = render_job(&j, Timestamp(1_000));
        let p = parse_show_job(&text).unwrap();
        assert_eq!(p.job_id, JobId(55));
        assert_eq!(p.user, "alice");
        assert_eq!(p.state, JobState::Running);
        assert_eq!(p.reason, None);
        assert_eq!(p.priority, 12_345);
        assert_eq!(p.start_time, Some(Timestamp(400)));
        assert_eq!(p.end_time, None);
        assert_eq!(p.run_time_secs, 600);
        assert_eq!(p.num_cpus, 16);
        assert_eq!(p.num_nodes, 2);
        assert_eq!(p.nodelist.as_deref(), Some("a001,a002"));
        assert_eq!(p.gres.as_deref(), Some("gpu:1"));
        assert_eq!(p.array_job_id, Some(JobId(55)));
        assert_eq!(p.array_task_id, Some(3));
        assert!(p.comment.unwrap().starts_with("ood:rstudio"));
        assert_eq!(p.std_out, "/home/alice/slurm-55.out");
    }

    #[test]
    fn pending_job_with_reason_and_dependency() {
        let mut j = running_job();
        j.state = JobState::Pending;
        j.reason = Some(PendingReason::AssocGrpCpuLimit);
        j.req.dependency = Some(JobId(54));
        j.start_time = None;
        j.nodes = Vec::new();
        let p = parse_show_job(&render_job(&j, Timestamp(1_000))).unwrap();
        assert_eq!(p.reason, Some(PendingReason::AssocGrpCpuLimit));
        assert_eq!(p.dependency, Some(JobId(54)));
        assert_eq!(p.nodelist, None);
        assert_eq!(p.start_time, None);
    }

    #[test]
    fn node_roundtrip_single_and_multi() {
        let mut n1 = Node::new("g001", 64, 512_000, 4);
        n1.features = vec!["a100".to_string(), "nvlink".to_string()];
        n1.partitions = vec!["gpu".to_string()];
        n1.allocate(Tres::new(32, 200_000, 2, 1), Timestamp(500));
        n1.cpu_load = 30.72;
        let mut n2 = Node::new("a001", 128, 257_000, 0);
        n2.admin_flag = hpcdash_slurm::node::AdminFlag::Drain;
        n2.reason = Some("bad DIMM".to_string());

        let text = format!("{}\n{}", render_node(&n1), render_node(&n2));
        let parsed = parse_show_node(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        let p1 = &parsed[0];
        assert_eq!(p1.name, "g001");
        assert_eq!(p1.state, NodeState::Mixed);
        assert_eq!(p1.cpu_alloc, 32);
        assert_eq!(p1.cpu_total, 64);
        assert!((p1.cpu_load - 30.72).abs() < 1e-9);
        assert_eq!(p1.gres.as_deref(), Some("gpu:a100:4"));
        assert_eq!(p1.gres_used.as_deref(), Some("gpu:a100:2"));
        assert_eq!(p1.features, vec!["a100", "nvlink"]);
        assert_eq!(p1.partitions, vec!["gpu"]);
        let p2 = &parsed[1];
        assert_eq!(p2.state, NodeState::Drained);
        assert_eq!(p2.reason.as_deref(), Some("bad_DIMM"));
        assert_eq!(p2.alloc_memory_mb, 0);
    }

    #[test]
    fn node_fields_matches_rendered_tokens_exactly() {
        // `node_fields` must never drift from what `render_node` emits:
        // the structured Node Overview path serves it as the details tab
        // in place of the parsed text.
        let mut gpu = Node::new("g001", 64, 512_000, 4);
        gpu.features = vec!["a100".to_string(), "nvlink".to_string()];
        gpu.partitions = vec!["gpu".to_string()];
        gpu.allocate(Tres::new(32, 200_000, 2, 1), Timestamp(500));
        gpu.cpu_load = 30.72;
        let mut drained = Node::new("a001", 128, 257_000, 0);
        drained.admin_flag = hpcdash_slurm::node::AdminFlag::Drain;
        drained.reason = Some("bad DIMM".to_string());
        for n in [&gpu, &drained] {
            assert_eq!(tokenize(&render_node(n)), node_fields(n), "{}", n.name);
        }
    }

    #[test]
    fn assoc_roundtrip() {
        let text = "Account GrpTRESCpu GrpTRESMinsGpu CPUsInUse CPUsQueued GPUSecondsUsed Users\n\
                    physics 256 6000 32 16 7200 alice,bob\n\
                    bio N N 0 0 0 carol\n\
                    empty N N 0 0 0 -\n";
        let rows = parse_show_assoc(text).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].grp_cpu_limit, Some(256));
        assert_eq!(rows[0].users, vec!["alice", "bob"]);
        assert_eq!(rows[1].grp_cpu_limit, None);
        assert!(rows[2].users.is_empty());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_show_job("JobId=abc").is_err());
        assert!(parse_show_job("nothing useful").is_err());
        assert!(
            parse_show_node("NodeName=a001\n   State=IDLE\n").is_err(),
            "missing fields"
        );
        assert!(parse_show_assoc("hdr\nfoo bar\n").is_err());
    }

    #[test]
    fn split_records_handles_indentation() {
        let text = "A=1\n   B=2\nC=3\n   D=4\n";
        let recs = split_records(text);
        assert_eq!(recs.len(), 2);
        assert!(recs[0].contains("B=2"));
        assert!(recs[1].contains("C=3"));
    }
}
