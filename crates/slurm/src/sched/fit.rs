//! Node selection: which nodes can host a job right now (or ever).

use crate::job::JobRequest;
use crate::node::Node;
use crate::partition::Partition;
use std::collections::BTreeMap;

/// Pick nodes for `req` from `partition`, best-fit (least free CPUs first)
/// to keep large holes open for wide jobs. Returns the chosen node names or
/// `None` if the job cannot start right now.
pub fn select_nodes(
    nodes: &BTreeMap<String, Node>,
    partition: &Partition,
    req: &JobRequest,
) -> Option<Vec<String>> {
    let per_node = req.per_node_tres();
    let mut candidates: Vec<&Node> = partition
        .nodes
        .iter()
        .filter_map(|name| nodes.get(name))
        .filter(|n| n.can_fit(per_node) && has_features(n, &req.constraints))
        .collect();
    if (candidates.len() as u32) < req.nodes {
        return None;
    }
    candidates.sort_by_key(|n| (n.cpus.saturating_sub(n.alloc.cpus), n.name.clone()));
    Some(
        candidates
            .into_iter()
            .take(req.nodes as usize)
            .map(|n| n.name.clone())
            .collect(),
    )
}

/// Could the request ever be satisfied on an empty cluster? Used to
/// distinguish `BadConstraints` (never) from `Resources`/`Priority` (not
/// yet). Ignores current allocations and admin flags.
pub fn could_ever_fit(
    nodes: &BTreeMap<String, Node>,
    partition: &Partition,
    req: &JobRequest,
) -> bool {
    let per_node = req.per_node_tres();
    let matching = partition
        .nodes
        .iter()
        .filter_map(|name| nodes.get(name))
        .filter(|n| {
            per_node.cpus <= n.cpus
                && per_node.mem_mb <= n.real_memory_mb
                && per_node.gpus <= n.gpus
                && has_features(n, &req.constraints)
        })
        .count();
    matching as u32 >= req.nodes
}

fn has_features(node: &Node, constraints: &[String]) -> bool {
    constraints
        .iter()
        .all(|c| node.features.iter().any(|f| f == c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tres::Tres;
    use hpcdash_simtime::Timestamp;

    fn cluster() -> (BTreeMap<String, Node>, Partition) {
        let mut nodes = BTreeMap::new();
        for i in 1..=4 {
            let mut n = Node::new(format!("a{i:03}"), 16, 64_000, 0);
            n.features = vec!["avx2".to_string()];
            nodes.insert(n.name.clone(), n);
        }
        let part = Partition::new("cpu").with_nodes(nodes.keys().cloned().collect());
        (nodes, part)
    }

    fn req(nodes: u32, cpus: u32) -> JobRequest {
        let mut r = JobRequest::simple("alice", "physics", "cpu", cpus);
        r.nodes = nodes;
        r.mem_mb_per_node = 1_000;
        r
    }

    #[test]
    fn selects_requested_count() {
        let (nodes, part) = cluster();
        let chosen = select_nodes(&nodes, &part, &req(2, 8)).unwrap();
        assert_eq!(chosen.len(), 2);
    }

    #[test]
    fn best_fit_prefers_fuller_nodes() {
        let (mut nodes, part) = cluster();
        // a001 has 12 free CPUs, the rest have 16.
        nodes
            .get_mut("a001")
            .unwrap()
            .allocate(Tres::new(4, 1_000, 0, 1), Timestamp(0));
        let chosen = select_nodes(&nodes, &part, &req(1, 8)).unwrap();
        assert_eq!(
            chosen,
            vec!["a001".to_string()],
            "least-free node picked first"
        );
    }

    #[test]
    fn no_fit_when_busy() {
        let (mut nodes, part) = cluster();
        for n in nodes.values_mut() {
            n.allocate(Tres::new(16, 1_000, 0, 1), Timestamp(0));
        }
        assert!(select_nodes(&nodes, &part, &req(1, 1)).is_none());
        assert!(
            could_ever_fit(&nodes, &part, &req(1, 1)),
            "would fit on an empty cluster"
        );
    }

    #[test]
    fn constraints_filter_nodes() {
        let (nodes, part) = cluster();
        let mut r = req(1, 1);
        r.constraints = vec!["avx2".to_string()];
        assert!(select_nodes(&nodes, &part, &r).is_some());
        r.constraints = vec!["nvlink".to_string()];
        assert!(select_nodes(&nodes, &part, &r).is_none());
        assert!(!could_ever_fit(&nodes, &part, &r));
    }

    #[test]
    fn impossible_requests_never_fit() {
        let (nodes, part) = cluster();
        assert!(
            !could_ever_fit(&nodes, &part, &req(1, 17)),
            "more CPUs than any node"
        );
        assert!(
            !could_ever_fit(&nodes, &part, &req(5, 1)),
            "more nodes than the partition"
        );
        let mut r = req(1, 1);
        r.gpus_per_node = 1;
        assert!(!could_ever_fit(&nodes, &part, &r), "no GPUs in partition");
    }
}
