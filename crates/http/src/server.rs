//! The TCP accept loop + keep-alive connection handling.

use crate::request::{ParseError, Request};
use crate::response::Response;
use crate::router::Router;
use crate::threadpool::ThreadPool;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running HTTP server. Dropping it shuts the listener down.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port) and serve `router`
    /// on `workers` threads.
    pub fn bind(addr: &str, router: Arc<Router>, workers: usize) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = shutdown.clone();

        let accept_thread = std::thread::Builder::new()
            .name("http-accept".to_string())
            .spawn(move || {
                let mut pool = ThreadPool::new(workers);
                if let Some(reg) = router.registry() {
                    pool.set_queue_gauge(reg.gauge("hpcdash_http_worker_queue_depth", &[]));
                }
                loop {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let router = router.clone();
                            pool.execute(move || serve_connection(stream, &router));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => break,
                    }
                }
                // pool drops here, joining workers.
            })?;

        Ok(Server {
            addr: local,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `http://host:port`
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn serve_connection(stream: TcpStream, router: &Router) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_nodelay(true);
    let mut write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let req = match Request::read_from(&mut reader) {
            Ok(req) => req,
            Err(ParseError::Eof) => return,
            Err(ParseError::BodyTooLarge(_)) => {
                let _ = Response::error(413, "body too large").write_to(&mut write_half, false);
                return;
            }
            Err(ParseError::Malformed(_)) => {
                let _ = Response::bad_request("malformed request").write_to(&mut write_half, false);
                return;
            }
        };
        let keep_alive = req.keep_alive();
        let resp = {
            // The "http" hop: wire-level handling of one request on this
            // worker. The span closes *before* the response is written, so
            // by the time the client sees the body, the hop is already in
            // the sink (no race when the client inspects its trace).
            let _scope = req
                .header(crate::router::TRACE_HEADER)
                .and_then(hpcdash_obs::TraceId::from_hex)
                .map(hpcdash_obs::trace::TraceScope::enter);
            let _span = hpcdash_obs::Span::enter("http").attr("path", req.path.clone());
            router.handle(&req)
        };
        if resp.write_to(&mut write_half, keep_alive).is_err() {
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::request::Method;
    use serde_json::json;

    fn test_server() -> Server {
        let mut router = Router::new();
        router.get("/ping", |_| Response::text("pong"));
        router.get("/echo/:word", |req| {
            Response::json(&json!({"word": req.param("word").unwrap()}))
        });
        router.get("/whoami", |req| {
            Response::json(&json!({"user": req.remote_user().unwrap_or("anonymous")}))
        });
        router.post("/submit", |req| {
            Response::json(&json!({"received": req.body.len()}))
        });
        router.get("/boom", |_| panic!("kaboom"));
        Server::bind("127.0.0.1:0", Arc::new(router), 4).unwrap()
    }

    #[test]
    fn end_to_end_get() {
        let server = test_server();
        let client = HttpClient::new();
        let resp = client
            .get(&format!("{}/ping", server.base_url()), &[])
            .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body_string(), "pong");
    }

    #[test]
    fn params_and_headers_flow_through() {
        let server = test_server();
        let client = HttpClient::new();
        let resp = client
            .get(&format!("{}/echo/hello", server.base_url()), &[])
            .unwrap();
        assert_eq!(resp.json().unwrap()["word"], "hello");
        let resp = client
            .get(
                &format!("{}/whoami", server.base_url()),
                &[("X-Remote-User", "alice")],
            )
            .unwrap();
        assert_eq!(resp.json().unwrap()["user"], "alice");
    }

    #[test]
    fn post_body() {
        let server = test_server();
        let client = HttpClient::new();
        let resp = client
            .post(
                &format!("{}/submit", server.base_url()),
                &[],
                b"0123456789".to_vec(),
            )
            .unwrap();
        assert_eq!(resp.json().unwrap()["received"], 10);
    }

    #[test]
    fn not_found_and_panics_over_the_wire() {
        let server = test_server();
        let client = HttpClient::new();
        let resp = client
            .get(&format!("{}/nope", server.base_url()), &[])
            .unwrap();
        assert_eq!(resp.status, 404);
        let resp = client
            .get(&format!("{}/boom", server.base_url()), &[])
            .unwrap();
        assert_eq!(resp.status, 500);
        // Server survives the panic.
        let resp = client
            .get(&format!("{}/ping", server.base_url()), &[])
            .unwrap();
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn many_concurrent_clients() {
        let server = test_server();
        let base = server.base_url();
        let mut handles = Vec::new();
        for i in 0..8 {
            let base = base.clone();
            handles.push(std::thread::spawn(move || {
                let client = HttpClient::new();
                for j in 0..20 {
                    let resp = client.get(&format!("{base}/echo/t{i}x{j}"), &[]).unwrap();
                    assert_eq!(resp.json().unwrap()["word"], format!("t{i}x{j}"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn in_process_dispatch_matches_wire() {
        // Routers can also be exercised without sockets (used heavily by
        // benches to separate routing cost from network cost).
        let mut router = Router::new();
        router.get("/x", |_| Response::text("y"));
        let resp = router.handle(&Request::new(Method::Get, "/x"));
        assert_eq!(resp.body_string(), "y");
    }
}
