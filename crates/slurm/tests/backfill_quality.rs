//! Backfill quality: EASY backfill must use idle capacity behind a blocked
//! wide job *without delaying it* — the property that keeps both throughput
//! and fairness stories in the dashboard honest.

use hpcdash_simtime::{TimeLimit, Timestamp};
use hpcdash_slurm::assoc::{Account, AssocStore};
use hpcdash_slurm::cluster::{ClusterSpec, ClusterState};
use hpcdash_slurm::job::{JobId, JobRequest, JobState, PendingReason, UsageProfile};
use hpcdash_slurm::node::Node;
use hpcdash_slurm::partition::Partition;
use hpcdash_slurm::qos::Qos;

fn cluster(nodes: usize, cores: u32) -> ClusterState {
    let mut assoc = AssocStore::new();
    assoc.add_account(Account::new("lab"));
    assoc.add_user("lab", "alice");
    let node_list: Vec<Node> = (1..=nodes)
        .map(|i| Node::new(format!("n{i:02}"), cores, 128_000, 0))
        .collect();
    let names: Vec<String> = node_list.iter().map(|n| n.name.clone()).collect();
    ClusterState::new(ClusterSpec {
        name: "bf".to_string(),
        nodes: node_list,
        partitions: vec![Partition::new("cpu").with_nodes(names).default_partition()],
        qos: Qos::standard_set(),
        assoc,
    })
}

fn job(cpus: u32, nodes: u32, limit: u64, runtime: u64) -> JobRequest {
    let mut r = JobRequest::simple("alice", "lab", "cpu", cpus);
    r.nodes = nodes;
    r.mem_mb_per_node = 1_000;
    r.time_limit = TimeLimit::Limited(limit);
    r.usage = UsageProfile::batch(runtime);
    r
}

#[test]
fn short_jobs_backfill_without_delaying_the_wide_job() {
    let mut c = cluster(2, 16);

    // t=0: a long job occupies node 1 until its limit at t=1000.
    let long = c.submit(job(16, 1, 1_000, 1_000), Timestamp(0)).unwrap()[0];
    c.tick(Timestamp(0));
    assert_eq!(c.job(long).unwrap().state, JobState::Running);

    // t=1: a wide job needs both nodes -> blocked until t=1000 (shadow).
    let wide = c.submit(job(16, 2, 2_000, 500), Timestamp(1)).unwrap()[0];
    // t=2..: a stream of short jobs (limit 300 <= shadow) that fit node 2.
    let mut shorts = Vec::new();
    for _ in 0..3 {
        shorts.push(c.submit(job(8, 1, 300, 250), Timestamp(2)).unwrap()[0]);
    }
    c.tick(Timestamp(2));

    let wide_job = c.job(wide).unwrap();
    assert_eq!(wide_job.state, JobState::Pending);
    assert_eq!(
        wide_job.reason,
        Some(PendingReason::Resources),
        "wide job is the blocker"
    );

    // Two shorts (2x8 cpus) backfill node 2 immediately; the third waits.
    let running: Vec<JobId> = shorts
        .iter()
        .copied()
        .filter(|id| c.job(*id).map(|j| j.state) == Some(JobState::Running))
        .collect();
    assert_eq!(
        running.len(),
        2,
        "16 idle cpus take two 8-cpu backfill jobs"
    );

    // Shorts finish at ~252; the third then backfills too (ends 502 < 1000).
    c.tick(Timestamp(260));
    let third_state = shorts
        .iter()
        .map(|id| c.job(*id).map(|j| j.state))
        .filter(|s| *s == Some(JobState::Running))
        .count();
    assert_eq!(
        third_state, 1,
        "remaining short job backfilled after the first wave"
    );

    // The long job ends at t=1000; the wide job must start on the very next
    // pass — the backfilled work never pushed its start time back.
    c.tick(Timestamp(1_001));
    let wide_job = c.job(wide).unwrap();
    assert_eq!(
        wide_job.state,
        JobState::Running,
        "wide job started at its shadow time"
    );
    assert!(wide_job.start_time.unwrap() <= Timestamp(1_001));
}

#[test]
fn long_backfill_candidates_are_rejected() {
    let mut c = cluster(2, 16);
    let long = c.submit(job(16, 1, 1_000, 1_000), Timestamp(0)).unwrap()[0];
    c.tick(Timestamp(0));
    let wide = c.submit(job(16, 2, 2_000, 500), Timestamp(1)).unwrap()[0];
    // This candidate would outlive the shadow (limit 5000 > 1000) and needs
    // the reserved node -> it must NOT start.
    let greedy = c.submit(job(16, 1, 5_000, 4_000), Timestamp(1)).unwrap()[0];
    c.tick(Timestamp(2));

    assert_eq!(c.job(long).unwrap().state, JobState::Running);
    assert_eq!(c.job(wide).unwrap().reason, Some(PendingReason::Resources));
    let greedy_job = c.job(greedy).unwrap();
    assert_eq!(greedy_job.state, JobState::Pending);
    assert_eq!(
        greedy_job.reason,
        Some(PendingReason::Priority),
        "a would-delay-the-blocker candidate waits behind it"
    );
}

#[test]
fn utilization_with_backfill_beats_strict_fifo_shape() {
    // Qualitative throughput check: with a blocked wide job at the head,
    // the cluster still completes short work (i.e. backfill raised
    // utilization above zero on the free node).
    let mut c = cluster(2, 16);
    c.submit(job(16, 1, 2_000, 2_000), Timestamp(0)).unwrap();
    c.tick(Timestamp(0));
    c.submit(job(16, 2, 2_000, 500), Timestamp(1)).unwrap(); // blocker
    for _ in 0..6 {
        c.submit(job(8, 1, 250, 200), Timestamp(1)).unwrap();
    }
    // Walk 30 minutes in scheduler passes.
    for t in (10..=1_800).step_by(10) {
        c.tick(Timestamp(t));
    }
    let completed = c
        .drain_finished()
        .iter()
        .filter(|f| f.job.state == JobState::Completed)
        .count();
    assert!(
        completed >= 6,
        "all six short jobs should have backfilled and completed, got {completed}"
    );
}
