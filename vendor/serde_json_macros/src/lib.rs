//! The `json!` macro for the vendored serde_json, as a function-like proc
//! macro (macro_rules `tt`-munching cannot capture the arbitrary Rust
//! expressions that appear as object values, e.g. method chains).

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

#[proc_macro]
pub fn json(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let code = gen_value(&tokens);
    code.parse().expect("json!: generated invalid expression")
}

/// Generate a Rust expression of type `::serde_json::Value` from the tokens
/// of one JSON-ish value.
fn gen_value(tokens: &[TokenTree]) -> String {
    if tokens.is_empty() {
        panic!("json!: empty value");
    }
    if tokens.len() == 1 {
        match &tokens[0] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                return gen_object(&inner);
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                return gen_array(&inner);
            }
            TokenTree::Ident(id) if id.to_string() == "null" => {
                return "::serde_json::Value::Null".to_string();
            }
            _ => {}
        }
    }
    // Anything else is a Rust expression; serialize it.
    format!("::serde_json::value_of(&({}))", render(tokens))
}

fn gen_object(tokens: &[TokenTree]) -> String {
    let mut out = String::from("{\nlet mut m = ::serde_json::Map::new();\n");
    for entry in split_top_level_commas(tokens) {
        if entry.is_empty() {
            continue; // trailing comma
        }
        let colon = find_top_level_colon(&entry)
            .unwrap_or_else(|| panic!("json!: object entry missing `:` — `{}`", render(&entry)));
        let (key_tokens, rest) = entry.split_at(colon);
        let value_tokens = &rest[1..];
        if key_tokens.is_empty() || value_tokens.is_empty() {
            panic!("json!: malformed object entry `{}`", render(&entry));
        }
        let key_expr = gen_key(key_tokens);
        let value_expr = gen_value(value_tokens);
        out.push_str(&format!("m.insert({key_expr}, {value_expr});\n"));
    }
    out.push_str("::serde_json::Value::Object(m)\n}");
    out
}

fn gen_array(tokens: &[TokenTree]) -> String {
    let mut items = Vec::new();
    for entry in split_top_level_commas(tokens) {
        if entry.is_empty() {
            continue;
        }
        items.push(gen_value(&entry));
    }
    format!("::serde_json::Value::Array(vec![{}])", items.join(", "))
}

fn gen_key(tokens: &[TokenTree]) -> String {
    // A lone string literal keys directly; anything else is an expression
    // converted with `.to_string()` (serde_json allows expression keys too).
    if tokens.len() == 1 {
        if let TokenTree::Literal(lit) = &tokens[0] {
            let s = lit.to_string();
            if s.starts_with('"') {
                return format!("{s}.to_string()");
            }
        }
    }
    format!("({}).to_string()", render(tokens))
}

/// Split on commas at depth 0. Only group nesting matters: commas inside
/// `(..)`, `[..]`, `{..}` are inside separate `TokenTree::Group`s already.
/// Angle brackets in expressions (turbofish) always appear inside paths
/// where the comma sits within a group or between `<` `>` puncts — for the
/// expression subset used with json! (call chains, literals, turbofish via
/// `::<>`), generic commas like `collect::<Vec<(String, u64)>>()` live
/// inside parens/angle runs; track angle depth defensively anyway.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = (angle_depth - 1).max(0),
                ',' if angle_depth == 0 => {
                    parts.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    parts.push(current);
    parts
}

/// Find the `:` separating key from value. `::` path separators lex as a
/// Joint ':' followed by another ':', so skip those pairs.
fn find_top_level_colon(tokens: &[TokenTree]) -> Option<usize> {
    let mut i = 0usize;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            if p.as_char() == ':' {
                if p.spacing() == Spacing::Joint {
                    if let Some(TokenTree::Punct(q)) = tokens.get(i + 1) {
                        if q.as_char() == ':' {
                            i += 2;
                            continue;
                        }
                    }
                }
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

fn render(tokens: &[TokenTree]) -> String {
    let stream: TokenStream = tokens.iter().cloned().collect();
    stream.to_string()
}
