//! Accounts widget API (paper §3.4): the user's allocations with CPU/GPU
//! usage against limits, plus the per-user breakdown export (CSV / Excel).

use crate::auth::CurrentUser;
use crate::colors::utilization_color;
use crate::ctx::DashboardContext;
use hpcdash_http::{Request, Response, Router};
use hpcdash_slurmcli::scontrol::parse_show_assoc;
use hpcdash_slurmcli::show_assoc;
use serde_json::json;

pub const FEATURE: &str = "Accounts widget";
pub const ROUTES: &[&str] = &["/api/accounts", "/api/accounts/:account/export"];
pub const SOURCES: &[&str] = &["scontrol show assoc (slurmctld)"];

pub fn register(router: &mut Router, ctx: DashboardContext) {
    let ctx2 = ctx.clone();
    router.get(ROUTES[0], move |req| handle(&ctx, req));
    router.get(ROUTES[1], move |req| handle_export(&ctx2, req));
}

fn handle(ctx: &DashboardContext, req: &Request) -> Response {
    let user = match CurrentUser::from_request(ctx, req) {
        Ok(u) => u,
        Err(resp) => return resp,
    };
    let key = format!("accounts:{}", user.username);
    let guide = ctx.cfg.user_guide_url.clone();
    let outcome = ctx.cached_resilient(&key, ctx.cfg.cache.accounts, || {
        ctx.note_source(FEATURE, "scontrol show assoc (slurmctld)");
        let text = show_assoc(&ctx.ctld, Some(&user.username))?;
        let rows = parse_show_assoc(&text).map_err(|e| format!("assoc parse: {e}"))?;
        Ok(json!({
            "accounts": rows
                .iter()
                .map(|r| {
                    let cpu_frac = match r.grp_cpu_limit {
                        Some(cap) if cap > 0 => r.cpus_in_use as f64 / cap as f64,
                        _ => 0.0,
                    };
                    let gpu_hours_used = r.gpu_seconds_used as f64 / 3_600.0;
                    let gpu_hours_limit = r.grp_gpu_mins_limit.map(|m| m as f64 / 60.0);
                    let gpu_frac = match gpu_hours_limit {
                        Some(cap) if cap > 0.0 => gpu_hours_used / cap,
                        _ => 0.0,
                    };
                    json!({
                        "name": r.account,
                        "cpus_in_use": r.cpus_in_use,
                        "cpus_queued": r.cpus_queued,
                        "cpu_limit": r.grp_cpu_limit,
                        "cpu_percent": (cpu_frac * 1000.0).round() / 10.0,
                        "cpu_color": utilization_color(cpu_frac),
                        "gpu_hours_used": (gpu_hours_used * 100.0).round() / 100.0,
                        "gpu_hours_limit": gpu_hours_limit,
                        "gpu_color": utilization_color(gpu_frac),
                        "member_count": r.users.len(),
                        "export_url": format!("/api/accounts/{}/export", r.account),
                    })
                })
                .collect::<Vec<_>>(),
            "user_guide_url": guide,
        }))
    });
    super::respond(outcome)
}

/// Per-user usage breakdown for one account, exported as CSV (or an
/// Excel-compatible CSV with a UTF-8 BOM when `format=excel`).
fn handle_export(ctx: &DashboardContext, req: &Request) -> Response {
    let user = match CurrentUser::from_request(ctx, req) {
        Ok(u) => u,
        Err(resp) => return resp,
    };
    let Some(account) = req.param("account") else {
        return Response::bad_request("missing account");
    };
    // Privacy: only members (or admins) may export the group breakdown.
    if !user.is_admin && !user.visible_accounts(ctx).iter().any(|a| a == account) {
        return Response::forbidden("not a member of this account");
    }
    ctx.note_source(FEATURE, "scontrol show assoc (slurmctld)");
    let records = ctx.ctld.query_assoc(None);
    let Some(record) = records.iter().find(|r| r.account.name == account) else {
        return Response::not_found("unknown account");
    };

    let mut csv = String::from("user,jobs_run,cpu_hours,gpu_hours\n");
    for (member, usage) in &record.usage.by_user {
        csv.push_str(&format!(
            "{},{},{:.2},{:.2}\n",
            member,
            usage.jobs_run,
            usage.cpu_seconds as f64 / 3_600.0,
            usage.gpu_seconds as f64 / 3_600.0,
        ));
    }
    let excel = req.query_param("format") == Some("excel");
    let (filename, body) = if excel {
        (format!("{account}-usage.xls.csv"), format!("\u{feff}{csv}"))
    } else {
        (format!("{account}-usage.csv"), csv)
    };
    Response::csv(&filename, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::tests::test_ctx;
    use hpcdash_http::Method;
    use hpcdash_slurm::job::{JobRequest, UsageProfile};

    fn request(path: &str, user: &str) -> Request {
        Request::new(Method::Get, path).with_header("X-Remote-User", user)
    }

    #[test]
    fn lists_my_allocations_with_usage() {
        let ctx = test_ctx();
        let mut r = JobRequest::simple("alice", "physics", "cpu", 8);
        r.usage = UsageProfile::batch(60);
        ctx.ctld.submit(r).unwrap();
        ctx.ctld.tick();
        let resp = handle(&ctx, &request("/api/accounts", "alice"));
        assert_eq!(resp.status, 200);
        let accounts = resp.body_json().unwrap()["accounts"]
            .as_array()
            .unwrap()
            .to_vec();
        assert_eq!(accounts.len(), 1);
        assert_eq!(accounts[0]["name"], "physics");
        assert_eq!(accounts[0]["cpus_in_use"], 8);
        assert_eq!(accounts[0]["member_count"], 1);
        assert!(accounts[0]["export_url"]
            .as_str()
            .unwrap()
            .contains("/physics/"));
    }

    #[test]
    fn strangers_see_no_accounts() {
        let ctx = test_ctx();
        let resp = handle(&ctx, &request("/api/accounts", "mallory"));
        assert_eq!(
            resp.body_json().unwrap()["accounts"]
                .as_array()
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn export_requires_membership() {
        let ctx = test_ctx();
        let mut req = request("/api/accounts/physics/export", "mallory");
        req.params
            .insert("account".to_string(), "physics".to_string());
        assert_eq!(handle_export(&ctx, &req).status, 403);
        let mut req = request("/api/accounts/physics/export", "alice");
        req.params
            .insert("account".to_string(), "physics".to_string());
        let resp = handle_export(&ctx, &req);
        assert_eq!(resp.status, 200);
        assert!(resp.body_string().starts_with("user,jobs_run"));
        assert!(resp
            .header("content-disposition")
            .unwrap()
            .contains("physics-usage.csv"));
    }

    #[test]
    fn export_contains_per_user_rows_and_excel_bom() {
        let ctx = test_ctx();
        // Run a job to completion so usage accrues.
        let mut r = JobRequest::simple("alice", "physics", "cpu", 4);
        r.usage = UsageProfile::batch(1);
        ctx.ctld.submit(r).unwrap();
        ctx.ctld.tick();
        // Job runs for 1 planned second; force completion by advancing via
        // another tick after the run plan elapses (SimClock in test_ctx is
        // frozen, so cancel instead to register usage).
        let jobs = ctx.ctld.query_jobs(&hpcdash_slurm::ctld::JobQuery::all());
        ctx.ctld.cancel(jobs[0].id, "alice").unwrap();
        let mut req = request("/api/accounts/physics/export?format=excel", "alice");
        req.params
            .insert("account".to_string(), "physics".to_string());
        let resp = handle_export(&ctx, &req);
        let body = resp.body_string();
        assert!(body.starts_with('\u{feff}'), "excel format carries a BOM");
        assert!(
            body.contains("alice,1,"),
            "alice's completed job shows up: {body}"
        );
    }

    #[test]
    fn export_unknown_account_404s() {
        let ctx = test_ctx();
        let mut req = request("/api/accounts/nope/export", "root");
        req.params.insert("account".to_string(), "nope".to_string());
        // root is not admin in generic config; make the request as a member-less user.
        assert!(matches!(handle_export(&ctx, &req).status, 403 | 404));
    }
}
