//! Per-source health: rolls recent success/error outcomes into an
//! up / degraded / down verdict, served by `core` at `/api/health`.
//!
//! Each data source (slurmctld, slurmdbd, cache, …) reports every operation
//! outcome to a [`HealthBoard`]. The verdict looks only at a bounded window
//! of the most recent outcomes, so a source that errored during startup but
//! has been clean since reads as `up` again — and a currently broken source
//! reads as `down` no matter how good its lifetime ratio is.

use parking_lot::Mutex;
use serde_json::{json, Value};
use std::collections::{BTreeMap, VecDeque};

/// Outcomes remembered per source when judging recent health.
pub const WINDOW: usize = 64;

/// Window error-rate at or above which a source is `Down`.
pub const DOWN_THRESHOLD: f64 = 0.5;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthStatus {
    Up,
    Degraded,
    Down,
}

impl HealthStatus {
    pub fn as_str(self) -> &'static str {
        match self {
            HealthStatus::Up => "up",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Down => "down",
        }
    }
}

impl std::fmt::Display for HealthStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[derive(Debug, Default)]
struct SourceState {
    recent: VecDeque<bool>, // true = ok
    total_ok: u64,
    total_err: u64,
}

impl SourceState {
    fn push(&mut self, ok: bool) {
        if self.recent.len() == WINDOW {
            self.recent.pop_front();
        }
        self.recent.push_back(ok);
        if ok {
            self.total_ok += 1;
        } else {
            self.total_err += 1;
        }
    }

    fn window_err(&self) -> usize {
        self.recent.iter().filter(|ok| !**ok).count()
    }

    fn status(&self) -> HealthStatus {
        if self.recent.is_empty() {
            return HealthStatus::Up; // no data yet — assume healthy
        }
        let err = self.window_err();
        let rate = err as f64 / self.recent.len() as f64;
        let last_three_failed =
            self.recent.len() >= 3 && self.recent.iter().rev().take(3).all(|ok| !*ok);
        if rate >= DOWN_THRESHOLD || last_three_failed {
            HealthStatus::Down
        } else if err > 0 {
            HealthStatus::Degraded
        } else {
            HealthStatus::Up
        }
    }
}

/// Thread-safe per-source outcome tracker.
#[derive(Debug, Default)]
pub struct HealthBoard {
    sources: Mutex<BTreeMap<String, SourceState>>,
}

impl HealthBoard {
    pub fn new() -> HealthBoard {
        HealthBoard::default()
    }

    /// Ensure `source` appears in reports even before its first operation.
    pub fn declare(&self, source: &str) {
        self.sources.lock().entry(source.to_string()).or_default();
    }

    pub fn record_ok(&self, source: &str) {
        self.sources
            .lock()
            .entry(source.to_string())
            .or_default()
            .push(true);
    }

    pub fn record_error(&self, source: &str) {
        self.sources
            .lock()
            .entry(source.to_string())
            .or_default()
            .push(false);
    }

    pub fn status_of(&self, source: &str) -> HealthStatus {
        self.sources
            .lock()
            .get(source)
            .map(|s| s.status())
            .unwrap_or(HealthStatus::Up)
    }

    /// Snapshot every source; overall verdict is the worst source.
    pub fn report(&self) -> HealthReport {
        let sources = self.sources.lock();
        let entries: Vec<SourceReport> = sources
            .iter()
            .map(|(name, s)| SourceReport {
                name: name.clone(),
                status: s.status(),
                window_size: s.recent.len(),
                window_errors: s.window_err(),
                total_ok: s.total_ok,
                total_err: s.total_err,
            })
            .collect();
        let overall = entries
            .iter()
            .map(|e| e.status)
            .max()
            .unwrap_or(HealthStatus::Up);
        HealthReport {
            overall,
            sources: entries,
        }
    }
}

#[derive(Debug, Clone)]
pub struct SourceReport {
    pub name: String,
    pub status: HealthStatus,
    pub window_size: usize,
    pub window_errors: usize,
    pub total_ok: u64,
    pub total_err: u64,
}

#[derive(Debug, Clone)]
pub struct HealthReport {
    pub overall: HealthStatus,
    pub sources: Vec<SourceReport>,
}

impl HealthReport {
    /// The `/api/health` response body. Source keys come out sorted.
    pub fn to_json(&self) -> Value {
        let sources: Value = self
            .sources
            .iter()
            .map(|s| {
                (
                    s.name.clone(),
                    json!({
                        "status": s.status.as_str(),
                        "window_size": s.window_size,
                        "window_errors": s.window_errors,
                        "total_ok": s.total_ok,
                        "total_err": s.total_err,
                    }),
                )
            })
            .collect();
        json!({
            "status": self.overall.as_str(),
            "sources": sources,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_board_is_up() {
        let b = HealthBoard::new();
        assert_eq!(b.report().overall, HealthStatus::Up);
        assert_eq!(b.status_of("nonexistent"), HealthStatus::Up);
        b.declare("ctld");
        let r = b.report();
        assert_eq!(r.sources.len(), 1);
        assert_eq!(r.sources[0].status, HealthStatus::Up);
    }

    #[test]
    fn occasional_errors_degrade() {
        let b = HealthBoard::new();
        for i in 0..20 {
            if i == 7 {
                b.record_error("dbd");
            } else {
                b.record_ok("dbd");
            }
        }
        assert_eq!(b.status_of("dbd"), HealthStatus::Degraded);
    }

    #[test]
    fn consecutive_failures_mean_down() {
        let b = HealthBoard::new();
        for _ in 0..20 {
            b.record_ok("ctld");
        }
        for _ in 0..3 {
            b.record_error("ctld");
        }
        assert_eq!(b.status_of("ctld"), HealthStatus::Down);
    }

    #[test]
    fn recovery_slides_errors_out_of_window() {
        let b = HealthBoard::new();
        for _ in 0..10 {
            b.record_error("cache");
        }
        assert_eq!(b.status_of("cache"), HealthStatus::Down);
        for _ in 0..WINDOW {
            b.record_ok("cache");
        }
        assert_eq!(
            b.status_of("cache"),
            HealthStatus::Up,
            "old errors aged out"
        );
    }

    #[test]
    fn overall_is_worst_source() {
        let b = HealthBoard::new();
        b.record_ok("ctld");
        b.record_error("dbd");
        b.record_ok("dbd");
        b.record_ok("dbd");
        b.record_ok("dbd");
        let r = b.report();
        assert_eq!(r.overall, HealthStatus::Degraded);
        let v = r.to_json();
        assert_eq!(v["status"], "degraded");
        assert_eq!(v["sources"]["ctld"]["status"], "up");
        assert_eq!(v["sources"]["dbd"]["status"], "degraded");
        assert_eq!(v["sources"]["dbd"]["total_err"], 1u64);
    }
}
