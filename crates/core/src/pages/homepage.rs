//! The dashboard homepage (paper §3, Figure 2): five widgets at a glance.

use crate::pages::layout::{shell, widget_placeholder};
use crate::widgets;
use serde_json::Value;

/// The widget slots in display order, each paired with its API route —
/// the mapping the client uses to fill the page.
pub const WIDGETS: [(&str, &str); 5] = [
    ("announcements", "/api/announcements"),
    ("recent_jobs", "/api/recent_jobs"),
    ("system_status", "/api/system_status"),
    ("accounts", "/api/accounts"),
    ("storage", "/api/storage"),
];

/// The instantly served shell: placeholders only, no Slurm queries.
pub fn render_shell(cluster: &str, user: &str) -> String {
    let mut body = String::from("<div class=\"widget-grid\">");
    for (id, api) in WIDGETS {
        body.push_str(&widget_placeholder(id, api));
    }
    body.push_str("</div>");
    shell("Home", "homepage", cluster, user, &body)
}

/// The fully rendered homepage given each widget's API payload (or error).
/// A failed widget renders its error card; the rest are unaffected —
/// the modularity property (paper §2.4).
pub fn render_full(
    cluster: &str,
    user: &str,
    payloads: &[(&str, Result<Value, String>)],
) -> String {
    let mut body = String::from("<div class=\"widget-grid\">");
    for (id, payload) in payloads {
        let html = match payload {
            Ok(value) => {
                let rendered = match *id {
                    "announcements" => widgets::announcements::render(value),
                    "recent_jobs" => widgets::recent_jobs::render(value),
                    "system_status" => widgets::system_status::render(value),
                    "accounts" => widgets::accounts::render(value),
                    "storage" => widgets::storage::render(value),
                    other => widgets::error_card(other, "unknown widget"),
                };
                // Server-annotated stale payloads get their accessible
                // "showing data from N ago" notice.
                widgets::with_degradation(rendered, value)
            }
            Err(e) => widgets::error_card(id, e),
        };
        body.push_str(&html);
    }
    body.push_str("</div>");
    shell("Home", "homepage", cluster, user, &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn shell_has_all_five_placeholders() {
        let html = render_shell("Anvil", "alice");
        for (id, api) in WIDGETS {
            assert!(html.contains(&format!("data-widget=\"{id}\"")));
            assert!(html.contains(&format!("data-api=\"{api}\"")));
        }
        assert!(!html.contains("squeue"), "shell carries no backend data");
    }

    #[test]
    fn full_render_mixes_widgets_and_error_cards() {
        let payloads = vec![
            ("announcements", Ok(json!({"items": []}))),
            ("recent_jobs", Ok(json!({"jobs": []}))),
            ("system_status", Err("sinfo timed out".to_string())),
            ("accounts", Ok(json!({"accounts": []}))),
            ("storage", Ok(json!({"disks": []}))),
        ];
        let html = render_full("Anvil", "alice", &payloads);
        assert!(
            html.contains("widget-error"),
            "failed widget shows an error card"
        );
        assert!(html.contains("sinfo timed out"));
        assert!(
            html.contains("data-widget=\"storage\""),
            "other widgets still render"
        );
        assert!(html.contains("No running or queued jobs"));
    }
}
