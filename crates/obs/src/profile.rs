//! Tick-phase profiling: cheap per-phase wall-time accounting inside the
//! simulated daemons (sched pass, snapshot publish, dbd sync, TSDB
//! ingest).
//!
//! Each daemon owns a [`PhaseProfiler`]; hot loops wrap their phases in
//! [`PhaseProfiler::time`] and the aggregates surface both as pull-time
//! metrics (`hpcdash_tick_phase_ns_total{daemon,phase}`) and — via the
//! telemetry self-scrape — as range-queryable TSDB series. Phases run
//! single-threaded under the daemon lock, so wall time is CPU time for
//! every phase that matters here.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Aggregate for one named phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseAgg {
    /// Times the phase ran.
    pub count: u64,
    /// Total wall time across runs, in nanoseconds.
    pub total_ns: u64,
    /// Slowest single run, in nanoseconds.
    pub max_ns: u64,
}

impl PhaseAgg {
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Accumulates per-phase wall time. Phase names are static so record sites
/// stay allocation-free.
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    phases: Mutex<BTreeMap<&'static str, PhaseAgg>>,
}

impl PhaseProfiler {
    pub fn new() -> PhaseProfiler {
        PhaseProfiler::default()
    }

    pub fn record(&self, phase: &'static str, dur: Duration) {
        let ns = dur.as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut phases = self.phases.lock();
        let agg = phases.entry(phase).or_default();
        agg.count += 1;
        agg.total_ns += ns;
        agg.max_ns = agg.max_ns.max(ns);
    }

    /// Run `f`, attributing its wall time to `phase`.
    pub fn time<T>(&self, phase: &'static str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.record(phase, t0.elapsed());
        out
    }

    /// All phases and their aggregates, sorted by phase name.
    pub fn snapshot(&self) -> Vec<(&'static str, PhaseAgg)> {
        self.phases.lock().iter().map(|(k, v)| (*k, *v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_aggregates_by_phase() {
        let p = PhaseProfiler::new();
        p.record("sched_pass", Duration::from_micros(100));
        p.record("sched_pass", Duration::from_micros(300));
        p.record("publish", Duration::from_micros(50));
        let snap = p.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["publish", "sched_pass"], "sorted by name");
        let sched = snap.iter().find(|(n, _)| *n == "sched_pass").unwrap().1;
        assert_eq!(sched.count, 2);
        assert_eq!(sched.total_ns, 400_000);
        assert_eq!(sched.max_ns, 300_000);
        assert_eq!(sched.mean_ns(), 200_000);
    }

    #[test]
    fn time_wraps_a_closure() {
        let p = PhaseProfiler::new();
        let v = p.time("work", || {
            std::thread::sleep(Duration::from_micros(200));
            41 + 1
        });
        assert_eq!(v, 42);
        let agg = p.snapshot()[0].1;
        assert_eq!(agg.count, 1);
        assert!(agg.total_ns >= 200_000, "measured the sleep");
    }
}
