//! Chart data preparation (paper §4.2): the job-state distribution and
//! GPU-hour distribution charts, emitted in the shape Chart.js consumes
//! (`labels` + `datasets`), grouped by user.

use hpcdash_slurm::job::JobState;
use hpcdash_slurmcli::SacctRecord;
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// Stacked-bar data: per-user job counts split by state.
pub fn job_state_distribution(records: &[SacctRecord]) -> Value {
    let mut users: Vec<String> = records.iter().map(|r| r.user.clone()).collect();
    users.sort();
    users.dedup();

    let mut counts: BTreeMap<(JobState, &str), usize> = BTreeMap::new();
    for r in records {
        *counts.entry((r.state, r.user.as_str())).or_insert(0) += 1;
    }

    let mut datasets = Vec::new();
    for state in JobState::ALL {
        let data: Vec<usize> = users
            .iter()
            .map(|u| counts.get(&(state, u.as_str())).copied().unwrap_or(0))
            .collect();
        if data.iter().any(|c| *c > 0) {
            datasets.push(json!({
                "label": state.to_slurm(),
                "color": crate::colors::job_state_color(state),
                "data": data,
            }));
        }
    }

    json!({
        "type": "stacked-bar",
        "labels": users,
        "datasets": datasets,
    })
}

/// Bar data: GPU hours per user.
pub fn gpu_hours_distribution(records: &[SacctRecord]) -> Value {
    let mut by_user: BTreeMap<String, f64> = BTreeMap::new();
    for r in records {
        *by_user.entry(r.user.clone()).or_insert(0.0) += r.gpu_hours();
    }
    let labels: Vec<&String> = by_user.keys().collect();
    let data: Vec<f64> = by_user
        .values()
        .map(|h| (h * 100.0).round() / 100.0)
        .collect();
    json!({
        "type": "bar",
        "labels": labels,
        "datasets": [{"label": "GPU hours", "data": data}],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::tests::rec;

    #[test]
    fn state_distribution_groups_by_user() {
        let recs = vec![
            rec(1, "alice", JobState::Completed, 0, Some(0), Some(100), 1, 0),
            rec(2, "alice", JobState::Completed, 0, Some(0), Some(100), 1, 0),
            rec(3, "alice", JobState::Failed, 0, Some(0), Some(100), 1, 0),
            rec(4, "bob", JobState::Pending, 0, None, None, 1, 0),
        ];
        let chart = job_state_distribution(&recs);
        assert_eq!(chart["labels"], json!(["alice", "bob"]));
        let datasets = chart["datasets"].as_array().unwrap();
        // Only states that occur appear.
        let labels: Vec<&str> = datasets
            .iter()
            .map(|d| d["label"].as_str().unwrap())
            .collect();
        assert!(labels.contains(&"COMPLETED"));
        assert!(labels.contains(&"FAILED"));
        assert!(labels.contains(&"PENDING"));
        assert_eq!(labels.len(), 3);
        let completed = datasets.iter().find(|d| d["label"] == "COMPLETED").unwrap();
        assert_eq!(completed["data"], json!([2, 0]));
        let pending = datasets.iter().find(|d| d["label"] == "PENDING").unwrap();
        assert_eq!(pending["data"], json!([0, 1]));
    }

    #[test]
    fn gpu_hours_summed_per_user() {
        let recs = vec![
            rec(
                1,
                "alice",
                JobState::Completed,
                0,
                Some(0),
                Some(3_600),
                8,
                2,
            ), // 2 gpu-h
            rec(
                2,
                "alice",
                JobState::Completed,
                0,
                Some(0),
                Some(1_800),
                8,
                4,
            ), // 2 gpu-h
            rec(3, "bob", JobState::Completed, 0, Some(0), Some(3_600), 8, 0), // 0
        ];
        let chart = gpu_hours_distribution(&recs);
        assert_eq!(chart["labels"], json!(["alice", "bob"]));
        assert_eq!(chart["datasets"][0]["data"], json!([4.0, 0.0]));
    }

    #[test]
    fn empty_records_give_empty_charts() {
        let chart = job_state_distribution(&[]);
        assert_eq!(chart["labels"], json!([]));
        assert_eq!(chart["datasets"].as_array().unwrap().len(), 0);
        let gpu = gpu_hours_distribution(&[]);
        assert_eq!(gpu["labels"], json!([]));
    }
}
